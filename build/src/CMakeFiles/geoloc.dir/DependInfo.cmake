
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atlas/platform.cpp" "src/CMakeFiles/geoloc.dir/atlas/platform.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/atlas/platform.cpp.o.d"
  "/root/repo/src/atlas/scheduler.cpp" "src/CMakeFiles/geoloc.dir/atlas/scheduler.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/atlas/scheduler.cpp.o.d"
  "/root/repo/src/core/cbg.cpp" "src/CMakeFiles/geoloc.dir/core/cbg.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/core/cbg.cpp.o.d"
  "/root/repo/src/core/geodb.cpp" "src/CMakeFiles/geoloc.dir/core/geodb.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/core/geodb.cpp.o.d"
  "/root/repo/src/core/million_scale.cpp" "src/CMakeFiles/geoloc.dir/core/million_scale.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/core/million_scale.cpp.o.d"
  "/root/repo/src/core/multi_round.cpp" "src/CMakeFiles/geoloc.dir/core/multi_round.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/core/multi_round.cpp.o.d"
  "/root/repo/src/core/shortest_ping.cpp" "src/CMakeFiles/geoloc.dir/core/shortest_ping.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/core/shortest_ping.cpp.o.d"
  "/root/repo/src/core/single_radius.cpp" "src/CMakeFiles/geoloc.dir/core/single_radius.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/core/single_radius.cpp.o.d"
  "/root/repo/src/core/street_level.cpp" "src/CMakeFiles/geoloc.dir/core/street_level.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/core/street_level.cpp.o.d"
  "/root/repo/src/dataset/catalog.cpp" "src/CMakeFiles/geoloc.dir/dataset/catalog.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/dataset/catalog.cpp.o.d"
  "/root/repo/src/dataset/hitlist.cpp" "src/CMakeFiles/geoloc.dir/dataset/hitlist.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/dataset/hitlist.cpp.o.d"
  "/root/repo/src/dataset/ipv6_sparsity.cpp" "src/CMakeFiles/geoloc.dir/dataset/ipv6_sparsity.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/dataset/ipv6_sparsity.cpp.o.d"
  "/root/repo/src/dataset/population_grid.cpp" "src/CMakeFiles/geoloc.dir/dataset/population_grid.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/dataset/population_grid.cpp.o.d"
  "/root/repo/src/dataset/sanitize.cpp" "src/CMakeFiles/geoloc.dir/dataset/sanitize.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/dataset/sanitize.cpp.o.d"
  "/root/repo/src/eval/experiments.cpp" "src/CMakeFiles/geoloc.dir/eval/experiments.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/eval/experiments.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/geoloc.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/street_campaign.cpp" "src/CMakeFiles/geoloc.dir/eval/street_campaign.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/eval/street_campaign.cpp.o.d"
  "/root/repo/src/geo/geodesy.cpp" "src/CMakeFiles/geoloc.dir/geo/geodesy.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/geo/geodesy.cpp.o.d"
  "/root/repo/src/geo/geopoint.cpp" "src/CMakeFiles/geoloc.dir/geo/geopoint.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/geo/geopoint.cpp.o.d"
  "/root/repo/src/geo/region.cpp" "src/CMakeFiles/geoloc.dir/geo/region.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/geo/region.cpp.o.d"
  "/root/repo/src/landmark/ecosystem.cpp" "src/CMakeFiles/geoloc.dir/landmark/ecosystem.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/landmark/ecosystem.cpp.o.d"
  "/root/repo/src/landmark/mapping_service.cpp" "src/CMakeFiles/geoloc.dir/landmark/mapping_service.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/landmark/mapping_service.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/geoloc.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/ipv6.cpp" "src/CMakeFiles/geoloc.dir/net/ipv6.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/net/ipv6.cpp.o.d"
  "/root/repo/src/scenario/presets.cpp" "src/CMakeFiles/geoloc.dir/scenario/presets.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/scenario/presets.cpp.o.d"
  "/root/repo/src/scenario/rtt_matrix.cpp" "src/CMakeFiles/geoloc.dir/scenario/rtt_matrix.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/scenario/rtt_matrix.cpp.o.d"
  "/root/repo/src/scenario/scenario.cpp" "src/CMakeFiles/geoloc.dir/scenario/scenario.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/scenario/scenario.cpp.o.d"
  "/root/repo/src/sim/gazetteer.cpp" "src/CMakeFiles/geoloc.dir/sim/gazetteer.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/sim/gazetteer.cpp.o.d"
  "/root/repo/src/sim/latency_model.cpp" "src/CMakeFiles/geoloc.dir/sim/latency_model.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/sim/latency_model.cpp.o.d"
  "/root/repo/src/sim/traceroute.cpp" "src/CMakeFiles/geoloc.dir/sim/traceroute.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/sim/traceroute.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/geoloc.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/sim/world.cpp.o.d"
  "/root/repo/src/util/ascii_chart.cpp" "src/CMakeFiles/geoloc.dir/util/ascii_chart.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/util/ascii_chart.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/geoloc.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/geoloc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/geoloc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/geoloc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/geoloc.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
