file(REMOVE_RECURSE
  "libgeoloc.a"
)
