# Empty dependencies file for geoloc.
# This may be replaced when dependencies are built.
