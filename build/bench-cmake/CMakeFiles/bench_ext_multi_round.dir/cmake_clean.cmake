file(REMOVE_RECURSE
  "../bench/bench_ext_multi_round"
  "../bench/bench_ext_multi_round.pdb"
  "CMakeFiles/bench_ext_multi_round.dir/bench_ext_multi_round.cpp.o"
  "CMakeFiles/bench_ext_multi_round.dir/bench_ext_multi_round.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
