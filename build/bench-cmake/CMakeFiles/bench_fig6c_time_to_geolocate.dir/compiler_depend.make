# Empty compiler generated dependencies file for bench_fig6c_time_to_geolocate.
# This may be replaced when dependencies are built.
