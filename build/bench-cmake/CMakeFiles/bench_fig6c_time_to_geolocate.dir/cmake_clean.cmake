file(REMOVE_RECURSE
  "../bench/bench_fig6c_time_to_geolocate"
  "../bench/bench_fig6c_time_to_geolocate.pdb"
  "CMakeFiles/bench_fig6c_time_to_geolocate.dir/bench_fig6c_time_to_geolocate.cpp.o"
  "CMakeFiles/bench_fig6c_time_to_geolocate.dir/bench_fig6c_time_to_geolocate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_time_to_geolocate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
