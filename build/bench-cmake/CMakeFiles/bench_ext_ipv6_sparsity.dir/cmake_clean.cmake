file(REMOVE_RECURSE
  "../bench/bench_ext_ipv6_sparsity"
  "../bench/bench_ext_ipv6_sparsity.pdb"
  "CMakeFiles/bench_ext_ipv6_sparsity.dir/bench_ext_ipv6_sparsity.cpp.o"
  "CMakeFiles/bench_ext_ipv6_sparsity.dir/bench_ext_ipv6_sparsity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ipv6_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
