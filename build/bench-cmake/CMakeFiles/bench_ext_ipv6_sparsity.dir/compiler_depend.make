# Empty compiler generated dependencies file for bench_ext_ipv6_sparsity.
# This may be replaced when dependencies are built.
