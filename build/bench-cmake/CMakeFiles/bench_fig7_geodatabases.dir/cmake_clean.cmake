file(REMOVE_RECURSE
  "../bench/bench_fig7_geodatabases"
  "../bench/bench_fig7_geodatabases.pdb"
  "CMakeFiles/bench_fig7_geodatabases.dir/bench_fig7_geodatabases.cpp.o"
  "CMakeFiles/bench_fig7_geodatabases.dir/bench_fig7_geodatabases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_geodatabases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
