# Empty compiler generated dependencies file for bench_fig7_geodatabases.
# This may be replaced when dependencies are built.
