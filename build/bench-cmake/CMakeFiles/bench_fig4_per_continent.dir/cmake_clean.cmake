file(REMOVE_RECURSE
  "../bench/bench_fig4_per_continent"
  "../bench/bench_fig4_per_continent.pdb"
  "CMakeFiles/bench_fig4_per_continent.dir/bench_fig4_per_continent.cpp.o"
  "CMakeFiles/bench_fig4_per_continent.dir/bench_fig4_per_continent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_per_continent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
