file(REMOVE_RECURSE
  "../bench/bench_appendix_b_delay_estimation"
  "../bench/bench_appendix_b_delay_estimation.pdb"
  "CMakeFiles/bench_appendix_b_delay_estimation.dir/bench_appendix_b_delay_estimation.cpp.o"
  "CMakeFiles/bench_appendix_b_delay_estimation.dir/bench_appendix_b_delay_estimation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_b_delay_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
