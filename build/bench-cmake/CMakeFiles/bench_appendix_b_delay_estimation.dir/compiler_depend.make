# Empty compiler generated dependencies file for bench_appendix_b_delay_estimation.
# This may be replaced when dependencies are built.
