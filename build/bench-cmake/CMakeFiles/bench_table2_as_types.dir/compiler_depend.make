# Empty compiler generated dependencies file for bench_table2_as_types.
# This may be replaced when dependencies are built.
