file(REMOVE_RECURSE
  "../bench/bench_table2_as_types"
  "../bench/bench_table2_as_types.pdb"
  "CMakeFiles/bench_table2_as_types.dir/bench_table2_as_types.cpp.o"
  "CMakeFiles/bench_table2_as_types.dir/bench_table2_as_types.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_as_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
