# Empty dependencies file for bench_fig5a_street_level.
# This may be replaced when dependencies are built.
