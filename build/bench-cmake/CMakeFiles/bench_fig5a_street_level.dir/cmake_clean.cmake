file(REMOVE_RECURSE
  "../bench/bench_fig5a_street_level"
  "../bench/bench_fig5a_street_level.pdb"
  "CMakeFiles/bench_fig5a_street_level.dir/bench_fig5a_street_level.cpp.o"
  "CMakeFiles/bench_fig5a_street_level.dir/bench_fig5a_street_level.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_street_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
