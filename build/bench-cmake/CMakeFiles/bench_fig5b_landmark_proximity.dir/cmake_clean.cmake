file(REMOVE_RECURSE
  "../bench/bench_fig5b_landmark_proximity"
  "../bench/bench_fig5b_landmark_proximity.pdb"
  "CMakeFiles/bench_fig5b_landmark_proximity.dir/bench_fig5b_landmark_proximity.cpp.o"
  "CMakeFiles/bench_fig5b_landmark_proximity.dir/bench_fig5b_landmark_proximity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_landmark_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
