# Empty dependencies file for bench_fig5b_landmark_proximity.
# This may be replaced when dependencies are built.
