# Empty dependencies file for bench_fig6b_population_density.
# This may be replaced when dependencies are built.
