# Empty compiler generated dependencies file for bench_fig2b_subset_cdf.
# This may be replaced when dependencies are built.
