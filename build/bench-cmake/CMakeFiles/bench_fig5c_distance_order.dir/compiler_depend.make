# Empty compiler generated dependencies file for bench_fig5c_distance_order.
# This may be replaced when dependencies are built.
