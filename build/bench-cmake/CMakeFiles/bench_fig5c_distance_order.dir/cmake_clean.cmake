file(REMOVE_RECURSE
  "../bench/bench_fig5c_distance_order"
  "../bench/bench_fig5c_distance_order.pdb"
  "CMakeFiles/bench_fig5c_distance_order.dir/bench_fig5c_distance_order.cpp.o"
  "CMakeFiles/bench_fig5c_distance_order.dir/bench_fig5c_distance_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_distance_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
