file(REMOVE_RECURSE
  "../bench/bench_ablation_landmark_vps"
  "../bench/bench_ablation_landmark_vps.pdb"
  "CMakeFiles/bench_ablation_landmark_vps.dir/bench_ablation_landmark_vps.cpp.o"
  "CMakeFiles/bench_ablation_landmark_vps.dir/bench_ablation_landmark_vps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_landmark_vps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
