# Empty compiler generated dependencies file for bench_ablation_landmark_vps.
# This may be replaced when dependencies are built.
