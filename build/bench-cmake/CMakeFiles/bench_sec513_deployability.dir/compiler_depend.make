# Empty compiler generated dependencies file for bench_sec513_deployability.
# This may be replaced when dependencies are built.
