file(REMOVE_RECURSE
  "../bench/bench_sec513_deployability"
  "../bench/bench_sec513_deployability.pdb"
  "CMakeFiles/bench_sec513_deployability.dir/bench_sec513_deployability.cpp.o"
  "CMakeFiles/bench_sec513_deployability.dir/bench_sec513_deployability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec513_deployability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
