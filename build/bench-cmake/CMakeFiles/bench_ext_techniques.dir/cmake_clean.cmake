file(REMOVE_RECURSE
  "../bench/bench_ext_techniques"
  "../bench/bench_ext_techniques.pdb"
  "CMakeFiles/bench_ext_techniques.dir/bench_ext_techniques.cpp.o"
  "CMakeFiles/bench_ext_techniques.dir/bench_ext_techniques.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
