# Empty dependencies file for bench_ext_techniques.
# This may be replaced when dependencies are built.
