file(REMOVE_RECURSE
  "../bench/bench_fig2c_remove_close_vps"
  "../bench/bench_fig2c_remove_close_vps.pdb"
  "CMakeFiles/bench_fig2c_remove_close_vps.dir/bench_fig2c_remove_close_vps.cpp.o"
  "CMakeFiles/bench_fig2c_remove_close_vps.dir/bench_fig2c_remove_close_vps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_remove_close_vps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
