# Empty dependencies file for bench_fig2c_remove_close_vps.
# This may be replaced when dependencies are built.
