file(REMOVE_RECURSE
  "../bench/bench_fig3b_two_step"
  "../bench/bench_fig3b_two_step.pdb"
  "CMakeFiles/bench_fig3b_two_step.dir/bench_fig3b_two_step.cpp.o"
  "CMakeFiles/bench_fig3b_two_step.dir/bench_fig3b_two_step.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_two_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
