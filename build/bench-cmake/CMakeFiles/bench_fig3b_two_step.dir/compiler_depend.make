# Empty compiler generated dependencies file for bench_fig3b_two_step.
# This may be replaced when dependencies are built.
