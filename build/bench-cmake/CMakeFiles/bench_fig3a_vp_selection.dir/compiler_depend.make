# Empty compiler generated dependencies file for bench_fig3a_vp_selection.
# This may be replaced when dependencies are built.
