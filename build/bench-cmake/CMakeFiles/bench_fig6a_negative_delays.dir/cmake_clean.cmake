file(REMOVE_RECURSE
  "../bench/bench_fig6a_negative_delays"
  "../bench/bench_fig6a_negative_delays.pdb"
  "CMakeFiles/bench_fig6a_negative_delays.dir/bench_fig6a_negative_delays.cpp.o"
  "CMakeFiles/bench_fig6a_negative_delays.dir/bench_fig6a_negative_delays.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_negative_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
