# Empty compiler generated dependencies file for bench_fig6a_negative_delays.
# This may be replaced when dependencies are built.
