# Empty dependencies file for bench_ablation_region_resolution.
# This may be replaced when dependencies are built.
