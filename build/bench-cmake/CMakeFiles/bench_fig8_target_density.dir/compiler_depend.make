# Empty compiler generated dependencies file for bench_fig8_target_density.
# This may be replaced when dependencies are built.
