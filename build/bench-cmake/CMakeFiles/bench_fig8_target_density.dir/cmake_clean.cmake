file(REMOVE_RECURSE
  "../bench/bench_fig8_target_density"
  "../bench/bench_fig8_target_density.pdb"
  "CMakeFiles/bench_fig8_target_density.dir/bench_fig8_target_density.cpp.o"
  "CMakeFiles/bench_fig8_target_density.dir/bench_fig8_target_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_target_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
