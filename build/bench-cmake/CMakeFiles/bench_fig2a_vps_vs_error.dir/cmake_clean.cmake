file(REMOVE_RECURSE
  "../bench/bench_fig2a_vps_vs_error"
  "../bench/bench_fig2a_vps_vs_error.pdb"
  "CMakeFiles/bench_fig2a_vps_vs_error.dir/bench_fig2a_vps_vs_error.cpp.o"
  "CMakeFiles/bench_fig2a_vps_vs_error.dir/bench_fig2a_vps_vs_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_vps_vs_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
