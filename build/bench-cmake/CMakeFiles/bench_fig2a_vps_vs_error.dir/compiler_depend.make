# Empty compiler generated dependencies file for bench_fig2a_vps_vs_error.
# This may be replaced when dependencies are built.
