file(REMOVE_RECURSE
  "../bench/bench_campaign_cost"
  "../bench/bench_campaign_cost.pdb"
  "CMakeFiles/bench_campaign_cost.dir/bench_campaign_cost.cpp.o"
  "CMakeFiles/bench_campaign_cost.dir/bench_campaign_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_campaign_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
