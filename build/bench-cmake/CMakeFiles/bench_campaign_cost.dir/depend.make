# Empty dependencies file for bench_campaign_cost.
# This may be replaced when dependencies are built.
