file(REMOVE_RECURSE
  "CMakeFiles/geoloc_cli.dir/geoloc_cli.cpp.o"
  "CMakeFiles/geoloc_cli.dir/geoloc_cli.cpp.o.d"
  "geoloc_cli"
  "geoloc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoloc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
