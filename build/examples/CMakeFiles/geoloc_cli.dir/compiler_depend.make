# Empty compiler generated dependencies file for geoloc_cli.
# This may be replaced when dependencies are built.
