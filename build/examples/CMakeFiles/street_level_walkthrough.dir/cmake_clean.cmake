file(REMOVE_RECURSE
  "CMakeFiles/street_level_walkthrough.dir/street_level_walkthrough.cpp.o"
  "CMakeFiles/street_level_walkthrough.dir/street_level_walkthrough.cpp.o.d"
  "street_level_walkthrough"
  "street_level_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/street_level_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
