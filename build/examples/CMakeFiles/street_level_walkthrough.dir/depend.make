# Empty dependencies file for street_level_walkthrough.
# This may be replaced when dependencies are built.
