file(REMOVE_RECURSE
  "CMakeFiles/vp_selection_planner.dir/vp_selection_planner.cpp.o"
  "CMakeFiles/vp_selection_planner.dir/vp_selection_planner.cpp.o.d"
  "vp_selection_planner"
  "vp_selection_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_selection_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
