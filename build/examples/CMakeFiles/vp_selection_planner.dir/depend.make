# Empty dependencies file for vp_selection_planner.
# This may be replaced when dependencies are built.
