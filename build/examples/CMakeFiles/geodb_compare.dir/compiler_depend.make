# Empty compiler generated dependencies file for geodb_compare.
# This may be replaced when dependencies are built.
