file(REMOVE_RECURSE
  "CMakeFiles/geodb_compare.dir/geodb_compare.cpp.o"
  "CMakeFiles/geodb_compare.dir/geodb_compare.cpp.o.d"
  "geodb_compare"
  "geodb_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geodb_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
