
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/atlas_platform_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/atlas_platform_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/atlas_platform_test.cpp.o.d"
  "/root/repo/tests/atlas_scheduler_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/atlas_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/atlas_scheduler_test.cpp.o.d"
  "/root/repo/tests/core_cbg_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/core_cbg_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/core_cbg_test.cpp.o.d"
  "/root/repo/tests/core_geodb_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/core_geodb_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/core_geodb_test.cpp.o.d"
  "/root/repo/tests/core_million_scale_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/core_million_scale_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/core_million_scale_test.cpp.o.d"
  "/root/repo/tests/core_multi_round_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/core_multi_round_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/core_multi_round_test.cpp.o.d"
  "/root/repo/tests/core_shortest_ping_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/core_shortest_ping_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/core_shortest_ping_test.cpp.o.d"
  "/root/repo/tests/core_single_radius_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/core_single_radius_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/core_single_radius_test.cpp.o.d"
  "/root/repo/tests/core_street_level_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/core_street_level_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/core_street_level_test.cpp.o.d"
  "/root/repo/tests/dataset_catalog_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/dataset_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/dataset_catalog_test.cpp.o.d"
  "/root/repo/tests/dataset_hitlist_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/dataset_hitlist_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/dataset_hitlist_test.cpp.o.d"
  "/root/repo/tests/dataset_ipv6_sparsity_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/dataset_ipv6_sparsity_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/dataset_ipv6_sparsity_test.cpp.o.d"
  "/root/repo/tests/dataset_population_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/dataset_population_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/dataset_population_test.cpp.o.d"
  "/root/repo/tests/dataset_sanitize_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/dataset_sanitize_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/dataset_sanitize_test.cpp.o.d"
  "/root/repo/tests/eval_experiments_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/eval_experiments_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/eval_experiments_test.cpp.o.d"
  "/root/repo/tests/eval_street_campaign_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/eval_street_campaign_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/eval_street_campaign_test.cpp.o.d"
  "/root/repo/tests/geo_geodesy_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/geo_geodesy_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/geo_geodesy_test.cpp.o.d"
  "/root/repo/tests/geo_region_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/geo_region_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/geo_region_test.cpp.o.d"
  "/root/repo/tests/integration_pipeline_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/integration_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/integration_pipeline_test.cpp.o.d"
  "/root/repo/tests/landmark_ecosystem_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/landmark_ecosystem_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/landmark_ecosystem_test.cpp.o.d"
  "/root/repo/tests/landmark_mapping_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/landmark_mapping_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/landmark_mapping_test.cpp.o.d"
  "/root/repo/tests/net_ipv4_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/net_ipv4_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/net_ipv4_test.cpp.o.d"
  "/root/repo/tests/net_ipv6_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/net_ipv6_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/net_ipv6_test.cpp.o.d"
  "/root/repo/tests/net_prefix_table_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/net_prefix_table_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/net_prefix_table_test.cpp.o.d"
  "/root/repo/tests/property_reference_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/property_reference_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/property_reference_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/sim_cost_model_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/sim_cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/sim_cost_model_test.cpp.o.d"
  "/root/repo/tests/sim_latency_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/sim_latency_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/sim_latency_test.cpp.o.d"
  "/root/repo/tests/sim_traceroute_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/sim_traceroute_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/sim_traceroute_test.cpp.o.d"
  "/root/repo/tests/sim_world_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/sim_world_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/sim_world_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/util_csv_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/util_csv_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/util_csv_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_text_test.cpp" "tests/CMakeFiles/geoloc_tests.dir/util_text_test.cpp.o" "gcc" "tests/CMakeFiles/geoloc_tests.dir/util_text_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
