# Empty dependencies file for geoloc_tests.
# This may be replaced when dependencies are built.
