// Batched geodesic kernels over SoA point sets (DESIGN.md §14).
//
// The dense RTT pipeline calls the scalar haversine once per (VP, target)
// pair through two Host structs — pointer-chasing and re-deriving
// deg_to_rad/cos(lat) for the same endpoints millions of times. The
// streaming tile pipeline instead converts each host list once into a
// PointsSoA — separate contiguous arrays for the per-point subexpressions
// (lat in radians, raw longitude degrees, cos(lat)) plus the 3-D unit
// vectors — and runs one-to-many kernels over flat doubles.
//
// Two kernels, two contracts:
//
//   distance_km_batch — BIT-IDENTICAL to the scalar distance_km oracle.
//     It performs the same floating-point operations in the same order and
//     association; the only change is that the per-point pure
//     subexpressions (deg_to_rad(lat_deg), cos(lat_rad)) are computed once
//     at SoA build time instead of per call. Same double inputs through
//     the same libm give the same doubles, so tile-generated RTTs equal
//     dense-path RTTs byte for byte (asserted by the scale test suite).
//
//   chord_distance_km_batch — the unit-vector form (great-circle angle via
//     the chord length, 2R·asin(|u−v|/2)): mathematically equal, NOT
//     bit-identical. The inner loop is pure mul/add over x[]y[]z[] with a
//     single asin per element, so the compiler can vectorise everything
//     but the libm call. Contract: absolute error vs the scalar oracle
//     ≤ 1e-6 km (one millimetre) — except within ~100 km of the exact
//     antipode, where asin's conditioning diverges (dθ/dchord → ∞ as the
//     chord approaches the diameter) and no chord formulation can hold a
//     millimetre; there the bound is 1e-3 km (one metre). Asserted over
//     adversarial point pairs (poles, anti-meridian, antipodal,
//     near-coincident). Use it only where byte-identity with the dense
//     path is not required.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geo/geopoint.h"

namespace geoloc::geo {

/// Structure-of-arrays view of a point list: the precomputed per-point
/// terms of the haversine plus unit vectors. Built once per host list,
/// ~56 bytes per point.
struct PointsSoA {
  std::vector<double> lat_rad;  ///< deg_to_rad(lat_deg)
  std::vector<double> lon_deg;  ///< raw longitude (haversine subtracts degrees)
  std::vector<double> cos_lat;  ///< cos(lat_rad)
  std::vector<double> x, y, z;  ///< unit vector on the sphere

  [[nodiscard]] std::size_t size() const noexcept { return lat_rad.size(); }
  [[nodiscard]] bool empty() const noexcept { return lat_rad.empty(); }

  void reserve(std::size_t n);
  void push_back(const GeoPoint& p);

  [[nodiscard]] static PointsSoA build(std::span<const GeoPoint> points);
};

/// out[j - begin] = distance_km(from, points[j]) for j in [begin, end) —
/// bit-identical to the scalar oracle (see the contract above).
/// Precondition: end <= pts.size(), out has end - begin slots.
void distance_km_batch(const GeoPoint& from, const PointsSoA& pts,
                       std::size_t begin, std::size_t end,
                       double* out) noexcept;

/// Chord-based fast kernel: out[j - begin] ≈ distance_km(pts_from[i],
/// pts[j]) within 1e-6 km (1e-3 km for near-antipodal pairs; see the
/// contract above). The from-side point comes from a SoA too so the
/// caller amortises its unit vector.
void chord_distance_km_batch(const PointsSoA& from_pts, std::size_t i,
                             const PointsSoA& pts, std::size_t begin,
                             std::size_t end, double* out) noexcept;

}  // namespace geoloc::geo
