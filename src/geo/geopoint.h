// Geographic coordinates. All angles are degrees in the public API; radians
// appear only inside geodesy kernels.
#pragma once

#include <cmath>
#include <numbers>
#include <string>

namespace geoloc::geo {

constexpr double kPi = std::numbers::pi;

constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }
constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// A point on the Earth's surface (spherical model).
struct GeoPoint {
  double lat_deg = 0.0;  ///< latitude in [-90, 90]
  double lon_deg = 0.0;  ///< longitude in [-180, 180)

  /// True when latitude/longitude are inside their valid ranges.
  [[nodiscard]] constexpr bool valid() const noexcept {
    return lat_deg >= -90.0 && lat_deg <= 90.0 && lon_deg >= -180.0 &&
           lon_deg < 180.0 && !std::isnan(lat_deg) && !std::isnan(lon_deg);
  }

  friend constexpr bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Normalize longitude into [-180, 180).
constexpr double normalize_lon(double lon_deg) noexcept {
  while (lon_deg >= 180.0) lon_deg -= 360.0;
  while (lon_deg < -180.0) lon_deg += 360.0;
  return lon_deg;
}

/// Clamp latitude into [-90, 90].
constexpr double clamp_lat(double lat_deg) noexcept {
  if (lat_deg > 90.0) return 90.0;
  if (lat_deg < -90.0) return -90.0;
  return lat_deg;
}

/// "48.8566,2.3522" — used by tables and debug output.
std::string to_string(const GeoPoint& p);

}  // namespace geoloc::geo
