#include "geo/geodesy.h"

#include <algorithm>
#include <cmath>

#include "geo/constants.h"

namespace geoloc::geo {

double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  const double bearing = rad_to_deg(std::atan2(y, x));
  return std::fmod(bearing + 360.0, 360.0);
}

GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_km) noexcept {
  const double delta = distance_km / kEarthRadiusKm;  // angular distance
  const double theta = deg_to_rad(bearing_deg);
  const double lat1 = deg_to_rad(origin.lat_deg);
  const double lon1 = deg_to_rad(origin.lon_deg);

  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  const double lon2 = lon1 + std::atan2(y, x);

  return GeoPoint{clamp_lat(rad_to_deg(lat2)), normalize_lon(rad_to_deg(lon2))};
}

GeoPoint midpoint(const GeoPoint& a, const GeoPoint& b) noexcept {
  const GeoPoint pts[] = {a, b};
  return centroid(pts);
}

GeoPoint centroid(std::span<const GeoPoint> points) noexcept {
  if (points.empty()) return {};
  double x = 0.0, y = 0.0, z = 0.0;
  for (const GeoPoint& p : points) {
    const double lat = deg_to_rad(p.lat_deg);
    const double lon = deg_to_rad(p.lon_deg);
    x += std::cos(lat) * std::cos(lon);
    y += std::cos(lat) * std::sin(lon);
    z += std::sin(lat);
  }
  const auto n = static_cast<double>(points.size());
  x /= n;
  y /= n;
  z /= n;
  const double hyp = std::hypot(x, y);
  if (hyp == 0.0 && z == 0.0) return {};  // degenerate (antipodal average)
  return GeoPoint{clamp_lat(rad_to_deg(std::atan2(z, hyp))),
                  normalize_lon(rad_to_deg(std::atan2(y, x)))};
}

}  // namespace geoloc::geo
