// Great-circle geodesy on a spherical Earth: distances, bearings,
// destination points and centroids. Accuracy of the spherical model
// (vs WGS-84 ellipsoid) is ~0.3%, far below the error scales of
// latency-based geolocation (kilometres), so the sphere is sufficient
// and keeps the kernels branch-light for the 10k x 723 RTT matrices.
#pragma once

#include <span>

#include "geo/geopoint.h"

namespace geoloc::geo {

/// Great-circle distance in kilometres (haversine formula; numerically
/// stable for both antipodal and very close points).
double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Initial bearing (forward azimuth) from `a` to `b`, degrees in [0, 360).
double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Point reached by travelling `distance_km` from `origin` along
/// `bearing_deg` on a great circle.
GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_km) noexcept;

/// Geographic midpoint of two points along the great circle joining them.
GeoPoint midpoint(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Spherical centroid of a set of points (normalized mean of the 3-D unit
/// vectors). Returns {0,0} for an empty span.
GeoPoint centroid(std::span<const GeoPoint> points) noexcept;

}  // namespace geoloc::geo
