#include "geo/geopoint.h"

#include <iomanip>
#include <sstream>

namespace geoloc::geo {

std::string to_string(const GeoPoint& p) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << p.lat_deg << ',' << p.lon_deg;
  return os.str();
}

}  // namespace geoloc::geo
