// Physical constants and RTT<->distance conversion used by every
// latency-based geolocation technique in the paper.
//
// CBG (Gueye et al. 2006) and the million-scale paper convert RTTs to
// distance upper bounds at 2/3 of the speed of light in vacuum ("speed of
// Internet", SOI); the street-level paper argues 2/3 c is too conservative
// for its tiers and uses 4/9 c instead (IMC'23 paper, Section 3.2.2).
#pragma once

namespace geoloc::geo {

/// Mean Earth radius in kilometres (spherical model).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// Speed of light in vacuum, km per millisecond.
inline constexpr double kSpeedOfLightKmPerMs = 299.792458;

/// Speed of Internet at 2/3 c (km/ms) — the classic CBG constant and the
/// constant used by the paper's sanitisation step (Section 4.3).
inline constexpr double kSoiTwoThirdsKmPerMs = kSpeedOfLightKmPerMs * 2.0 / 3.0;

/// Speed of Internet at 4/9 c (km/ms) — the street-level paper's constant.
inline constexpr double kSoiFourNinthsKmPerMs = kSpeedOfLightKmPerMs * 4.0 / 9.0;

/// Maximum one-way distance implied by a round-trip time at propagation
/// speed `soi_km_per_ms`: the packet travels at most rtt/2 in one direction.
constexpr double rtt_to_max_distance_km(double rtt_ms,
                                        double soi_km_per_ms) noexcept {
  return rtt_ms / 2.0 * soi_km_per_ms;
}

/// Minimum physically possible RTT between two points `distance_km` apart,
/// assuming propagation at `soi_km_per_ms` (2/3 c unless stated otherwise).
constexpr double distance_to_min_rtt_ms(
    double distance_km, double soi_km_per_ms = kSoiTwoThirdsKmPerMs) noexcept {
  return 2.0 * distance_km / soi_km_per_ms;
}

/// Speed-of-Internet violation test used by the Section 4.3 sanitiser: an
/// observed RTT is impossible if it is below the great-circle minimum.
constexpr bool violates_soi(double rtt_ms, double distance_km,
                            double soi_km_per_ms = kSoiTwoThirdsKmPerMs) noexcept {
  return rtt_ms < distance_to_min_rtt_ms(distance_km, soi_km_per_ms);
}

}  // namespace geoloc::geo
