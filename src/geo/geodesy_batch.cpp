#include "geo/geodesy_batch.h"

#include <algorithm>
#include <cmath>

#include "geo/constants.h"

namespace geoloc::geo {

void PointsSoA::reserve(std::size_t n) {
  lat_rad.reserve(n);
  lon_deg.reserve(n);
  cos_lat.reserve(n);
  x.reserve(n);
  y.reserve(n);
  z.reserve(n);
}

void PointsSoA::push_back(const GeoPoint& p) {
  const double lat = deg_to_rad(p.lat_deg);
  const double lon = deg_to_rad(p.lon_deg);
  const double cl = std::cos(lat);
  lat_rad.push_back(lat);
  lon_deg.push_back(p.lon_deg);
  cos_lat.push_back(cl);
  x.push_back(cl * std::cos(lon));
  y.push_back(cl * std::sin(lon));
  z.push_back(std::sin(lat));
}

PointsSoA PointsSoA::build(std::span<const GeoPoint> points) {
  PointsSoA soa;
  soa.reserve(points.size());
  for (const GeoPoint& p : points) soa.push_back(p);
  return soa;
}

void distance_km_batch(const GeoPoint& from, const PointsSoA& pts,
                       std::size_t begin, std::size_t end,
                       double* out) noexcept {
  // Mirror of the scalar distance_km body, operation for operation: `from`
  // plays the role of `a`, so lat1/cos(lat1) hoist out of the loop and the
  // per-point terms come precomputed from the SoA. Any change here must
  // keep the expression order or the bit-identity contract breaks.
  const double lat1 = deg_to_rad(from.lat_deg);
  const double cos_lat1 = std::cos(lat1);
  for (std::size_t j = begin; j < end; ++j) {
    const double lat2 = pts.lat_rad[j];
    const double dlat = lat2 - lat1;
    const double dlon = deg_to_rad(pts.lon_deg[j] - from.lon_deg);
    const double sin_dlat = std::sin(dlat / 2.0);
    const double sin_dlon = std::sin(dlon / 2.0);
    const double h =
        sin_dlat * sin_dlat + cos_lat1 * pts.cos_lat[j] * sin_dlon * sin_dlon;
    out[j - begin] = 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
  }
}

void chord_distance_km_batch(const PointsSoA& from_pts, std::size_t i,
                             const PointsSoA& pts, std::size_t begin,
                             std::size_t end, double* out) noexcept {
  const double fx = from_pts.x[i];
  const double fy = from_pts.y[i];
  const double fz = from_pts.z[i];
  for (std::size_t j = begin; j < end; ++j) {
    const double dx = pts.x[j] - fx;
    const double dy = pts.y[j] - fy;
    const double dz = pts.z[j] - fz;
    // Half the chord length is sin(angle / 2); asin recovers the
    // great-circle angle without the cancellation the dot-product form
    // suffers for near-coincident points.
    const double half_chord = std::sqrt(dx * dx + dy * dy + dz * dz) * 0.5;
    out[j - begin] =
        2.0 * kEarthRadiusKm * std::asin(std::min(1.0, half_chord));
  }
}

}  // namespace geoloc::geo
