#include "geo/region.h"

#include <algorithm>
#include <cmath>

#include "geo/constants.h"

namespace geoloc::geo {

namespace {

/// Sample a polar grid over `seed` (center + rings x sectors) and keep the
/// points inside every disk of `constraints`. When `area_fraction` is
/// non-null it receives the area-weighted feasible fraction of the seed
/// disk: ring i stands for an annulus whose area grows linearly with i, so
/// per-point weights must too (a flat count would oversample the centre).
std::vector<GeoPoint> feasible_samples(const Disk& seed,
                                       std::span<const Disk> constraints,
                                       int rings, int sectors,
                                       double* area_fraction = nullptr) {
  std::vector<GeoPoint> feasible;
  double weight_total = 0.0, weight_feasible = 0.0;
  auto test = [&](const GeoPoint& p, double weight) {
    weight_total += weight;
    for (const Disk& d : constraints) {
      if (!d.contains(p)) return;
    }
    weight_feasible += weight;
    feasible.push_back(p);
  };
  test(seed.center, 0.125);  // the r < delta/2 cap around the centre
  for (int ri = 1; ri <= rings; ++ri) {
    const double r =
        seed.radius_km * static_cast<double>(ri) / static_cast<double>(rings);
    const double ring_weight =
        static_cast<double>(ri) / static_cast<double>(sectors);
    for (int si = 0; si < sectors; ++si) {
      const double bearing =
          360.0 * static_cast<double>(si) / static_cast<double>(sectors);
      test(destination(seed.center, bearing, r), ring_weight);
    }
  }
  if (area_fraction) {
    *area_fraction = weight_total > 0.0 ? weight_feasible / weight_total : 0.0;
  }
  return feasible;
}

}  // namespace

std::vector<Disk> prune_dominated(std::span<const Disk> disks) {
  std::vector<Disk> sorted(disks.begin(), disks.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Disk& a, const Disk& b) { return a.radius_km < b.radius_km; });
  std::vector<Disk> kept;
  for (const Disk& candidate : sorted) {
    // A disk is redundant if any already-kept (smaller) disk lies inside it.
    const bool redundant =
        std::any_of(kept.begin(), kept.end(), [&](const Disk& smaller) {
          return smaller.inside(candidate);
        });
    if (!redundant) kept.push_back(candidate);
  }
  return kept;
}

Region intersect_disks(std::span<const Disk> disks,
                       const RegionOptions& options) {
  Region region;
  if (disks.empty()) return region;

  const std::vector<Disk> kept = prune_dominated(disks);
  const Disk& seed = kept.front();  // smallest radius: the tightest constraint

  // Quick disjointness check: if the seed is disjoint from any other
  // constraint the intersection is provably empty.
  for (std::size_t i = 1; i < kept.size(); ++i) {
    if (seed.disjoint(kept[i])) return region;
  }

  Disk window = seed;
  std::vector<GeoPoint> feasible;
  for (int level = 0; level <= options.refine_levels; ++level) {
    double area_fraction = 0.0;
    feasible = feasible_samples(window, kept, options.rings, options.sectors,
                                &area_fraction);
    if (feasible.empty() && level == 0) {
      // One retry at double resolution before declaring emptiness: thin
      // lens-shaped intersections can slip between coarse samples.
      feasible = feasible_samples(window, kept, options.rings * 2,
                                  options.sectors * 2, &area_fraction);
    }
    if (feasible.empty()) return region;

    const GeoPoint c = centroid(feasible);
    double max_r = 0.0;
    for (const GeoPoint& p : feasible) {
      max_r = std::max(max_r, distance_km(c, p));
    }
    // Area estimate from the *first* (seed-disk-covering) pass.
    if (level == 0) {
      region.area_km2 =
          kPi * seed.radius_km * seed.radius_km * area_fraction;
    }
    region.empty = false;
    region.centroid = c;
    region.radius_km = max_r;
    if (level < options.refine_levels) {
      // Zoom: re-sample a window just covering the feasible set. The ring
      // spacing shrinks by ~rings/1.2 per level.
      window = Disk{c, std::max(max_r * 1.2, 1e-3)};
    }
  }
  region.samples = std::move(feasible);
  return region;
}

bool region_contains(std::span<const Disk> disks, const GeoPoint& p) noexcept {
  return std::all_of(disks.begin(), disks.end(),
                     [&](const Disk& d) { return d.contains(p); });
}

}  // namespace geoloc::geo
