#include "geo/region.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "geo/constants.h"
#include "spatial/cell.h"
#include "spatial/covering.h"

namespace geoloc::geo {

namespace {

/// Per covering cell, what the cell classification proved about the
/// constraint set: either the whole cell is infeasible (some constraint
/// provably excludes every point of it) or only the `boundary` constraints
/// still need a per-point test (the rest provably contain the cell).
struct CellClass {
  std::uint64_t token_lo = 0;
  std::uint64_t token_hi = 0;
  bool infeasible = false;
  std::vector<std::uint16_t> boundary;  ///< constraint indices to test
};

/// Classify a covering of `window` against the constraint set. Cells are
/// token-sorted (cover_disk's contract), so a sample point maps to its
/// cell with one binary search on token_lo.
std::vector<CellClass> classify_cells(const Disk& window,
                                      std::span<const Disk> constraints) {
  // A small budget keeps the classification cost (2 distance bounds per
  // cell per constraint) well below the per-point tests it saves.
  spatial::CoveringOptions opts;
  opts.max_cells = 16;
  const std::vector<spatial::CellId> cells = spatial::cover_disk(window, opts);
  std::vector<CellClass> classes;
  classes.reserve(cells.size());
  for (const spatial::CellId& cell : cells) {
    CellClass cc;
    cc.token_lo = cell.token_lo();
    cc.token_hi = cell.token_hi();
    for (std::size_t k = 0; k < constraints.size(); ++k) {
      if (!spatial::cell_may_intersect_disk(cell, constraints[k])) {
        cc.infeasible = true;
        cc.boundary.clear();
        break;
      }
      if (!spatial::cell_contained_in_disk(cell, constraints[k])) {
        cc.boundary.push_back(static_cast<std::uint16_t>(k));
      }
    }
    classes.push_back(std::move(cc));
  }
  return classes;
}

/// The covering cell containing `p`, or nullptr when `p` fell outside the
/// covered window (floating-point edge of the outermost ring): the caller
/// then falls back to testing every constraint, which is the same test the
/// classification would have routed anyway.
const CellClass* cell_of(std::span<const CellClass> classes,
                         const GeoPoint& p) {
  const std::uint64_t token = spatial::CellId::leaf_token(p);
  auto it = std::upper_bound(classes.begin(), classes.end(), token,
                             [](std::uint64_t t, const CellClass& c) {
                               return t < c.token_lo;
                             });
  if (it == classes.begin()) return nullptr;
  --it;
  return token < it->token_hi ? &*it : nullptr;
}

/// Sample a polar grid over `seed` (center + rings x sectors) and keep the
/// points inside every disk of `constraints`. When `area_fraction` is
/// non-null it receives the area-weighted feasible fraction of the seed
/// disk: ring i stands for an annulus whose area grows linearly with i, so
/// per-point weights must too (a flat count would oversample the centre).
///
/// With `use_cover`, the constraint tests are routed through a spatial::
/// covering of the seed disk (classify_cells): a point in a cell some
/// constraint provably excludes is infeasible without any distance test,
/// and a point in a surviving cell only tests the cell's boundary
/// constraints. The grid points, their order, and the feasible set are
/// identical either way — the covering is a sound pre-classification, not
/// an approximation — so both paths produce the same bytes.
std::vector<GeoPoint> feasible_samples(const Disk& seed,
                                       std::span<const Disk> constraints,
                                       int rings, int sectors, bool use_cover,
                                       double* area_fraction = nullptr) {
  // Below this many constraints the per-point saving cannot repay the
  // classification; the direct scan is used (identical output).
  const bool cover = use_cover && constraints.size() >= 2;
  const std::vector<CellClass> classes =
      cover ? classify_cells(seed, constraints) : std::vector<CellClass>{};

  std::vector<GeoPoint> feasible;
  double weight_total = 0.0, weight_feasible = 0.0;
  auto contains_all = [&](const GeoPoint& p) {
    for (const Disk& d : constraints) {
      if (!d.contains(p)) return false;
    }
    return true;
  };
  auto test = [&](const GeoPoint& p, double weight) {
    weight_total += weight;
    if (cover) {
      if (const CellClass* cc = cell_of(classes, p)) {
        if (cc->infeasible) return;
        for (std::uint16_t k : cc->boundary) {
          if (!constraints[k].contains(p)) return;
        }
      } else if (!contains_all(p)) {
        return;
      }
    } else if (!contains_all(p)) {
      return;
    }
    weight_feasible += weight;
    feasible.push_back(p);
  };
  test(seed.center, 0.125);  // the r < delta/2 cap around the centre
  for (int ri = 1; ri <= rings; ++ri) {
    const double r =
        seed.radius_km * static_cast<double>(ri) / static_cast<double>(rings);
    const double ring_weight =
        static_cast<double>(ri) / static_cast<double>(sectors);
    for (int si = 0; si < sectors; ++si) {
      const double bearing =
          360.0 * static_cast<double>(si) / static_cast<double>(sectors);
      test(destination(seed.center, bearing, r), ring_weight);
    }
  }
  if (area_fraction) {
    *area_fraction = weight_total > 0.0 ? weight_feasible / weight_total : 0.0;
  }
  return feasible;
}

Region intersect_disks_impl(std::span<const Disk> disks,
                            const RegionOptions& options, bool use_cover) {
  Region region;
  if (disks.empty()) return region;

  const std::vector<Disk> kept = prune_dominated(disks);
  const Disk& seed = kept.front();  // smallest radius: the tightest constraint

  // Quick disjointness check: if the seed is disjoint from any other
  // constraint the intersection is provably empty.
  for (std::size_t i = 1; i < kept.size(); ++i) {
    if (seed.disjoint(kept[i])) return region;
  }

  Disk window = seed;
  std::vector<GeoPoint> feasible;
  for (int level = 0; level <= options.refine_levels; ++level) {
    double area_fraction = 0.0;
    feasible = feasible_samples(window, kept, options.rings, options.sectors,
                                use_cover, &area_fraction);
    if (feasible.empty() && level == 0) {
      // One retry at double resolution before declaring emptiness: thin
      // lens-shaped intersections can slip between coarse samples.
      feasible = feasible_samples(window, kept, options.rings * 2,
                                  options.sectors * 2, use_cover,
                                  &area_fraction);
    }
    if (feasible.empty()) return region;

    const GeoPoint c = centroid(feasible);
    double max_r = 0.0;
    for (const GeoPoint& p : feasible) {
      max_r = std::max(max_r, distance_km(c, p));
    }
    // Area estimate from the *first* (seed-disk-covering) pass.
    if (level == 0) {
      region.area_km2 =
          kPi * seed.radius_km * seed.radius_km * area_fraction;
    }
    region.empty = false;
    region.centroid = c;
    region.radius_km = max_r;
    if (level < options.refine_levels) {
      // Zoom: re-sample a window just covering the feasible set. The ring
      // spacing shrinks by ~rings/1.2 per level.
      window = Disk{c, std::max(max_r * 1.2, 1e-3)};
    }
  }
  region.samples = std::move(feasible);
  return region;
}

}  // namespace

std::vector<Disk> prune_dominated(std::span<const Disk> disks) {
  std::vector<Disk> sorted(disks.begin(), disks.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Disk& a, const Disk& b) { return a.radius_km < b.radius_km; });
  std::vector<Disk> kept;
  for (const Disk& candidate : sorted) {
    // A disk is redundant if any already-kept (smaller) disk lies inside it.
    const bool redundant =
        std::any_of(kept.begin(), kept.end(), [&](const Disk& smaller) {
          return smaller.inside(candidate);
        });
    if (!redundant) kept.push_back(candidate);
  }
  return kept;
}

Region intersect_disks(std::span<const Disk> disks,
                       const RegionOptions& options) {
  return intersect_disks_impl(disks, options, /*use_cover=*/true);
}

Region intersect_disks_reference(std::span<const Disk> disks,
                                 const RegionOptions& options) {
  return intersect_disks_impl(disks, options, /*use_cover=*/false);
}

bool region_contains(std::span<const Disk> disks, const GeoPoint& p) noexcept {
  return std::all_of(disks.begin(), disks.end(),
                     [&](const Disk& d) { return d.contains(p); });
}

}  // namespace geoloc::geo
