// Intersection of spherical disks — the CBG feasible region.
//
// CBG estimates a target's position as the centroid of the intersection of
// the constraint disks (one per vantage point). Exact spherical
// disk-intersection polygons are expensive and fragile; following the
// design note in DESIGN.md we (1) prune dominated disks, then (2) sample
// the smallest remaining disk on a two-level polar grid and average the
// feasible samples. Resolution is configurable; the defaults keep Figure 2a's
// ~723k CBG evaluations tractable with sub-kilometre centroid error.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geo/disk.h"
#include "geo/geopoint.h"

namespace geoloc::geo {

/// Sampling resolution for the region centroid estimator.
struct RegionOptions {
  int rings = 12;       ///< radial subdivisions of the seed disk
  int sectors = 24;     ///< angular subdivisions per ring
  int refine_levels = 1;  ///< extra passes zooming into the feasible set
};

/// Result of intersecting a set of constraint disks.
struct Region {
  bool empty = true;            ///< no feasible point found
  GeoPoint centroid;            ///< centroid of the feasible samples
  double radius_km = 0.0;       ///< max distance from centroid to a feasible sample
  double area_km2 = 0.0;        ///< Monte-Carlo style area estimate
  std::vector<GeoPoint> samples;  ///< feasible sample points (for tier 2 reuse)

  /// A region degenerates to a point when a single sample survived.
  [[nodiscard]] bool degenerate() const noexcept { return samples.size() <= 1; }
};

/// Remove dominated constraints: any disk that fully contains another disk
/// of the set adds nothing to the intersection. Returns the surviving disks
/// sorted by ascending radius. O(k * n) where k is the survivor count — in
/// practice a handful out of thousands.
std::vector<Disk> prune_dominated(std::span<const Disk> disks);

/// Intersect `disks` and estimate the feasible region.
/// An empty input yields an empty region.
///
/// The polar sampling grid is routed through spatial:: coverings: the
/// window disk is covered with hierarchy cells, each cell is classified
/// against every constraint once (provably-outside / provably-inside /
/// boundary), and each grid point then tests only its cell's boundary
/// constraints. Classification uses the covering's conservative bounds, so
/// the feasible set — and therefore every Region field — is byte-identical
/// to the direct all-constraints scan (intersect_disks_reference; pinned
/// by tests/spatial_region_grid_test.cpp).
Region intersect_disks(std::span<const Disk> disks,
                       const RegionOptions& options = {});

/// The pre-covering reference implementation: every grid point tests every
/// constraint disk directly. Kept as the byte-identity oracle for the
/// covering-routed grid; not for production use.
Region intersect_disks_reference(std::span<const Disk> disks,
                                 const RegionOptions& options = {});

/// True when `p` satisfies every constraint.
bool region_contains(std::span<const Disk> disks, const GeoPoint& p) noexcept;

}  // namespace geoloc::geo
