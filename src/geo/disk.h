// Spherical disks ("small circles"): the constraint primitive of CBG.
// A vantage point with RTT r to the target constrains the target to the
// disk centred at the VP with radius rtt_to_max_distance_km(r).
#pragma once

#include "geo/geodesy.h"
#include "geo/geopoint.h"

namespace geoloc::geo {

/// A closed disk on the sphere: all points within `radius_km` great-circle
/// kilometres of `center`.
struct Disk {
  GeoPoint center;
  double radius_km = 0.0;

  [[nodiscard]] bool contains(const GeoPoint& p) const noexcept {
    return distance_km(center, p) <= radius_km;
  }

  /// True when this disk lies entirely inside `other`, making `other`
  /// redundant as an intersection constraint.
  [[nodiscard]] bool inside(const Disk& other) const noexcept {
    return distance_km(center, other.center) + radius_km <= other.radius_km;
  }

  /// True when the two disks share no point.
  [[nodiscard]] bool disjoint(const Disk& other) const noexcept {
    return distance_km(center, other.center) > radius_km + other.radius_km;
  }
};

}  // namespace geoloc::geo
