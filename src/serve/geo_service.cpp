#include "serve/geo_service.h"

#include <algorithm>
#include <utility>

#include "geo/geodesy.h"
#include "util/env.h"

namespace geoloc::serve {

namespace {

/// Queue-dedup key: network in the high bits, length below.
std::uint64_t prefix_key(const net::Prefix& p) noexcept {
  return (static_cast<std::uint64_t>(p.network().value()) << 8) |
         static_cast<std::uint64_t>(p.length());
}

std::uint64_t next_service_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread snapshot cache: valid while (service, epoch) both match.
struct TlsSnapshotCache {
  std::uint64_t service_id = 0;
  std::uint64_t epoch = 0;
  std::shared_ptr<const publish::Snapshot> snap;
};
thread_local TlsSnapshotCache tls_snapshot_cache;

/// Process-wide serving series on the obs registry, bumped alongside the
/// per-instance counters (both are striped relaxed adds; together they
/// cost two uncontended cache-line writes per lookup).
struct ServeSeries {
  obs::Counter& lookups;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& stale_hits;
  obs::Counter& snapshot_swaps;
  obs::Counter& ttl_scans;    ///< stale_prefixes() sweeps
  obs::Counter& ttl_expired;  ///< entries found past their TTL by a sweep
  obs::Counter& remeasure_dropped;  ///< pushes shed at the queue cap
};

ServeSeries& serve_series() {
  static auto& reg = obs::Registry::instance();
  static ServeSeries s{reg.counter("serve.lookups"),
                       reg.counter("serve.hits"),
                       reg.counter("serve.misses"),
                       reg.counter("serve.stale_hits"),
                       reg.counter("serve.snapshot_swaps"),
                       reg.counter("serve.ttl_scans"),
                       reg.counter("serve.ttl_expired"),
                       reg.counter("serve.remeasure_dropped")};
  return s;
}

std::size_t remeasure_cap_from_env() {
  // int_or rejects non-positive values, so "0" (= unbounded) must be an
  // explicit opt-in via the ctor argument, not an env typo.
  return static_cast<std::size_t>(
      util::env::int_or("GEOLOC_SERVE_REMEASURE_CAP", 65536));
}

}  // namespace

// -- RemeasureQueue --------------------------------------------------------

RemeasureQueue::RemeasureQueue() : cap_(remeasure_cap_from_env()) {}

RemeasureQueue::RemeasureQueue(std::size_t max_pending) : cap_(max_pending) {}

bool RemeasureQueue::push(net::Prefix prefix) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Dedup first: a re-push of a pending prefix is not a drop.
  if (pending_.contains(prefix_key(prefix))) return false;
  if (cap_ != 0 && queue_.size() >= cap_) {
    dropped_.add();
    serve_series().remeasure_dropped.add();
    return false;
  }
  pending_.insert(prefix_key(prefix));
  queue_.push_back(prefix);
  return true;
}

std::vector<net::Prefix> RemeasureQueue::drain() {
  const std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  return std::exchange(queue_, {});
}

std::size_t RemeasureQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

// -- GeoService ------------------------------------------------------------

GeoService::GeoService(std::shared_ptr<const publish::Snapshot> initial)
    : service_id_(next_service_id()), snapshot_(std::move(initial)) {}

void GeoService::publish(std::shared_ptr<const publish::Snapshot> snapshot) {
  {
    const std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
  }
  // Bumped after the store: a reader that sees the new epoch refreshes its
  // cache and (through the mutex) sees at least this snapshot.
  epoch_.fetch_add(1, std::memory_order_release);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  serve_series().snapshot_swaps.add();
}

bool GeoService::publish_from_file(const std::string& path,
                                   std::string* error) {
  // Snapshot::load validates before a byte is served and quarantines a
  // corrupt file (renames it to `<path>.corrupt`, util/durable.h): on
  // false the currently served version keeps serving untouched, and the
  // caller's republish lands on a clean path.
  auto snap = publish::Snapshot::load(path, error);
  if (!snap) return false;
  publish(std::move(snap));
  return true;
}

std::shared_ptr<const publish::Snapshot> GeoService::current() const {
  const std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

const std::shared_ptr<const publish::Snapshot>& GeoService::cached_snapshot()
    const {
  // Read the epoch before the (mutex-guarded, cold) snapshot fetch: if
  // another publish lands in between we cache a newer snapshot under the
  // older epoch and simply revalidate on the next lookup.
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  TlsSnapshotCache& cache = tls_snapshot_cache;
  if (cache.service_id != service_id_ || cache.epoch != epoch) {
    cache.snap = current();
    cache.service_id = service_id_;
    cache.epoch = epoch;
  }
  return cache.snap;
}

Answer GeoService::answer_from(
    const std::shared_ptr<const publish::Snapshot>& snap,
    net::IPv4Address address, double now_s) const {
  ServeSeries& series = serve_series();
  counters_.lookups.add();
  series.lookups.add();
  Answer a;
  if (!snap) {
    counters_.misses.add();
    series.misses.add();
    return a;
  }
  const auto hit = snap->find(address);
  if (!hit) {
    counters_.misses.add();
    series.misses.add();
    return a;
  }
  counters_.hits.add();
  series.hits.add();
  a.found = true;
  a.prefix = hit->prefix;
  a.location = hit->location;
  a.method = hit->method;
  a.tier = hit->tier;
  a.confidence_radius_km = hit->confidence_radius_km;
  a.provenance = hit->provenance;
  a.age_s = hit->age_s(now_s);
  a.dataset_version = snap->dataset_version();
  a.source = snap;
  if (hit->stale_at(now_s)) {
    a.stale = true;
    counters_.stale_hits.add();
    series.stale_hits.add();
    queue_.push(hit->prefix);
  }
  return a;
}

Answer GeoService::lookup(net::IPv4Address address, double now_s) const {
  return answer_from(cached_snapshot(), address, now_s);
}

void GeoService::lookup_batch(std::span<const net::IPv4Address> addresses,
                              double now_s, std::span<Answer> out) const {
  const auto& snap = cached_snapshot();
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    out[i] = answer_from(snap, addresses[i], now_s);
  }
}

ServiceStats GeoService::stats() const {
  ServiceStats s;
  s.lookups = counters_.lookups.value();
  s.hits = counters_.hits.value();
  s.misses = counters_.misses.value();
  s.stale_hits = counters_.stale_hits.value();
  s.swaps = swaps_.load(std::memory_order_relaxed);
  return s;
}

std::vector<net::Prefix> GeoService::stale_prefixes(double now_s) const {
  std::vector<net::Prefix> out;
  const auto snap = current();
  if (!snap) return out;
  for (std::size_t i = 0; i < snap->size(); ++i) {
    const publish::SnapshotEntry e = snap->entry(i);
    if (e.stale_at(now_s)) out.push_back(e.prefix);
  }
  ServeSeries& series = serve_series();
  series.ttl_scans.add();
  series.ttl_expired.add(out.size());
  return out;
}

// -- re-measurement bridge -------------------------------------------------

std::vector<atlas::MeasurementRequest> plan_remeasurement(
    const scenario::Scenario& s, std::span<const net::Prefix> stale,
    std::size_t vps_per_target, int packets) {
  return plan_remeasurement(s, stale, std::span<const sim::HostId>(s.vps()),
                            vps_per_target, packets);
}

std::vector<atlas::MeasurementRequest> plan_remeasurement(
    const scenario::Scenario& s, std::span<const net::Prefix> stale,
    std::span<const sim::HostId> vps, std::size_t vps_per_target,
    int packets) {
  std::vector<atlas::MeasurementRequest> requests;
  if (vps.empty() || stale.empty()) return requests;
  const std::size_t k =
      vps_per_target == 0 ? vps.size() : std::min(vps_per_target, vps.size());
  for (const net::Prefix& prefix : stale) {
    for (std::size_t col = 0; col < s.targets().size(); ++col) {
      const sim::HostId target = s.targets()[col];
      if (!prefix.contains(s.world().host(target).addr)) continue;
      // Spread the VPs deterministically: stride through the VP set from a
      // per-target offset so successive targets reuse different VPs.
      const std::size_t stride = vps.size() / k ? vps.size() / k : 1;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t row = (col + j * stride) % vps.size();
        requests.push_back(atlas::MeasurementRequest{
            .vp = vps[row],
            .target = target,
            .kind = atlas::MeasurementKind::Ping,
            .packets = packets});
      }
    }
  }
  return requests;
}

std::vector<atlas::MeasurementRequest> plan_remeasurement(
    const scenario::Scenario& s, std::span<const net::Prefix> stale,
    const publish::Snapshot& prior, std::span<const sim::HostId> vps,
    std::size_t vps_per_target, int packets) {
  std::vector<atlas::MeasurementRequest> requests;
  if (vps.empty() || stale.empty()) return requests;
  const std::size_t k =
      vps_per_target == 0 ? vps.size() : std::min(vps_per_target, vps.size());
  // (distance to the prior estimate, pool index): recomputed per prefix,
  // tie-broken by pool order so the plan is bit-stable.
  std::vector<std::pair<double, std::size_t>> ranked(vps.size());
  for (const net::Prefix& prefix : stale) {
    const auto hit = prior.find(prefix.network());
    for (std::size_t col = 0; col < s.targets().size(); ++col) {
      const sim::HostId target = s.targets()[col];
      if (!prefix.contains(s.world().host(target).addr)) continue;
      if (!hit) {
        // No prior estimate (a prefix new to the dataset): stride spread.
        const std::size_t stride = vps.size() / k ? vps.size() / k : 1;
        for (std::size_t j = 0; j < k; ++j) {
          requests.push_back(atlas::MeasurementRequest{
              .vp = vps[(col + j * stride) % vps.size()],
              .target = target,
              .kind = atlas::MeasurementKind::Ping,
              .packets = packets});
        }
        continue;
      }
      // Guard VPs: a quarter of the budget stays globally spread so a
      // prefix that moved continents since `prior` still gets constraints
      // near its *new* home; without them every selected VP sits near the
      // stale estimate and the fix can't escape it.
      const std::size_t guards = k > 1 ? std::max<std::size_t>(1, k / 4) : 0;
      std::vector<std::size_t> rows;
      rows.reserve(k);
      const std::size_t stride = vps.size() / k ? vps.size() / k : 1;
      for (std::size_t j = 0; j < guards; ++j) {
        const std::size_t row = (col + j * stride) % vps.size();
        if (std::find(rows.begin(), rows.end(), row) == rows.end()) {
          rows.push_back(row);
        }
      }
      for (std::size_t row = 0; row < vps.size(); ++row) {
        ranked[row] = {geo::distance_km(
                           s.world().host(vps[row]).reported_location,
                           hit->location),
                       row};
      }
      std::sort(ranked.begin(), ranked.end());
      for (std::size_t j = 0; j < vps.size() && rows.size() < k; ++j) {
        const std::size_t row = ranked[j].second;
        if (std::find(rows.begin(), rows.end(), row) == rows.end()) {
          rows.push_back(row);
        }
      }
      for (const std::size_t row : rows) {
        requests.push_back(atlas::MeasurementRequest{
            .vp = vps[row],
            .target = target,
            .kind = atlas::MeasurementKind::Ping,
            .packets = packets});
      }
    }
  }
  return requests;
}

}  // namespace geoloc::serve
