#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace geoloc::serve::wire {

using util::durable::PayloadReader;
using util::durable::PayloadWriter;

std::string_view to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::Malformed: return "malformed";
    case ErrorCode::FrameTooLarge: return "frame-too-large";
    case ErrorCode::UnknownType: return "unknown-type";
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::BatchTooLarge: return "batch-too-large";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Draining: return "draining";
  }
  return "unknown-error";
}

// -- FrameDecoder ----------------------------------------------------------

void FrameDecoder::feed(std::span<const std::byte> bytes) {
  if (poisoned_) return;  // stream is dead, don't buffer unbounded garbage
  // Compact before growing: consumed bytes at the front are dead weight.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Status FrameDecoder::next(std::span<const std::byte>* payload) {
  if (poisoned_) return Status::TooLarge;
  if (buffered() < kFramePrefixBytes) return Status::NeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof len);
  if (len > max_payload_) {
    poisoned_ = true;
    return Status::TooLarge;
  }
  if (buffered() < kFramePrefixBytes + len) return Status::NeedMore;
  *payload = std::span<const std::byte>(buf_.data() + pos_ + kFramePrefixBytes,
                                        len);
  pos_ += kFramePrefixBytes + len;
  return Status::Frame;
}

// -- encoding helpers ------------------------------------------------------

void append_frame(std::vector<std::byte>& out,
                  std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::size_t base = out.size();
  out.resize(base + kFramePrefixBytes + payload.size());
  std::memcpy(out.data() + base, &len, sizeof len);
  std::memcpy(out.data() + base + kFramePrefixBytes, payload.data(),
              payload.size());
}

namespace {

void payload_header(PayloadWriter& w, MsgType type, std::uint32_t request_id) {
  w.pod(static_cast<std::uint8_t>(type));
  w.pod(request_id);
}

std::vector<std::byte> frame_of(const PayloadWriter& w) {
  std::vector<std::byte> out;
  append_frame(out, w.data());
  return out;
}

void append_answer(PayloadWriter& w, const Answer& a) {
  std::uint8_t flags = 0;
  if (a.found) flags |= 1u;
  if (a.stale) flags |= 2u;
  w.pod(flags);
  w.pod(a.prefix.network().value());
  w.pod(static_cast<std::uint8_t>(a.prefix.length()));
  w.pod(static_cast<std::uint8_t>(a.method));
  w.pod(static_cast<std::uint8_t>(a.tier));
  w.pod(a.location.lat_deg);
  w.pod(a.location.lon_deg);
  w.pod(a.age_s);
  w.pod(a.confidence_radius_km);
  w.pod(a.dataset_version);
  const std::size_t n = std::min(a.provenance.size(), kMaxWireProvenance);
  w.pod(static_cast<std::uint8_t>(n));
  w.bytes(a.provenance.data(), n);
}

[[nodiscard]] bool read_answer(PayloadReader& r, WireAnswer* a) {
  std::uint8_t flags = 0;
  std::uint32_t network = 0;
  std::uint8_t prefix_len = 0;
  if (!r.pod(flags) || !r.pod(network) || !r.pod(prefix_len) ||
      !r.pod(a->method) || !r.pod(a->tier) || !r.pod(a->lat_deg) ||
      !r.pod(a->lon_deg) || !r.pod(a->age_s) ||
      !r.pod(a->confidence_radius_km) || !r.pod(a->dataset_version)) {
    return false;
  }
  if (prefix_len > 32) return false;
  a->found = (flags & 1u) != 0;
  a->stale = (flags & 2u) != 0;
  a->prefix = net::Prefix{net::IPv4Address{network}, prefix_len};
  std::uint8_t prov_len = 0;
  if (!r.pod(prov_len)) return false;
  a->provenance.resize(prov_len);
  return prov_len == 0 || r.bytes(a->provenance.data(), prov_len);
}

}  // namespace

// -- request encode/parse --------------------------------------------------

std::vector<std::byte> encode_lookup_request(std::uint32_t request_id,
                                             net::IPv4Address address,
                                             double now_s) {
  PayloadWriter w;
  payload_header(w, MsgType::LookupReq, request_id);
  w.pod(address.value());
  w.pod(now_s);
  return frame_of(w);
}

std::vector<std::byte> encode_batch_request(
    std::uint32_t request_id, std::span<const net::IPv4Address> addresses,
    double now_s) {
  PayloadWriter w;
  payload_header(w, MsgType::BatchReq, request_id);
  w.pod(now_s);
  w.pod(static_cast<std::uint32_t>(addresses.size()));
  for (const auto a : addresses) w.pod(a.value());
  return frame_of(w);
}

std::vector<std::byte> encode_info_request(std::uint32_t request_id) {
  PayloadWriter w;
  payload_header(w, MsgType::InfoReq, request_id);
  return frame_of(w);
}

std::vector<std::byte> encode_stats_request(std::uint32_t request_id) {
  PayloadWriter w;
  payload_header(w, MsgType::StatsReq, request_id);
  return frame_of(w);
}

ParseStatus parse_request(std::span<const std::byte> payload,
                          std::size_t max_batch, Request* out) {
  *out = Request{};
  PayloadReader r(payload);
  std::uint8_t type = 0;
  if (!r.pod(type) || !r.pod(out->request_id)) return ParseStatus::Malformed;
  switch (static_cast<MsgType>(type)) {
    case MsgType::LookupReq: {
      out->type = MsgType::LookupReq;
      std::uint32_t addr = 0;
      if (!r.pod(addr) || !r.pod(out->now_s) || !r.exhausted()) {
        return ParseStatus::Malformed;
      }
      out->address = net::IPv4Address{addr};
      return ParseStatus::Ok;
    }
    case MsgType::BatchReq: {
      out->type = MsgType::BatchReq;
      std::uint32_t count = 0;
      if (!r.pod(out->now_s) || !r.pod(count)) return ParseStatus::Malformed;
      // The declared count must match the bytes actually present before
      // any allocation happens — a lying header cannot size a vector.
      if (r.remaining() != static_cast<std::size_t>(count) * 4) {
        return ParseStatus::Malformed;
      }
      if (count > max_batch) return ParseStatus::BatchTooLarge;
      out->addresses.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t addr = 0;
        if (!r.pod(addr)) return ParseStatus::Malformed;
        out->addresses.emplace_back(addr);
      }
      return ParseStatus::Ok;
    }
    case MsgType::InfoReq:
      out->type = MsgType::InfoReq;
      return r.exhausted() ? ParseStatus::Ok : ParseStatus::Malformed;
    case MsgType::StatsReq:
      out->type = MsgType::StatsReq;
      return r.exhausted() ? ParseStatus::Ok : ParseStatus::Malformed;
    default:
      return ParseStatus::UnknownType;
  }
}

// -- reply encode/parse ----------------------------------------------------

void encode_error(std::vector<std::byte>& out, std::uint32_t request_id,
                  ErrorCode code) {
  PayloadWriter w;
  payload_header(w, MsgType::ErrorReply, request_id);
  w.pod(static_cast<std::uint8_t>(code));
  append_frame(out, w.data());
}

void encode_lookup_reply(std::vector<std::byte>& out,
                         std::uint32_t request_id, const Answer& answer) {
  PayloadWriter w;
  payload_header(w, MsgType::LookupReply, request_id);
  append_answer(w, answer);
  append_frame(out, w.data());
}

void encode_batch_reply(std::vector<std::byte>& out, std::uint32_t request_id,
                        std::span<const Answer> answers) {
  PayloadWriter w;
  payload_header(w, MsgType::BatchReply, request_id);
  w.pod(static_cast<std::uint32_t>(answers.size()));
  for (const Answer& a : answers) append_answer(w, a);
  append_frame(out, w.data());
}

void encode_info_reply(std::vector<std::byte>& out, std::uint32_t request_id,
                       const InfoReply& info) {
  PayloadWriter w;
  payload_header(w, MsgType::InfoReply, request_id);
  w.pod(static_cast<std::uint8_t>(info.has_snapshot ? 1 : 0));
  w.pod(static_cast<std::uint8_t>(info.draining ? 1 : 0));
  w.pod(info.dataset_version);
  w.pod(info.created_at_s);
  w.pod(info.entries);
  w.pod(info.swaps);
  w.pod(info.remeasure_depth);
  w.pod(info.remeasure_dropped);
  append_frame(out, w.data());
}

void encode_stats_reply(std::vector<std::byte>& out, std::uint32_t request_id,
                        const StatsReply& s) {
  PayloadWriter w;
  payload_header(w, MsgType::StatsReply, request_id);
  w.pod(s.lookups);
  w.pod(s.hits);
  w.pod(s.misses);
  w.pod(s.stale_hits);
  w.pod(s.swaps);
  w.pod(s.conns_accepted);
  w.pod(s.conns_shed);
  w.pod(s.frames);
  w.pod(s.malformed);
  w.pod(s.shed_requests);
  w.pod(s.deadline_closed);
  append_frame(out, w.data());
}

bool parse_reply(std::span<const std::byte> payload, Reply* out) {
  *out = Reply{};
  PayloadReader r(payload);
  std::uint8_t type = 0;
  if (!r.pod(type) || !r.pod(out->request_id)) return false;
  switch (static_cast<MsgType>(type)) {
    case MsgType::LookupReply:
      out->type = MsgType::LookupReply;
      return read_answer(r, &out->answer) && r.exhausted();
    case MsgType::BatchReply: {
      out->type = MsgType::BatchReply;
      std::uint32_t count = 0;
      if (!r.pod(count)) return false;
      // Bounded by the payload itself: each answer is >= 40 bytes.
      if (static_cast<std::size_t>(count) * 40 > r.remaining() + 40) {
        return false;
      }
      out->batch.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!read_answer(r, &out->batch[i])) return false;
      }
      return r.exhausted();
    }
    case MsgType::InfoReply: {
      out->type = MsgType::InfoReply;
      std::uint8_t has_snapshot = 0;
      std::uint8_t draining = 0;
      InfoReply& info = out->info;
      if (!r.pod(has_snapshot) || !r.pod(draining) ||
          !r.pod(info.dataset_version) || !r.pod(info.created_at_s) ||
          !r.pod(info.entries) || !r.pod(info.swaps) ||
          !r.pod(info.remeasure_depth) || !r.pod(info.remeasure_dropped) ||
          !r.exhausted()) {
        return false;
      }
      info.has_snapshot = has_snapshot != 0;
      info.draining = draining != 0;
      return true;
    }
    case MsgType::StatsReply: {
      out->type = MsgType::StatsReply;
      StatsReply& s = out->stats;
      return r.pod(s.lookups) && r.pod(s.hits) && r.pod(s.misses) &&
             r.pod(s.stale_hits) && r.pod(s.swaps) &&
             r.pod(s.conns_accepted) && r.pod(s.conns_shed) &&
             r.pod(s.frames) && r.pod(s.malformed) &&
             r.pod(s.shed_requests) && r.pod(s.deadline_closed) &&
             r.exhausted();
    }
    case MsgType::ErrorReply: {
      out->type = MsgType::ErrorReply;
      std::uint8_t code = 0;
      if (!r.pod(code) || !r.exhausted()) return false;
      out->error = static_cast<ErrorCode>(code);
      return true;
    }
    default:
      return false;
  }
}

// -- TcpClient -------------------------------------------------------------

TcpClient::~TcpClient() { close(); }

TcpClient::TcpClient(TcpClient&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

TcpClient& TcpClient::operator=(TcpClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

bool TcpClient::connect(std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  decoder_ = FrameDecoder{};
  return true;
}

bool TcpClient::send_raw(std::span<const std::byte> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpClient::send_frame(std::span<const std::byte> payload) {
  std::vector<std::byte> frame;
  append_frame(frame, payload);
  return send_raw(frame);
}

bool TcpClient::recv_reply(Reply* out, int timeout_ms, bool* eof) {
  if (eof) *eof = false;
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  std::byte chunk[16384];
  for (;;) {
    std::span<const std::byte> payload;
    const FrameDecoder::Status st = decoder_.next(&payload);
    if (st == FrameDecoder::Status::Frame) {
      return parse_reply(payload, out);
    }
    if (st == FrameDecoder::Status::TooLarge) return false;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return false;
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      if (eof) *eof = true;
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (eof) *eof = true;  // RST and friends count as closed
      return false;
    }
    decoder_.feed(std::span<const std::byte>(chunk,
                                             static_cast<std::size_t>(n)));
  }
}

bool TcpClient::recv_eof(int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  std::byte chunk[4096];
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return false;
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return true;
    if (n < 0) {
      if (errno == EINTR) continue;
      return true;  // connection error (e.g. RST) == closed
    }
    // Drain and discard pending replies until the close arrives.
  }
}

void TcpClient::shutdown_write() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

void TcpClient::reset() {
  if (fd_ < 0) return;
  linger lg{1, 0};
  (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  close();
}

void TcpClient::close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace geoloc::serve::wire
