// The serving wire protocol: a small length-prefixed, pipelined binary
// format over TCP, designed so that *no sequence of bytes a client can
// send crashes, hangs, or confuses the server* (DESIGN.md §12).
//
// Frame layout (all integers little-endian):
//
//   frame   := u32 payload_len || payload        payload_len <= max frame
//   payload := u8 msg_type || u32 request_id || body
//
// Requests                         Replies
//   0x01 Lookup  {u32 addr, f64 now}   0x81 LookupReply {wire answer}
//   0x02 Batch   {f64 now, u32 n,      0x82 BatchReply  {u32 n, n answers}
//                 n x u32 addr}
//   0x03 Info    {}                    0x83 InfoReply   {snapshot/staleness}
//   0x04 Stats   {}                    0x84 StatsReply  {service+net counters}
//                                      0xEE ErrorReply  {u8 code}
//
// Defense-in-depth rules, shared by server and client:
//   * The decoder is incremental and strictly bounds-checked: bytes are
//     buffered until a whole frame is present; a length prefix above the
//     configured maximum poisons the stream (framing is unrecoverable)
//     and surfaces as a typed TooLarge status, never an allocation.
//   * Body parsing reuses the util/durable bounds-checked PayloadReader:
//     a short body, trailing junk, or an over-declared batch count is a
//     typed Malformed/BatchTooLarge error reply — the frame boundary is
//     still trusted, so the connection survives semantic garbage.
//   * Every reply echoes the request id (0 when the id itself could not
//     be parsed), so pipelined clients can always re-associate replies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "serve/geo_service.h"
#include "util/durable.h"

namespace geoloc::serve::wire {

/// Hard ceiling on a frame payload unless a config lowers it. Large enough
/// for a max-batch reply, small enough that no client controls allocation.
inline constexpr std::uint32_t kDefaultMaxFramePayload = 1u << 20;

/// Provenance strings are capped on the wire (u8 length) so a max-size
/// batch reply stays under the frame ceiling.
inline constexpr std::size_t kMaxWireProvenance = 255;

inline constexpr std::size_t kFramePrefixBytes = 4;  ///< the u32 length
inline constexpr std::size_t kPayloadHeaderBytes = 5;  ///< type + request id

enum class MsgType : std::uint8_t {
  LookupReq = 0x01,
  BatchReq = 0x02,
  InfoReq = 0x03,
  StatsReq = 0x04,
  LookupReply = 0x81,
  BatchReply = 0x82,
  InfoReply = 0x83,
  StatsReply = 0x84,
  ErrorReply = 0xEE,
};

/// Typed error replies. Fatal codes (FrameTooLarge) are followed by a
/// close because framing is lost; the rest keep the connection alive.
enum class ErrorCode : std::uint8_t {
  Malformed = 1,      ///< short/overlong body inside an intact frame
  FrameTooLarge = 2,  ///< length prefix above the maximum (fatal)
  UnknownType = 3,    ///< unrecognised msg_type
  BadRequest = 4,     ///< well-formed but semantically invalid
  BatchTooLarge = 5,  ///< batch count above the server limit
  Overloaded = 6,     ///< admission control / load shedding
  Draining = 7,       ///< server is shutting down gracefully
};
std::string_view to_string(ErrorCode c) noexcept;

// -- incremental frame decoder ---------------------------------------------

/// Accumulates raw bytes and yields complete frame payloads. Strictly
/// bounds-checked: an oversized length prefix poisons the decoder (every
/// later next() reports TooLarge) because the byte stream can no longer
/// be re-synchronised.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::byte> bytes);

  enum class Status : std::uint8_t {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< *payload points at the next frame (valid until feed())
    TooLarge,  ///< poisoned: length prefix exceeded the maximum
  };
  Status next(std::span<const std::byte>* payload);

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  std::size_t max_payload_;
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

// -- requests --------------------------------------------------------------

struct Request {
  MsgType type = MsgType::LookupReq;
  std::uint32_t request_id = 0;
  // LookupReq / BatchReq
  double now_s = 0.0;
  net::IPv4Address address;                  ///< LookupReq
  std::vector<net::IPv4Address> addresses;   ///< BatchReq
};

enum class ParseStatus : std::uint8_t {
  Ok,
  Malformed,
  UnknownType,
  BatchTooLarge,
};

/// Parse one frame payload into a request. On Malformed the request id is
/// still recovered when at least the payload header was present.
ParseStatus parse_request(std::span<const std::byte> payload,
                          std::size_t max_batch, Request* out);

std::vector<std::byte> encode_lookup_request(std::uint32_t request_id,
                                             net::IPv4Address address,
                                             double now_s);
std::vector<std::byte> encode_batch_request(
    std::uint32_t request_id, std::span<const net::IPv4Address> addresses,
    double now_s);
std::vector<std::byte> encode_info_request(std::uint32_t request_id);
std::vector<std::byte> encode_stats_request(std::uint32_t request_id);

// -- replies ---------------------------------------------------------------

/// One geolocation answer as it travels on the wire.
struct WireAnswer {
  bool found = false;
  bool stale = false;
  net::Prefix prefix;
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double age_s = 0.0;
  float confidence_radius_km = 0.0f;
  std::uint8_t method = 0;
  std::uint8_t tier = 0;
  std::uint32_t dataset_version = 0;
  std::string provenance;
};

struct InfoReply {
  bool has_snapshot = false;
  bool draining = false;
  std::uint32_t dataset_version = 0;
  double created_at_s = 0.0;
  std::uint64_t entries = 0;
  std::uint64_t swaps = 0;
  std::uint64_t remeasure_depth = 0;    ///< stale-prefix queue depth
  std::uint64_t remeasure_dropped = 0;  ///< dropped at the queue cap
};

struct StatsReply {
  // serve::ServiceStats
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_hits = 0;
  std::uint64_t swaps = 0;
  // server-side counters
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_shed = 0;
  std::uint64_t frames = 0;
  std::uint64_t malformed = 0;
  std::uint64_t shed_requests = 0;
  std::uint64_t deadline_closed = 0;
};

struct Reply {
  MsgType type = MsgType::ErrorReply;
  std::uint32_t request_id = 0;
  WireAnswer answer;               ///< LookupReply
  std::vector<WireAnswer> batch;   ///< BatchReply
  InfoReply info;                  ///< InfoReply
  StatsReply stats;                ///< StatsReply
  ErrorCode error = ErrorCode::Malformed;  ///< ErrorReply
};

/// Parse one frame payload into a reply (client side). False on any
/// malformed byte — the client treats that as a protocol error and closes.
[[nodiscard]] bool parse_reply(std::span<const std::byte> payload,
                               Reply* out);

/// Server-side encoders append one complete frame to `out`.
void encode_error(std::vector<std::byte>& out, std::uint32_t request_id,
                  ErrorCode code);
void encode_lookup_reply(std::vector<std::byte>& out,
                         std::uint32_t request_id, const Answer& answer);
void encode_batch_reply(std::vector<std::byte>& out, std::uint32_t request_id,
                        std::span<const Answer> answers);
void encode_info_reply(std::vector<std::byte>& out, std::uint32_t request_id,
                       const InfoReply& info);
void encode_stats_reply(std::vector<std::byte>& out, std::uint32_t request_id,
                        const StatsReply& stats);

/// Append `payload` to `out` as one length-prefixed frame.
void append_frame(std::vector<std::byte>& out,
                  std::span<const std::byte> payload);

// -- blocking client -------------------------------------------------------

/// Minimal blocking client over the wire protocol, used by the examples,
/// the chaos harness and the load-generator bench. Not a production
/// client: one socket, synchronous, millisecond-deadline reads.
class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(TcpClient&& other) noexcept;
  TcpClient& operator=(TcpClient&& other) noexcept;
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connect to 127.0.0.1:port. False (with *error) on failure.
  bool connect(std::uint16_t port, std::string* error = nullptr);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Send raw bytes (whole-buffer, retrying short writes). False once the
  /// peer has closed.
  bool send_raw(std::span<const std::byte> bytes);
  /// Frame `payload` and send it.
  bool send_frame(std::span<const std::byte> payload);

  /// Block until one complete reply frame (true), or EOF / timeout /
  /// protocol garbage (false, with `*eof` set when the peer closed).
  bool recv_reply(Reply* out, int timeout_ms = 5000, bool* eof = nullptr);

  /// Block until the peer closes the connection. False on timeout (the
  /// connection is then still open — a deadline that should have fired
  /// did not).
  bool recv_eof(int timeout_ms = 5000);

  /// Half-close: no more requests, but replies still flow.
  void shutdown_write();
  /// Abort the connection with an RST (SO_LINGER 0 + close).
  void reset();
  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace geoloc::serve::wire
