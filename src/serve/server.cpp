#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "obs/log.h"
#include "util/env.h"

namespace geoloc::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Process-wide serving-frontend series, bumped alongside the per-instance
/// counters (same two-striped-adds pattern as serve_series()).
struct NetSeries {
  obs::Counter& conns_accepted;
  obs::Counter& conns_shed;
  obs::Counter& conns_closed;
  obs::Counter& deadline_closed;
  obs::Counter& frames;
  obs::Counter& malformed;
  obs::Counter& shed_requests;
  obs::Counter& req_lookup;
  obs::Counter& req_batch;
  obs::Counter& req_info;
  obs::Counter& req_stats;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Histogram& request_ms;
};

NetSeries& net_series() {
  static auto& reg = obs::Registry::instance();
  static NetSeries s{reg.counter("serve.net.conns_accepted"),
                     reg.counter("serve.net.conns_shed"),
                     reg.counter("serve.net.conns_closed"),
                     reg.counter("serve.net.deadline_closed"),
                     reg.counter("serve.net.frames"),
                     reg.counter("serve.net.malformed"),
                     reg.counter("serve.net.shed_requests"),
                     reg.counter("serve.net.req.lookup"),
                     reg.counter("serve.net.req.batch"),
                     reg.counter("serve.net.req.info"),
                     reg.counter("serve.net.req.stats"),
                     reg.counter("serve.net.bytes_in"),
                     reg.counter("serve.net.bytes_out"),
                     reg.histogram("serve.net.request_ms")};
  return s;
}

int clamped_env_ms(const char* name, int fallback) {
  // Deadlines are positive and bounded to a minute: a knob typo must not
  // configure a server whose slowloris defense never fires.
  return std::min(util::env::int_or(name, fallback), 60'000);
}

}  // namespace

// -- config ----------------------------------------------------------------

ServerConfig ServerConfig::from_env() {
  namespace env = util::env;
  ServerConfig c;
  const int port = env::int_or("GEOLOC_SERVE_PORT", 0);
  if (port > 65535) {
    obs::warn_once("GEOLOC_SERVE_PORT-range",
                   "GEOLOC_SERVE_PORT=" + std::to_string(port) +
                       " is not a TCP port; using an ephemeral port");
  } else if (port > 0) {
    c.port = static_cast<std::uint16_t>(port);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned default_workers = std::min(hw > 0 ? hw : 1u, 4u);
  c.workers = std::min(
      static_cast<unsigned>(env::int_or("GEOLOC_SERVE_THREADS",
                                        static_cast<int>(default_workers))),
      env::max_threads());
  c.max_connections =
      static_cast<std::size_t>(env::int_or("GEOLOC_SERVE_MAX_CONNS", 1024));
  c.max_batch =
      static_cast<std::size_t>(env::int_or("GEOLOC_SERVE_MAX_BATCH", 2048));
  c.read_deadline_ms = clamped_env_ms("GEOLOC_SERVE_READ_DEADLINE_MS", 5000);
  c.write_deadline_ms = clamped_env_ms("GEOLOC_SERVE_WRITE_DEADLINE_MS", 5000);
  c.drain_deadline_ms = clamped_env_ms("GEOLOC_SERVE_DRAIN_MS", 2000);
  c.max_output_queue_bytes =
      static_cast<std::size_t>(env::int_or("GEOLOC_SERVE_MAX_OUTQ", 1 << 20));
  c.max_outstanding_bytes = static_cast<std::size_t>(
      env::int_or("GEOLOC_SERVE_MAX_OUTSTANDING", 8 << 20));
  return c;
}

// -- per-worker timer wheel ------------------------------------------------

/// Hashed timer wheel with lazy deadline validation: connections are
/// scheduled once per *armed* deadline; activity only moves the
/// connection's `deadline` field, and when the wheel entry fires early
/// the connection is simply re-armed for the remainder. O(1) schedule and
/// cancel, O(ticks elapsed) advance.
struct Server::Conn {
  int fd = -1;
  wire::FrameDecoder decoder;
  std::vector<std::byte> out;
  std::size_t out_pos = 0;
  std::uint32_t events = 0;  ///< current epoll interest mask
  bool close_after_flush = false;
  bool paused = false;      ///< EPOLLIN off due to output backpressure
  bool input_done = false;  ///< peer half-closed or server draining
  Clock::time_point deadline;
  // timer-wheel linkage
  Clock::time_point armed_deadline;  ///< deadline the wheel entry was set for
  std::size_t wheel_slot = kNoSlot;
  std::size_t wheel_index = 0;
  std::uint32_t wheel_rounds = 0;

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  explicit Conn(int f, std::size_t max_frame) : fd(f), decoder(max_frame) {}
};

namespace {

class TimerWheel {
 public:
  static constexpr int kTickMs = 10;
  static constexpr std::size_t kSlots = 256;  ///< 2.56 s per revolution

  explicit TimerWheel(Clock::time_point now) : start_(now) {}

  void schedule(Server::Conn* c, Clock::time_point now) {
    cancel(c);
    const auto delta_ms = std::max<std::int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(c->deadline -
                                                              now)
            .count(),
        0);
    const std::uint64_t ticks = 1 + static_cast<std::uint64_t>(delta_ms) /
                                        static_cast<std::uint64_t>(kTickMs);
    const std::uint64_t abs_tick = tick_of(now) + ticks;
    const std::size_t slot = abs_tick % kSlots;
    c->armed_deadline = c->deadline;
    c->wheel_slot = slot;
    c->wheel_rounds = static_cast<std::uint32_t>(ticks / kSlots);
    c->wheel_index = slots_[slot].size();
    slots_[slot].push_back(c);
    ++count_;
  }

  void cancel(Server::Conn* c) {
    if (c->wheel_slot == Server::Conn::kNoSlot) return;
    auto& slot = slots_[c->wheel_slot];
    const std::size_t i = c->wheel_index;
    slot[i] = slot.back();
    slot[i]->wheel_index = i;
    slot.pop_back();
    c->wheel_slot = Server::Conn::kNoSlot;
    --count_;
  }

  /// Append every connection whose slot has come due to *fired (their
  /// wheel entries are removed; the caller validates the real deadline).
  void advance(Clock::time_point now, std::vector<Server::Conn*>* fired) {
    const std::uint64_t target = tick_of(now);
    while (cursor_ < target) {
      ++cursor_;
      auto& slot = slots_[cursor_ % kSlots];
      for (std::size_t i = 0; i < slot.size();) {
        Server::Conn* c = slot[i];
        if (c->wheel_rounds > 0) {
          --c->wheel_rounds;
          ++i;
          continue;
        }
        cancel(c);  // swap-erases slot[i]; do not advance i
        fired->push_back(c);
      }
    }
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  [[nodiscard]] std::uint64_t tick_of(Clock::time_point t) const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(t - start_)
            .count() /
        kTickMs);
  }

  std::vector<Server::Conn*> slots_[kSlots];
  std::uint64_t cursor_ = 0;
  Clock::time_point start_;
  std::size_t count_ = 0;
};

/// Move a connection's deadline `ms` from now. Lazy when it moves later
/// (the armed wheel entry fires early and re-arms for the remainder) but
/// eager when it moves earlier — shortening must reschedule, or a switch
/// from a long read deadline to a short write deadline would not take
/// effect until the stale entry fired.
void arm_deadline(TimerWheel& wheel, Server::Conn& c, int ms) {
  const auto now = Clock::now();
  c.deadline = now + std::chrono::milliseconds(ms);
  if (c.wheel_slot != Server::Conn::kNoSlot && c.deadline < c.armed_deadline) {
    wheel.schedule(&c, now);  // cancels the stale entry first
  }
}

}  // namespace

struct Server::Worker {
  unsigned id = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex mu;
  std::vector<int> incoming;       ///< fds handed off by the acceptor
  std::atomic<bool> shutdown{false};
  bool drain_seen = false;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  TimerWheel wheel{Clock::now()};
  std::vector<Conn*> fired;
  std::vector<Answer> batch_scratch;

  ~Worker() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void wake() const {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof one);
  }
};

// -- lifecycle -------------------------------------------------------------

Server::Server(GeoService& service, ServerConfig config)
    : service_(service), cfg_(config) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.max_frame_bytes < wire::kPayloadHeaderBytes) {
    cfg_.max_frame_bytes = wire::kPayloadHeaderBytes;
  }
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error) *error = std::string(what) + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    workers_.clear();
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    if (error) *error = "server already running";
    return false;
  }
  draining_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  addr.sin_addr.s_addr =
      htonl(cfg_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, cfg_.listen_backlog) != 0) return fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  workers_.clear();
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->id = i;
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (w->epoll_fd < 0) return fail("epoll_create1");
    w->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->wake_fd < 0) return fail("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wake fd
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev) != 0) {
      return fail("epoll_ctl(wake)");
    }
    workers_.push_back(std::move(w));
  }

  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_loop(*worker); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Phase 1: stop accepting.
  draining_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Phase 2: let workers flush queued replies, bounded by the drain
  // deadline (a client that refuses to drain cannot stall shutdown).
  for (auto& w : workers_) w->wake();
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.drain_deadline_ms);
  while (open_conns_.load(std::memory_order_acquire) > 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Phase 3: hard stop.
  for (auto& w : workers_) {
    w->shutdown.store(true, std::memory_order_release);
    w->wake();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  workers_.clear();
  running_.store(false, std::memory_order_release);
}

// -- acceptor --------------------------------------------------------------

void Server::acceptor_loop() {
  // A pre-encoded OVERLOADED error frame, written best-effort to shed
  // connections so they learn *why* instead of seeing a silent close.
  std::vector<std::byte> overloaded_frame;
  wire::encode_error(overloaded_frame, 0, wire::ErrorCode::Overloaded);

  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 50);
    if (pr <= 0) continue;
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN, or a raced-away connection
      if (open_conns_.load(std::memory_order_acquire) >=
          cfg_.max_connections) {
        // Admission control: a typed reply, then close. The frame is 14
        // bytes — it fits any socket buffer, so the non-blocking send
        // only fails when the peer is already gone.
        (void)::send(fd, overloaded_frame.data(), overloaded_frame.size(),
                     MSG_NOSIGNAL);
        ::close(fd);
        counters_.conns_shed.add();
        net_series().conns_shed.add();
        continue;
      }
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      counters_.conns_accepted.add();
      net_series().conns_accepted.add();
      open_conns_.fetch_add(1, std::memory_order_acq_rel);
      Worker& w = *workers_[next_worker_++ % workers_.size()];
      {
        const std::lock_guard<std::mutex> lock(w.mu);
        w.incoming.push_back(fd);
      }
      w.wake();
    }
  }
}

// -- worker ----------------------------------------------------------------

void Server::adopt_connections(Worker& w) {
  std::vector<int> fds;
  {
    const std::lock_guard<std::mutex> lock(w.mu);
    fds.swap(w.incoming);
  }
  const auto now = Clock::now();
  for (const int fd : fds) {
    if (draining_.load(std::memory_order_acquire)) {
      // Handed off just as the drain started: nothing was read yet, so a
      // plain close is the flush.
      ::close(fd);
      open_conns_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    auto conn = std::make_unique<Conn>(fd, cfg_.max_frame_bytes);
    Conn* c = conn.get();
    c->events = EPOLLIN;
    epoll_event ev{};
    ev.events = c->events;
    ev.data.ptr = c;
    if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      open_conns_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    c->deadline = now + std::chrono::milliseconds(cfg_.read_deadline_ms);
    w.wheel.schedule(c, now);
    w.conns.emplace(fd, std::move(conn));
  }
}

void Server::close_conn(Worker& w, Conn& c, bool deadline_expired) {
  w.wheel.cancel(&c);
  (void)::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  const std::size_t unsent = c.out.size() - c.out_pos;
  if (unsent > 0) {
    outstanding_bytes_.fetch_sub(unsent, std::memory_order_acq_rel);
  }
  counters_.conns_closed.add();
  net_series().conns_closed.add();
  if (deadline_expired) {
    counters_.deadline_closed.add();
    net_series().deadline_closed.add();
  }
  const int fd = c.fd;
  open_conns_.fetch_sub(1, std::memory_order_acq_rel);
  w.conns.erase(fd);  // destroys c — must be last
}

void Server::enqueue_wrote(Worker&, Conn& c, std::size_t before) {
  const std::size_t delta = c.out.size() - before;
  if (delta > 0) {
    outstanding_bytes_.fetch_add(delta, std::memory_order_acq_rel);
  }
}

wire::InfoReply Server::build_info() const {
  wire::InfoReply info;
  const auto snap = service_.current();
  info.has_snapshot = snap != nullptr;
  info.draining = draining_.load(std::memory_order_acquire);
  if (snap) {
    info.dataset_version = snap->dataset_version();
    info.created_at_s = snap->created_at_s();
    info.entries = snap->size();
  }
  info.swaps = service_.stats().swaps;
  info.remeasure_depth = service_.remeasure_queue().size();
  info.remeasure_dropped = service_.remeasure_queue().dropped();
  return info;
}

wire::StatsReply Server::build_stats() const {
  const ServiceStats svc = service_.stats();
  wire::StatsReply s;
  s.lookups = svc.lookups;
  s.hits = svc.hits;
  s.misses = svc.misses;
  s.stale_hits = svc.stale_hits;
  s.swaps = svc.swaps;
  s.conns_accepted = counters_.conns_accepted.value();
  s.conns_shed = counters_.conns_shed.value();
  s.frames = counters_.frames.value();
  s.malformed = counters_.malformed.value();
  s.shed_requests = counters_.shed_requests.value();
  s.deadline_closed = counters_.deadline_closed.value();
  return s;
}

void Server::process_frame(Worker& w, Conn& c,
                           std::span<const std::byte> payload) {
  NetSeries& series = net_series();
  counters_.frames.add();
  series.frames.add();
  const auto t0 = Clock::now();

  wire::Request req;
  const wire::ParseStatus ps =
      wire::parse_request(payload, cfg_.max_batch, &req);
  const std::size_t before = c.out.size();
  switch (ps) {
    case wire::ParseStatus::Malformed:
      counters_.malformed.add();
      series.malformed.add();
      wire::encode_error(c.out, req.request_id, wire::ErrorCode::Malformed);
      break;
    case wire::ParseStatus::UnknownType:
      counters_.malformed.add();
      series.malformed.add();
      wire::encode_error(c.out, req.request_id, wire::ErrorCode::UnknownType);
      break;
    case wire::ParseStatus::BatchTooLarge:
      counters_.malformed.add();
      series.malformed.add();
      wire::encode_error(c.out, req.request_id,
                         wire::ErrorCode::BatchTooLarge);
      break;
    case wire::ParseStatus::Ok: {
      if (draining_.load(std::memory_order_acquire) &&
          (req.type == wire::MsgType::LookupReq ||
           req.type == wire::MsgType::BatchReq)) {
        wire::encode_error(c.out, req.request_id, wire::ErrorCode::Draining);
        break;
      }
      switch (req.type) {
        case wire::MsgType::LookupReq: {
          counters_.requests_lookup.add();
          series.req_lookup.add();
          if (outstanding_bytes_.load(std::memory_order_acquire) >
              cfg_.max_outstanding_bytes) {
            counters_.shed_requests.add();
            series.shed_requests.add();
            wire::encode_error(c.out, req.request_id,
                               wire::ErrorCode::Overloaded);
            break;
          }
          const Answer a = service_.lookup(req.address, req.now_s);
          wire::encode_lookup_reply(c.out, req.request_id, a);
          break;
        }
        case wire::MsgType::BatchReq: {
          counters_.requests_batch.add();
          series.req_batch.add();
          if (outstanding_bytes_.load(std::memory_order_acquire) >
              cfg_.max_outstanding_bytes) {
            counters_.shed_requests.add();
            series.shed_requests.add();
            wire::encode_error(c.out, req.request_id,
                               wire::ErrorCode::Overloaded);
            break;
          }
          w.batch_scratch.resize(req.addresses.size());
          service_.lookup_batch(req.addresses, req.now_s, w.batch_scratch);
          wire::encode_batch_reply(c.out, req.request_id, w.batch_scratch);
          break;
        }
        case wire::MsgType::InfoReq:
          counters_.requests_info.add();
          series.req_info.add();
          wire::encode_info_reply(c.out, req.request_id, build_info());
          break;
        case wire::MsgType::StatsReq:
          counters_.requests_stats.add();
          series.req_stats.add();
          wire::encode_stats_reply(c.out, req.request_id, build_stats());
          break;
        default:  // unreachable: parse_request only returns the four above
          wire::encode_error(c.out, req.request_id,
                             wire::ErrorCode::BadRequest);
          break;
      }
      break;
    }
  }
  enqueue_wrote(w, c, before);
  series.request_ms.observe(
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
}

void Server::handle_readable(Worker& w, Conn& c) {
  if (c.input_done) return;
  NetSeries& series = net_series();
  std::byte chunk[16384];
  bool progressed = false;
  for (;;) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      progressed = true;
      counters_.bytes_in.add(static_cast<std::uint64_t>(n));
      series.bytes_in.add(static_cast<std::uint64_t>(n));
      c.decoder.feed(
          std::span<const std::byte>(chunk, static_cast<std::size_t>(n)));
      // Process as we go so a fast pipelining client cannot balloon the
      // input buffer: frames are consumed chunk by chunk.
      std::span<const std::byte> payload;
      for (;;) {
        const auto st = c.decoder.next(&payload);
        if (st == wire::FrameDecoder::Status::Frame) {
          process_frame(w, c, payload);
          continue;
        }
        if (st == wire::FrameDecoder::Status::TooLarge) {
          counters_.malformed.add();
          series.malformed.add();
          const std::size_t before = c.out.size();
          wire::encode_error(c.out, 0, wire::ErrorCode::FrameTooLarge);
          enqueue_wrote(w, c, before);
          c.close_after_flush = true;
          c.input_done = true;
        }
        break;
      }
      if (c.input_done) break;
      // Backpressure: a client that pipelines requests faster than it
      // drains replies gets its reads paused, not an unbounded buffer.
      if (c.out.size() - c.out_pos > cfg_.max_output_queue_bytes) {
        c.paused = true;
        break;
      }
      continue;
    }
    if (n == 0) {  // orderly half-close: flush replies, then close
      c.input_done = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // RST or similar: nothing more to send to this peer.
    close_conn(w, c);
    return;
  }
  if (progressed) {
    arm_deadline(w.wheel, c,
                 c.out.size() - c.out_pos > 0 ? cfg_.write_deadline_ms
                                              : cfg_.read_deadline_ms);
  }
  handle_writable(w, c);  // may close and free `c`
}

void Server::handle_writable(Worker& w, Conn& c) {
  NetSeries& series = net_series();
  const std::size_t flushed_from = c.out_pos;
  while (c.out_pos < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_pos,
                             c.out.size() - c.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      counters_.bytes_out.add(static_cast<std::uint64_t>(n));
      series.bytes_out.add(static_cast<std::uint64_t>(n));
      outstanding_bytes_.fetch_sub(static_cast<std::size_t>(n),
                                   std::memory_order_acq_rel);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(w, c);  // peer vanished mid-write
    return;
  }

  std::uint32_t want = c.events;
  if (c.out_pos == c.out.size()) {
    c.out.clear();
    c.out_pos = 0;
    if (c.close_after_flush || c.input_done) {
      close_conn(w, c);
      return;
    }
    want &= ~static_cast<std::uint32_t>(EPOLLOUT);
    c.paused = false;
    // Back to the idle horizon: the write deadline only governs while a
    // flush is actually pending.
    arm_deadline(w.wheel, c, cfg_.read_deadline_ms);
    want |= EPOLLIN;
  } else {
    want |= EPOLLOUT;
    // Re-arm only on flush progress: a peer that stopped draining must
    // hit the write deadline no matter how often this path re-runs.
    if (c.out_pos > flushed_from) {
      arm_deadline(w.wheel, c, cfg_.write_deadline_ms);
    }
    if (c.paused &&
        c.out.size() - c.out_pos < cfg_.max_output_queue_bytes / 2) {
      c.paused = false;
      want |= EPOLLIN;
    } else if (c.paused || c.input_done) {
      want &= ~static_cast<std::uint32_t>(EPOLLIN);
    }
  }
  if (want != c.events) {
    c.events = want;
    epoll_event ev{};
    ev.events = want;
    ev.data.ptr = &c;
    (void)::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  }
}

void Server::check_deadlines(Worker& w) {
  const auto now = Clock::now();
  w.fired.clear();
  w.wheel.advance(now, &w.fired);
  for (Conn* c : w.fired) {
    if (now >= c->deadline) {
      close_conn(w, *c, /*deadline_expired=*/true);
    } else {
      w.wheel.schedule(c, now);  // deadline was bumped since arming
    }
  }
}

void Server::worker_loop(Worker& w) {
  std::vector<epoll_event> events(64);
  while (!w.shutdown.load(std::memory_order_acquire)) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !w.drain_seen) {
      // Drain entry: answer what is fully buffered, stop reading, flush.
      w.drain_seen = true;
      std::vector<Conn*> open;
      open.reserve(w.conns.size());
      for (auto& [fd, conn] : w.conns) open.push_back(conn.get());
      for (Conn* c : open) {
        c->input_done = true;
        handle_writable(w, *c);  // may close and free *c
      }
    }
    if (draining && w.conns.empty()) break;

    const int timeout_ms = w.wheel.empty() && !draining ? 100 : TimerWheel::kTickMs;
    const int n =
        ::epoll_wait(w.epoll_fd, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      Conn* c = static_cast<Conn*>(events[i].data.ptr);
      if (c == nullptr) {  // wake eventfd
        std::uint64_t tokens = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(w.wake_fd, &tokens, sizeof tokens);
        adopt_connections(w);
        continue;
      }
      const int fd = c->fd;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        close_conn(w, *c);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        handle_readable(w, *c);  // may close and free *c
        if (w.conns.find(fd) == w.conns.end()) continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) handle_writable(w, *c);
    }
    check_deadlines(w);
  }
  // Hard stop: whatever could not be flushed in the drain window is cut.
  while (!w.conns.empty()) {
    close_conn(w, *w.conns.begin()->second);
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.conns_accepted = counters_.conns_accepted.value();
  s.conns_shed = counters_.conns_shed.value();
  s.conns_closed = counters_.conns_closed.value();
  s.deadline_closed = counters_.deadline_closed.value();
  s.frames = counters_.frames.value();
  s.malformed = counters_.malformed.value();
  s.shed_requests = counters_.shed_requests.value();
  s.requests_lookup = counters_.requests_lookup.value();
  s.requests_batch = counters_.requests_batch.value();
  s.requests_info = counters_.requests_info.value();
  s.requests_stats = counters_.requests_stats.value();
  s.bytes_in = counters_.bytes_in.value();
  s.bytes_out = counters_.bytes_out.value();
  return s;
}

}  // namespace geoloc::serve
