// The network-facing geolocation server: an epoll-based, multi-threaded
// TCP frontend over serve::GeoService speaking the length-prefixed wire
// protocol of serve/wire.h (DESIGN.md §12).
//
// Threading: one acceptor thread plus N worker threads. The acceptor owns
// the listening socket, applies connection-level admission control (past
// `max_connections` a client receives one typed OVERLOADED error frame
// and a close — never a hang), and hands accepted fds to workers
// round-robin over an eventfd-signalled queue. Each worker owns its
// connections exclusively (no cross-thread connection state) and runs its
// own epoll loop, so the design is TSan-provable: the only shared state
// is the handoff queue, a handful of relaxed atomics, and the RCU-style
// GeoService underneath.
//
// Defense in depth, per connection:
//   * Incremental strictly-bounds-checked frame parsing (wire.h): every
//     malformed byte becomes a typed error reply; an oversized length
//     prefix is answered and the connection closed (framing is lost).
//   * Read/write deadlines enforced by a per-worker hashed timer wheel —
//     a slow-drip (slowloris) sender or a client that never drains its
//     replies is closed when its deadline fires, and can never pin a
//     worker.
//   * Bounded per-connection output queues with backpressure: when a
//     pipelining client stops reading, the server stops reading *from*
//     it (EPOLLIN off) instead of buffering without limit, and resumes
//     once the queue drains below half the cap.
//   * Request-level load shedding: past `max_outstanding_bytes` of queued
//     replies server-wide, requests are answered with OVERLOADED (a
//     fixed-size reply) instead of being processed — past saturation the
//     server sheds, it does not collapse.
//   * Graceful drain: stop() closes the listener, stops reading, flushes
//     every queued reply within `drain_deadline_ms`, then closes.
//
// Hot snapshot swaps need no connection-level coordination: GeoService is
// RCU-swappable, so a worker mid-batch keeps the snapshot version it
// started with (its Answers pin it) while new requests see the new one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/geo_service.h"
#include "serve/wire.h"

namespace geoloc::serve {

/// Tunables, each with a GEOLOC_SERVE_* environment knob (from_env()).
struct ServerConfig {
  std::uint16_t port = 0;          ///< 0 = kernel-assigned (tests/benches)
  unsigned workers = 2;            ///< epoll worker threads
  std::size_t max_connections = 1024;
  std::size_t max_batch = 2048;    ///< addresses per batch request
  std::size_t max_frame_bytes = wire::kDefaultMaxFramePayload;
  int read_deadline_ms = 5000;     ///< idle/slow-sender horizon
  int write_deadline_ms = 5000;    ///< reply-drain horizon
  int drain_deadline_ms = 2000;    ///< graceful-stop flush budget
  std::size_t max_output_queue_bytes = 1u << 20;  ///< per-conn backpressure
  std::size_t max_outstanding_bytes = 8u << 20;   ///< global shed threshold
  int listen_backlog = 128;
  bool loopback_only = true;       ///< bind 127.0.0.1 (false: INADDR_ANY)

  /// Read GEOLOC_SERVE_PORT / _THREADS / _MAX_CONNS / _MAX_BATCH /
  /// _READ_DEADLINE_MS / _WRITE_DEADLINE_MS / _DRAIN_MS / _MAX_OUTQ /
  /// _MAX_OUTSTANDING over the defaults above.
  static ServerConfig from_env();
};

/// Monotonic per-instance counters (same copy-out contract as
/// ServiceStats: individually consistent, not mutually).
struct ServerStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_shed = 0;      ///< admission control closes
  std::uint64_t conns_closed = 0;
  std::uint64_t deadline_closed = 0; ///< timer-wheel expiries
  std::uint64_t frames = 0;          ///< complete frames parsed
  std::uint64_t malformed = 0;       ///< typed protocol errors sent
  std::uint64_t shed_requests = 0;   ///< OVERLOADED replies
  std::uint64_t requests_lookup = 0;
  std::uint64_t requests_batch = 0;
  std::uint64_t requests_info = 0;
  std::uint64_t requests_stats = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class Server {
 public:
  /// `service` must outlive the server.
  explicit Server(GeoService& service, ServerConfig config = {});
  ~Server();  ///< stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spin up the acceptor + workers. False (with
  /// *error) when the socket setup fails; the server is then inert.
  bool start(std::string* error = nullptr);

  /// Graceful drain: stop accepting, stop reading, flush queued replies
  /// (bounded by drain_deadline_ms), close everything, join threads.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (after start(); the kernel-assigned one when
  /// config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ServerStats stats() const;

  /// Implementation types, defined in server.cpp only. Public so the
  /// file-local helpers there (the timer wheel) can name them; opaque to
  /// everyone else.
  struct Worker;
  struct Conn;

 private:

  void acceptor_loop();
  void worker_loop(Worker& w);
  void adopt_connections(Worker& w);
  void handle_readable(Worker& w, Conn& c);
  void handle_writable(Worker& w, Conn& c);
  void process_frame(Worker& w, Conn& c, std::span<const std::byte> payload);
  void enqueue_wrote(Worker& w, Conn& c, std::size_t before);
  void close_conn(Worker& w, Conn& c, bool deadline_expired = false);
  void check_deadlines(Worker& w);
  wire::InfoReply build_info() const;
  wire::StatsReply build_stats() const;

  GeoService& service_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<std::size_t> outstanding_bytes_{0};
  std::uint64_t next_worker_ = 0;  ///< acceptor-only round-robin cursor

  struct Counters {
    obs::Counter conns_accepted, conns_shed, conns_closed, deadline_closed;
    obs::Counter frames, malformed, shed_requests;
    obs::Counter requests_lookup, requests_batch, requests_info,
        requests_stats;
    obs::Counter bytes_in, bytes_out;
  };
  mutable Counters counters_;

  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace geoloc::serve
