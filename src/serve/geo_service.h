// The lookup frontend the ROADMAP's "serve heavy traffic" north star asks
// for: answer IP -> location queries from a published snapshot at memory
// speed, swap in new snapshot versions without blocking readers, and feed
// entries that outlive their TTL back into the measurement pipeline.
//
// Concurrency model (RCU via shared_ptr):
//   * The current snapshot lives behind one hot-swappable shared_ptr.
//     publish() stores a new snapshot; readers that already hold the old
//     pointer keep their reference, so the old version stays valid until
//     the last in-flight answer drops it — no torn reads, no waiting for
//     readers.
//   * Every Answer carries the shared_ptr it was served from, so its
//     provenance string_view (which points into the snapshot's buffer)
//     stays valid for the answer's lifetime even across a hot swap.
//   * Steady-state lookups are lock-free: each reader thread caches the
//     shared_ptr, validated against a service epoch counter that publish()
//     bumps, so a lookup touches only the (read-shared, uncontended) epoch
//     word. The swap slot itself is a shared_ptr under a mutex, taken once
//     per swap per thread on the refresh path — deliberately NOT
//     std::atomic<std::shared_ptr>: libstdc++ implements that with a
//     pointer-bit spinlock whose load() unlocks with relaxed ordering, so
//     ThreadSanitizer (correctly, under the formal model) flags the
//     reader/writer pointer accesses as unordered. A plain mutex on this
//     cold path costs nothing and keeps the whole service TSan-provable.
//   * Counters live on the obs metrics layer (obs/metrics.h), which
//     hoisted this service's original cache-line-striped design: each
//     service keeps per-instance obs::Counter cells for stats(), and the
//     process-wide serve.* registry series (hits / misses / stale hits /
//     TTL expiries) are bumped alongside. The stale-prefix queue is the
//     only mutex in the system, taken on the (rare) stale-hit path.
//
// Staleness: each entry's measured_at_s + ttl_s is its freshness horizon,
// inclusive (stale iff now >= horizon; ttl_s == 0 disables staleness) —
// see SnapshotEntry::stale_horizon_s for the single definition every
// consumer shares.
// A lookup past the horizon still answers (stale data beats no data — the
// snapshot consumer decides) but flags the answer, bumps a counter and
// enqueues the prefix for re-measurement. plan_remeasurement() turns the
// drained queue into atlas MeasurementRequests; the campaign executor runs
// them and publish::refresh_entries() compiles the results into the next
// snapshot version.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "atlas/scheduler.h"
#include "obs/metrics.h"
#include "publish/snapshot.h"
#include "scenario/scenario.h"

namespace geoloc::serve {

/// One served answer. Holds a reference to the snapshot it came from, so
/// the `provenance` view outlives hot swaps.
struct Answer {
  bool found = false;
  net::Prefix prefix;
  geo::GeoPoint location;
  publish::Method method = publish::Method::Cbg;
  core::CbgVerdict tier = core::CbgVerdict::Ok;
  float confidence_radius_km = 0.0f;
  std::string_view provenance;
  double age_s = 0.0;
  bool stale = false;
  std::uint32_t dataset_version = 0;
  std::shared_ptr<const publish::Snapshot> source;  ///< keeps views alive
};

/// Monotonic service counters (copied out under no lock; values are
/// individually consistent, not mutually).
struct ServiceStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_hits = 0;
  std::uint64_t swaps = 0;
};

/// Deduplicating queue of prefixes awaiting re-measurement. Thread-safe.
///
/// Bounded: past `capacity()` pending prefixes, further pushes are dropped
/// (counted on `dropped()` and the process-wide "serve.remeasure_dropped"
/// series) instead of growing without limit — a stale-heavy workload
/// hitting a network-facing server must not become a memory-exhaustion
/// vector. Drops are safe to shed: a dropped prefix simply re-queues on
/// its next stale hit after a drain.
class RemeasureQueue {
 public:
  /// Bound from GEOLOC_SERVE_REMEASURE_CAP (default 65536).
  RemeasureQueue();
  /// Explicit bound; 0 = unbounded.
  explicit RemeasureQueue(std::size_t max_pending);

  /// Enqueue; false when the prefix is already pending or was dropped at
  /// the capacity bound.
  bool push(net::Prefix prefix);
  /// Take everything currently queued (clears the pending set).
  std::vector<net::Prefix> drain();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  /// Total prefixes dropped at the capacity bound since construction.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.value();
  }

 private:
  const std::size_t cap_;
  mutable std::mutex mu_;
  std::vector<net::Prefix> queue_;
  std::unordered_set<std::uint64_t> pending_;
  obs::Counter dropped_;
};

class GeoService {
 public:
  explicit GeoService(
      std::shared_ptr<const publish::Snapshot> initial = nullptr);

  /// Atomically swap the served snapshot. Lock-free readers in flight keep
  /// the version they already loaded.
  void publish(std::shared_ptr<const publish::Snapshot> snapshot);

  /// Load a snapshot file (publish::Snapshot::load, fully validated) and
  /// publish it. On a corrupt file the load quarantines it to
  /// `<path>.corrupt` and this returns false with the previously served
  /// snapshot untouched — the swap is all-or-nothing.
  bool publish_from_file(const std::string& path, std::string* error = nullptr);

  /// The currently served snapshot (may be null before the first publish).
  [[nodiscard]] std::shared_ptr<const publish::Snapshot> current() const;

  /// Serve one lookup at simulated time `now_s`. Stale hits are flagged
  /// and their prefix is enqueued for re-measurement.
  [[nodiscard]] Answer lookup(net::IPv4Address address, double now_s) const;

  /// Serve a batch against one consistent snapshot version (a single
  /// atomic load for the whole span). Precondition: out.size() >=
  /// addresses.size().
  void lookup_batch(std::span<const net::IPv4Address> addresses, double now_s,
                    std::span<Answer> out) const;

  [[nodiscard]] ServiceStats stats() const;

  /// The stale-prefix queue fed by lookups. Drain it, plan a campaign,
  /// publish the refreshed snapshot.
  [[nodiscard]] RemeasureQueue& remeasure_queue() const { return queue_; }

  /// All entries of the current snapshot past their TTL at `now_s` —
  /// the proactive (scan-based) variant of staleness detection, for
  /// operators that re-measure on a schedule instead of on demand.
  [[nodiscard]] std::vector<net::Prefix> stale_prefixes(double now_s) const;

 private:
  /// Per-instance counters (obs::Counter is cache-line striped internally,
  /// the original CounterCell design hoisted into the obs layer).
  struct Counters {
    obs::Counter lookups;
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter stale_hits;
  };

  Answer answer_from(const std::shared_ptr<const publish::Snapshot>& snap,
                     net::IPv4Address address, double now_s) const;
  /// This thread's cached snapshot pointer, revalidated against epoch_.
  [[nodiscard]] const std::shared_ptr<const publish::Snapshot>&
  cached_snapshot() const;

  const std::uint64_t service_id_;  ///< keys the thread-local caches
  mutable std::mutex snapshot_mu_;  ///< guards snapshot_ (cold path only)
  std::shared_ptr<const publish::Snapshot> snapshot_;
  std::atomic<std::uint64_t> epoch_{1};
  mutable RemeasureQueue queue_;
  mutable Counters counters_;
  std::atomic<std::uint64_t> swaps_{0};
};

/// Turn stale prefixes back into an atlas campaign: for every scenario
/// target inside a stale prefix, ping it from `vps_per_target` VPs (spread
/// deterministically over the scenario's VP set). The result feeds
/// publish::refresh_entries().
std::vector<atlas::MeasurementRequest> plan_remeasurement(
    const scenario::Scenario& s, std::span<const net::Prefix> stale,
    std::size_t vps_per_target = 50, int packets = 3);

/// Same, but measuring from an explicit VP pool instead of the scenario's
/// built-in set — the longitudinal driver passes the churn model's
/// *active* VPs (decommissioned probes removed, newly added ones in).
std::vector<atlas::MeasurementRequest> plan_remeasurement(
    const scenario::Scenario& s, std::span<const net::Prefix> stale,
    std::span<const sim::HostId> vps, std::size_t vps_per_target,
    int packets);

/// Same, but with proximity VP selection: for each stale prefix, ping from
/// the `vps_per_target` pool VPs whose reported location is closest to the
/// prefix's *prior* published estimate (Section 3's result that nearby VPs
/// carry nearly all of CBG's accuracy at a fraction of the cost). Prefixes
/// absent from `prior` fall back to the deterministic stride spread.
std::vector<atlas::MeasurementRequest> plan_remeasurement(
    const scenario::Scenario& s, std::span<const net::Prefix> stale,
    const publish::Snapshot& prior, std::span<const sim::HostId> vps,
    std::size_t vps_per_target, int packets);

}  // namespace geoloc::serve
