#include "sim/traceroute.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/geodesy.h"

namespace geoloc::sim {

std::optional<double> Traceroute::destination_rtt_ms() const {
  if (!reached || hops.empty()) return std::nullopt;
  return hops.back().rtt_ms;
}

TracerouteEngine::TracerouteEngine(const World& world,
                                   const LatencyModel& latency)
    : world_(&world), latency_(&latency) {}

PlaceId TracerouteEngine::nearest_city(const geo::GeoPoint& p,
                                       PlaceId exclude_a,
                                       PlaceId exclude_b) const {
  PlaceId best = exclude_a;
  double best_d = std::numeric_limits<double>::infinity();
  for (PlaceId city : world_->cities()) {
    if (city == exclude_a || city == exclude_b) continue;
    const double d = geo::distance_km(world_->place(city).location, p);
    if (d < best_d) {
      best_d = d;
      best = city;
    }
  }
  return best;
}

const std::vector<PlaceId>& TracerouteEngine::waypoints(
    PlaceId src_city, PlaceId dst_city) const {
  const std::uint64_t key = (std::uint64_t{src_city} << 32) | dst_city;
  const auto it = waypoint_cache_.find(key);
  if (it != waypoint_cache_.end()) return it->second;
  return waypoint_cache_.emplace(key, compute_waypoints(src_city, dst_city))
      .first->second;
}

std::vector<PlaceId> TracerouteEngine::compute_waypoints(
    PlaceId src_city, PlaceId dst_city) const {
  if (src_city == dst_city) return {};
  const geo::GeoPoint a = world_->place(src_city).location;
  const geo::GeoPoint b = world_->place(dst_city).location;
  const double d = geo::distance_km(a, b);
  std::vector<PlaceId> out;
  if (d < 500.0) return out;
  if (d < 4000.0) {
    const PlaceId mid = nearest_city(geo::midpoint(a, b), src_city, dst_city);
    if (mid != src_city && mid != dst_city) out.push_back(mid);
    return out;
  }
  // Long haul: waypoints near the 1/3 and 2/3 great-circle points.
  const double bearing = geo::initial_bearing_deg(a, b);
  const PlaceId w1 =
      nearest_city(geo::destination(a, bearing, d / 3.0), src_city, dst_city);
  if (w1 != src_city && w1 != dst_city) out.push_back(w1);
  const PlaceId w2 = nearest_city(geo::destination(a, bearing, 2.0 * d / 3.0),
                                  src_city, dst_city);
  if (w2 != src_city && w2 != dst_city && (out.empty() || w2 != out.back())) {
    out.push_back(w2);
  }
  return out;
}

std::vector<HostId> TracerouteEngine::path_routers(HostId src,
                                                   HostId dst) const {
  const Host& s = world_->host(src);
  const Host& t = world_->host(dst);
  const PlaceId src_city = world_->place(s.place).parent;
  const PlaceId dst_city = world_->place(t.place).parent;

  std::vector<HostId> routers;
  auto push_router = [&](PlaceId place) {
    const HostId r = world_->router_of(place);
    if (r != kInvalidHost && (routers.empty() || routers.back() != r)) {
      routers.push_back(r);
    }
  };
  push_router(s.place);
  if (s.place != src_city) push_router(src_city);
  for (PlaceId w : waypoints(src_city, dst_city)) push_router(w);
  if (dst_city != t.place) push_router(dst_city);
  push_router(t.place);
  return routers;
}

Traceroute TracerouteEngine::run(HostId src, HostId dst,
                                 util::Pcg32& gen) const {
  Traceroute tr;
  tr.src = src;
  tr.dst = dst;

  for (HostId router : path_routers(src, dst)) {
    TraceHop hop;
    hop.host = router;
    hop.addr = world_->host(router).addr;
    if (gen.chance(hop_no_reply_rate_)) {
      hop.responded = false;
      hop.rtt_ms = 0.0;
    } else {
      // Successive hop RTTs are kept monotone in expectation but not
      // strictly: real traceroutes routinely report a later hop faster than
      // an earlier one, which is exactly the noise the paper observed.
      hop.rtt_ms = latency_->router_hop_rtt_ms(src, router, gen);
    }
    tr.hops.push_back(hop);
  }

  TraceHop final_hop;
  final_hop.host = dst;
  final_hop.addr = world_->host(dst).addr;
  const auto rtt = latency_->min_rtt_ms(src, dst, /*packets=*/1, gen);
  if (rtt) {
    final_hop.rtt_ms = *rtt;
    tr.reached = true;
  } else {
    final_hop.responded = false;
  }
  tr.hops.push_back(final_hop);
  return tr;
}

std::optional<std::size_t> TracerouteEngine::last_common_hop(
    const Traceroute& a, const Traceroute& b) {
  const std::size_t n = std::min(a.hops.size(), b.hops.size());
  std::optional<std::size_t> last;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.hops[i].host != b.hops[i].host) break;
    if (a.hops[i].responded && b.hops[i].responded) last = i;
  }
  return last;
}

}  // namespace geoloc::sim
