#include "sim/world.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "geo/geodesy.h"

namespace geoloc::sim {

std::string_view to_string(AsCategory c) noexcept {
  switch (c) {
    case AsCategory::Content: return "Content";
    case AsCategory::Access: return "Access";
    case AsCategory::TransitAccess: return "Transit/Access";
    case AsCategory::Enterprise: return "Enterprise";
    case AsCategory::Tier1: return "Tier-1";
    case AsCategory::Unknown: return "Unknown";
  }
  return "?";
}

std::span<const AsCategory> all_as_categories() noexcept {
  static constexpr std::array<AsCategory, 6> kAll = {
      AsCategory::Content,    AsCategory::Access, AsCategory::TransitAccess,
      AsCategory::Enterprise, AsCategory::Tier1,  AsCategory::Unknown};
  return kAll;
}

std::span<const std::string_view> as_sector_names() noexcept {
  // ASdb taxonomy (Ziv et al., IMC 2021), 16 top-level categories.
  static constexpr std::array<std::string_view, 16> kSectors = {
      "Computer and Information Technology",
      "Education and Research",
      "Finance and Insurance",
      "Media, Publishing, and Broadcasting",
      "Government and Public Administration",
      "Retail Stores, Wholesale, and E-commerce Sites",
      "Manufacturing",
      "Health Care Services",
      "Utilities (Excluding Internet Service)",
      "Freight, Shipment, and Postal Services",
      "Travel and Accommodation",
      "Construction and Real Estate",
      "Museums, Libraries, and Entertainment",
      "Community Groups and Nonprofits",
      "Agriculture, Mining, and Refineries",
      "Service",
  };
  return kSectors;
}

std::string_view to_string(HostKind k) noexcept {
  switch (k) {
    case HostKind::Anchor: return "anchor";
    case HostKind::Probe: return "probe";
    case HostKind::Representative: return "representative";
    case HostKind::WebServer: return "webserver";
    case HostKind::Router: return "router";
  }
  return "?";
}

World::World(const WorldConfig& config)
    : config_(config), rng_(config.seed) {
  build_places();
  // A dedicated backbone AS owns all topology routers. Every real city gets
  // its router up front so traceroute paths always have their waypoints;
  // satellite-town routers appear when hosts move in.
  router_as_ = create_as(AsCategory::Tier1, 0);
  for (PlaceId city : cities_) router_of(city);
}

void World::build_places() {
  const auto records = gazetteer();
  places_.reserve(records.size() * 4);
  cities_.reserve(records.size());

  for (const CityRecord& r : records) {
    Place p;
    p.name = std::string(r.name);
    p.country = std::string(r.country);
    p.continent = r.continent;
    p.location = geo::GeoPoint{r.lat_deg, r.lon_deg};
    p.population_k = r.population_k;
    p.satellite = false;
    p.parent = static_cast<PlaceId>(places_.size());
    cities_.push_back(p.parent);
    places_.push_back(std::move(p));
  }
  satellites_of_.resize(places_.size());

  // Procedural satellite towns: the long tail of locations and a finer
  // population surface. Count scales gently with the parent's population.
  auto gen = rng_.fork("satellites").gen();
  const std::size_t ncities = places_.size();
  for (PlaceId city = 0; city < ncities; ++city) {
    const Place parent = places_[city];
    const double scale =
        std::clamp(std::log10(std::max(parent.population_k, 10.0)) / 4.0, 0.3, 1.5);
    const int count = static_cast<int>(
        std::floor(config_.satellites_per_city * scale + gen.uniform()));
    for (int i = 0; i < count; ++i) {
      Place sat;
      sat.name = parent.name + " / town-" + std::to_string(i + 1);
      sat.country = parent.country;
      sat.continent = parent.continent;
      const double r =
          gen.uniform(config_.satellite_min_km, config_.satellite_max_km);
      sat.location = geo::destination(parent.location, gen.uniform(0.0, 360.0), r);
      sat.population_k =
          parent.population_k * gen.uniform(0.01, 0.12);
      sat.satellite = true;
      sat.parent = city;
      satellites_of_[city].push_back(static_cast<PlaceId>(places_.size()));
      places_.push_back(std::move(sat));
    }
  }
  satellites_of_.resize(places_.size());

  // Regional access quality: draw each real city's tromboning penalty.
  {
    auto qgen = rng_.fork("city-quality").gen();
    city_penalty_ms_.assign(cities_.size(), 0.0);
    city_local_peering_.assign(cities_.size(), 1);
    for (PlaceId city : cities_) {
      const auto cont = static_cast<std::size_t>(places_[city].continent);
      if (qgen.chance(config_.poorly_connected_city_prob[cont])) {
        city_penalty_ms_[city] = config_.access_penalty_floor_ms +
                                 qgen.exponential(config_.access_penalty_mean_ms);
        city_local_peering_[city] =
            qgen.chance(config_.local_peering_rate) ? 1 : 0;
        poor_cities_.push_back(city);
      }
    }
  }

  // Population-weighted city sampling tables per continent.
  for (PlaceId city : cities_) {
    const auto key = static_cast<std::uint8_t>(places_[city].continent);
    city_by_continent_[key].push_back(city);
    auto& cum = city_cumweight_[key];
    const double prev = cum.empty() ? 0.0 : cum.back();
    // sqrt damping: without it the biggest metros soak up nearly all hosts.
    cum.push_back(prev + std::sqrt(places_[city].population_k));
  }
}

double World::access_penalty_ms(PlaceId place) const {
  const PlaceId parent = places_.at(place).parent;
  return parent < city_penalty_ms_.size() ? city_penalty_ms_[parent] : 0.0;
}

bool World::has_local_peering(PlaceId place) const {
  const PlaceId parent = places_.at(place).parent;
  return parent >= city_local_peering_.size() ||
         city_local_peering_[parent] != 0;
}

net::Asn World::create_as(AsCategory category, int sector) {
  const net::Asn asn{static_cast<std::uint32_t>(64500 + ases_.size())};
  as_index_[asn.value] = ases_.size();
  ases_.push_back(AsInfo{asn, category, sector});
  return asn;
}

const AsInfo& World::as_info(net::Asn asn) const {
  const auto it = as_index_.find(asn.value);
  if (it == as_index_.end()) throw std::out_of_range("unknown ASN");
  return ases_[it->second];
}

net::Prefix World::allocate_site_prefix(net::Asn asn) {
  auto block_it = as_current_block_.find(asn.value);
  if (block_it == as_current_block_.end() || as_next_site_[asn.value] >= 256) {
    // Allocate a fresh /16 to this AS and announce it.
    const std::uint32_t base = next_block16_;
    next_block16_ += 0x10000;
    as_current_block_[asn.value] = base;
    as_next_site_[asn.value] = 0;
    bgp_.insert(net::Prefix{net::IPv4Address{base}, 16}, asn);
    block_it = as_current_block_.find(asn.value);
  }
  const std::uint32_t site = as_next_site_[asn.value]++;
  const net::Prefix p{net::IPv4Address{block_it->second + (site << 8)}, 24};
  // Some sites are separately announced as more-specifics; this is what the
  // landmark/target same-BGP-prefix analysis (Section 5.2.3) observes.
  auto gen = rng_.fork("announce", p.network().value()).gen();
  if (gen.chance(config_.more_specific_announce_rate)) {
    bgp_.insert(p, asn);
  }
  return p;
}

std::optional<std::pair<net::Prefix, net::Asn>> World::bgp_lookup(
    net::IPv4Address addr) const {
  return bgp_.lookup(addr);
}

HostId World::add_host(Host host) {
  host.id = static_cast<HostId>(hosts_.size());
  if (host.reported_location == geo::GeoPoint{} && !host.misgeolocated) {
    host.reported_location = host.true_location;
  }
  host_by_addr_[host.addr.value()] = host.id;
  hosts_.push_back(host);
  return host.id;
}

std::optional<HostId> World::find_by_addr(net::IPv4Address a) const {
  const auto it = host_by_addr_.find(a.value());
  if (it == host_by_addr_.end()) return std::nullopt;
  return it->second;
}

void World::misgeolocate(HostId id, const geo::GeoPoint& reported) {
  Host& h = hosts_.at(id);
  h.reported_location = reported;
  h.misgeolocated = true;
}

void World::relocate_host(HostId id, PlaceId place, const geo::GeoPoint& location) {
  router_of(place);  // the new place joins the topology before hosts land
  Host& h = hosts_.at(id);
  h.place = place;
  h.true_location = location;
  if (!h.misgeolocated) h.reported_location = location;
}

void World::set_responsive(HostId id, bool responsive) {
  hosts_.at(id).responsive = responsive;
}

HostId World::router_of(PlaceId place) {
  const auto it = router_by_place_.find(place);
  if (it != router_by_place_.end()) return it->second;
  Host router;
  router.kind = HostKind::Router;
  router.asn = router_as_;
  router.place = place;
  router.true_location = places_.at(place).location;
  router.reported_location = router.true_location;
  router.addr = net::IPv4Address{0xC0000000 + place};  // 192.0.0.0 + place id
  router.last_mile_ms = 0.0;
  const HostId id = add_host(router);
  router_by_place_[place] = id;
  return id;
}

HostId World::router_of(PlaceId place) const noexcept {
  const auto it = router_by_place_.find(place);
  return it == router_by_place_.end() ? kInvalidHost : it->second;
}

PlaceId World::sample_place(Continent continent, double satellite_bias,
                            util::Pcg32& gen) const {
  const auto key = static_cast<std::uint8_t>(continent);
  const auto cum_it = city_cumweight_.find(key);
  const auto cities_it = city_by_continent_.find(key);
  if (cum_it == city_cumweight_.end() || cum_it->second.empty()) {
    throw std::out_of_range("no cities on continent");
  }
  const auto& cum = cum_it->second;
  const double u = gen.uniform(0.0, cum.back());
  const auto pos = std::lower_bound(cum.begin(), cum.end(), u);
  const std::size_t idx = static_cast<std::size_t>(pos - cum.begin());
  const PlaceId city = cities_it->second[std::min(idx, cum.size() - 1)];
  if (gen.chance(satellite_bias) && !satellites_of_[city].empty()) {
    return satellites_of_[city][gen.index(satellites_of_[city].size())];
  }
  return city;
}

geo::GeoPoint World::sample_location(PlaceId place, double mean_offset_km,
                                     util::Pcg32& gen) const {
  const Place& p = places_.at(place);
  const double r = gen.exponential(mean_offset_km);
  return geo::destination(p.location, gen.uniform(0.0, 360.0), r);
}

int World::hotspot_count(PlaceId place) const {
  const Place& p = places_.at(place);
  if (p.satellite) return 2;
  return 3 + std::min(9, static_cast<int>(p.population_k / 1200.0));
}

geo::GeoPoint World::hotspot(PlaceId place, int k) const {
  const Place& p = places_.at(place);
  auto gen = rng_.fork("hotspot", (std::uint64_t{place} << 8) |
                                      static_cast<std::uint64_t>(k))
                 .gen();
  // Hotspot 0 is the centre itself; the rest ring the core.
  if (k == 0) return p.location;
  const double r = 1.0 + gen.exponential(4.0);
  return geo::destination(p.location, gen.uniform(0.0, 360.0), r);
}

geo::GeoPoint World::sample_urban_location(PlaceId place, double hotspot_prob,
                                           double tight_km, double loose_km,
                                           util::Pcg32& gen) const {
  if (gen.chance(hotspot_prob)) {
    const int k = static_cast<int>(
        gen.bounded(static_cast<std::uint32_t>(hotspot_count(place))));
    const geo::GeoPoint h = hotspot(place, k);
    return geo::destination(h, gen.uniform(0.0, 360.0),
                            gen.exponential(tight_km));
  }
  return sample_location(place, loose_km, gen);
}

}  // namespace geoloc::sim
