// Synthetic operator evidence: rDNS-style location hints and per-/24
// operator geofeeds, with configurable coverage and dishonesty.
//
// The IMC'23 paper leans on latency alone; real deployments also see
// operator-published evidence (rDNS naming conventions, RFC 8805
// geofeeds) of wildly varying quality. These generators produce that
// evidence from the simulated world's ground truth — including the
// adversarial cases the fusion engine (src/fusion/) exists to survive:
//
//   * A lying hint for a *misgeolocated* host is sampled around the host's
//     reported (bogus) location, not a random point — the lie agrees with
//     whois, so a fusion stage that trusts agreement between two wrong
//     sources gets exactly the trap the sanitisation paper warns about.
//   * Geofeeds carry per-entry staleness (previous-tenant locations) and
//     whole-feed adversaries (operators publishing convincing fiction).
//
// Everything is deterministic: each target draws from an RngStream fork
// indexed by its position in the target list, so evidence for target i is
// identical no matter how many other targets are covered. Generators also
// return per-entry ground-truth labels — for scoring only; the fusion
// engine never sees them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geopoint.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::sim {

/// Knobs for the rDNS-style hint generator (GEOLOC_HINT_*).
struct HintConfig {
  double coverage = 0.6;   ///< fraction of targets with a hint
  double lie_rate = 0.1;   ///< fraction of hints that are wrong
  double noise_km = 15.0;  ///< mean radial jitter around the hinted place

  /// Overlay GEOLOC_HINT_COVERAGE_PM / GEOLOC_HINT_LIE_PM /
  /// GEOLOC_HINT_NOISE_KM onto the defaults.
  static HintConfig from_env();
};

/// One rDNS-style hint: "this target's name decodes to `location`".
struct LocationHint {
  HostId target = kInvalidHost;
  geo::GeoPoint location;
  bool lie = false;  ///< ground truth for scoring; opaque to the engine
};

/// Generate hints for `targets`. Deterministic per target: whether target i
/// gets a hint, and what it says, depends only on `rng` and i.
std::vector<LocationHint> generate_hints(const World& world,
                                         std::span<const HostId> targets,
                                         const HintConfig& config,
                                         util::RngStream rng);

/// Knobs for the geofeed generator (GEOLOC_FEED_*).
struct FeedConfig {
  double coverage = 0.5;    ///< fraction of target /24s listed in some feed
  double stale_rate = 0.05; ///< honest feeds: entries left from a past tenant
  double noise_km = 8.0;    ///< mean jitter of honest entries
  int feed_count = 4;       ///< operator feeds the universe is split across
  /// The first `adversarial_feeds` feeds lie at `adversarial_lie_rate`
  /// (misgeolocated hosts get their convincing reported location; honest
  /// hosts get a random city).
  int adversarial_feeds = 0;
  double adversarial_lie_rate = 0.8;

  static FeedConfig from_env();
};

/// Ground-truth label of one generated feed line (scoring only).
enum class FeedEntryTruth : std::uint8_t { Honest, Stale, Adversarial };

struct GeneratedFeedEntry {
  HostId target = kInvalidHost;
  geo::GeoPoint location;
  FeedEntryTruth truth = FeedEntryTruth::Honest;
};

/// One operator's feed: the serialized text (the fusion pipeline parses it
/// with fusion::parse_geofeed — evidence enters through the same strict
/// parser real feeds would) plus the ground-truth ledger.
struct GeneratedFeed {
  std::string source;  ///< stable operator name, e.g. "feed-2.example"
  std::string text;    ///< "prefix,country,city,lat,lon" lines + comments
  std::vector<GeneratedFeedEntry> entries;
};

/// Generate `config.feed_count` operator feeds over the covered targets
/// (target i belongs to feed i mod feed_count, covered or not).
std::vector<GeneratedFeed> generate_feeds(const World& world,
                                          std::span<const HostId> targets,
                                          const FeedConfig& config,
                                          util::RngStream rng);

}  // namespace geoloc::sim
