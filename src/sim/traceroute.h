// Hop-by-hop traceroute synthesis.
//
// A path from src to dst traverses: the access router of src's place, zero
// or more backbone waypoint routers (deterministic function of the two
// endpoint cities, so two traceroutes from one VP share their path prefix
// exactly as the street-level paper's Figure 1c assumes), the access router
// of dst's place, and the destination itself.
//
// Router hop RTTs come from LatencyModel::router_hop_rtt_ms (reverse-path
// asymmetry + ICMP generation delay); the destination hop is an end-to-end
// ping. This is what makes the D1/D2 subtraction of the street-level paper
// noisy in our replication, as in the original study (Section 5.2.3 and
// Appendix B).
#pragma once

#include <optional>
#include <vector>

#include "sim/latency_model.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::sim {

struct TraceHop {
  HostId host = kInvalidHost;
  net::IPv4Address addr;
  double rtt_ms = 0.0;
  bool responded = true;  ///< false: '*' hop (no reply)
};

struct Traceroute {
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  std::vector<TraceHop> hops;  ///< access router ... destination
  bool reached = false;        ///< destination answered

  /// RTT of the final (destination) hop; nullopt if not reached.
  [[nodiscard]] std::optional<double> destination_rtt_ms() const;
};

class TracerouteEngine {
 public:
  /// Routers for every place on any path must already exist in the world
  /// (Scenario pre-creates them); the engine itself never mutates the world.
  TracerouteEngine(const World& world, const LatencyModel& latency);

  [[nodiscard]] Traceroute run(HostId src, HostId dst, util::Pcg32& gen) const;

  /// The sequence of router hosts a path traverses (no RTTs). Exposed for
  /// tests and for the last-common-hop analysis.
  [[nodiscard]] std::vector<HostId> path_routers(HostId src, HostId dst) const;

  /// Index (into both hop vectors) of the last common hop of two traceroutes
  /// from the same source; nullopt when they share no responding hop.
  static std::optional<std::size_t> last_common_hop(const Traceroute& a,
                                                    const Traceroute& b);

 private:
  /// Backbone waypoint cities between two (parent) cities. Memoised: the
  /// street-level campaign issues ~1k traceroutes per target and the
  /// nearest-city scans would otherwise dominate it.
  [[nodiscard]] const std::vector<PlaceId>& waypoints(PlaceId src_city,
                                                      PlaceId dst_city) const;
  [[nodiscard]] std::vector<PlaceId> compute_waypoints(PlaceId src_city,
                                                       PlaceId dst_city) const;
  [[nodiscard]] PlaceId nearest_city(const geo::GeoPoint& p, PlaceId exclude_a,
                                     PlaceId exclude_b) const;

  const World* world_;
  const LatencyModel* latency_;
  double hop_no_reply_rate_ = 0.03;
  // (src_city << 32 | dst_city) -> waypoint list. Not thread-safe; each
  // thread should own its engine (they are cheap to copy).
  mutable std::unordered_map<std::uint64_t, std::vector<PlaceId>>
      waypoint_cache_;
};

}  // namespace geoloc::sim
