// Longitudinal world churn: the processes that age a geolocation dataset.
//
// Gouel et al.'s longitudinal study of a commercial IP geolocation database
// (PAPERS.md) observes that between monthly versions a significant share of
// prefixes *move* — and that the moves are not i.i.d. noise: address blocks
// migrate in waves (an operator renumbers a /16 over a few months), vantage
// points retire and new ones appear, and database metadata drifts away from
// the ground truth. A publishable dataset (the source paper's end goal) has
// to budget re-measurement against exactly these processes.
//
// This model makes a static sim::World evolve epoch by epoch (an epoch is
// one simulated month in the longitudinal driver, eval/longitudinal.h),
// with four deterministic churn processes:
//
//   * **Prefix reassignment waves** — a target /24 (anchor plus its /24
//     representatives, who move together: the whole prefix got a new
//     tenant) relocates to a new city. Moves are temporally correlated:
//     a reassignment starts a *block migration* of the covering /16 that
//     relocates a fraction of the block's remaining /24s to the same
//     destination every following epoch until the block is drained — the
//     wave structure that makes a diff-triggered re-measurement policy
//     more than a heuristic.
//   * **Individual host relocation** — single hitlist representatives move
//     within their continent (per-host tenancy churn below /24
//     granularity; measurement noise, not dataset signal).
//   * **VP decommission / addition** — active anchors/probes retire for
//     good (the host stops answering and leaves the VP pool) and fresh
//     probes come online in new /24s. Distinct from the fault layer's
//     *transient* probe churn (atlas/faults.h): weather heals, churn does
//     not.
//   * **Reported-location drift** — a VP's *reported* location starts
//     wandering (stale metadata) while its true location — and therefore
//     its RTTs — stays put, slowly poisoning CBG constraints anchored on
//     it. The gradual cousin of the Section 4.3 misgeolocation lies.
//
// Determinism: every epoch draws from fork("churn-epoch", epoch) of the
// model's seed, with a fixed stage order inside the epoch, so a replay of
// epochs 1..N on an identically built world reproduces the exact same
// world state — the property the longitudinal driver's kill-and-resume
// relies on (it re-applies churn instead of persisting the world).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::sim {

struct ChurnConfig {
  std::uint64_t seed = 20240601;

  /// Fraction of target /24 prefixes that *start* a reassignment per epoch
  /// (each also seeds a /16 block-migration wave).
  double prefix_reassignment_rate = 0.02;
  /// Fraction of a migrating /16's remaining sibling /24s that follow per
  /// epoch (the wave's pace; 0 disables waves — moves become independent).
  double wave_fraction = 0.34;
  /// Fraction of individual (non-anchor) hosts relocating per epoch.
  double host_relocation_rate = 0.005;
  /// Fraction of active VPs permanently decommissioned per epoch.
  double vp_decommission_rate = 0.01;
  /// New probes added per epoch, as a fraction of the *initial* VP count.
  double vp_addition_rate = 0.01;
  /// Fraction of active VPs that start drifting per epoch (drift persists).
  double drift_onset_rate = 0.01;
  /// Reported-location drift step per epoch for a drifting VP, km.
  double drift_step_km = 12.0;
  /// Chance a reassigned prefix lands on another continent.
  double intercontinental_rate = 0.3;

  /// Defaults overlaid with the GEOLOC_CHURN_* environment knobs (rates are
  /// given as integer permille, e.g. GEOLOC_CHURN_PREFIX_PM=20 -> 0.02;
  /// see util/env.h for the registry).
  [[nodiscard]] static ChurnConfig from_env();
};

/// What one epoch of churn did to the world — the ground truth a
/// longitudinal evaluation scores policies against.
struct EpochChurnSummary {
  std::uint64_t epoch = 0;
  std::size_t prefixes_reassigned = 0;  ///< /24s relocated (incl. wave moves)
  std::size_t waves_started = 0;
  std::size_t waves_active = 0;         ///< migrations still draining after the epoch
  std::size_t hosts_relocated = 0;      ///< individual sub-/24 moves
  std::size_t vps_decommissioned = 0;
  std::size_t vps_added = 0;
  std::size_t vps_drifting = 0;         ///< total drifting after this epoch
  /// The /24s that actually moved this epoch, sorted ascending — what a
  /// perfect oracle policy would re-measure.
  std::vector<net::Prefix> moved_prefixes;
};

/// Applies churn to a World, epoch by epoch. The target set fixes the /24
/// universe that can be reassigned; the VP set seeds the active pool that
/// decommissioning shrinks and additions grow.
class ChurnModel {
 public:
  ChurnModel(World& world, std::span<const HostId> targets,
             std::span<const HostId> vps, const ChurnConfig& config = {});

  /// Apply one epoch of churn. Epochs must be advanced in order starting
  /// at 1; each is a deterministic function of (config seed, epoch, state
  /// left by the previous epochs).
  EpochChurnSummary advance(std::uint64_t epoch);

  /// VPs still in service (initial set minus decommissions plus additions),
  /// in deterministic order. Valid until the next advance().
  [[nodiscard]] std::span<const HostId> active_vps() const noexcept {
    return active_vps_;
  }
  /// Prefixes the model may reassign (the targets' /24s, sorted).
  [[nodiscard]] std::span<const net::Prefix> prefix_universe() const noexcept {
    return prefixes_;
  }
  [[nodiscard]] const ChurnConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t epochs_applied() const noexcept {
    return epochs_applied_;
  }

 private:
  struct Migration {
    std::uint32_t block16 = 0;          ///< /16 network being renumbered
    PlaceId destination = 0;
    std::vector<std::size_t> remaining; ///< prefix indices not yet moved
  };

  void reassign_prefix(std::size_t prefix_idx, PlaceId place,
                       util::Pcg32& gen);
  [[nodiscard]] PlaceId pick_destination(PlaceId from, util::Pcg32& gen) const;

  World* world_;
  ChurnConfig config_;
  std::vector<net::Prefix> prefixes_;           ///< sorted /24 universe
  std::vector<std::vector<HostId>> prefix_hosts_;  ///< hosts per prefix
  std::vector<char> prefix_migrating_;          ///< in an active wave
  std::vector<HostId> active_vps_;
  std::vector<HostId> movable_hosts_;           ///< non-anchor relocation pool
  std::vector<Migration> migrations_;
  /// Drifting VPs with their persistent bearing, in onset order (a vector,
  /// not a map: drift steps must apply in a deterministic order).
  std::vector<std::pair<HostId, double>> drifters_;
  std::unordered_set<HostId> drifting_;  ///< membership mirror of drifters_
  std::size_t initial_vp_count_ = 0;
  std::uint64_t epochs_applied_ = 0;
};

}  // namespace geoloc::sim
