// City gazetteer: the geographic scaffold of the simulated Internet.
//
// The real study places 723 RIPE Atlas anchors in 441 cities and ~10k probes
// across 172 countries. Our world model places hosts in (a) an embedded
// catalogue of real cities with real coordinates and approximate populations,
// and (b) procedurally generated satellite towns around them (see
// sim/world.h), which refine the population-density surface and provide the
// long tail of locations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "geo/geopoint.h"

namespace geoloc::sim {

/// Continent codes following the paper's Figure 4 split.
enum class Continent : std::uint8_t { AF, AS, EU, NA, OC, SA };

/// Two-letter label, e.g. "EU".
std::string_view to_string(Continent c) noexcept;

/// All six continents, in the paper's figure order (AS, AF, OC, NA, EU, SA).
std::span<const Continent> all_continents() noexcept;

/// One gazetteer entry.
struct CityRecord {
  std::string_view name;
  std::string_view country;  ///< ISO-3166 alpha-2
  Continent continent;
  double lat_deg;
  double lon_deg;
  double population_k;  ///< metro population, thousands (approximate)
};

/// The embedded real-city catalogue, sorted by continent then name.
std::span<const CityRecord> gazetteer() noexcept;

}  // namespace geoloc::sim
