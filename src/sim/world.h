// The simulated Internet's static structure: places (real cities plus
// procedurally generated satellite towns), autonomous systems, hosts,
// address allocation and a BGP-style prefix table.
//
// The World holds no latency logic (see sim/latency_model.h) and no
// measurement logic (see atlas/platform.h); it is the registry those
// components read.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/geopoint.h"
#include "net/ipv4.h"
#include "net/prefix_table.h"
#include "sim/city.h"
#include "util/rng.h"

namespace geoloc::sim {

/// CAIDA-style AS business categories (paper Table 2).
enum class AsCategory : std::uint8_t {
  Content,
  Access,
  TransitAccess,
  Enterprise,
  Tier1,
  Unknown,
};
std::string_view to_string(AsCategory c) noexcept;
std::span<const AsCategory> all_as_categories() noexcept;

/// ASdb-style sector labels (16 categories; paper Section 4.4.1).
std::span<const std::string_view> as_sector_names() noexcept;

struct AsInfo {
  net::Asn asn;
  AsCategory category = AsCategory::Unknown;
  int sector = 0;  ///< index into as_sector_names()
};

/// Index into World::places().
using PlaceId = std::uint32_t;

/// A city or satellite town where hosts can be located.
struct Place {
  std::string name;
  std::string country;
  Continent continent = Continent::EU;
  geo::GeoPoint location;
  double population_k = 0.0;
  bool satellite = false;   ///< procedurally generated town
  PlaceId parent = 0;       ///< the real city this satellite orbits (self for cities)
};

/// Index into World::hosts().
using HostId = std::uint32_t;
inline constexpr HostId kInvalidHost = ~HostId{0};

enum class HostKind : std::uint8_t {
  Anchor,          ///< RIPE Atlas anchor (target and VP)
  Probe,           ///< RIPE Atlas probe (VP only)
  Representative,  ///< hitlist address in a target's /24
  WebServer,       ///< hosts a website (landmark candidate)
  Router,          ///< topology waypoint
};
std::string_view to_string(HostKind k) noexcept;

struct Host {
  HostId id = kInvalidHost;
  net::IPv4Address addr;
  net::Asn asn;
  PlaceId place = 0;
  HostKind kind = HostKind::Router;
  geo::GeoPoint true_location;
  geo::GeoPoint reported_location;  ///< differs when misgeolocated
  double last_mile_ms = 0.0;        ///< deterministic access-delay component
  bool misgeolocated = false;
  bool responsive = true;
};

struct WorldConfig {
  std::uint64_t seed = 20230415;      ///< the study's measurement period
  double satellites_per_city = 2.5;   ///< mean satellite towns per real city
  double satellite_min_km = 12.0;     ///< satellite distance band
  double satellite_max_km = 75.0;
  double more_specific_announce_rate = 0.3;  ///< sites announcing their /24 in BGP

  /// Regional access quality. In a "poorly connected" city, traffic to or
  /// from ANY local host detours through remote exchange points
  /// (tromboning), adding a flat per-endpoint delay. This is the mechanism
  /// behind the IMC'23 paper's high-error targets whose *close* probes
  /// still reported ~8 ms (Section 5.1.5), and the model's main lever on
  /// the all-VP CBG city-level fraction (73% in the paper).
  std::array<double, 6> poorly_connected_city_prob = {
      // indexed by Continent: AF, AS, EU, NA, OC, SA
      0.04, 0.58, 0.40, 0.50, 0.62, 0.62};
  double access_penalty_floor_ms = 2.0;
  double access_penalty_mean_ms = 4.5;  ///< exponential above the floor
  /// Fraction of poorly connected cities that still have a metro exchange:
  /// intra-city traffic stays local (no penalty) even though every
  /// inter-city path trombones.
  double local_peering_rate = 0.5;
};

/// The static world. Built incrementally by dataset/scenario builders,
/// then treated as immutable by measurement engines.
class World {
 public:
  explicit World(const WorldConfig& config = {});

  // -- places ------------------------------------------------------------
  [[nodiscard]] std::span<const Place> places() const noexcept { return places_; }
  [[nodiscard]] const Place& place(PlaceId id) const { return places_.at(id); }
  /// Ids of non-satellite (real-city) places.
  [[nodiscard]] std::span<const PlaceId> cities() const noexcept { return cities_; }

  /// Per-endpoint tromboning delay of the place's parent city (0 for well
  /// connected cities). Added to every RTT with an endpoint there.
  [[nodiscard]] double access_penalty_ms(PlaceId place) const;
  /// True when the place's parent city keeps intra-city traffic local (its
  /// access penalty is waived for same-city pairs).
  [[nodiscard]] bool has_local_peering(PlaceId place) const;
  /// Cities with a non-zero access penalty.
  [[nodiscard]] std::span<const PlaceId> poorly_connected_cities()
      const noexcept {
    return poor_cities_;
  }

  // -- autonomous systems -------------------------------------------------
  /// Mint a new AS with the given category and sector.
  net::Asn create_as(AsCategory category, int sector);
  [[nodiscard]] const AsInfo& as_info(net::Asn asn) const;
  [[nodiscard]] std::span<const AsInfo> ases() const noexcept { return ases_; }

  // -- addressing ---------------------------------------------------------
  /// Allocate the next /24 site prefix owned by `asn`; registers the
  /// covering /16 (and sometimes the /24 itself) in the BGP table.
  net::Prefix allocate_site_prefix(net::Asn asn);
  /// BGP-style origin lookup (longest-prefix match).
  [[nodiscard]] std::optional<std::pair<net::Prefix, net::Asn>> bgp_lookup(
      net::IPv4Address addr) const;
  [[nodiscard]] const net::PrefixTable<net::Asn>& bgp_table() const noexcept {
    return bgp_;
  }

  // -- hosts --------------------------------------------------------------
  /// Register a host; fills in its id and returns it.
  HostId add_host(Host host);
  [[nodiscard]] const Host& host(HostId id) const { return hosts_.at(id); }
  [[nodiscard]] std::span<const Host> hosts() const noexcept { return hosts_; }
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }
  [[nodiscard]] std::optional<HostId> find_by_addr(net::IPv4Address a) const;

  /// Mark a host as misgeolocated: its reported location is moved to
  /// `reported` while its true location (and therefore its latencies)
  /// stay put. Used to seed the Section 4.3 sanitisation experiment.
  void misgeolocate(HostId id, const geo::GeoPoint& reported);

  /// Move a host to a new place (tenancy change: the address now terminates
  /// somewhere else, so its latencies change from the next measurement on).
  /// The reported location follows the true one unless the host was
  /// misgeolocated — a liar keeps lying from its new home. Ensures the new
  /// place has a topology router. Used by the churn model (sim/churn.h).
  void relocate_host(HostId id, PlaceId place, const geo::GeoPoint& location);

  /// (De)commission a host: an unresponsive host answers no echo request
  /// until recommissioned. Used by the churn model for retired anchors/VPs.
  void set_responsive(HostId id, bool responsive);

  /// The topology router serving a place (created on demand).
  HostId router_of(PlaceId place);
  /// Const lookup; kInvalidHost when the place has no router yet.
  [[nodiscard]] HostId router_of(PlaceId place) const noexcept;

  // -- misc ---------------------------------------------------------------
  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] util::RngStream rng() const noexcept { return rng_; }

  /// Pick a place for a new host: a real city chosen with probability
  /// proportional to population within `continent`, then possibly displaced
  /// to one of its satellites with probability `satellite_bias`.
  PlaceId sample_place(Continent continent, double satellite_bias,
                       util::Pcg32& gen) const;

  /// A concrete location for a host in `place`: the place centre displaced
  /// by an exponential radial offset with the given mean.
  geo::GeoPoint sample_location(PlaceId place, double mean_offset_km,
                                util::Pcg32& gen) const;

  /// Urban fabric: every place has a deterministic set of hotspots
  /// (business districts, campuses, datacenter parks). Anchors and locally
  /// hosted websites both concentrate there — the spatial correlation
  /// behind the street-level paper's "there is a landmark near the target"
  /// insight and our Figure 5b calibration.
  [[nodiscard]] int hotspot_count(PlaceId place) const;
  [[nodiscard]] geo::GeoPoint hotspot(PlaceId place, int k) const;

  /// Sample a location that sits near a hotspot with probability
  /// `hotspot_prob` (displaced exponentially with mean `tight_km`),
  /// otherwise anywhere around the place centre (mean `loose_km`).
  geo::GeoPoint sample_urban_location(PlaceId place, double hotspot_prob,
                                      double tight_km, double loose_km,
                                      util::Pcg32& gen) const;

 private:
  void build_places();

  WorldConfig config_;
  util::RngStream rng_;
  std::vector<Place> places_;
  std::vector<PlaceId> cities_;
  std::vector<double> city_penalty_ms_;  // indexed by city PlaceId
  std::vector<char> city_local_peering_;  // indexed by city PlaceId
  std::vector<PlaceId> poor_cities_;
  // population-weighted sampling: per continent, cumulative weights over cities_
  std::unordered_map<std::uint8_t, std::vector<double>> city_cumweight_;
  std::unordered_map<std::uint8_t, std::vector<PlaceId>> city_by_continent_;
  // satellites of each city
  std::vector<std::vector<PlaceId>> satellites_of_;

  std::vector<AsInfo> ases_;
  std::unordered_map<std::uint32_t, std::size_t> as_index_;
  std::unordered_map<std::uint32_t, std::uint32_t> as_current_block_;  // asn -> /16 base
  std::unordered_map<std::uint32_t, std::uint32_t> as_next_site_;     // asn -> next /24 index
  std::uint32_t next_block16_ = 0x01000000;  // 1.0.0.0, advances by /16
  net::PrefixTable<net::Asn> bgp_;

  std::vector<Host> hosts_;
  std::unordered_map<std::uint32_t, HostId> host_by_addr_;
  std::unordered_map<PlaceId, HostId> router_by_place_;
  net::Asn router_as_{};
};

}  // namespace geoloc::sim
