// RTT synthesis between simulated hosts.
//
// Model (DESIGN.md "SOI-safe latency model"):
//
//   RTT(a,b) = prop(d_true(a,b)) * inflation(a,b)        // path circuitousness
//            + overhead(a,b)                             // serialization, hops
//            + last_mile(a) + last_mile(b)               // access delay
//            + jitter                                    // per measurement
//
// with prop(d) the 2/3-c great-circle minimum, inflation >= min_inflation > 1
// and everything else non-negative — so an RTT can never violate the speed
// of Internet with respect to the hosts' *true* locations. Hosts whose
// *reported* location is wrong are exactly the ones the paper's Section 4.3
// sanitiser catches.
//
// The deterministic components (inflation, overhead, asymmetry) are seeded
// per host pair, so repeated measurements of a pair are consistent up to
// jitter, like a real path.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "geo/geodesy_batch.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::sim {

struct LatencyModelConfig {
  double min_inflation = 1.05;     ///< floor on path circuitousness
  /// Path circuitousness is a property of the route between two metros, so
  /// the bulk of it is drawn per *city pair*; a small per-host-pair factor
  /// captures intra-metro differences. Two hosts of the same city pair thus
  /// see nearly the same inflation — which is what keeps the street-level
  /// D1/D2 subtraction meaningful at all.
  double inflation_mu = 0.24;      ///< city-pair lognormal location
  double inflation_sigma = 0.20;   ///< city-pair lognormal scale
  double inflation_host_sigma = 0.05;  ///< per-host-pair lognormal scale
  /// Extra multiplicative inflation applied to short paths: real short paths
  /// detour through metro POPs, so the *relative* inflation grows as the
  /// geodesic shrinks. Multiplier = 1 + short_path_boost_km / (d + short_path_floor_km).
  double short_path_boost_km = 30.0;
  double short_path_floor_km = 35.0;
  /// Additive overhead, also split into a city-pair part (scaled down for
  /// short paths, which cross fewer devices) and a host-local part.
  double overhead_mean_ms = 0.8;        ///< city-pair component (exponential)
  double overhead_local_mean_ms = 0.15; ///< host-pair component (exponential)
  double jitter_mean_ms = 0.12;    ///< per-measurement additive jitter (exponential)
  double loss_rate = 0.006;        ///< per-packet loss probability
  /// Reverse-path asymmetry of router hop RTTs (lognormal sigma of the
  /// per-(src,router) multiplier). Drives the D1+D2 noise of Section 5.2.3.
  double router_asym_sigma = 0.25;
  /// Router ICMP generation delay: exponential mean + Pareto tail.
  double router_icmp_mean_ms = 6.5;
  double router_icmp_tail_scale_ms = 0.6;
  double router_icmp_tail_alpha = 1.6;
  double router_icmp_tail_prob = 0.35;
};

/// Synthesises RTT samples. Thread-safe: all methods are const and callers
/// supply their own generator for the per-measurement randomness.
class LatencyModel {
 public:
  LatencyModel(const World& world, const LatencyModelConfig& config = {});

  /// Deterministic RTT floor for the pair: everything except jitter.
  [[nodiscard]] double base_rtt_ms(HostId a, HostId b) const;

  /// One echo-request sample (base + jitter). Does not model loss.
  [[nodiscard]] double sample_rtt_ms(HostId a, HostId b,
                                     util::Pcg32& gen) const;

  /// Minimum of `packets` samples with loss; returns nullopt when the
  /// destination is unresponsive or every packet was lost.
  [[nodiscard]] std::optional<double> min_rtt_ms(HostId src, HostId dst,
                                                 int packets,
                                                 util::Pcg32& gen) const;

  /// One ping measurement with per-packet accounting.
  struct PingSample {
    std::optional<double> min_rtt_ms;  ///< nullopt: no packet came back
    int packets_received = 0;
  };

  /// Like min_rtt_ms, but also reports how many of the `packets` echo
  /// requests were answered — the observable loss a real platform reports.
  /// Consumes the generator identically to min_rtt_ms (same draw order), so
  /// the two are interchangeable without perturbing downstream streams.
  [[nodiscard]] PingSample ping_sample(HostId src, HostId dst, int packets,
                                       util::Pcg32& gen) const;

  // -- batched SoA path (DESIGN.md §14) -----------------------------------
  // The streaming tile pipeline synthesises base RTTs one VP row at a time
  // against thousands of destinations. The scalar path would chase Host and
  // Place pointers and re-hash the substream labels for every cell; the
  // batch path gathers the world fields once per host list, hoists the
  // label hashes, caches the per-city-pair draws within a row, and takes
  // its distances from the bit-identical batch kernel — so the outputs
  // equal the scalar path double for double (asserted by the scale suite).

  /// SoA gather of exactly the World/Host fields base_rtt_ms reads.
  struct HostSoA {
    std::vector<HostId> ids;
    std::vector<geo::GeoPoint> location;  ///< true locations (kernel `from` side)
    geo::PointsSoA points;                ///< true locations, precomputed terms
    std::vector<std::uint64_t> city;      ///< parent city of the host's place
    std::vector<double> last_mile_ms;
    std::vector<double> access_penalty_ms;
    std::vector<char> local_peering;      ///< has_local_peering(host.place)
    std::vector<char> responsive;

    [[nodiscard]] std::size_t size() const noexcept { return ids.size(); }
  };
  [[nodiscard]] HostSoA host_soa(std::span<const HostId> hosts) const;

  /// The two draws base_rtt_ms keys on the unordered *city* pair. They are
  /// values, not generator state — each (pair, label) substream is
  /// independent — so caching them per row is exact, and a row over one
  /// metro's targets pays the lognormal/exponential machinery once per
  /// distinct city instead of once per cell.
  struct CityPairDraws {
    double inflation_city = 0.0;  ///< lognormal(inflation_mu, inflation_sigma)
    double overhead_city = 0.0;   ///< exponential(overhead_mean_ms)
  };
  using CityPairCache = std::unordered_map<std::uint64_t, CityPairDraws>;

  /// out[j - begin] = base_rtt_ms(src.ids[i], dst.ids[j]) for j in
  /// [begin, end), bit-identical to the scalar method. `cache` persists
  /// across calls for the same row (or any rows — it is keyed on the
  /// unordered city pair, which is row-independent).
  void base_rtt_ms_batch(const HostSoA& src, std::size_t i, const HostSoA& dst,
                         std::size_t begin, std::size_t end,
                         CityPairCache& cache, double* out) const;

  /// ping_sample with the pair's deterministic base RTT already in hand:
  /// consumes `gen` identically to ping_sample(src, dst, ...) and returns
  /// the same value when (base_rtt, responsive) match that pair. The tile
  /// generator calls this with batched bases; the scalar ping_sample is a
  /// thin wrapper, so the loss/jitter logic exists exactly once.
  [[nodiscard]] PingSample ping_sample_with_base(double base_rtt,
                                                 bool responsive, int packets,
                                                 util::Pcg32& gen) const;

  /// The RTT a traceroute from `src` reports for intermediate router `hop`:
  /// base RTT skewed by reverse-path asymmetry plus the router's ICMP
  /// generation delay. Noisier than an end-to-end ping by construction.
  [[nodiscard]] double router_hop_rtt_ms(HostId src, HostId hop,
                                         util::Pcg32& gen) const;

  /// Deterministic path-circuitousness multiplier for the pair (>= 1).
  [[nodiscard]] double pair_inflation(HostId a, HostId b) const;

  [[nodiscard]] const LatencyModelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const World& world() const noexcept { return *world_; }

 private:
  [[nodiscard]] util::Pcg32 pair_gen(HostId a, HostId b,
                                     std::string_view label) const;
  /// Generator keyed on the unordered pair of *parent cities* — the
  /// path-level randomness shared by all host pairs of a city pair.
  [[nodiscard]] util::Pcg32 city_pair_gen(HostId a, HostId b,
                                          std::string_view label) const;

  const World* world_;
  LatencyModelConfig config_;
  std::uint64_t seed_;
};

}  // namespace geoloc::sim
