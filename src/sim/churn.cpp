#include "sim/churn.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "geo/geodesy.h"
#include "util/env.h"

namespace geoloc::sim {

namespace {

/// Permille env knob overlaying a rate default (util::env::int_or only
/// accepts positive integers, so 0 must come from ChurnConfig directly).
double permille_or(const char* name, double fallback) {
  const int pm = util::env::int_or(name, -1);
  return pm > 0 ? static_cast<double>(pm) / 1000.0 : fallback;
}

}  // namespace

ChurnConfig ChurnConfig::from_env() {
  ChurnConfig c;
  c.seed = static_cast<std::uint64_t>(
      util::env::int_or("GEOLOC_CHURN_SEED", static_cast<int>(c.seed)));
  c.prefix_reassignment_rate =
      permille_or("GEOLOC_CHURN_PREFIX_PM", c.prefix_reassignment_rate);
  c.wave_fraction = permille_or("GEOLOC_CHURN_WAVE_PM", c.wave_fraction);
  c.host_relocation_rate =
      permille_or("GEOLOC_CHURN_HOST_PM", c.host_relocation_rate);
  c.vp_decommission_rate =
      permille_or("GEOLOC_CHURN_VP_DECOM_PM", c.vp_decommission_rate);
  c.vp_addition_rate = permille_or("GEOLOC_CHURN_VP_ADD_PM", c.vp_addition_rate);
  c.drift_onset_rate = permille_or("GEOLOC_CHURN_DRIFT_PM", c.drift_onset_rate);
  c.drift_step_km = static_cast<double>(util::env::int_or(
      "GEOLOC_CHURN_DRIFT_KM", static_cast<int>(c.drift_step_km)));
  return c;
}

ChurnModel::ChurnModel(World& world, std::span<const HostId> targets,
                       std::span<const HostId> vps, const ChurnConfig& config)
    : world_(&world), config_(config) {
  // The /24 universe: the targets' prefixes, sorted and deduplicated. A
  // reassignment moves every host inside the prefix (anchor plus hitlist
  // representatives) — the whole block got a new tenant.
  std::unordered_set<HostId> target_set(targets.begin(), targets.end());
  for (const HostId t : targets) {
    prefixes_.push_back(net::slash24_of(world.host(t).addr));
  }
  std::sort(prefixes_.begin(), prefixes_.end());
  prefixes_.erase(std::unique(prefixes_.begin(), prefixes_.end()),
                  prefixes_.end());

  std::unordered_map<std::uint32_t, std::size_t> by_network;
  by_network.reserve(prefixes_.size());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    by_network.emplace(prefixes_[i].network().value(), i);
  }
  prefix_hosts_.resize(prefixes_.size());
  for (const Host& h : world.hosts()) {
    const auto it = by_network.find(net::slash24_of(h.addr).network().value());
    if (it == by_network.end()) continue;
    prefix_hosts_[it->second].push_back(h.id);
    if (!target_set.contains(h.id) && h.kind == HostKind::Representative) {
      movable_hosts_.push_back(h.id);
    }
  }
  prefix_migrating_.assign(prefixes_.size(), 0);
  active_vps_.assign(vps.begin(), vps.end());
  initial_vp_count_ = active_vps_.size();
}

PlaceId ChurnModel::pick_destination(PlaceId from, util::Pcg32& gen) const {
  const Continent here = world_->place(from).continent;
  const Continent continent =
      gen.chance(config_.intercontinental_rate)
          ? all_continents()[gen.index(all_continents().size())]
          : here;
  return world_->sample_place(continent, /*satellite_bias=*/0.25, gen);
}

void ChurnModel::reassign_prefix(std::size_t prefix_idx, PlaceId place,
                                 util::Pcg32& gen) {
  for (const HostId id : prefix_hosts_[prefix_idx]) {
    world_->relocate_host(id, place,
                          world_->sample_location(place, /*mean_offset_km=*/6.0,
                                                  gen));
  }
}

EpochChurnSummary ChurnModel::advance(std::uint64_t epoch) {
  const util::RngStream stream =
      util::RngStream(config_.seed).fork("churn-epoch", epoch);
  EpochChurnSummary s;
  s.epoch = epoch;
  std::vector<char> moved(prefixes_.size(), 0);

  // -- stage 1: active /16 migration waves advance -------------------------
  auto wave_gen = stream.fork("wave").gen();
  for (Migration& m : migrations_) {
    if (m.remaining.empty()) continue;
    const double want =
        static_cast<double>(m.remaining.size()) * config_.wave_fraction;
    std::size_t count = static_cast<std::size_t>(want);
    if (wave_gen.chance(want - static_cast<double>(count))) ++count;
    count = std::max<std::size_t>(count, 1);
    count = std::min(count, m.remaining.size());
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t pick = wave_gen.index(m.remaining.size());
      const std::size_t prefix_idx = m.remaining[pick];
      m.remaining[pick] = m.remaining.back();
      m.remaining.pop_back();
      reassign_prefix(prefix_idx, m.destination, wave_gen);
      prefix_migrating_[prefix_idx] = 0;
      moved[prefix_idx] = 1;
      ++s.prefixes_reassigned;
    }
  }
  std::erase_if(migrations_,
                [](const Migration& m) { return m.remaining.empty(); });

  // -- stage 2: fresh reassignments seed new waves -------------------------
  auto reassign_gen = stream.fork("reassign").gen();
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    if (moved[i] || prefix_migrating_[i]) continue;
    if (!reassign_gen.chance(config_.prefix_reassignment_rate)) continue;
    const PlaceId from =
        prefix_hosts_[i].empty() ? PlaceId{0}
                                 : world_->host(prefix_hosts_[i][0]).place;
    const PlaceId dest = pick_destination(from, reassign_gen);
    reassign_prefix(i, dest, reassign_gen);
    moved[i] = 1;
    ++s.prefixes_reassigned;
    if (config_.wave_fraction <= 0.0) continue;
    // The rest of the covering /16 starts following (operator renumbering).
    Migration m;
    m.block16 = prefixes_[i].network().value() & net::Prefix::mask(16);
    m.destination = dest;
    for (std::size_t j = 0; j < prefixes_.size(); ++j) {
      if (j == i || moved[j] || prefix_migrating_[j]) continue;
      if ((prefixes_[j].network().value() & net::Prefix::mask(16)) !=
          m.block16) {
        continue;
      }
      m.remaining.push_back(j);
      prefix_migrating_[j] = 1;
    }
    if (!m.remaining.empty()) {
      migrations_.push_back(std::move(m));
      ++s.waves_started;
    }
  }
  s.waves_active = migrations_.size();

  // -- stage 3: individual (sub-/24) host relocation -----------------------
  auto host_gen = stream.fork("relocate").gen();
  for (const HostId id : movable_hosts_) {
    if (!host_gen.chance(config_.host_relocation_rate)) continue;
    const Continent continent =
        world_->place(world_->host(id).place).continent;
    const PlaceId place =
        world_->sample_place(continent, /*satellite_bias=*/0.3, host_gen);
    world_->relocate_host(
        id, place, world_->sample_location(place, /*mean_offset_km=*/8.0,
                                           host_gen));
    ++s.hosts_relocated;
  }

  // -- stage 4: VP decommission --------------------------------------------
  auto decom_gen = stream.fork("decommission").gen();
  std::vector<HostId> survivors;
  survivors.reserve(active_vps_.size());
  for (const HostId vp : active_vps_) {
    if (decom_gen.chance(config_.vp_decommission_rate)) {
      world_->set_responsive(vp, false);
      ++s.vps_decommissioned;
      continue;
    }
    survivors.push_back(vp);
  }
  active_vps_ = std::move(survivors);

  // -- stage 5: new probes come online -------------------------------------
  auto add_gen = stream.fork("add").gen();
  const double add_want =
      static_cast<double>(initial_vp_count_) * config_.vp_addition_rate;
  std::size_t add_count = static_cast<std::size_t>(add_want);
  if (add_gen.chance(add_want - static_cast<double>(add_count))) ++add_count;
  for (std::size_t k = 0; k < add_count; ++k) {
    const Continent continent =
        all_continents()[add_gen.index(all_continents().size())];
    const PlaceId place =
        world_->sample_place(continent, /*satellite_bias=*/0.3, add_gen);
    const net::Asn asn = world_->create_as(
        AsCategory::Access,
        static_cast<int>(add_gen.index(as_sector_names().size())));
    const net::Prefix site = world_->allocate_site_prefix(asn);
    Host h;
    h.kind = HostKind::Probe;
    h.asn = asn;
    h.place = place;
    h.true_location = world_->sample_urban_location(place, /*hotspot_prob=*/0.4,
                                                    /*tight_km=*/2.0,
                                                    /*loose_km=*/12.0, add_gen);
    h.last_mile_ms = 1.0 + add_gen.exponential(2.0);
    h.addr = site.address_at(1 + add_gen.bounded(250));
    active_vps_.push_back(world_->add_host(h));
    ++s.vps_added;
  }

  // -- stage 6: reported-location drift ------------------------------------
  auto drift_gen = stream.fork("drift").gen();
  for (auto& [vp, bearing] : drifters_) {
    const Host& h = world_->host(vp);
    world_->misgeolocate(
        vp, geo::destination(h.reported_location, bearing,
                             config_.drift_step_km));
  }
  for (const HostId vp : active_vps_) {
    if (drifting_.contains(vp)) continue;
    if (!drift_gen.chance(config_.drift_onset_rate)) continue;
    const double bearing = drift_gen.uniform(0.0, 360.0);
    drifters_.emplace_back(vp, bearing);
    drifting_.insert(vp);
    const Host& h = world_->host(vp);
    world_->misgeolocate(
        vp, geo::destination(h.reported_location, bearing,
                             config_.drift_step_km));
  }
  s.vps_drifting = drifters_.size();

  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    if (moved[i]) s.moved_prefixes.push_back(prefixes_[i]);
  }
  epochs_applied_ = epoch;
  return s;
}

}  // namespace geoloc::sim
