#include "sim/latency_model.h"

#include <algorithm>
#include <cmath>

#include "geo/constants.h"
#include "geo/geodesy.h"

namespace geoloc::sim {

namespace {

// Substream label hashes of the pair generators, hoisted so the batch path
// does not re-run FNV-1a per cell. Keep in sync with the string literals in
// pair_gen/city_pair_gen call sites below (the scale suite asserts the batch
// path is bit-identical to the scalar one, which pins these).
constexpr std::uint64_t kInflationLabel = util::hash_label("inflation");
constexpr std::uint64_t kInflationHostLabel = util::hash_label("inflation-host");
constexpr std::uint64_t kOverheadCityLabel = util::hash_label("overhead-city");
constexpr std::uint64_t kOverheadLocalLabel = util::hash_label("overhead-local");

/// The shared seed derivation of pair_gen/city_pair_gen with the label
/// already hashed and the unordered pair already split into (lo, hi).
util::Pcg32 keyed_gen(std::uint64_t seed, std::uint64_t label_hash,
                      std::uint64_t lo, std::uint64_t hi) noexcept {
  std::uint64_t s = seed ^ label_hash ^ (lo * 0x9e3779b97f4a7c15ULL) ^
                    (hi * 0xc2b2ae3d27d4eb4fULL);
  return util::Pcg32{util::splitmix64(s)};
}

}  // namespace

LatencyModel::LatencyModel(const World& world, const LatencyModelConfig& config)
    : world_(&world),
      config_(config),
      seed_(world.rng().fork("latency").seed()) {}

util::Pcg32 LatencyModel::pair_gen(HostId a, HostId b,
                                   std::string_view label) const {
  // Unordered pair so RTT(a,b) == RTT(b,a) for the deterministic parts —
  // except for explicitly directional labels, where callers pass (src, hop).
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  std::uint64_t s = seed_ ^ util::hash_label(label) ^ (lo * 0x9e3779b97f4a7c15ULL) ^
                    (hi * 0xc2b2ae3d27d4eb4fULL);
  return util::Pcg32{util::splitmix64(s)};
}

util::Pcg32 LatencyModel::city_pair_gen(HostId a, HostId b,
                                        std::string_view label) const {
  const std::uint64_t ca = world_->place(world_->host(a).place).parent;
  const std::uint64_t cb = world_->place(world_->host(b).place).parent;
  const std::uint64_t lo = std::min(ca, cb);
  const std::uint64_t hi = std::max(ca, cb);
  std::uint64_t s = seed_ ^ util::hash_label(label) ^
                    (lo * 0x9e3779b97f4a7c15ULL) ^ (hi * 0xc2b2ae3d27d4eb4fULL);
  return util::Pcg32{util::splitmix64(s)};
}

double LatencyModel::pair_inflation(HostId a, HostId b) const {
  auto cgen = city_pair_gen(a, b, "inflation");
  auto hgen = pair_gen(a, b, "inflation-host");
  const double raw =
      cgen.lognormal(config_.inflation_mu, config_.inflation_sigma) *
      hgen.lognormal(0.0, config_.inflation_host_sigma);
  const double d = geo::distance_km(world_->host(a).true_location,
                                    world_->host(b).true_location);
  const double short_boost =
      1.0 + config_.short_path_boost_km / (d + config_.short_path_floor_km);
  return std::max(config_.min_inflation, raw * short_boost);
}

double LatencyModel::base_rtt_ms(HostId a, HostId b) const {
  const Host& ha = world_->host(a);
  const Host& hb = world_->host(b);
  const double d = geo::distance_km(ha.true_location, hb.true_location);
  const double prop = geo::distance_to_min_rtt_ms(d);
  // Overhead: path-level (city pair, fewer devices on short paths) plus a
  // host-local component.
  auto cgen = city_pair_gen(a, b, "overhead-city");
  auto lgen = pair_gen(a, b, "overhead-local");
  const double dist_scale = 0.25 + 0.75 * std::min(1.0, d / 500.0);
  const double overhead =
      cgen.exponential(config_.overhead_mean_ms) * dist_scale +
      lgen.exponential(config_.overhead_local_mean_ms);
  // Tromboning penalties; waived for intra-city traffic where the city has
  // a local exchange.
  double penalty = 0.0;
  const bool same_city =
      world_->place(ha.place).parent == world_->place(hb.place).parent;
  if (!(same_city && world_->has_local_peering(ha.place))) {
    penalty = world_->access_penalty_ms(ha.place) +
              world_->access_penalty_ms(hb.place);
  }
  return prop * pair_inflation(a, b) + overhead + ha.last_mile_ms +
         hb.last_mile_ms + penalty;
}

double LatencyModel::sample_rtt_ms(HostId a, HostId b,
                                   util::Pcg32& gen) const {
  return base_rtt_ms(a, b) + gen.exponential(config_.jitter_mean_ms);
}

std::optional<double> LatencyModel::min_rtt_ms(HostId src, HostId dst,
                                               int packets,
                                               util::Pcg32& gen) const {
  return ping_sample(src, dst, packets, gen).min_rtt_ms;
}

LatencyModel::PingSample LatencyModel::ping_sample(HostId src, HostId dst,
                                                   int packets,
                                                   util::Pcg32& gen) const {
  if (!world_->host(dst).responsive) return {};
  return ping_sample_with_base(base_rtt_ms(src, dst), /*responsive=*/true,
                               packets, gen);
}

LatencyModel::PingSample LatencyModel::ping_sample_with_base(
    double base_rtt, bool responsive, int packets, util::Pcg32& gen) const {
  PingSample sample;
  if (!responsive) return sample;
  for (int i = 0; i < packets; ++i) {
    if (gen.chance(config_.loss_rate)) continue;
    const double rtt = base_rtt + gen.exponential(config_.jitter_mean_ms);
    ++sample.packets_received;
    if (!sample.min_rtt_ms || rtt < *sample.min_rtt_ms) sample.min_rtt_ms = rtt;
  }
  return sample;
}

LatencyModel::HostSoA LatencyModel::host_soa(
    std::span<const HostId> hosts) const {
  HostSoA soa;
  const std::size_t n = hosts.size();
  soa.ids.assign(hosts.begin(), hosts.end());
  soa.location.reserve(n);
  soa.points.reserve(n);
  soa.city.reserve(n);
  soa.last_mile_ms.reserve(n);
  soa.access_penalty_ms.reserve(n);
  soa.local_peering.reserve(n);
  soa.responsive.reserve(n);
  for (const HostId id : hosts) {
    if (id == kInvalidHost) {
      // Placeholder slot (e.g. a /24 with fewer than three usable
      // representatives): never responsive, so its base RTT is never
      // consumed and no packet draws happen — identical to probing an
      // unresponsive host.
      soa.location.emplace_back();
      soa.points.push_back(geo::GeoPoint{});
      soa.city.push_back(0);
      soa.last_mile_ms.push_back(0.0);
      soa.access_penalty_ms.push_back(0.0);
      soa.local_peering.push_back(0);
      soa.responsive.push_back(0);
      continue;
    }
    const Host& h = world_->host(id);
    soa.location.push_back(h.true_location);
    soa.points.push_back(h.true_location);
    soa.city.push_back(world_->place(h.place).parent);
    soa.last_mile_ms.push_back(h.last_mile_ms);
    soa.access_penalty_ms.push_back(world_->access_penalty_ms(h.place));
    soa.local_peering.push_back(world_->has_local_peering(h.place) ? 1 : 0);
    soa.responsive.push_back(h.responsive ? 1 : 0);
  }
  return soa;
}

void LatencyModel::base_rtt_ms_batch(const HostSoA& src, std::size_t i,
                                     const HostSoA& dst, std::size_t begin,
                                     std::size_t end, CityPairCache& cache,
                                     double* out) const {
  if (begin >= end) return;
  // Pass 1: great-circle distances into `out`, bit-identical to the scalar
  // distance_km per the batch-kernel contract. Pass 2 consumes each d and
  // overwrites the slot with the finished base RTT, replicating the scalar
  // base_rtt_ms / pair_inflation expressions term for term and in the same
  // association — that is what makes the tile pipeline byte-identical to
  // the dense one.
  geo::distance_km_batch(src.location[i], dst.points, begin, end, out);
  const std::uint64_t city_a = src.city[i];
  const std::uint64_t host_a = src.ids[i];
  for (std::size_t j = begin; j < end; ++j) {
    const double d = out[j - begin];
    const double prop = geo::distance_to_min_rtt_ms(d);
    const std::uint64_t city_b = dst.city[j];
    const std::uint64_t clo = std::min(city_a, city_b);
    const std::uint64_t chi = std::max(city_a, city_b);
    const auto [it, fresh] = cache.try_emplace((clo << 32) | chi);
    if (fresh) {
      auto cigen = keyed_gen(seed_, kInflationLabel, clo, chi);
      it->second.inflation_city =
          cigen.lognormal(config_.inflation_mu, config_.inflation_sigma);
      auto cogen = keyed_gen(seed_, kOverheadCityLabel, clo, chi);
      it->second.overhead_city = cogen.exponential(config_.overhead_mean_ms);
    }
    const std::uint64_t host_b = dst.ids[j];
    const std::uint64_t hlo = std::min(host_a, host_b);
    const std::uint64_t hhi = std::max(host_a, host_b);
    auto hgen = keyed_gen(seed_, kInflationHostLabel, hlo, hhi);
    const double raw = it->second.inflation_city *
                       hgen.lognormal(0.0, config_.inflation_host_sigma);
    const double short_boost =
        1.0 + config_.short_path_boost_km / (d + config_.short_path_floor_km);
    const double inflation = std::max(config_.min_inflation, raw * short_boost);
    auto lgen = keyed_gen(seed_, kOverheadLocalLabel, hlo, hhi);
    const double dist_scale = 0.25 + 0.75 * std::min(1.0, d / 500.0);
    const double overhead =
        it->second.overhead_city * dist_scale +
        lgen.exponential(config_.overhead_local_mean_ms);
    double penalty = 0.0;
    const bool same_city = city_a == city_b;
    if (!(same_city && src.local_peering[i])) {
      penalty = src.access_penalty_ms[i] + dst.access_penalty_ms[j];
    }
    out[j - begin] = prop * inflation + overhead + src.last_mile_ms[i] +
                     dst.last_mile_ms[j] + penalty;
  }
}

double LatencyModel::router_hop_rtt_ms(HostId src, HostId hop,
                                       util::Pcg32& gen) const {
  // Directional: the reverse path router->src is generally not the forward
  // path reversed, so the hop RTT is the pair base skewed by a deterministic
  // per-(src,hop) factor...
  auto agen = pair_gen(src, hop, "hop-asym");
  // ...fold in direction by hashing src into the label stream explicitly.
  for (std::uint32_t k = 0; k < (src & 3u); ++k) agen();
  const double asym = agen.lognormal(0.0, config_.router_asym_sigma);
  // ...plus the router's ICMP generation delay (control-plane, heavy tail).
  double icmp = gen.exponential(config_.router_icmp_mean_ms);
  if (gen.chance(config_.router_icmp_tail_prob)) {
    icmp += gen.pareto(config_.router_icmp_tail_scale_ms,
                       config_.router_icmp_tail_alpha);
  }
  return base_rtt_ms(src, hop) * asym + icmp +
         gen.exponential(config_.jitter_mean_ms);
}

}  // namespace geoloc::sim
