#include "sim/latency_model.h"

#include <algorithm>
#include <cmath>

#include "geo/constants.h"
#include "geo/geodesy.h"

namespace geoloc::sim {

LatencyModel::LatencyModel(const World& world, const LatencyModelConfig& config)
    : world_(&world),
      config_(config),
      seed_(world.rng().fork("latency").seed()) {}

util::Pcg32 LatencyModel::pair_gen(HostId a, HostId b,
                                   std::string_view label) const {
  // Unordered pair so RTT(a,b) == RTT(b,a) for the deterministic parts —
  // except for explicitly directional labels, where callers pass (src, hop).
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  std::uint64_t s = seed_ ^ util::hash_label(label) ^ (lo * 0x9e3779b97f4a7c15ULL) ^
                    (hi * 0xc2b2ae3d27d4eb4fULL);
  return util::Pcg32{util::splitmix64(s)};
}

util::Pcg32 LatencyModel::city_pair_gen(HostId a, HostId b,
                                        std::string_view label) const {
  const std::uint64_t ca = world_->place(world_->host(a).place).parent;
  const std::uint64_t cb = world_->place(world_->host(b).place).parent;
  const std::uint64_t lo = std::min(ca, cb);
  const std::uint64_t hi = std::max(ca, cb);
  std::uint64_t s = seed_ ^ util::hash_label(label) ^
                    (lo * 0x9e3779b97f4a7c15ULL) ^ (hi * 0xc2b2ae3d27d4eb4fULL);
  return util::Pcg32{util::splitmix64(s)};
}

double LatencyModel::pair_inflation(HostId a, HostId b) const {
  auto cgen = city_pair_gen(a, b, "inflation");
  auto hgen = pair_gen(a, b, "inflation-host");
  const double raw =
      cgen.lognormal(config_.inflation_mu, config_.inflation_sigma) *
      hgen.lognormal(0.0, config_.inflation_host_sigma);
  const double d = geo::distance_km(world_->host(a).true_location,
                                    world_->host(b).true_location);
  const double short_boost =
      1.0 + config_.short_path_boost_km / (d + config_.short_path_floor_km);
  return std::max(config_.min_inflation, raw * short_boost);
}

double LatencyModel::base_rtt_ms(HostId a, HostId b) const {
  const Host& ha = world_->host(a);
  const Host& hb = world_->host(b);
  const double d = geo::distance_km(ha.true_location, hb.true_location);
  const double prop = geo::distance_to_min_rtt_ms(d);
  // Overhead: path-level (city pair, fewer devices on short paths) plus a
  // host-local component.
  auto cgen = city_pair_gen(a, b, "overhead-city");
  auto lgen = pair_gen(a, b, "overhead-local");
  const double dist_scale = 0.25 + 0.75 * std::min(1.0, d / 500.0);
  const double overhead =
      cgen.exponential(config_.overhead_mean_ms) * dist_scale +
      lgen.exponential(config_.overhead_local_mean_ms);
  // Tromboning penalties; waived for intra-city traffic where the city has
  // a local exchange.
  double penalty = 0.0;
  const bool same_city =
      world_->place(ha.place).parent == world_->place(hb.place).parent;
  if (!(same_city && world_->has_local_peering(ha.place))) {
    penalty = world_->access_penalty_ms(ha.place) +
              world_->access_penalty_ms(hb.place);
  }
  return prop * pair_inflation(a, b) + overhead + ha.last_mile_ms +
         hb.last_mile_ms + penalty;
}

double LatencyModel::sample_rtt_ms(HostId a, HostId b,
                                   util::Pcg32& gen) const {
  return base_rtt_ms(a, b) + gen.exponential(config_.jitter_mean_ms);
}

std::optional<double> LatencyModel::min_rtt_ms(HostId src, HostId dst,
                                               int packets,
                                               util::Pcg32& gen) const {
  return ping_sample(src, dst, packets, gen).min_rtt_ms;
}

LatencyModel::PingSample LatencyModel::ping_sample(HostId src, HostId dst,
                                                   int packets,
                                                   util::Pcg32& gen) const {
  PingSample sample;
  if (!world_->host(dst).responsive) return sample;
  const double base = base_rtt_ms(src, dst);
  for (int i = 0; i < packets; ++i) {
    if (gen.chance(config_.loss_rate)) continue;
    const double rtt = base + gen.exponential(config_.jitter_mean_ms);
    ++sample.packets_received;
    if (!sample.min_rtt_ms || rtt < *sample.min_rtt_ms) sample.min_rtt_ms = rtt;
  }
  return sample;
}

double LatencyModel::router_hop_rtt_ms(HostId src, HostId hop,
                                       util::Pcg32& gen) const {
  // Directional: the reverse path router->src is generally not the forward
  // path reversed, so the hop RTT is the pair base skewed by a deterministic
  // per-(src,hop) factor...
  auto agen = pair_gen(src, hop, "hop-asym");
  // ...fold in direction by hashing src into the label stream explicitly.
  for (std::uint32_t k = 0; k < (src & 3u); ++k) agen();
  const double asym = agen.lognormal(0.0, config_.router_asym_sigma);
  // ...plus the router's ICMP generation delay (control-plane, heavy tail).
  double icmp = gen.exponential(config_.router_icmp_mean_ms);
  if (gen.chance(config_.router_icmp_tail_prob)) {
    icmp += gen.pareto(config_.router_icmp_tail_scale_ms,
                       config_.router_icmp_tail_alpha);
  }
  return base_rtt_ms(src, hop) * asym + icmp +
         gen.exponential(config_.jitter_mean_ms);
}

}  // namespace geoloc::sim
