// Simulated wall-clock accounting (paper Figure 6c and Section 5.2.5).
//
// Nothing in the library reads the real clock for logic; elapsed time is a
// *model output*. Each expensive step of a pipeline reports its cost here:
// measurement API rounds (minutes on RIPE Atlas), rate-limited reverse
// geocoding queries (~8/s on the public Overpass/Nominatim setup), and
// website locality tests (1 DNS query + 2 wgets each, run with bounded
// parallelism).
#pragma once

#include <cstdint>

namespace geoloc::sim {

struct CostModelConfig {
  double api_round_seconds = 180.0;      ///< one Atlas measurement round
  double geocode_rate_per_second = 8.0;  ///< observed Nominatim/Overpass limit
  double dns_query_seconds = 0.08;
  double wget_seconds = 0.35;
  int web_test_parallelism = 32;         ///< the paper's 32-core harness
};

/// Accumulates the simulated elapsed time and event counts of one pipeline
/// run. Value type: copy it to snapshot, subtract snapshots for deltas.
class CostModel {
 public:
  explicit CostModel(const CostModelConfig& config = {}) : config_(config) {}

  void charge_api_round() {
    seconds_ += config_.api_round_seconds;
    ++api_rounds_;
  }

  void charge_geocode_queries(std::uint64_t n) {
    seconds_ += static_cast<double>(n) / config_.geocode_rate_per_second;
    geocode_queries_ += n;
  }

  /// One locality test = 1 DNS query + 2 wgets, amortised over the
  /// configured parallelism.
  void charge_web_tests(std::uint64_t n) {
    const double per_test =
        config_.dns_query_seconds + 2.0 * config_.wget_seconds;
    seconds_ += static_cast<double>(n) * per_test /
                static_cast<double>(config_.web_test_parallelism);
    web_tests_ += n;
  }

  void charge_seconds(double s) { seconds_ += s; }

  [[nodiscard]] double elapsed_seconds() const noexcept { return seconds_; }
  [[nodiscard]] std::uint64_t api_rounds() const noexcept { return api_rounds_; }
  [[nodiscard]] std::uint64_t geocode_queries() const noexcept {
    return geocode_queries_;
  }
  [[nodiscard]] std::uint64_t web_tests() const noexcept { return web_tests_; }

  [[nodiscard]] const CostModelConfig& config() const noexcept {
    return config_;
  }

 private:
  CostModelConfig config_;
  double seconds_ = 0.0;
  std::uint64_t api_rounds_ = 0;
  std::uint64_t geocode_queries_ = 0;
  std::uint64_t web_tests_ = 0;
};

}  // namespace geoloc::sim
