#include "sim/evidence.h"

#include <algorithm>
#include <cstdio>

#include "geo/geodesy.h"
#include "net/ipv4.h"
#include "util/env.h"

namespace geoloc::sim {

namespace {

/// Permille env knob overlaying a rate default (util::env::int_or only
/// accepts positive integers, so 0 must come from the config directly).
double permille_or(const char* name, double fallback) {
  const int pm = util::env::int_or(name, -1);
  return pm > 0 ? static_cast<double>(pm) / 1000.0 : fallback;
}

/// The hinted/fed location: the anchor point displaced by an exponential
/// radial offset — operator evidence names a place, not street coordinates.
geo::GeoPoint jitter(const geo::GeoPoint& anchor, double mean_km,
                     util::Pcg32& gen) {
  const double bearing = gen.uniform(0.0, 360.0);
  const double r = gen.exponential(mean_km);
  return geo::destination(anchor, bearing, r);
}

/// A random real city's centre — the "previous tenant" / fabricated entry.
geo::GeoPoint random_city(const World& world, util::Pcg32& gen) {
  const auto cities = world.cities();
  return world.place(cities[gen.index(cities.size())]).location;
}

/// A wrong location that is hard to refute by cross-checking registries:
/// a misgeolocated host lies *consistently* (the evidence repeats its bogus
/// reported location), an honest host's lie has to invent a place.
geo::GeoPoint lie_location(const World& world, const Host& host,
                           double noise_km, util::Pcg32& gen) {
  const geo::GeoPoint base =
      host.misgeolocated ? host.reported_location : random_city(world, gen);
  return jitter(base, noise_km, gen);
}

void append_csv_field(std::string& out, std::string_view s) {
  for (const char c : s) out.push_back(c == ',' ? ' ' : c);
}

void append_feed_line(std::string& out, const World& world, const Host& host,
                      const geo::GeoPoint& loc) {
  const Place& place = world.place(host.place);
  out += net::slash24_of(host.addr).to_string();
  out.push_back(',');
  append_csv_field(out, place.country);
  out.push_back(',');
  append_csv_field(out, place.name);
  char buf[64];
  std::snprintf(buf, sizeof buf, ",%.6f,%.6f\n", loc.lat_deg, loc.lon_deg);
  out += buf;
}

}  // namespace

HintConfig HintConfig::from_env() {
  HintConfig c;
  c.coverage = permille_or("GEOLOC_HINT_COVERAGE_PM", c.coverage);
  c.lie_rate = permille_or("GEOLOC_HINT_LIE_PM", c.lie_rate);
  c.noise_km = static_cast<double>(util::env::int_or(
      "GEOLOC_HINT_NOISE_KM", static_cast<int>(c.noise_km)));
  return c;
}

FeedConfig FeedConfig::from_env() {
  FeedConfig c;
  c.coverage = permille_or("GEOLOC_FEED_COVERAGE_PM", c.coverage);
  c.stale_rate = permille_or("GEOLOC_FEED_STALE_PM", c.stale_rate);
  c.feed_count = util::env::int_or("GEOLOC_FEED_COUNT", c.feed_count);
  // 0 adversaries is the default, so -1 marks "knob unset".
  if (const int adv = util::env::int_or("GEOLOC_FEED_ADVERSARIAL", -1);
      adv > 0) {
    c.adversarial_feeds = adv;
  }
  c.adversarial_lie_rate =
      permille_or("GEOLOC_FEED_LIE_PM", c.adversarial_lie_rate);
  return c;
}

std::vector<LocationHint> generate_hints(const World& world,
                                         std::span<const HostId> targets,
                                         const HintConfig& config,
                                         util::RngStream rng) {
  std::vector<LocationHint> hints;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    util::Pcg32 gen = rng.fork("hint", i).gen();
    if (!gen.chance(config.coverage)) continue;
    const Host& host = world.host(targets[i]);
    LocationHint h;
    h.target = targets[i];
    h.lie = gen.chance(config.lie_rate);
    h.location = h.lie ? lie_location(world, host, config.noise_km, gen)
                       : jitter(host.true_location, config.noise_km, gen);
    hints.push_back(h);
  }
  return hints;
}

std::vector<GeneratedFeed> generate_feeds(const World& world,
                                          std::span<const HostId> targets,
                                          const FeedConfig& config,
                                          util::RngStream rng) {
  const int n_feeds = std::max(config.feed_count, 1);
  std::vector<GeneratedFeed> feeds(static_cast<std::size_t>(n_feeds));
  for (int f = 0; f < n_feeds; ++f) {
    feeds[f].source = "feed-" + std::to_string(f) + ".example";
    feeds[f].text = "# geofeed for " + feeds[f].source +
                    "\n# prefix,country,city,lat,lon\n";
  }

  for (std::size_t i = 0; i < targets.size(); ++i) {
    util::Pcg32 gen = rng.fork("feed", i).gen();
    if (!gen.chance(config.coverage)) continue;
    // Feed membership is position-based (i mod feeds), not coverage-order
    // based, so target i's evidence never depends on its neighbours.
    GeneratedFeed& feed = feeds[i % feeds.size()];
    const bool adversarial_feed =
        static_cast<int>(&feed - feeds.data()) < config.adversarial_feeds;

    const Host& host = world.host(targets[i]);
    GeneratedFeedEntry e;
    e.target = targets[i];
    if (adversarial_feed && gen.chance(config.adversarial_lie_rate)) {
      e.truth = FeedEntryTruth::Adversarial;
      e.location = lie_location(world, host, config.noise_km, gen);
    } else if (gen.chance(config.stale_rate)) {
      // The previous tenant's city: plausible, consistent, and wrong.
      e.truth = FeedEntryTruth::Stale;
      e.location = jitter(random_city(world, gen), config.noise_km, gen);
    } else {
      e.truth = FeedEntryTruth::Honest;
      e.location = jitter(host.true_location, config.noise_km, gen);
    }
    append_feed_line(feed.text, world, host, e.location);
    feed.entries.push_back(e);
  }
  return feeds;
}

}  // namespace geoloc::sim
