#include "landmark/mapping_service.h"

#include "obs/metrics.h"

namespace geoloc::landmark {

std::string MappingService::zone_of(const geo::GeoPoint& p) const {
  return grid_.format(grid_.key_of(p));
}

std::string MappingService::reverse_geocode(const geo::GeoPoint& p) const {
  static obs::Counter& geocodes =
      obs::Registry::instance().counter("spatial.zip.reverse_geocodes");
  geocodes.add();
  queries_.fetch_add(1, std::memory_order_relaxed);
  return zone_of(p);
}

std::vector<std::string> MappingService::neighbor_zones(
    const std::string& zip) const {
  return grid_.neighbor_zones(zip);
}

}  // namespace geoloc::landmark
