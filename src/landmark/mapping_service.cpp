#include "landmark/mapping_service.h"

#include <cmath>
#include <cstdio>

namespace geoloc::landmark {

std::string MappingService::zone_of(const geo::GeoPoint& p) const {
  const int lat_cell =
      static_cast<int>(std::floor((p.lat_deg + 90.0) / cell_deg_));
  const int lon_cell =
      static_cast<int>(std::floor((p.lon_deg + 180.0) / cell_deg_));
  char buf[32];
  std::snprintf(buf, sizeof buf, "Z%05dx%05d", lat_cell, lon_cell);
  return buf;
}

std::string MappingService::reverse_geocode(const geo::GeoPoint& p) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  return zone_of(p);
}

std::vector<std::string> MappingService::neighbor_zones(
    const std::string& zip) const {
  int lat_cell = 0, lon_cell = 0;
  if (std::sscanf(zip.c_str(), "Z%05dx%05d", &lat_cell, &lon_cell) != 2) {
    return {zip};
  }
  std::vector<std::string> zones;
  zones.reserve(9);
  for (int dlat = -1; dlat <= 1; ++dlat) {
    for (int dlon = -1; dlon <= 1; ++dlon) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "Z%05dx%05d", lat_cell + dlat,
                    lon_cell + dlon);
      zones.emplace_back(buf);
    }
  }
  return zones;
}

}  // namespace geoloc::landmark
