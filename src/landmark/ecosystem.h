// The synthetic web ecosystem: websites of points of interest (businesses,
// universities, government offices) with a postal address, a hosting type,
// and — for sites that pass the street-level paper's locality tests — a
// serving host in the simulated world.
//
// Hosting mix and test outcomes are calibrated so the IMC'23 observations
// emerge from the pipeline: ~2-4% of tested websites pass the
// locally-hosted tests (paper: 2.5%), and false passes (CDN/remote sites
// that slip through) have serving infrastructure far from their postal
// address, which is what poisons the tier-3 minimum-delay mapping.
//
// Lookup paths run against spatial::IntervalIndex structures (zip-token
// buckets for websites_in_zip, a poi-location index for passing_near);
// the *_scan methods keep the original linear/hash-grid semantics as the
// reference implementations the equivalence suite compares against.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "landmark/mapping_service.h"
#include "sim/world.h"
#include "spatial/interval_index.h"

namespace geoloc::landmark {

enum class HostingType : std::uint8_t {
  Local,             ///< served on premises, at the postal address
  Cdn,               ///< served by a CDN edge
  RemoteDatacenter,  ///< served from a rented server elsewhere
};
std::string_view to_string(HostingType t) noexcept;

using WebsiteId = std::uint32_t;

struct Website {
  WebsiteId id = 0;
  sim::PlaceId place = 0;
  geo::GeoPoint poi_location;   ///< where the point of interest really is
  std::string recorded_zip;     ///< zip of the postal address on record
  HostingType hosting = HostingType::Cdn;
  bool chain = false;           ///< appears in multiple zips (franchise)
  bool detected_nonlocal = false;  ///< CDN/remote check would flag it
  bool zip_mismatch = false;    ///< postal address disagrees with location
  bool passes_tests = false;    ///< precomputed outcome of all three tests
  sim::HostId server = sim::kInvalidHost;  ///< created for passing sites only
};

struct EcosystemConfig {
  /// Websites per 1000 inhabitants of a place.
  double websites_per_1k_pop = 0.15;
  int max_websites_per_place = 4'500;
  int min_websites_per_city = 6;

  /// Placement: websites cluster at urban hotspots like anchors do.
  double hotspot_prob = 0.8;
  double hotspot_spread_km = 0.9;
  double loose_spread_km = 5.0;

  /// Hosting mix (remainder = RemoteDatacenter).
  double local_share = 0.05;
  double cdn_share = 0.62;

  /// Locality-test behaviour.
  double chain_rate = 0.09;
  double zip_mismatch_rate = 0.50;   ///< postal address in another zone
  double cdn_detect_rate = 0.985;    ///< test 2 catches a CDN site
  double remote_detect_rate = 0.96;  ///< shared-infra heuristics catch a remote site
  double local_false_detect_rate = 0.02;

  /// Serving infrastructure.
  int cdn_pop_count = 40;            ///< CDN edges at the biggest cities
  int datacenter_hub_count = 60;     ///< candidate remote-hosting cities
  double webserver_last_mile_min_ms = 0.05;
  double webserver_last_mile_max_ms = 0.55;
};

class WebEcosystem {
 public:
  /// Generate the ecosystem. Mutates `world` (creates server hosts for
  /// passing websites). `mapping` defines the zip zones used for the
  /// recorded addresses.
  static WebEcosystem build(sim::World& world, const MappingService& mapping,
                            const EcosystemConfig& config = {});

  [[nodiscard]] std::span<const Website> websites() const noexcept {
    return websites_;
  }
  [[nodiscard]] const Website& website(WebsiteId id) const {
    return websites_.at(id);
  }

  /// Websites whose recorded postal address falls in `zip` (the Overpass
  /// "amenities with a website near this zip" query of the replication).
  /// Ascending ID; one zip-token lookup against the interval index.
  [[nodiscard]] std::span<const WebsiteId> websites_in_zip(
      const std::string& zip) const;

  /// Reference implementation: linear scan over every website. Identical
  /// result to websites_in_zip on every input (equivalence suite).
  [[nodiscard]] std::vector<WebsiteId> websites_in_zip_scan(
      const std::string& zip) const;

  /// Concatenation of websites_in_zip over the zone and its 8 neighbours,
  /// in the harvester's zone scan order — the per-sample-point website
  /// query of the tier-2/3 pipeline.
  [[nodiscard]] std::vector<WebsiteId> websites_near_zip(
      const MappingService& mapping, const std::string& zip) const;

  /// Passing websites whose *postal address* is within `radius_km` of `p` —
  /// used by the closest-landmark oracle and the Figure 5b proximity table.
  /// One rect-covering query against the poi-location index, filtered to
  /// the exact probe-cell footprint of the original hash-grid scan so the
  /// result (content and order) is identical to passing_near_scan.
  [[nodiscard]] std::vector<WebsiteId> passing_near(const geo::GeoPoint& p,
                                                    double radius_km) const;

  /// Reference implementation of the original 1-degree hash-grid scan.
  [[nodiscard]] std::vector<WebsiteId> passing_near_scan(
      const geo::GeoPoint& p, double radius_km) const;

  [[nodiscard]] std::size_t total_count() const noexcept {
    return websites_.size();
  }
  [[nodiscard]] std::size_t passing_count() const noexcept {
    return passing_count_;
  }

 private:
  std::vector<Website> websites_;
  /// recorded-zip zone token -> website IDs (ascending within a zone).
  spatial::IntervalIndex zip_index_;
  /// poi-location leaf token -> passing website IDs.
  spatial::IntervalIndex passing_index_;
  spatial::ZipGrid grid_{0.045};  ///< copy of the mapping service's grid
  std::size_t passing_count_ = 0;

  /// The original coarse 1-degree cell key (kept: passing_near's probe
  /// footprint and the scan references are defined in terms of it).
  static std::int64_t cell_of(const geo::GeoPoint& p) noexcept;
};

}  // namespace geoloc::landmark
