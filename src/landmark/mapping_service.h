// Reverse-geocoding stand-in for the local Nominatim instance of the
// replication (the street-level original used Geonames). Maps coordinates
// to zip codes over a deterministic grid of postal zones (~5 km cells), and
// counts queries so pipelines can charge the cost model with the real
// study's observed 8-queries-per-second rate limit.
//
// The zone geometry (key arithmetic, formatting, strict parsing) lives in
// spatial::ZipGrid; this class adds the query counter and the service
// surface the pipelines talk to.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "geo/geopoint.h"
#include "spatial/zip_grid.h"

namespace geoloc::landmark {

class MappingService {
 public:
  /// `cell_deg` controls the zip-zone size: 0.045 deg ~ 5 km.
  explicit MappingService(double cell_deg = 0.045) : grid_(cell_deg) {}

  /// Zip code of the zone containing `p`, e.g. "Z02924x04105".
  [[nodiscard]] std::string reverse_geocode(const geo::GeoPoint& p) const;

  /// Same mapping without counting a query — for internal dataset
  /// construction (the ecosystem labelling websites), not pipeline use.
  [[nodiscard]] std::string zone_of(const geo::GeoPoint& p) const;

  /// The zone and its 8 neighbours — the Overpass-style "amenities with a
  /// website around this area" query footprint used by the landmark
  /// harvester. Returns {zip} for a malformed zone string.
  [[nodiscard]] std::vector<std::string> neighbor_zones(
      const std::string& zip) const;

  [[nodiscard]] std::uint64_t query_count() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }
  void reset_query_count() noexcept {
    queries_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] double cell_deg() const noexcept { return grid_.cell_deg(); }

  /// The zone grid behind the service — the bridge from zip keys to
  /// spatial leaf tokens for index-backed zip lookups.
  [[nodiscard]] const spatial::ZipGrid& grid() const noexcept { return grid_; }

 private:
  spatial::ZipGrid grid_;
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace geoloc::landmark
