#include "landmark/ecosystem.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/geodesy.h"

namespace geoloc::landmark {

std::string_view to_string(HostingType t) noexcept {
  switch (t) {
    case HostingType::Local: return "local";
    case HostingType::Cdn: return "cdn";
    case HostingType::RemoteDatacenter: return "remote";
  }
  return "?";
}

namespace {

/// The `n` most populous real cities — CDN edge / datacenter hub locations.
std::vector<sim::PlaceId> top_cities(const sim::World& world, int n) {
  std::vector<sim::PlaceId> cities(world.cities().begin(),
                                   world.cities().end());
  std::sort(cities.begin(), cities.end(),
            [&world](sim::PlaceId a, sim::PlaceId b) {
              return world.place(a).population_k > world.place(b).population_k;
            });
  if (static_cast<int>(cities.size()) > n) {
    cities.resize(static_cast<std::size_t>(n));
  }
  return cities;
}

sim::PlaceId nearest_of(const sim::World& world,
                        const std::vector<sim::PlaceId>& candidates,
                        const geo::GeoPoint& p) {
  sim::PlaceId best = candidates.front();
  double best_d = std::numeric_limits<double>::infinity();
  for (sim::PlaceId c : candidates) {
    const double d = geo::distance_km(world.place(c).location, p);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

std::int64_t WebEcosystem::cell_of(const geo::GeoPoint& p) noexcept {
  const auto lat = static_cast<std::int64_t>(std::floor(p.lat_deg)) + 90;
  const auto lon = static_cast<std::int64_t>(std::floor(p.lon_deg)) + 180;
  return lat * 4096 + lon;
}

WebEcosystem WebEcosystem::build(sim::World& world,
                                 const MappingService& mapping,
                                 const EcosystemConfig& config) {
  WebEcosystem eco;
  auto gen = world.rng().fork("web-ecosystem").gen();

  const auto cdn_pops = top_cities(world, config.cdn_pop_count);
  const auto hubs = top_cities(world, config.datacenter_hub_count);

  // One AS for the CDN, one per datacenter hub region, one generic hosting
  // AS for local sites (their connectivity is the POI's own uplink).
  const net::Asn cdn_as = world.create_as(sim::AsCategory::Content, 0);
  const net::Asn hosting_as = world.create_as(sim::AsCategory::Content, 0);
  const net::Asn local_as = world.create_as(sim::AsCategory::Enterprise, 0);

  const std::size_t nplaces = world.places().size();
  for (sim::PlaceId place = 0; place < nplaces; ++place) {
    const sim::Place& pl = world.place(place);
    int count = static_cast<int>(pl.population_k * config.websites_per_1k_pop);
    if (!pl.satellite) count = std::max(count, config.min_websites_per_city);
    count = std::min(count, config.max_websites_per_place);

    for (int i = 0; i < count; ++i) {
      Website w;
      w.id = static_cast<WebsiteId>(eco.websites_.size());
      w.place = place;
      w.poi_location = world.sample_urban_location(
          place, config.hotspot_prob, config.hotspot_spread_km,
          config.loose_spread_km, gen);

      const double u = gen.uniform();
      w.hosting = u < config.local_share ? HostingType::Local
                  : u < config.local_share + config.cdn_share
                      ? HostingType::Cdn
                      : HostingType::RemoteDatacenter;

      w.chain = gen.chance(config.chain_rate);
      w.zip_mismatch = gen.chance(config.zip_mismatch_rate);
      // The recorded postal address: usually the POI's own zone; chains and
      // HQ-registered sites record another zone (here: the place centre's).
      w.recorded_zip = w.zip_mismatch
                           ? mapping.zone_of(pl.location)
                           : mapping.zone_of(w.poi_location);

      switch (w.hosting) {
        case HostingType::Local:
          w.detected_nonlocal = gen.chance(config.local_false_detect_rate);
          break;
        case HostingType::Cdn:
          w.detected_nonlocal = gen.chance(config.cdn_detect_rate);
          break;
        case HostingType::RemoteDatacenter:
          w.detected_nonlocal = gen.chance(config.remote_detect_rate);
          break;
      }

      // Test 1 (zip consistency) compares the recorded zip with the zone of
      // the POI coordinates; tests 2-3 are the CDN and multi-zip checks.
      const bool zip_ok =
          w.recorded_zip == mapping.zone_of(w.poi_location);
      w.passes_tests = zip_ok && !w.detected_nonlocal && !w.chain;

      if (w.passes_tests) {
        // Materialise the serving host. For false landmarks (CDN/remote
        // sites that slipped through) it is far from the postal address.
        sim::Host server;
        server.kind = sim::HostKind::WebServer;
        switch (w.hosting) {
          case HostingType::Local: {
            server.asn = local_as;
            server.place = place;
            server.true_location = w.poi_location;
            break;
          }
          case HostingType::Cdn: {
            server.asn = cdn_as;
            server.place = nearest_of(world, cdn_pops, w.poi_location);
            server.true_location = world.sample_location(server.place, 3.0, gen);
            break;
          }
          case HostingType::RemoteDatacenter: {
            server.asn = hosting_as;
            server.place = hubs[gen.index(hubs.size())];
            server.true_location = world.sample_location(server.place, 5.0, gen);
            break;
          }
        }
        server.reported_location = server.true_location;
        server.last_mile_ms = gen.uniform(config.webserver_last_mile_min_ms,
                                          config.webserver_last_mile_max_ms);
        server.addr = net::IPv4Address{0xB0000000 + w.id};  // 176.0.0.0 + id
        world.router_of(server.place);
        w.server = world.add_host(server);

        eco.passing_cells_[cell_of(w.poi_location)].push_back(w.id);
        ++eco.passing_count_;
      }

      eco.by_zip_[w.recorded_zip].push_back(w.id);
      eco.websites_.push_back(std::move(w));
    }
  }
  return eco;
}

std::span<const WebsiteId> WebEcosystem::websites_in_zip(
    const std::string& zip) const {
  const auto it = by_zip_.find(zip);
  if (it == by_zip_.end()) return {};
  return it->second;
}

std::vector<WebsiteId> WebEcosystem::passing_near(const geo::GeoPoint& p,
                                                  double radius_km) const {
  std::vector<WebsiteId> out;
  // Scan the 1-degree cells covering the radius (cheap: radius <= a few
  // hundred km in every caller).
  const double dlat = radius_km / 111.0;
  const double dlon =
      radius_km / std::max(20.0, 111.0 * std::cos(geo::deg_to_rad(p.lat_deg)));
  const int lat_lo = static_cast<int>(std::floor(p.lat_deg - dlat));
  const int lat_hi = static_cast<int>(std::floor(p.lat_deg + dlat));
  const int lon_lo = static_cast<int>(std::floor(p.lon_deg - dlon));
  const int lon_hi = static_cast<int>(std::floor(p.lon_deg + dlon));
  for (int lat = lat_lo; lat <= lat_hi; ++lat) {
    for (int lon = lon_lo; lon <= lon_hi; ++lon) {
      const geo::GeoPoint probe{static_cast<double>(lat) + 0.5,
                                geo::normalize_lon(static_cast<double>(lon) + 0.5)};
      const auto it = passing_cells_.find(cell_of(probe));
      if (it == passing_cells_.end()) continue;
      for (WebsiteId id : it->second) {
        if (geo::distance_km(websites_[id].poi_location, p) <= radius_km) {
          out.push_back(id);
        }
      }
    }
  }
  return out;
}

}  // namespace geoloc::landmark
