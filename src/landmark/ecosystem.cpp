#include "landmark/ecosystem.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "geo/geodesy.h"
#include "obs/metrics.h"

namespace geoloc::landmark {

std::string_view to_string(HostingType t) noexcept {
  switch (t) {
    case HostingType::Local: return "local";
    case HostingType::Cdn: return "cdn";
    case HostingType::RemoteDatacenter: return "remote";
  }
  return "?";
}

namespace {

/// The `n` most populous real cities — CDN edge / datacenter hub locations.
std::vector<sim::PlaceId> top_cities(const sim::World& world, int n) {
  std::vector<sim::PlaceId> cities(world.cities().begin(),
                                   world.cities().end());
  std::sort(cities.begin(), cities.end(),
            [&world](sim::PlaceId a, sim::PlaceId b) {
              return world.place(a).population_k > world.place(b).population_k;
            });
  if (static_cast<int>(cities.size()) > n) {
    cities.resize(static_cast<std::size_t>(n));
  }
  return cities;
}

sim::PlaceId nearest_of(const sim::World& world,
                        const std::vector<sim::PlaceId>& candidates,
                        const geo::GeoPoint& p) {
  sim::PlaceId best = candidates.front();
  double best_d = std::numeric_limits<double>::infinity();
  for (sim::PlaceId c : candidates) {
    const double d = geo::distance_km(world.place(c).location, p);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

/// The original coarse 1-degree cell key.
std::int64_t cell_key(const geo::GeoPoint& p) noexcept {
  const auto lat = static_cast<std::int64_t>(std::floor(p.lat_deg)) + 90;
  const auto lon = static_cast<std::int64_t>(std::floor(p.lon_deg)) + 180;
  return lat * 4096 + lon;
}

/// The probe-cell footprint of a passing_near query: the 1-degree cell
/// keys the original hash-grid scan visits, in its (lat, lon) scan order,
/// duplicates preserved. The footprint — not the exact disk — defines the
/// query's semantics, so the index-backed path reproduces it.
std::vector<std::int64_t> probe_cells(const geo::GeoPoint& p,
                                      double radius_km, int& lat_lo,
                                      int& lat_hi, int& lon_lo, int& lon_hi) {
  const double dlat = radius_km / 111.0;
  const double dlon =
      radius_km / std::max(20.0, 111.0 * std::cos(geo::deg_to_rad(p.lat_deg)));
  lat_lo = static_cast<int>(std::floor(p.lat_deg - dlat));
  lat_hi = static_cast<int>(std::floor(p.lat_deg + dlat));
  lon_lo = static_cast<int>(std::floor(p.lon_deg - dlon));
  lon_hi = static_cast<int>(std::floor(p.lon_deg + dlon));
  std::vector<std::int64_t> probes;
  probes.reserve(static_cast<std::size_t>(lat_hi - lat_lo + 1) *
                 static_cast<std::size_t>(lon_hi - lon_lo + 1));
  for (int lat = lat_lo; lat <= lat_hi; ++lat) {
    for (int lon = lon_lo; lon <= lon_hi; ++lon) {
      const geo::GeoPoint probe{
          static_cast<double>(lat) + 0.5,
          geo::normalize_lon(static_cast<double>(lon) + 0.5)};
      probes.push_back(cell_key(probe));
    }
  }
  return probes;
}

}  // namespace

std::int64_t WebEcosystem::cell_of(const geo::GeoPoint& p) noexcept {
  return cell_key(p);
}

WebEcosystem WebEcosystem::build(sim::World& world,
                                 const MappingService& mapping,
                                 const EcosystemConfig& config) {
  WebEcosystem eco;
  eco.grid_ = mapping.grid();
  auto gen = world.rng().fork("web-ecosystem").gen();

  const auto cdn_pops = top_cities(world, config.cdn_pop_count);
  const auto hubs = top_cities(world, config.datacenter_hub_count);

  // One AS for the CDN, one per datacenter hub region, one generic hosting
  // AS for local sites (their connectivity is the POI's own uplink).
  const net::Asn cdn_as = world.create_as(sim::AsCategory::Content, 0);
  const net::Asn hosting_as = world.create_as(sim::AsCategory::Content, 0);
  const net::Asn local_as = world.create_as(sim::AsCategory::Enterprise, 0);

  const std::size_t nplaces = world.places().size();
  for (sim::PlaceId place = 0; place < nplaces; ++place) {
    const sim::Place& pl = world.place(place);
    int count = static_cast<int>(pl.population_k * config.websites_per_1k_pop);
    if (!pl.satellite) count = std::max(count, config.min_websites_per_city);
    count = std::min(count, config.max_websites_per_place);

    for (int i = 0; i < count; ++i) {
      Website w;
      w.id = static_cast<WebsiteId>(eco.websites_.size());
      w.place = place;
      w.poi_location = world.sample_urban_location(
          place, config.hotspot_prob, config.hotspot_spread_km,
          config.loose_spread_km, gen);

      const double u = gen.uniform();
      w.hosting = u < config.local_share ? HostingType::Local
                  : u < config.local_share + config.cdn_share
                      ? HostingType::Cdn
                      : HostingType::RemoteDatacenter;

      w.chain = gen.chance(config.chain_rate);
      w.zip_mismatch = gen.chance(config.zip_mismatch_rate);
      // The recorded postal address: usually the POI's own zone; chains and
      // HQ-registered sites record another zone (here: the place centre's).
      w.recorded_zip = w.zip_mismatch
                           ? mapping.zone_of(pl.location)
                           : mapping.zone_of(w.poi_location);

      switch (w.hosting) {
        case HostingType::Local:
          w.detected_nonlocal = gen.chance(config.local_false_detect_rate);
          break;
        case HostingType::Cdn:
          w.detected_nonlocal = gen.chance(config.cdn_detect_rate);
          break;
        case HostingType::RemoteDatacenter:
          w.detected_nonlocal = gen.chance(config.remote_detect_rate);
          break;
      }

      // Test 1 (zip consistency) compares the recorded zip with the zone of
      // the POI coordinates; tests 2-3 are the CDN and multi-zip checks.
      const bool zip_ok =
          w.recorded_zip == mapping.zone_of(w.poi_location);
      w.passes_tests = zip_ok && !w.detected_nonlocal && !w.chain;

      if (w.passes_tests) {
        // Materialise the serving host. For false landmarks (CDN/remote
        // sites that slipped through) it is far from the postal address.
        sim::Host server;
        server.kind = sim::HostKind::WebServer;
        switch (w.hosting) {
          case HostingType::Local: {
            server.asn = local_as;
            server.place = place;
            server.true_location = w.poi_location;
            break;
          }
          case HostingType::Cdn: {
            server.asn = cdn_as;
            server.place = nearest_of(world, cdn_pops, w.poi_location);
            server.true_location = world.sample_location(server.place, 3.0, gen);
            break;
          }
          case HostingType::RemoteDatacenter: {
            server.asn = hosting_as;
            server.place = hubs[gen.index(hubs.size())];
            server.true_location = world.sample_location(server.place, 5.0, gen);
            break;
          }
        }
        server.reported_location = server.true_location;
        server.last_mile_ms = gen.uniform(config.webserver_last_mile_min_ms,
                                          config.webserver_last_mile_max_ms);
        server.addr = net::IPv4Address{0xB0000000 + w.id};  // 176.0.0.0 + id
        world.router_of(server.place);
        w.server = world.add_host(server);

        ++eco.passing_count_;
      }

      eco.websites_.push_back(std::move(w));
    }
  }

  // Index construction (the generation loop above is untouched so the RNG
  // draw sequence — and with it every existing artifact — is preserved).
  std::vector<spatial::IntervalIndex::Item> zip_items;
  std::vector<spatial::IntervalIndex::Item> passing_items;
  zip_items.reserve(eco.websites_.size());
  passing_items.reserve(eco.passing_count_);
  for (const Website& w : eco.websites_) {
    // recorded_zip came from ZipGrid::format, so it always parses and is
    // in bounds; the zone representative's leaf token is the bucket key.
    if (const auto key = spatial::ZipGrid::parse(w.recorded_zip)) {
      zip_items.push_back({eco.grid_.representative(*key), w.id});
    }
    if (w.passes_tests) passing_items.push_back({w.poi_location, w.id});
  }
  eco.zip_index_ = spatial::IntervalIndex::build(zip_items);
  eco.passing_index_ = spatial::IntervalIndex::build(passing_items);
  return eco;
}

std::span<const WebsiteId> WebEcosystem::websites_in_zip(
    const std::string& zip) const {
  const auto token = grid_.token_of_zip(zip);
  if (!token) return {};
  return zip_index_.at_token(*token);
}

std::vector<WebsiteId> WebEcosystem::websites_in_zip_scan(
    const std::string& zip) const {
  std::vector<WebsiteId> out;
  for (const Website& w : websites_) {
    if (w.recorded_zip == zip) out.push_back(w.id);
  }
  return out;
}

std::vector<WebsiteId> WebEcosystem::websites_near_zip(
    const MappingService& mapping, const std::string& zip) const {
  std::vector<WebsiteId> out;
  for (const std::string& zone : mapping.neighbor_zones(zip)) {
    const auto ids = websites_in_zip(zone);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

std::vector<WebsiteId> WebEcosystem::passing_near(const geo::GeoPoint& p,
                                                  double radius_km) const {
  static obs::Counter& queries =
      obs::Registry::instance().counter("spatial.eco.passing_near");
  queries.add();

  int lat_lo = 0, lat_hi = 0, lon_lo = 0, lon_hi = 0;
  const std::vector<std::int64_t> probes =
      probe_cells(p, radius_km, lat_lo, lat_hi, lon_lo, lon_hi);

  // One covering query for the whole probe footprint (a guaranteed
  // superset), then the exact per-candidate predicate: within the radius
  // AND in a probed 1-degree cell.
  const auto rect = spatial::LatLonRect::from_degrees(
      lat_lo, static_cast<double>(lat_hi) + 1.0, lon_lo,
      static_cast<double>(lon_hi) + 1.0);
  const std::vector<std::uint32_t> cand =
      passing_index_.candidates_in_rect(rect);

  std::map<std::int64_t, std::vector<WebsiteId>> buckets;
  for (const std::uint32_t id : cand) {
    if (geo::distance_km(websites_[id].poi_location, p) <= radius_km) {
      buckets[cell_of(websites_[id].poi_location)].push_back(id);
    }
  }
  // Candidates arrive in token order; within a 1-degree cell the original
  // scan emits ascending IDs (its buckets were filled in ID order).
  for (auto& [key, ids] : buckets) std::sort(ids.begin(), ids.end());

  std::vector<WebsiteId> out;
  for (const std::int64_t key : probes) {
    if (const auto it = buckets.find(key); it != buckets.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  return out;
}

std::vector<WebsiteId> WebEcosystem::passing_near_scan(
    const geo::GeoPoint& p, double radius_km) const {
  // The original 1-degree hash-grid scan, expressed without the grid: for
  // each probe cell in scan order, every passing site in that cell (by ID,
  // the grid's bucket order) within the radius.
  int lat_lo = 0, lat_hi = 0, lon_lo = 0, lon_hi = 0;
  const std::vector<std::int64_t> probes =
      probe_cells(p, radius_km, lat_lo, lat_hi, lon_lo, lon_hi);
  std::vector<WebsiteId> out;
  for (const std::int64_t key : probes) {
    for (const Website& w : websites_) {
      if (w.passes_tests && cell_of(w.poi_location) == key &&
          geo::distance_km(w.poi_location, p) <= radius_km) {
        out.push_back(w.id);
      }
    }
  }
  return out;
}

}  // namespace geoloc::landmark
