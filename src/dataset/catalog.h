// Generation of the measurement datasets: RIPE-Atlas-like anchors (the
// study's targets and street-level VPs) and probes (the million-scale VPs),
// with the paper's continental distribution, AS-category mix (Table 2),
// last-mile delay mix (Section 4.4.2) and a controlled number of
// mis-geolocated hosts for the Section 4.3 sanitisation to find.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::dataset {

/// Per-continent counts for the sanitised anchor set. Defaults follow the
/// paper's Figure 4 split (EU topped up so the total is the paper's 723).
struct ContinentQuota {
  int af = 16;
  int as = 133;
  int eu = 404;
  int na = 125;
  int oc = 18;
  int sa = 27;

  [[nodiscard]] int total() const noexcept {
    return af + as + eu + na + oc + sa;
  }
  [[nodiscard]] int of(sim::Continent c) const noexcept;
};

/// Probability weights (not exact counts) for probe placement.
struct ContinentWeights {
  double af = 0.032;
  double as = 0.10;
  double eu = 0.60;  ///< RIPE Atlas is Europe-dense (Section 4.4.1)
  double na = 0.20;
  double oc = 0.025;
  double sa = 0.05;

  [[nodiscard]] double of(sim::Continent c) const noexcept;
};

struct CatalogConfig {
  ContinentQuota anchor_quota;       ///< for the post-sanitisation set
  int anchors_misgeolocated = 9;     ///< extra anchors with bogus geolocation
  int probes_kept = 10'000;          ///< post-sanitisation probe count
  int probes_misgeolocated = 96;     ///< extra probes with bogus geolocation
  ContinentWeights probe_weights;

  /// Anchors live in data centres: small, bounded last-mile delay — except
  /// for a per-continent fraction behind poorly connected networks, whose
  /// inbound RTTs carry several extra milliseconds no matter how close the
  /// probe is. The paper observed exactly this for its 26 high-error
  /// European targets (Section 5.1.5: the close probes' median RTT was
  /// 7.96 ms), and it is what bounds CBG at ~73% city-level accuracy.
  double anchor_last_mile_min_ms = 0.05;
  double anchor_last_mile_max_ms = 0.6;
  double anchor_last_mile_high_floor_ms = 1.5;
  double anchor_last_mile_high_mean_ms = 4.5;  ///< exponential above the floor
  std::array<double, 6> anchor_high_last_mile_prob = {
      // indexed by Continent: AF, AS, EU, NA, OC, SA
      0.02, 0.12, 0.10, 0.12, 0.15, 0.15};
  /// Probes are a mixture: most are well connected, but a per-continent
  /// fraction sits behind residential access links with a heavy last mile
  /// (Section 4.4.2). Europe's large home-probe population is what drags
  /// its tail in Figure 4.
  double probe_last_mile_low_min_ms = 0.3;
  double probe_last_mile_low_max_ms = 2.8;
  double probe_last_mile_high_mean_ms = 7.0;  ///< exponential tail
  std::array<double, 6> probe_high_last_mile_prob = {
      // indexed by Continent: AF, AS, EU, NA, OC, SA
      0.04, 0.15, 0.18, 0.15, 0.12, 0.14};

  /// Placement dispersion. Anchor placement is per continent: in regions
  /// with thin coverage (notably Africa) anchors are hosted at the major
  /// hubs — IXPs and capital datacenters — not in satellite towns, which
  /// is what puts them next to the few local probes (paper Section 5.1.5:
  /// Africa outperforms Europe despite far fewer VPs).
  std::array<double, 6> anchor_satellite_bias_by_continent = {
      // indexed by Continent: AF, AS, EU, NA, OC, SA
      0.03, 0.20, 0.25, 0.22, 0.10, 0.12};
  double probe_satellite_bias = 0.35;
  double anchor_offset_mean_km = 6.0;   ///< radial offset from place centre
  double probe_offset_mean_km = 4.0;

  /// AS pool sizes (paper: 561 anchor ASes, 3,494 platform ASes).
  int anchor_as_pool = 561;
  int probe_as_pool = 3'300;

  /// Misgeolocated hosts are moved at least this far (reported vs true).
  double misgeolocation_min_km = 1'500.0;
};

/// The generated datasets, pre-sanitisation (misgeolocated hosts included —
/// running dataset::sanitize_* is the caller's job, as in the paper).
struct Catalog {
  std::vector<sim::HostId> anchors;  ///< size = quota.total() + misgeolocated
  std::vector<sim::HostId> probes;   ///< size = probes_kept + misgeolocated
  /// AS pools actually used, by kind.
  std::vector<net::Asn> anchor_ases;
  std::vector<net::Asn> probe_ases;
};

/// Build the catalogue into `world`. Also pre-creates the topology router
/// of every place that received a host, so the traceroute engine never has
/// to mutate the world.
Catalog build_catalog(sim::World& world, const CatalogConfig& config = {});

/// Count hosts per AS category — the data behind Table 2.
std::unordered_map<sim::AsCategory, int> count_by_as_category(
    const sim::World& world, const std::vector<sim::HostId>& hosts);

/// Count hosts per ASdb-style sector — the "72% Computer and Information
/// Technology" observation of Section 4.4.1.
std::unordered_map<int, int> count_by_as_sector(
    const sim::World& world, const std::vector<sim::HostId>& hosts);

}  // namespace geoloc::dataset
