// Why the million-scale representative discovery does not transfer to
// IPv6 (paper Section 2.1, declared future work): quantifies the chance of
// finding a responsive "representative" neighbour by scanning a prefix,
// given a host population and a probing budget.
//
// In an IPv4 /24, 3 responsive representatives are almost guaranteed (the
// ISI hitlist exists because a /24 is only 256 addresses). In an IPv6 /64,
// even a large site's hosts occupy a ~2^-50 fraction of the prefix, so
// blind scanning finds nothing within any realistic probing budget.
#pragma once

#include <cstdint>

namespace geoloc::dataset {

struct SparsityQuestion {
  int prefix_size_log2 = 64;      ///< /64 -> 64 free bits
  double responsive_hosts = 1e4;  ///< responsive addresses inside the prefix
  double probe_rate_pps = 500.0;  ///< scanning rate
  double budget_seconds = 86'400.0 * 30;  ///< a month of scanning
};

struct SparsityAnswer {
  double addresses = 0.0;          ///< 2^prefix_size_log2 (as double)
  double responsive_density = 0.0; ///< hosts / addresses
  double probes_sent = 0.0;        ///< rate x budget (capped at addresses)
  double expected_hits = 0.0;      ///< probes x density
  double p_at_least_one = 0.0;     ///< 1 - exp(-expected_hits)
  double prefix_coverage = 0.0;    ///< probes / addresses
};

/// Expected outcome of uniformly scanning the prefix for responsive hosts.
SparsityAnswer analyze_sparsity(const SparsityQuestion& q);

}  // namespace geoloc::dataset
