#include "dataset/population_grid.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.h"

namespace geoloc::dataset {

namespace {

constexpr int kCellsPerRow = 4096;  // > 360, keeps keys unique

int cell_key(double lat_deg, double lon_deg) {
  const int lat_cell = static_cast<int>(std::floor(lat_deg)) + 90;
  const int lon_cell = static_cast<int>(std::floor(lon_deg)) + 180;
  return lat_cell * kCellsPerRow + lon_cell;
}

}  // namespace

PopulationGrid::PopulationGrid(const sim::World& world,
                               const PopulationGridConfig& config)
    : config_(config) {
  kernels_.reserve(world.places().size());
  for (const sim::Place& place : world.places()) {
    Kernel k;
    k.center = place.location;
    k.people = place.population_k * 1000.0;
    k.sigma_km = config.base_sigma_km *
                 std::pow(std::max(place.population_k, 1.0),
                          config.sigma_pop_exponent);
    k.norm = k.people / (2.0 * geo::kPi * k.sigma_km * k.sigma_km);
    kernels_.push_back(k);
  }

  // Bucket kernels into 1-degree cells, registering each kernel in every
  // cell within its ~4-sigma reach (sigma is at most a few tens of km, so
  // a one-cell halo suffices away from the poles; use two for safety).
  std::vector<std::pair<int, std::size_t>> entries;
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    const auto& k = kernels_[i];
    const int halo = 2;
    const int base_lat = static_cast<int>(std::floor(k.center.lat_deg));
    const int base_lon = static_cast<int>(std::floor(k.center.lon_deg));
    for (int dlat = -halo; dlat <= halo; ++dlat) {
      for (int dlon = -halo; dlon <= halo; ++dlon) {
        const double lat = std::clamp(static_cast<double>(base_lat + dlat),
                                      -90.0, 89.0);
        const double lon = geo::normalize_lon(
            static_cast<double>(base_lon + dlon));
        entries.emplace_back(cell_key(lat, lon), i);
      }
    }
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [key, idx] : entries) {
    if (cells_.empty() || cells_.back().first != key) {
      cells_.push_back({key, {}});
    }
    auto& bucket = cells_.back().second;
    if (bucket.empty() || bucket.back() != idx) bucket.push_back(idx);
  }
}

std::vector<const PopulationGrid::Kernel*> PopulationGrid::kernels_near(
    const geo::GeoPoint& p) const {
  std::vector<const Kernel*> out;
  const int key = cell_key(p.lat_deg, p.lon_deg);
  const auto it = std::lower_bound(
      cells_.begin(), cells_.end(), key,
      [](const auto& cell, int k) { return cell.first < k; });
  if (it != cells_.end() && it->first == key) {
    out.reserve(it->second.size());
    for (std::size_t idx : it->second) out.push_back(&kernels_[idx]);
  }
  return out;
}

double PopulationGrid::density_per_km2(const geo::GeoPoint& p) const {
  // Snap to the grid granularity so nearby queries agree, like GPWv4 cells.
  const double snap_deg = config_.query_snap_km / 111.0;
  const geo::GeoPoint snapped{
      std::round(p.lat_deg / snap_deg) * snap_deg,
      std::round(p.lon_deg / snap_deg) * snap_deg};

  double density = config_.rural_floor_per_km2;
  for (const Kernel* k : kernels_near(snapped)) {
    const double d = geo::distance_km(k->center, snapped);
    density += k->norm * std::exp(-0.5 * (d / k->sigma_km) * (d / k->sigma_km));
  }
  return density;
}

}  // namespace geoloc::dataset
