#include "dataset/population_grid.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.h"
#include "obs/metrics.h"

namespace geoloc::dataset {

namespace {

constexpr int kCellsPerRow = 4096;  // > 360, keeps keys unique
constexpr int kHalo = 2;            // cells a kernel registers into, each way

int cell_key(double lat_deg, double lon_deg) {
  const int lat_cell = static_cast<int>(std::floor(lat_deg)) + 90;
  const int lon_cell = static_cast<int>(std::floor(lon_deg)) + 180;
  return lat_cell * kCellsPerRow + lon_cell;
}

}  // namespace

PopulationGrid::PopulationGrid(const sim::World& world,
                               const PopulationGridConfig& config)
    : config_(config) {
  kernels_.reserve(world.places().size());
  std::vector<geo::GeoPoint> centers;
  centers.reserve(world.places().size());
  for (const sim::Place& place : world.places()) {
    Kernel k;
    k.center = place.location;
    k.people = place.population_k * 1000.0;
    k.sigma_km = config.base_sigma_km *
                 std::pow(std::max(place.population_k, 1.0),
                          config.sigma_pop_exponent);
    k.norm = k.people / (2.0 * geo::kPi * k.sigma_km * k.sigma_km);
    kernels_.push_back(k);
    centers.push_back(k.center);
  }
  index_ = spatial::IntervalIndex::build(centers);
}

bool PopulationGrid::halo_covers(const geo::GeoPoint& center, int key) {
  // Replays the original registration loop: each kernel lands in every
  // 1-degree cell within a 2-cell halo of its centre, latitudes clamped to
  // [-90, 89], longitudes normalized (so halos wrap the anti-meridian).
  const int base_lat = static_cast<int>(std::floor(center.lat_deg));
  const int base_lon = static_cast<int>(std::floor(center.lon_deg));
  for (int dlat = -kHalo; dlat <= kHalo; ++dlat) {
    for (int dlon = -kHalo; dlon <= kHalo; ++dlon) {
      const double lat = std::clamp(static_cast<double>(base_lat + dlat),
                                    -90.0, 89.0);
      const double lon = geo::normalize_lon(
          static_cast<double>(base_lon + dlon));
      if (cell_key(lat, lon) == key) return true;
    }
  }
  return false;
}

std::vector<std::size_t> PopulationGrid::kernel_indices_near(
    const geo::GeoPoint& p) const {
  static obs::Counter& queries =
      obs::Registry::instance().counter("spatial.popgrid.queries");
  queries.add();

  const int key = cell_key(p.lat_deg, p.lon_deg);
  // Superset covering: every kernel whose halo can reach the query cell
  // has its centre within kHalo+1 degrees of the cell (wrapping in
  // longitude, clamping at the poles — hence the extra margin cell).
  const int qlat = static_cast<int>(std::floor(p.lat_deg));
  const int qlon = static_cast<int>(std::floor(p.lon_deg));
  const auto rect = spatial::LatLonRect::from_degrees(
      qlat - (kHalo + 1), qlat + (kHalo + 2), qlon - (kHalo + 1),
      qlon + (kHalo + 2));
  std::vector<std::uint32_t> cand = index_.candidates_in_rect(rect);

  std::vector<std::size_t> out;
  out.reserve(cand.size());
  for (const std::uint32_t idx : cand) {
    if (halo_covers(kernels_[idx].center, key)) out.push_back(idx);
  }
  // Token order -> ascending kernel index: the density summation order of
  // the original sorted-bucket build.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> PopulationGrid::kernel_indices_near_scan(
    const geo::GeoPoint& p) const {
  const int key = cell_key(p.lat_deg, p.lon_deg);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    if (halo_covers(kernels_[i].center, key)) out.push_back(i);
  }
  return out;
}

double PopulationGrid::density_per_km2(const geo::GeoPoint& p) const {
  // Snap to the grid granularity so nearby queries agree, like GPWv4 cells.
  const double snap_deg = config_.query_snap_km / 111.0;
  const geo::GeoPoint snapped{
      std::round(p.lat_deg / snap_deg) * snap_deg,
      std::round(p.lon_deg / snap_deg) * snap_deg};

  double density = config_.rural_floor_per_km2;
  for (const std::size_t i : kernel_indices_near(snapped)) {
    const Kernel& k = kernels_[i];
    const double d = geo::distance_km(k.center, snapped);
    density += k.norm * std::exp(-0.5 * (d / k.sigma_km) * (d / k.sigma_km));
  }
  return density;
}

}  // namespace geoloc::dataset
