#include "dataset/catalog.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.h"

namespace geoloc::dataset {

namespace {

using sim::AsCategory;
using sim::Continent;

/// Table 2 AS-category distributions.
struct CategoryMix {
  double content, access, transit, enterprise, tier1, unknown;

  AsCategory sample(util::Pcg32& gen) const {
    double u = gen.uniform();
    if ((u -= content) < 0) return AsCategory::Content;
    if ((u -= access) < 0) return AsCategory::Access;
    if ((u -= transit) < 0) return AsCategory::TransitAccess;
    if ((u -= enterprise) < 0) return AsCategory::Enterprise;
    if ((u -= tier1) < 0) return AsCategory::Tier1;
    return AsCategory::Unknown;
  }
};

constexpr CategoryMix kAnchorMix = {0.317, 0.292, 0.272, 0.076, 0.008, 0.035};
constexpr CategoryMix kProbeMix = {0.092, 0.752, 0.083, 0.034, 0.014, 0.026};

/// ASdb sector: 72% "Computer and Information Technology" (index 0),
/// 5% "Education and Research" (index 1), remainder spread thinly.
int sample_sector(util::Pcg32& gen) {
  const double u = gen.uniform();
  if (u < 0.72) return 0;
  if (u < 0.77) return 1;
  return 2 + static_cast<int>(gen.bounded(14));
}

/// Build a pool of `n` ASes with the given category mix.
std::vector<net::Asn> build_as_pool(sim::World& world, int n,
                                    const CategoryMix& mix,
                                    util::Pcg32& gen) {
  std::vector<net::Asn> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.push_back(world.create_as(mix.sample(gen), sample_sector(gen)));
  }
  return pool;
}

Continent sample_continent(const ContinentWeights& w, util::Pcg32& gen) {
  double u = gen.uniform() * (w.af + w.as + w.eu + w.na + w.oc + w.sa);
  if ((u -= w.af) < 0) return Continent::AF;
  if ((u -= w.as) < 0) return Continent::AS;
  if ((u -= w.eu) < 0) return Continent::EU;
  if ((u -= w.na) < 0) return Continent::NA;
  if ((u -= w.oc) < 0) return Continent::OC;
  return Continent::SA;
}

}  // namespace

int ContinentQuota::of(Continent c) const noexcept {
  switch (c) {
    case Continent::AF: return af;
    case Continent::AS: return as;
    case Continent::EU: return eu;
    case Continent::NA: return na;
    case Continent::OC: return oc;
    case Continent::SA: return sa;
  }
  return 0;
}

double ContinentWeights::of(Continent c) const noexcept {
  switch (c) {
    case Continent::AF: return af;
    case Continent::AS: return as;
    case Continent::EU: return eu;
    case Continent::NA: return na;
    case Continent::OC: return oc;
    case Continent::SA: return sa;
  }
  return 0.0;
}

Catalog build_catalog(sim::World& world, const CatalogConfig& config) {
  Catalog catalog;
  auto gen = world.rng().fork("catalog").gen();

  catalog.anchor_ases =
      build_as_pool(world, config.anchor_as_pool, kAnchorMix, gen);
  catalog.probe_ases =
      build_as_pool(world, config.probe_as_pool, kProbeMix, gen);

  // Group the AS pools by category so a host with a drawn category can pick
  // a pool AS of the same category — this keeps Table 2's distribution.
  auto by_category = [&world](const std::vector<net::Asn>& pool) {
    std::unordered_map<AsCategory, std::vector<net::Asn>> m;
    for (net::Asn a : pool) m[world.as_info(a).category].push_back(a);
    return m;
  };
  auto anchor_as_by_cat = by_category(catalog.anchor_ases);
  auto probe_as_by_cat = by_category(catalog.probe_ases);

  auto pick_as = [&gen](std::unordered_map<AsCategory, std::vector<net::Asn>>& m,
                        AsCategory want) -> net::Asn {
    auto it = m.find(want);
    if (it == m.end() || it->second.empty()) it = m.begin();
    return it->second[gen.index(it->second.size())];
  };

  // ---- anchors ----------------------------------------------------------
  auto make_anchor = [&](Continent continent) {
    sim::Host h;
    h.kind = sim::HostKind::Anchor;
    const AsCategory cat = kAnchorMix.sample(gen);
    h.asn = pick_as(anchor_as_by_cat, cat);
    h.place = world.sample_place(
        continent,
        config.anchor_satellite_bias_by_continent[static_cast<std::size_t>(
            continent)],
        gen);
    // Anchors are hosted by organisations in built-up areas: mostly at the
    // place's urban hotspots, where locally hosted websites also cluster.
    h.true_location = world.sample_urban_location(
        h.place, /*hotspot_prob=*/0.6, /*tight_km=*/1.8,
        config.anchor_offset_mean_km, gen);
    h.reported_location = h.true_location;
    const double p_high =
        config.anchor_high_last_mile_prob[static_cast<std::size_t>(continent)];
    h.last_mile_ms =
        gen.chance(p_high)
            ? config.anchor_last_mile_high_floor_ms +
                  gen.exponential(config.anchor_last_mile_high_mean_ms)
            : gen.uniform(config.anchor_last_mile_min_ms,
                          config.anchor_last_mile_max_ms);
    // Every anchor is its own site: it owns a /24 the hitlist draws from.
    const net::Prefix site = world.allocate_site_prefix(h.asn);
    h.addr = site.address_at(1);
    world.router_of(h.place);  // pre-create topology router
    catalog.anchors.push_back(world.add_host(h));
  };

  for (Continent c : sim::all_continents()) {
    for (int i = 0; i < config.anchor_quota.of(c); ++i) make_anchor(c);
  }
  // Extra anchors destined to be misgeolocated (spread over continents in
  // proportion to the quota via weighted sampling).
  ContinentWeights anchor_w;
  anchor_w.af = config.anchor_quota.af;
  anchor_w.as = config.anchor_quota.as;
  anchor_w.eu = config.anchor_quota.eu;
  anchor_w.na = config.anchor_quota.na;
  anchor_w.oc = config.anchor_quota.oc;
  anchor_w.sa = config.anchor_quota.sa;
  std::vector<sim::HostId> to_misgeo_anchor;
  for (int i = 0; i < config.anchors_misgeolocated; ++i) {
    make_anchor(sample_continent(anchor_w, gen));
    to_misgeo_anchor.push_back(catalog.anchors.back());
  }

  // ---- probes ------------------------------------------------------------
  auto make_probe = [&](Continent continent) {
    sim::Host h;
    h.kind = sim::HostKind::Probe;
    const AsCategory cat = kProbeMix.sample(gen);
    h.asn = pick_as(probe_as_by_cat, cat);
    h.place = world.sample_place(continent, config.probe_satellite_bias, gen);
    h.true_location =
        world.sample_location(h.place, config.probe_offset_mean_km, gen);
    h.reported_location = h.true_location;
    const double p_high = config.probe_high_last_mile_prob
        [static_cast<std::size_t>(continent)];
    h.last_mile_ms =
        gen.chance(p_high)
            ? 1.5 + gen.exponential(config.probe_last_mile_high_mean_ms)
            : gen.uniform(config.probe_last_mile_low_min_ms,
                          config.probe_last_mile_low_max_ms);
    const net::Prefix site = world.allocate_site_prefix(h.asn);
    h.addr = site.address_at(1 + gen.bounded(250));
    world.router_of(h.place);
    catalog.probes.push_back(world.add_host(h));
  };

  const int total_probes = config.probes_kept + config.probes_misgeolocated;
  std::vector<sim::HostId> to_misgeo_probe;
  for (int i = 0; i < total_probes; ++i) {
    make_probe(sample_continent(config.probe_weights, gen));
    if (i >= config.probes_kept) to_misgeo_probe.push_back(catalog.probes.back());
  }

  // ---- inject geolocation errors ----------------------------------------
  // A misgeolocated host reports a location far from where it really is
  // (stale registration, moved hardware): pick a random far-away city.
  auto misgeolocate = [&](sim::HostId id) {
    const sim::Host& h = world.host(id);
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto cities = world.cities();
      const sim::PlaceId city = cities[gen.index(cities.size())];
      const geo::GeoPoint bogus = world.sample_location(city, 5.0, gen);
      if (geo::distance_km(bogus, h.true_location) >=
          config.misgeolocation_min_km) {
        world.misgeolocate(id, bogus);
        return;
      }
    }
  };
  for (sim::HostId id : to_misgeo_anchor) misgeolocate(id);
  for (sim::HostId id : to_misgeo_probe) misgeolocate(id);

  return catalog;
}

std::unordered_map<sim::AsCategory, int> count_by_as_category(
    const sim::World& world, const std::vector<sim::HostId>& hosts) {
  std::unordered_map<sim::AsCategory, int> counts;
  for (sim::HostId id : hosts) {
    counts[world.as_info(world.host(id).asn).category]++;
  }
  return counts;
}

std::unordered_map<int, int> count_by_as_sector(
    const sim::World& world, const std::vector<sim::HostId>& hosts) {
  std::unordered_map<int, int> counts;
  for (sim::HostId id : hosts) {
    counts[world.as_info(world.host(id).asn).sector]++;
  }
  return counts;
}

}  // namespace geoloc::dataset
