// Population-density surface — the stand-in for the "Gridded Population of
// the World v4" dataset (paper Figures 6b and 8, Appendix C).
//
// Density at a point is a kernel sum over every place (city and satellite
// town): each place spreads its population over a Gaussian footprint whose
// width grows slowly with population. Queries are snapped to a 1 km grid to
// match GPWv4's granularity.
#pragma once

#include <vector>

#include "geo/geopoint.h"
#include "sim/world.h"

namespace geoloc::dataset {

struct PopulationGridConfig {
  double base_sigma_km = 5.0;     ///< footprint of a small town
  double sigma_pop_exponent = 0.18;  ///< sigma scales with pop^exponent
  double rural_floor_per_km2 = 2.0;  ///< sparse rural baseline
  double query_snap_km = 1.0;        ///< GPWv4 granularity
};

class PopulationGrid {
 public:
  PopulationGrid(const sim::World& world,
                 const PopulationGridConfig& config = {});

  /// People per square kilometre at `p` (snapped to the 1 km grid).
  [[nodiscard]] double density_per_km2(const geo::GeoPoint& p) const;

 private:
  struct Kernel {
    geo::GeoPoint center;
    double people;    ///< population (persons)
    double sigma_km;  ///< Gaussian width
    double norm;      ///< people / (2*pi*sigma^2)
  };

  // Coarse lat/lon cell index so each query only visits nearby kernels.
  [[nodiscard]] std::vector<const Kernel*> kernels_near(
      const geo::GeoPoint& p) const;

  PopulationGridConfig config_;
  std::vector<Kernel> kernels_;
  // cell key = (lat_cell * 4096 + lon_cell); 1-degree cells
  std::vector<std::pair<int, std::vector<std::size_t>>> cells_;
};

}  // namespace geoloc::dataset
