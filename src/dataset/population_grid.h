// Population-density surface — the stand-in for the "Gridded Population of
// the World v4" dataset (paper Figures 6b and 8, Appendix C).
//
// Density at a point is a kernel sum over every place (city and satellite
// town): each place spreads its population over a Gaussian footprint whose
// width grows slowly with population. Queries are snapped to a 1 km grid to
// match GPWv4's granularity.
//
// Kernel lookup runs against a spatial::IntervalIndex over kernel centres;
// kernel_indices_near_scan keeps the original halo-registration semantics
// as the reference the equivalence suite compares against.
#pragma once

#include <vector>

#include "geo/geopoint.h"
#include "sim/world.h"
#include "spatial/interval_index.h"

namespace geoloc::dataset {

struct PopulationGridConfig {
  double base_sigma_km = 5.0;     ///< footprint of a small town
  double sigma_pop_exponent = 0.18;  ///< sigma scales with pop^exponent
  double rural_floor_per_km2 = 2.0;  ///< sparse rural baseline
  double query_snap_km = 1.0;        ///< GPWv4 granularity
};

class PopulationGrid {
 public:
  PopulationGrid(const sim::World& world,
                 const PopulationGridConfig& config = {});

  /// People per square kilometre at `p` (snapped to the 1 km grid).
  [[nodiscard]] double density_per_km2(const geo::GeoPoint& p) const;

  /// Kernels contributing at `p` under the original 1-degree-cell +
  /// 2-cell-halo registration semantics, ascending kernel index (the
  /// density summation order). Index-backed.
  [[nodiscard]] std::vector<std::size_t> kernel_indices_near(
      const geo::GeoPoint& p) const;

  /// Reference implementation: per-kernel halo replay over every kernel.
  /// Identical result to kernel_indices_near on every input.
  [[nodiscard]] std::vector<std::size_t> kernel_indices_near_scan(
      const geo::GeoPoint& p) const;

  [[nodiscard]] std::size_t kernel_count() const noexcept {
    return kernels_.size();
  }

 private:
  struct Kernel {
    geo::GeoPoint center;
    double people;    ///< population (persons)
    double sigma_km;  ///< Gaussian width
    double norm;      ///< people / (2*pi*sigma^2)
  };

  /// True when the original build would register a kernel at `center`
  /// into the 1-degree cell `key` (the 5x5 clamped/normalized halo).
  static bool halo_covers(const geo::GeoPoint& center, int key);

  PopulationGridConfig config_;
  std::vector<Kernel> kernels_;
  spatial::IntervalIndex index_;  ///< kernel centres; payload = kernel index
};

}  // namespace geoloc::dataset
