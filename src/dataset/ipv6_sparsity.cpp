#include "dataset/ipv6_sparsity.h"

#include <algorithm>
#include <cmath>

namespace geoloc::dataset {

SparsityAnswer analyze_sparsity(const SparsityQuestion& q) {
  SparsityAnswer a;
  a.addresses = std::ldexp(1.0, q.prefix_size_log2);
  a.responsive_density =
      std::min(1.0, q.responsive_hosts / std::max(a.addresses, 1.0));
  a.probes_sent =
      std::min(q.probe_rate_pps * q.budget_seconds, a.addresses);
  a.expected_hits = a.probes_sent * a.responsive_density;
  a.p_at_least_one = 1.0 - std::exp(-a.expected_hits);
  a.prefix_coverage = a.probes_sent / std::max(a.addresses, 1.0);
  return a;
}

}  // namespace geoloc::dataset
