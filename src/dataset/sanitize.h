// Section 4.3 sanitisation of RIPE Atlas geolocation.
//
// The paper counts, for each anchor, how many of its RTTs to/from other
// anchors violate the speed-of-Internet constraint at 2/3 c with respect to
// the *reported* locations, iteratively removing the worst offender until
// no violation remains (9 anchors removed). Probes are then pinged against
// the surviving anchors and filtered the same way (96 probes removed).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/latency_model.h"
#include "sim/world.h"

namespace geoloc::dataset {

struct SanitizeResult {
  std::vector<sim::HostId> kept;
  std::vector<sim::HostId> removed;
  std::uint64_t violating_pairs = 0;  ///< SOI-violating pairs observed initially
};

struct SanitizeConfig {
  int ping_packets = 3;
  double soi_km_per_ms = 0.0;  ///< 0 = use 2/3 c
};

/// Meshed anchor-to-anchor sanitisation: iteratively remove the anchor with
/// the most speed-of-Internet violations until none remain.
SanitizeResult sanitize_anchors(const sim::LatencyModel& latency,
                                const std::vector<sim::HostId>& anchors,
                                const SanitizeConfig& config = {});

/// Probe sanitisation: ping every verified anchor from each probe; remove
/// probes the same iterative way.
SanitizeResult sanitize_probes(const sim::LatencyModel& latency,
                               const std::vector<sim::HostId>& probes,
                               const std::vector<sim::HostId>& good_anchors,
                               const SanitizeConfig& config = {});

}  // namespace geoloc::dataset
