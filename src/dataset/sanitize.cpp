#include "dataset/sanitize.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "geo/constants.h"
#include "geo/geodesy.h"

namespace geoloc::dataset {

namespace {

double effective_soi(const SanitizeConfig& config) {
  return config.soi_km_per_ms > 0.0 ? config.soi_km_per_ms
                                    : geo::kSoiTwoThirdsKmPerMs;
}

/// One observed pair that is impossible at the speed of Internet.
struct Violation {
  sim::HostId a;
  sim::HostId b;
};

/// Generic iterative removal: given violations over a set of candidates
/// (plus possibly immune hosts, e.g. already-verified anchors), repeatedly
/// drop the candidate participating in the most violations.
SanitizeResult iterative_removal(const std::vector<sim::HostId>& candidates,
                                 const std::vector<Violation>& violations) {
  SanitizeResult result;
  result.violating_pairs = violations.size();

  std::unordered_map<sim::HostId, std::vector<std::size_t>> by_host;
  std::unordered_map<sim::HostId, int> count;
  const std::unordered_set<sim::HostId> candidate_set(candidates.begin(),
                                                      candidates.end());
  for (std::size_t i = 0; i < violations.size(); ++i) {
    for (sim::HostId h : {violations[i].a, violations[i].b}) {
      if (candidate_set.contains(h)) {
        by_host[h].push_back(i);
        ++count[h];
      }
    }
  }

  std::vector<bool> violation_active(violations.size(), true);
  std::unordered_set<sim::HostId> removed;
  for (;;) {
    sim::HostId worst = sim::kInvalidHost;
    int worst_count = 0;
    for (const auto& [host, c] : count) {
      // Deterministic tie-break on host id keeps runs reproducible.
      if (c > worst_count || (c == worst_count && c > 0 &&
                              (worst == sim::kInvalidHost || host < worst))) {
        worst = host;
        worst_count = c;
      }
    }
    if (worst_count == 0) break;
    removed.insert(worst);
    result.removed.push_back(worst);
    for (std::size_t vi : by_host[worst]) {
      if (!violation_active[vi]) continue;
      violation_active[vi] = false;
      for (sim::HostId h : {violations[vi].a, violations[vi].b}) {
        auto it = count.find(h);
        if (it != count.end()) --it->second;
      }
    }
    count.erase(worst);
  }

  for (sim::HostId h : candidates) {
    if (!removed.contains(h)) result.kept.push_back(h);
  }
  return result;
}

}  // namespace

SanitizeResult sanitize_anchors(const sim::LatencyModel& latency,
                                const std::vector<sim::HostId>& anchors,
                                const SanitizeConfig& config) {
  const double soi = effective_soi(config);
  const sim::World& world = latency.world();
  auto gen = world.rng().fork("sanitize-anchors").gen();

  std::vector<Violation> violations;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      const auto rtt =
          latency.min_rtt_ms(anchors[i], anchors[j], config.ping_packets, gen);
      if (!rtt) continue;
      const double reported_d =
          geo::distance_km(world.host(anchors[i]).reported_location,
                           world.host(anchors[j]).reported_location);
      if (geo::violates_soi(*rtt, reported_d, soi)) {
        violations.push_back({anchors[i], anchors[j]});
      }
    }
  }
  return iterative_removal(anchors, violations);
}

SanitizeResult sanitize_probes(const sim::LatencyModel& latency,
                               const std::vector<sim::HostId>& probes,
                               const std::vector<sim::HostId>& good_anchors,
                               const SanitizeConfig& config) {
  const double soi = effective_soi(config);
  const sim::World& world = latency.world();
  auto gen = world.rng().fork("sanitize-probes").gen();

  std::vector<Violation> violations;
  for (sim::HostId probe : probes) {
    const geo::GeoPoint probe_loc = world.host(probe).reported_location;
    for (sim::HostId anchor : good_anchors) {
      const auto rtt =
          latency.min_rtt_ms(probe, anchor, config.ping_packets, gen);
      if (!rtt) continue;
      const double reported_d =
          geo::distance_km(probe_loc, world.host(anchor).reported_location);
      if (geo::violates_soi(*rtt, reported_d, soi)) {
        violations.push_back({probe, anchor});
      }
    }
  }
  return iterative_removal(probes, violations);
}

}  // namespace geoloc::dataset
