#include "dataset/hitlist.h"

#include <stdexcept>

#include "geo/geodesy.h"

namespace geoloc::dataset {

Hitlist Hitlist::build(sim::World& world,
                       const std::vector<sim::HostId>& targets,
                       const HitlistConfig& config) {
  Hitlist hitlist;
  auto gen = world.rng().fork("hitlist").gen();

  for (sim::HostId target_id : targets) {
    const sim::Host target = world.host(target_id);
    RepresentativeSet set;
    set.prefix = net::slash24_of(target.addr);

    int responsive_count = 0;
    for (int i = 0; i < 3; ++i) {
      sim::Host rep;
      rep.kind = sim::HostKind::Representative;
      rep.asn = target.asn;
      rep.addr = set.prefix.address_at(10 + static_cast<std::uint32_t>(i));

      if (gen.chance(config.colocated_rate)) {
        // Same site: within a couple of kilometres of the target.
        rep.place = target.place;
        rep.true_location = geo::destination(
            target.true_location, gen.uniform(0.0, 360.0),
            gen.exponential(1.0));
      } else {
        // Stray representative: same continent, different place — address
        // space reused across sites of the same organisation.
        const sim::Continent continent =
            world.place(target.place).continent;
        for (int attempt = 0; attempt < 64; ++attempt) {
          rep.place = world.sample_place(continent, 0.2, gen);
          rep.true_location = world.sample_location(rep.place, 5.0, gen);
          if (geo::distance_km(rep.true_location, target.true_location) >=
              config.stray_min_km) {
            break;
          }
        }
      }
      rep.reported_location = rep.true_location;
      rep.last_mile_ms = gen.uniform(config.rep_last_mile_min_ms,
                                     config.rep_last_mile_max_ms);
      rep.responsive = gen.chance(config.responsive_rate);
      world.router_of(rep.place);

      Representative r;
      r.host = world.add_host(rep);
      r.responsiveness_score =
          rep.responsive ? 50 + static_cast<int>(gen.bounded(50)) : 0;
      r.from_hitlist = true;
      if (rep.responsive) ++responsive_count;
      set.reps[static_cast<std::size_t>(i)] = r;
    }

    if (responsive_count < 3) {
      // Top up with random in-prefix addresses (paper Section 4.1.3). The
      // random picks land on hosts that mostly do not answer.
      hitlist.topped_up_.push_back(target_id);
      for (std::size_t ri = 0; ri < set.reps.size(); ++ri) {
        auto& r = set.reps[ri];
        if (r.responsiveness_score > 0) continue;
        sim::Host filler;
        filler.kind = sim::HostKind::Representative;
        filler.asn = target.asn;
        // Disjoint 50-address windows per slot avoid address collisions.
        filler.addr = set.prefix.address_at(
            100 + static_cast<std::uint32_t>(ri) * 50 + gen.bounded(50));
        filler.place = target.place;
        filler.true_location = target.true_location;
        filler.reported_location = filler.true_location;
        filler.last_mile_ms = 1.0;
        filler.responsive = gen.chance(0.3);
        r.host = world.add_host(filler);
        r.from_hitlist = false;
        r.responsiveness_score = 0;
      }
    }
    hitlist.sets_.emplace(target_id, set);
  }
  return hitlist;
}

const RepresentativeSet& Hitlist::for_target(sim::HostId target) const {
  const auto it = sets_.find(target);
  if (it == sets_.end()) throw std::out_of_range("no hitlist entry for target");
  return it->second;
}

}  // namespace geoloc::dataset
