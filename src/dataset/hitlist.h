// ISI-hitlist stand-in (Fan & Heidemann, IMC 2010): responsiveness-scored
// representative addresses inside each target's /24 prefix.
//
// The million-scale VP selection probes up to three representatives per /24
// from the vantage points and transfers the resulting proximity to the
// target itself. The transfer works only as well as /24s are geographically
// cohesive; the hitlist model controls that cohesion (most representatives
// share the target's site, a configurable minority live elsewhere — moved
// equipment, off-site infrastructure in the same prefix).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "sim/world.h"

namespace geoloc::dataset {

struct Representative {
  sim::HostId host = sim::kInvalidHost;
  int responsiveness_score = 0;  ///< ISI-style 0..99, higher = more reliable
  bool from_hitlist = true;      ///< false: random /24 fill-in (paper: 8 targets)
};

struct RepresentativeSet {
  net::Prefix prefix;  ///< the target's /24
  std::array<Representative, 3> reps;
};

struct HitlistConfig {
  /// Probability that a representative is colocated with the target's site.
  double colocated_rate = 0.93;
  /// Displacement of non-colocated representatives: same continent, other place.
  double stray_min_km = 100.0;
  /// Probability that a hitlist representative is in fact responsive.
  double responsive_rate = 0.996;
  double rep_last_mile_min_ms = 0.1;
  double rep_last_mile_max_ms = 2.0;
};

/// The hitlist: three representatives for each target's /24.
class Hitlist {
 public:
  /// Build representatives for every target; creates the representative
  /// hosts in the world. Targets with fewer than three responsive hitlist
  /// entries are topped up with random in-prefix addresses (which may not
  /// respond), exactly as the paper does (Section 4.1.3).
  static Hitlist build(sim::World& world,
                       const std::vector<sim::HostId>& targets,
                       const HitlistConfig& config = {});

  [[nodiscard]] const RepresentativeSet& for_target(sim::HostId target) const;
  [[nodiscard]] std::size_t size() const noexcept { return sets_.size(); }

  /// Targets that needed random fill-ins (fewer than 3 responsive entries).
  [[nodiscard]] const std::vector<sim::HostId>& topped_up_targets() const noexcept {
    return topped_up_;
  }

 private:
  std::unordered_map<sim::HostId, RepresentativeSet> sets_;
  std::vector<sim::HostId> topped_up_;
};

}  // namespace geoloc::dataset
