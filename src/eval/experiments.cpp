#include "eval/experiments.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/million_scale.h"
#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace geoloc::eval {

namespace {

/// Per-target CBG error for an arbitrary row set.
double one_target_error(const core::MillionScale& ms,
                        std::span<const std::size_t> rows,
                        std::size_t target_col,
                        const core::CbgConfig& config) {
  const core::CbgResult r = ms.geolocate(rows, target_col, config);
  if (!r.ok) return -1.0;
  return ms.error_km(r.estimate, target_col);
}

std::vector<std::size_t> all_rows(const scenario::Scenario& s) {
  std::vector<std::size_t> rows(s.vps().size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

/// The scenario's lazy matrices are not init-guarded (scenario.h); touch
/// them once from this thread before any parallel_map over target columns.
void warm_matrices(const scenario::Scenario& s) {
  (void)s.target_rtts();
  (void)s.representative_rtts();
}

/// Per-sweep observability: a trace span plus a sweep counter and wall
/// histogram on the registry. Pure bystander — reads the clock, never the
/// sweep's RNG or data, so sweep outputs are identical with obs on or off.
class SweepScope {
 public:
  explicit SweepScope(const char* name)
      : span_(name), start_(std::chrono::steady_clock::now()) {}
  ~SweepScope() {
    static auto& reg = obs::Registry::instance();
    static obs::Counter& sweeps = reg.counter("eval.sweeps");
    static obs::Histogram& wall = reg.histogram("eval.sweep_wall_ms");
    sweeps.add();
    wall.observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
  }

 private:
  obs::TraceSpan span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

int trials_from_env(int fallback) {
  return util::env::int_or("GEOLOC_TRIALS", fallback);
}

const std::vector<double>& all_vp_errors(const scenario::Scenario& s,
                                         const core::CbgConfig& config) {
  static std::mutex mu;
  static std::unordered_map<std::uint64_t, std::vector<double>> cache;
  // Fold the CBG speed into the key: Figure 5a uses 4/9 c, the rest 2/3 c.
  std::uint64_t key = s.config().fingerprint();
  key ^= static_cast<std::uint64_t>(config.soi_km_per_ms * 1024.0);

  std::scoped_lock lock(mu);
  if (const auto it = cache.find(key); it != cache.end()) return it->second;

  warm_matrices(s);
  const core::MillionScale ms(s);
  const auto rows = all_rows(s);
  // One CBG solve per target column, every column independent: the sweep
  // maps over columns on the parallel engine and lands in column order.
  std::vector<double> errors = util::parallel_map<double>(
      s.targets().size(), [&](std::size_t col) {
        return one_target_error(ms, rows, col, config);
      });
  return cache.emplace(key, std::move(errors)).first->second;
}

std::vector<double> streamed_all_vp_errors(const scenario::Scenario& s,
                                           const core::CbgConfig& config,
                                           scenario::TileShape shape,
                                           std::size_t tile_budget) {
  const SweepScope scope("eval.streamed_all_vp_errors");
  scenario::RttTileSource src =
      scenario::RttTileSource::for_targets(s, shape, tile_budget);
  const auto& world = s.world();
  const auto& vps = s.vps();
  std::vector<double> errors(s.targets().size(), -1.0);

  for (std::size_t tb = 0; tb < src.target_blocks(); ++tb) {
    const std::size_t col_begin = tb * src.shape().target_block;
    const std::size_t col_end =
        std::min(s.targets().size(), col_begin + src.shape().target_block);
    const std::size_t n_cols = col_end - col_begin;
    // Observations assemble VP-block by VP-block in ascending row order —
    // the exact row order the dense path's all-rows loop produces — while
    // only the tile cache's budget worth of RTTs is resident.
    std::vector<std::vector<core::VpObservation>> obs(n_cols);
    for (std::size_t vb = 0; vb < src.vp_blocks(); ++vb) {
      const auto& t = src.tile(vb, tb);
      for (std::size_t rr = 0; rr < t.rows(); ++rr) {
        const std::size_t r = t.vp_begin + rr;
        const float* row = t.rtt.data() + rr * t.cols();
        for (std::size_t cc = 0; cc < n_cols; ++cc) {
          const float rtt = row[cc];
          if (scenario::RttMatrix::is_missing(rtt)) continue;
          if (vps[r] == s.targets()[col_begin + cc]) continue;
          obs[cc].push_back(core::VpObservation{
              world.host(vps[r]).reported_location, rtt});
        }
      }
    }
    const std::vector<double> per_col = util::parallel_map<double>(
        n_cols, [&](std::size_t cc) {
          const core::CbgResult r = core::cbg_geolocate(obs[cc], config);
          if (!r.ok) return -1.0;
          return geo::distance_km(
              r.estimate,
              world.host(s.targets()[col_begin + cc]).true_location);
        });
    std::copy(per_col.begin(), per_col.end(),
              errors.begin() + static_cast<std::ptrdiff_t>(col_begin));
  }
  return errors;
}

std::vector<SubsetTrials> run_subset_size_sweep(
    const scenario::Scenario& s, std::span<const int> subset_sizes, int trials,
    const core::CbgConfig& config) {
  const SweepScope scope("eval.subset_size_sweep");
  warm_matrices(s);
  const core::MillionScale ms(s);
  const std::size_t n = s.vps().size();
  auto gen = s.world().rng().fork("subset-sweep").gen();

  std::vector<SubsetTrials> out;
  for (int size : subset_sizes) {
    SubsetTrials st;
    st.subset_size = size;
    const auto k = std::min<std::size_t>(static_cast<std::size_t>(size), n);
    std::vector<std::size_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;

    for (int t = 0; t < trials; ++t) {
      // Partial Fisher-Yates: the first k entries become the subset. The
      // draws stay on this thread's shared generator (their order is part
      // of the figure's numbers); only the per-target CBG solves below run
      // in parallel.
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + gen.index(n - i);
        std::swap(rows[i], rows[j]);
      }
      const std::span<const std::size_t> subset(rows.data(), k);
      const std::vector<double> per_col = util::parallel_map<double>(
          s.targets().size(), [&](std::size_t col) {
            return one_target_error(ms, subset, col, config);
          });
      std::vector<double> errors;
      errors.reserve(per_col.size());
      for (const double e : per_col) {
        if (e >= 0.0) errors.push_back(e);
      }
      st.trial_median_errors_km.push_back(util::median(errors));
    }
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<ExclusionErrors> run_remove_close_vps(
    const scenario::Scenario& s, std::span<const double> radii_km,
    const core::CbgConfig& config) {
  const SweepScope scope("eval.remove_close_vps");
  warm_matrices(s);
  const core::MillionScale ms(s);
  const auto& world = s.world();
  const std::size_t n = s.vps().size();

  std::vector<ExclusionErrors> out;
  for (double radius : radii_km) {
    ExclusionErrors ee;
    ee.exclusion_km = radius;
    if (radius <= 0.0) {
      ee.errors_km = all_vp_errors(s, config);
      out.push_back(std::move(ee));
      continue;
    }
    // Each column filters its own row set locally, so columns are
    // independent; fold in column order to keep the serial output.
    const std::vector<double> per_col = util::parallel_map<double>(
        s.targets().size(), [&](std::size_t col) {
          const geo::GeoPoint truth =
              world.host(s.targets()[col]).true_location;
          std::vector<std::size_t> rows;
          rows.reserve(n);
          for (std::size_t r = 0; r < n; ++r) {
            if (geo::distance_km(world.host(s.vps()[r]).true_location,
                                 truth) > radius) {
              rows.push_back(r);
            }
          }
          return one_target_error(ms, rows, col, config);
        });
    for (const double e : per_col) {
      if (e >= 0.0) ee.errors_km.push_back(e);
    }
    out.push_back(std::move(ee));
  }
  return out;
}

std::vector<RepSelectionErrors> run_rep_selection(
    const scenario::Scenario& s, std::span<const int> ks,
    const core::CbgConfig& config) {
  const SweepScope scope("eval.rep_selection");
  warm_matrices(s);
  const core::MillionScale ms(s);
  std::vector<RepSelectionErrors> out;
  for (int k : ks) {
    RepSelectionErrors re;
    re.k = k;
    const std::vector<double> per_col = util::parallel_map<double>(
        s.targets().size(), [&](std::size_t col) {
          const auto rows = k == 0
                                ? all_rows(s)
                                : ms.select_vps_by_representatives(col, k);
          return one_target_error(ms, rows, col, config);
        });
    for (const double e : per_col) {
      if (e >= 0.0) re.errors_km.push_back(e);
    }
    out.push_back(std::move(re));
  }
  return out;
}

std::vector<TwoStepSweep> run_two_step_sweep(
    const scenario::Scenario& s, std::span<const int> first_step_sizes,
    const core::CbgConfig& config) {
  const SweepScope scope("eval.two_step_sweep");
  warm_matrices(s);
  const core::MillionScale ms(s);
  // The greedy coverage sequence nests: the first N picks of the longest
  // run ARE the greedy subset of size N, so compute it once.
  int max_size = 0;
  for (int sz : first_step_sizes) max_size = std::max(max_size, sz);
  const auto greedy = core::greedy_coverage_rows(
      s, static_cast<std::size_t>(max_size));

  std::vector<TwoStepSweep> out;
  for (int sz : first_step_sizes) {
    TwoStepSweep sweep;
    sweep.first_step_size = sz;
    std::vector<std::size_t> first(
        greedy.begin(),
        greedy.begin() + std::min<std::ptrdiff_t>(sz, std::ssize(greedy)));
    core::TwoStepConfig tsc;
    tsc.cbg = config;
    const core::TwoStepSelector selector(s, std::move(first), tsc);

    // TwoStepSelector::run is a const, deterministic function of the
    // column; map the outcomes in parallel and fold the accounting in
    // column order so sums and error order match the serial sweep.
    struct ColOutcome {
      std::uint64_t pings = 0;
      bool ok = false;
      double error_km = 0.0;
    };
    const std::vector<ColOutcome> per_col = util::parallel_map<ColOutcome>(
        s.targets().size(), [&](std::size_t col) {
          const core::TwoStepOutcome o = selector.run(col);
          ColOutcome co;
          co.pings = o.step1_pings + o.step2_pings + o.final_pings;
          co.ok = o.ok;
          if (o.ok) co.error_km = ms.error_km(o.estimate, col);
          return co;
        });
    for (const ColOutcome& co : per_col) {
      sweep.total_pings += co.pings;
      if (!co.ok) {
        ++sweep.failed_targets;
        continue;
      }
      sweep.errors_km.push_back(co.error_km);
    }
    out.push_back(std::move(sweep));
  }
  return out;
}

std::vector<FailureSweepPoint> run_failure_sensitivity(
    const scenario::Scenario& s, std::span<const WeatherSpec> weathers,
    std::size_t max_vps, const core::CbgConfig& config) {
  const SweepScope scope("eval.failure_sensitivity");
  const auto& world = s.world();
  const auto& all_vps = s.vps();
  const std::size_t vp_count = (max_vps == 0 || max_vps >= all_vps.size())
                                   ? all_vps.size()
                                   : max_vps;
  const std::span<const sim::HostId> campaign_vps(all_vps.data(), vp_count);
  const std::span<const sim::HostId> spares(all_vps.data() + vp_count,
                                            all_vps.size() - vp_count);

  std::vector<FailureSweepPoint> out;
  out.reserve(weathers.size());
  for (const WeatherSpec& weather : weathers) {
    FailureSweepPoint point;
    point.label = weather.label;

    // Fresh platform per weather: usage counters and the measurement RNG
    // restart, so each condition sees the same campaign.
    atlas::Platform platform(world, s.latency());
    const atlas::FaultModel faults(world, weather.config);
    platform.set_fault_model(&faults);
    atlas::CampaignExecutor executor(platform);
    point.report = executor.execute_full_mesh(
        campaign_vps, s.targets(), s.config().ping_packets, spares);

    // Geolocate every target from the measurements that survived.
    std::vector<std::vector<core::VpObservation>> per_target(
        s.targets().size());
    for (const atlas::PingMeasurement& m : point.report.results) {
      if (m.target == m.vp) continue;  // anchors are both targets and VPs
      per_target[s.target_index(m.target)].push_back(core::VpObservation{
          world.host(m.vp).reported_location, *m.min_rtt_ms});
    }
    // One CBG verdict per target, each a pure function of its observation
    // list; fold verdict counters and the error list in column order.
    struct ColVerdict {
      core::CbgVerdict verdict = core::CbgVerdict::Unlocatable;
      std::optional<double> error_km;
    };
    const std::vector<ColVerdict> per_col = util::parallel_map<ColVerdict>(
        s.targets().size(), [&](std::size_t col) {
          const core::CbgResult r =
              core::cbg_geolocate(per_target[col], config);
          ColVerdict cv;
          cv.verdict = r.verdict;
          if (r.ok) {
            cv.error_km = geo::distance_km(
                r.estimate, world.host(s.targets()[col]).true_location);
          }
          return cv;
        });
    std::vector<double> errors;
    errors.reserve(per_col.size());
    for (const ColVerdict& cv : per_col) {
      switch (cv.verdict) {
        case core::CbgVerdict::Ok: ++point.located; break;
        case core::CbgVerdict::Degraded: ++point.degraded; break;
        case core::CbgVerdict::Unlocatable: ++point.unlocatable; break;
      }
      if (cv.error_km) errors.push_back(*cv.error_km);
    }
    point.median_error_km = errors.empty() ? -1.0 : util::median(errors);
    point.report.results.clear();
    point.report.results.shrink_to_fit();
    out.push_back(std::move(point));
  }
  return out;
}

std::vector<ContinentErrors> run_per_continent(const scenario::Scenario& s,
                                               const core::CbgConfig& config) {
  const SweepScope scope("eval.per_continent");
  const auto& errors = all_vp_errors(s, config);
  const auto& world = s.world();

  std::vector<ContinentErrors> out;
  for (sim::Continent c : sim::all_continents()) {
    out.push_back(ContinentErrors{c, {}});
  }
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    if (errors[col] < 0.0) continue;
    const sim::Continent c =
        world.place(world.host(s.targets()[col]).place).continent;
    for (auto& ce : out) {
      if (ce.continent == c) {
        ce.errors_km.push_back(errors[col]);
        break;
      }
    }
  }
  return out;
}

}  // namespace geoloc::eval
