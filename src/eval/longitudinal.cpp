#include "eval/longitudinal.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>

#include "atlas/executor.h"
#include "atlas/platform.h"
#include "eval/publication.h"
#include "geo/geodesy.h"
#include "publish/diff.h"
#include "serve/geo_service.h"
#include "util/durable.h"
#include "util/env.h"
#include "util/stats.h"

namespace geoloc::eval {

namespace {

/// "GLLONG01" — caller magic of the framed driver-state file.
constexpr std::uint64_t kStateMagic = 0x474C4C4F4E473031ULL;
constexpr std::uint32_t kStateVersion = 1;

/// Error charged to a lookup the snapshot cannot answer at all: the
/// antipodal bound, so a miss always scores worse than any answer.
constexpr double kMissPenaltyKm = 20'037.5;

std::string snapshot_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/epoch-" + std::to_string(epoch) + ".snap";
}
std::string state_path(const std::string& dir) {
  return dir + "/longitudinal.state";
}
std::string checkpoint_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/epoch-" + std::to_string(epoch) + ".ckpt";
}

/// Everything that shapes the run's bytes. interrupt_* is deliberately
/// excluded: the resumed invocation drops the interrupt and must still
/// match the state written before the kill.
std::uint64_t config_fingerprint(const scenario::Scenario& s,
                                 RemeasurePolicy policy,
                                 const LongitudinalConfig& cfg) {
  util::durable::PayloadWriter w;
  w.pod(s.config().fingerprint());
  w.pod(static_cast<std::uint8_t>(policy));
  w.pod(cfg.epochs);
  w.pod(cfg.epoch_s);
  w.pod(cfg.churn.seed);
  w.pod(cfg.churn.prefix_reassignment_rate);
  w.pod(cfg.churn.wave_fraction);
  w.pod(cfg.churn.host_relocation_rate);
  w.pod(cfg.churn.vp_decommission_rate);
  w.pod(cfg.churn.vp_addition_rate);
  w.pod(cfg.churn.drift_onset_rate);
  w.pod(cfg.churn.drift_step_km);
  w.pod(cfg.churn.intercontinental_rate);
  w.pod(cfg.budget_prefixes);
  w.pod(cfg.vps_per_target);
  w.pod(cfg.packets);
  w.pod(cfg.campaign_batch);
  w.pod(cfg.lookups_per_epoch);
  w.pod(cfg.compile.ok_ttl_s);
  w.pod(cfg.compile.degraded_ttl_s);
  w.pod(cfg.compile.fallback_ttl_s);
  w.pod(cfg.compile.street_level_budget);
  w.pod(cfg.compile.two_step);
  w.pod(cfg.compile.geodb_fallback);
  return util::durable::xxh64(w.data());
}

/// Persisted driver progress: which epoch completed last and the running
/// frontier accumulators (the per-epoch snapshots carry everything else).
struct DriverState {
  std::uint64_t fingerprint = 0;
  std::uint64_t last_epoch = 0;  ///< last *completed* epoch (0 = bootstrap)
  std::uint32_t dataset_version = 1;
  std::uint64_t total_credits = 0;
  double query_err_sum = 0.0;
  std::uint64_t epochs_scored = 0;
};

bool save_state(const std::string& dir, const DriverState& st) {
  util::durable::PayloadWriter w;
  w.pod(st.fingerprint);
  w.pod(st.last_epoch);
  w.pod(st.dataset_version);
  w.pod(st.total_credits);
  w.pod(st.query_err_sum);
  w.pod(st.epochs_scored);
  return util::durable::write_framed(state_path(dir), kStateMagic,
                                     kStateVersion, w.data());
}

bool load_state(const std::string& dir, DriverState* st) {
  const auto r = util::durable::read_framed(state_path(dir), kStateMagic);
  if (!r.ok() || r.version != kStateVersion) return false;
  util::durable::PayloadReader p(r.payload);
  return p.pod(st->fingerprint) && p.pod(st->last_epoch) &&
         p.pod(st->dataset_version) && p.pod(st->total_credits) &&
         p.pod(st->query_err_sum) && p.pod(st->epochs_scored) &&
         p.exhausted();
}

std::vector<std::byte> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::vector<char> buf((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* b = reinterpret_cast<const std::byte*>(buf.data());
  return std::vector<std::byte>(b, b + buf.size());
}

/// Stale entries of a snapshot at `now`, oldest measurement first (ties
/// break on the snapshot's ascending prefix order via stable_sort).
std::vector<std::pair<net::Prefix, double>> stale_oldest_first(
    const publish::Snapshot& snap, double now_s) {
  std::vector<std::pair<net::Prefix, double>> out;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const publish::SnapshotEntry e = snap.entry(i);
    if (e.stale_at(now_s)) out.emplace_back(e.prefix, e.measured_at_s);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.second < b.second;
                   });
  return out;
}

void cap(std::vector<net::Prefix>& v, std::size_t budget) {
  if (budget > 0 && v.size() > budget) v.resize(budget);
}

/// The epoch's re-measurement target list, per policy. `hot16` is the
/// diff signal: /16 block -> publish time of the last diff that saw one
/// of its /24s move (empty on epoch 1 and for the non-diff policies).
std::vector<net::Prefix> select_prefixes(
    RemeasurePolicy policy, const publish::Snapshot& snap, double now_s,
    std::size_t budget, serve::GeoService& service,
    const std::map<std::uint32_t, double>& hot16,
    const LongitudinalConfig& cfg) {
  std::vector<net::Prefix> selected;
  switch (policy) {
    case RemeasurePolicy::TtlExpiry: {
      for (const auto& [prefix, _] : stale_oldest_first(snap, now_s)) {
        selected.push_back(prefix);
      }
      // The service queue still filled up from the workload's stale hits;
      // drain it so the bounded queue never carries state across epochs.
      (void)service.remeasure_queue().drain();
      break;
    }
    case RemeasurePolicy::StalenessQueue: {
      // The queue is the *queried* set — prefixes nobody looks up carry no
      // weight in user-experienced error, so they never spend budget here
      // (that is the economics TTL-expiry misses). Within the queue,
      // oldest measurement first: a popular prefix refreshed last epoch
      // re-enqueues immediately but must not starve a queried prefix
      // that's been stale for four. First-hit (popularity) order breaks
      // ties. Leftover budget falls back to the oldest stale entries, so
      // the policy costs exactly what the TTL clock costs.
      std::vector<net::Prefix> queued = service.remeasure_queue().drain();
      std::stable_sort(queued.begin(), queued.end(),
                       [&snap](const net::Prefix& a, const net::Prefix& b) {
                         const auto ea = snap.find(a.network());
                         const auto eb = snap.find(b.network());
                         const double ma = ea ? ea->measured_at_s : -1.0;
                         const double mb = eb ? eb->measured_at_s : -1.0;
                         return ma < mb;
                       });
      std::unordered_set<std::uint32_t> chosen;
      for (const net::Prefix& p : queued) {
        if (budget > 0 && selected.size() >= budget) break;
        if (chosen.insert(p.network().value()).second) selected.push_back(p);
      }
      for (const auto& [prefix, _] : stale_oldest_first(snap, now_s)) {
        if (budget > 0 && selected.size() >= budget) break;
        if (chosen.insert(prefix.network().value()).second) {
          selected.push_back(prefix);
        }
      }
      break;
    }
    case RemeasurePolicy::DiffTriggered: {
      (void)service.remeasure_queue().drain();
      // A /16 where a published diff saw a /24 move hosts a live (or
      // recent) migration wave: its not-yet-refreshed members ("suspects",
      // measured before the block's last observed strike) accumulate move
      // probability at the wave's per-epoch pace, everything else at the
      // base reassignment rate. Rank every due entry by P(moved since its
      // last measurement) under that two-rate model, highest first. This
      // is neither "suspects pre-empt the rotation" (a live wave
      // re-strikes every epoch and would starve long-stale cold movers)
      // nor a mere tie-break on age (which never promotes the one entry
      // the diff uniquely knows about: a recently-refreshed blockmate the
      // wave just moved, which the TTL clock won't revisit for epochs).
      // The two rates are the operator's churn estimate — here the
      // configured truth, the policy's best case.
      const double q =
          std::clamp(cfg.churn.prefix_reassignment_rate, 0.0, 1.0);
      const double w =
          std::clamp(std::max(cfg.churn.wave_fraction, q), 0.0, 1.0);
      auto due = stale_oldest_first(snap, now_s);
      const auto p_moved = [&](const net::Prefix& p, double measured) {
        const double age_epochs =
            cfg.epoch_s > 0.0
                ? std::max(0.0, (now_s - measured) / cfg.epoch_s)
                : 0.0;
        const auto it =
            hot16.find(p.network().value() & net::Prefix::mask(16));
        const bool hot = it != hot16.end() && measured < it->second;
        return 1.0 - std::pow(1.0 - (hot ? w : q), age_epochs);
      };
      std::stable_sort(due.begin(), due.end(),
                       [&p_moved](const auto& a, const auto& b) {
                         return p_moved(a.first, a.second) >
                                p_moved(b.first, b.second);
                       });
      for (const auto& [prefix, _] : due) {
        if (budget > 0 && selected.size() >= budget) break;
        selected.push_back(prefix);
      }
      break;
    }
  }
  cap(selected, budget);
  return selected;
}

}  // namespace

std::string_view to_string(RemeasurePolicy p) noexcept {
  switch (p) {
    case RemeasurePolicy::TtlExpiry: return "ttl-expiry";
    case RemeasurePolicy::StalenessQueue: return "staleness-queue";
    case RemeasurePolicy::DiffTriggered: return "diff-triggered";
  }
  return "?";
}

std::span<const RemeasurePolicy> all_policies() noexcept {
  static constexpr std::array<RemeasurePolicy, 3> kAll = {
      RemeasurePolicy::TtlExpiry, RemeasurePolicy::StalenessQueue,
      RemeasurePolicy::DiffTriggered};
  return kAll;
}

LongitudinalResult run_longitudinal(scenario::Scenario& s,
                                    RemeasurePolicy policy,
                                    const LongitudinalConfig& cfg) {
  LongitudinalResult result;
  result.policy = policy;

  const std::uint64_t fp = config_fingerprint(s, policy, cfg);
  const bool durable = !cfg.state_dir.empty();

  DriverState st;
  st.fingerprint = fp;

  std::shared_ptr<const publish::Snapshot> current;
  // Diff signal: /16 block -> publish time of the last diff that observed
  // one of its /24s move. Never persisted — recomputed from the snapshot
  // chain on resume so the durable format stays snapshot-only.
  std::map<std::uint32_t, double> hot16;

  // -- resume or bootstrap -------------------------------------------------
  DriverState loaded;
  if (durable && load_state(cfg.state_dir, &loaded) &&
      loaded.fingerprint == fp) {
    st = loaded;
    std::string error;
    current = publish::Snapshot::load(snapshot_path(cfg.state_dir,
                                                    st.last_epoch),
                                      &error);
    if (current && policy == RemeasurePolicy::DiffTriggered) {
      // Replay the published diffs from the snapshots already on disk.
      auto prev = publish::Snapshot::load(snapshot_path(cfg.state_dir, 0),
                                          &error);
      for (std::uint64_t e = 1; prev && e <= st.last_epoch; ++e) {
        const auto next = publish::Snapshot::load(
            snapshot_path(cfg.state_dir, e), &error);
        if (!next) { current = nullptr; break; }  // torn chain: start over
        for (const net::Prefix& p :
             publish::diff_snapshots(*prev, *next).moved_prefixes) {
          hot16[p.network().value() & net::Prefix::mask(16)] =
              static_cast<double>(e) * cfg.epoch_s;
        }
        prev = next;
      }
      if (!prev) current = nullptr;
    }
  }

  if (current == nullptr) {
    // Fresh run (or unusable state): compile the bootstrap dataset from
    // the pristine world's dense RTT matrices.
    st = DriverState{};
    st.fingerprint = fp;
    publish::CompileOptions opts = cfg.compile;
    opts.measured_at_s = 0.0;
    const auto records = publish::compile_entries(s, opts);
    publish::SnapshotBuilder builder;
    builder.add(records);
    const publish::SnapshotMeta meta{
        .dataset_version = 1,
        .created_at_s = 0.0,
        .source = std::string("longitudinal bootstrap ") +
                  std::string(to_string(policy))};
    std::vector<std::byte> bytes = builder.build(meta);
    result.final_snapshot_bytes = bytes;
    current = publish::Snapshot::from_bytes(std::move(bytes));
    if (durable) {
      (void)util::durable::atomic_write_file(
          snapshot_path(cfg.state_dir, 0), result.final_snapshot_bytes);
      (void)save_state(cfg.state_dir, st);
    }
  } else {
    // Resumed: the byte-identity oracle starts as the persisted snapshot
    // (in case the run was already complete) and is re-derived below
    // after every further published epoch.
    result.final_snapshot_bytes =
        read_file_bytes(snapshot_path(cfg.state_dir, st.last_epoch));
  }

  serve::GeoService service(current);

  // -- world replay up to the resume point ---------------------------------
  sim::ChurnModel churn(s.world(), s.targets(), s.vps(), cfg.churn);
  for (std::uint64_t e = 1; e <= st.last_epoch; ++e) {
    (void)churn.advance(e);
    s.invalidate_rtt_matrices();
  }

  // -- the epoch loop ------------------------------------------------------
  for (std::uint64_t epoch = st.last_epoch + 1; epoch <= cfg.epochs;
       ++epoch) {
    const sim::EpochChurnSummary churned = churn.advance(epoch);
    s.invalidate_rtt_matrices();
    const double now = static_cast<double>(epoch) * cfg.epoch_s;

    EpochStats es;
    es.epoch = epoch;
    es.prefixes_churned = churned.moved_prefixes.size();
    es.vps_active = churn.active_vps().size();

    // 1. Serve the epoch's lookup workload against the *old* snapshot —
    //    this is the quality users actually experienced — and let stale
    //    hits feed the re-measurement queue.
    {
      auto wgen = util::RngStream(cfg.churn.seed)
                      .fork("workload", epoch)
                      .gen();
      const auto& targets = s.targets();
      std::vector<double> errs;
      errs.reserve(cfg.lookups_per_epoch);
      std::size_t stale_hits = 0;
      for (std::size_t k = 0; k < cfg.lookups_per_epoch; ++k) {
        const double u = wgen.uniform();
        const auto idx = std::min(
            targets.size() - 1,
            static_cast<std::size_t>(u * u *
                                     static_cast<double>(targets.size())));
        const sim::Host& host = s.world().host(targets[idx]);
        const serve::Answer a = service.lookup(host.addr, now);
        errs.push_back(a.found
                           ? geo::distance_km(a.location, host.true_location)
                           : kMissPenaltyKm);
        if (a.stale) ++stale_hits;
      }
      es.query_mean_error_km = util::mean(errs);
      es.query_median_error_km = util::median(errs);
      es.stale_hit_fraction =
          cfg.lookups_per_epoch == 0
              ? 0.0
              : static_cast<double>(stale_hits) /
                    static_cast<double>(cfg.lookups_per_epoch);
    }
    es.stale_prefixes = stale_oldest_first(*current, now).size();

    // 2. Pick what to re-measure and run the campaign.
    const std::vector<net::Prefix> selected =
        select_prefixes(policy, *current, now, cfg.budget_prefixes, service,
                        hot16, cfg);
    es.selected_prefixes = selected.size();
    if (util::env::flag("GEOLOC_LONG_DEBUG")) {
      std::size_t wrong = 0;
      for (const net::Prefix& p : selected) {
        const auto entry = current->find(p.network());
        if (!entry) continue;
        for (const sim::HostId t : s.targets()) {
          const sim::Host& h = s.world().host(t);
          if (!p.contains(h.addr)) continue;
          if (geo::distance_km(entry->location, h.true_location) > 100.0) {
            ++wrong;
          }
          break;
        }
      }
      std::fprintf(stderr, "[long] %s epoch %llu: selected=%zu wrong=%zu\n",
                   std::string(to_string(policy)).c_str(),
                   static_cast<unsigned long long>(epoch), selected.size(),
                   wrong);
    }
    const auto requests = serve::plan_remeasurement(
        s, selected, *current, churn.active_vps(), cfg.vps_per_target,
        cfg.packets);
    es.requests = requests.size();

    // A fresh platform per epoch: measurement randomness then depends only
    // on epoch-local ping ordinals, so a resumed epoch replays the exact
    // RTTs regardless of what earlier epochs measured.
    atlas::Platform platform(s.world(), s.latency(), {});
    atlas::ExecutorConfig ecfg;
    ecfg.scheduler.batch_size = cfg.campaign_batch;
    if (durable) {
      ecfg.checkpoint.path = checkpoint_path(cfg.state_dir, epoch);
      if (cfg.interrupt_epoch == epoch) {
        ecfg.checkpoint.stop_after_rounds = cfg.interrupt_after_rounds;
      }
    }
    atlas::CampaignExecutor executor(platform, ecfg);
    const atlas::CampaignReport report = executor.execute(requests);
    if (report.interrupted) {
      // The kill point. Driver state still names epoch-1 as the frontier;
      // the campaign checkpoint holds the partial rounds. A re-invocation
      // with the same state_dir replays churn, reselects the identical
      // request list, and the executor resumes mid-campaign.
      result.interrupted = true;
      result.total_credits = st.total_credits + report.credits_spent;
      result.completed_epochs = st.last_epoch;
      return result;
    }
    es.credits_spent = report.credits_spent;
    st.total_credits += report.credits_spent;

    // 3. Compile the refreshed entries and publish the next version.
    publish::CompileOptions opts = cfg.compile;
    opts.measured_at_s = now;
    const auto refreshed = publish::refresh_entries(s, report, opts);
    es.refreshed_entries = refreshed.size();

    publish::SnapshotBuilder builder;
    for (std::size_t i = 0; i < current->size(); ++i) {
      builder.add(publish::to_record(current->entry(i)));
    }
    builder.add(refreshed);
    st.dataset_version += 1;
    const publish::SnapshotMeta meta{
        .dataset_version = st.dataset_version,
        .created_at_s = now,
        .source = std::string("longitudinal ") +
                  std::string(to_string(policy)) + " epoch " +
                  std::to_string(epoch)};
    std::vector<std::byte> bytes = builder.build(meta);
    result.final_snapshot_bytes = bytes;
    const auto next = publish::Snapshot::from_bytes(std::move(bytes));

    const publish::DiffStats diff = publish::diff_snapshots(*current, *next);
    es.diff_churn_fraction = diff.churn_fraction();
    // Strike the /16 blocks this publish saw move. The map is cumulative —
    // a block stays hot until every member has been re-measured after its
    // latest strike (select_prefixes' measured_at < strike test), which is
    // exactly what wave-correlated reassignment needs: waves run for
    // several epochs, so one observed mover indicts the whole block.
    for (const net::Prefix& p : diff.moved_prefixes) {
      hot16[p.network().value() & net::Prefix::mask(16)] = now;
    }
    service.publish(next);
    current = next;
    es.dataset_version = st.dataset_version;
    es.snapshot_median_error_km = evaluate_snapshot(s, *next).median_error_km;

    st.last_epoch = epoch;
    st.query_err_sum += es.query_mean_error_km;
    st.epochs_scored += 1;
    if (durable) {
      (void)util::durable::atomic_write_file(
          snapshot_path(cfg.state_dir, epoch), result.final_snapshot_bytes);
      (void)save_state(cfg.state_dir, st);
    }
    result.epochs.push_back(es);
  }

  result.completed_epochs = st.last_epoch;
  result.total_credits = st.total_credits;
  result.mean_query_error_km =
      st.epochs_scored == 0
          ? 0.0
          : st.query_err_sum / static_cast<double>(st.epochs_scored);
  result.final_snapshot_error_km =
      evaluate_snapshot(s, *current).median_error_km;
  return result;
}

std::vector<FrontierPoint> freshness_frontier(
    const scenario::ScenarioConfig& base,
    std::span<const std::size_t> budgets, const LongitudinalConfig& cfg) {
  std::vector<FrontierPoint> frontier;
  for (const std::size_t budget : budgets) {
    for (const RemeasurePolicy policy : all_policies()) {
      // Churn mutates the world, so every cell gets its own scenario.
      scenario::Scenario s(base);
      LongitudinalConfig cell = cfg;
      cell.budget_prefixes = budget;
      cell.state_dir.clear();  // sweep cells are never durable
      cell.interrupt_epoch = 0;
      const LongitudinalResult r = run_longitudinal(s, policy, cell);
      frontier.push_back(FrontierPoint{
          .policy = policy,
          .budget_prefixes = budget,
          .credits_spent = r.total_credits,
          .mean_query_error_km = r.mean_query_error_km,
          .final_snapshot_error_km = r.final_snapshot_error_km});
    }
  }
  return frontier;
}

}  // namespace geoloc::eval
