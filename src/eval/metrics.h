// Shared evaluation vocabulary: geolocation error and the paper's accuracy
// thresholds.
#pragma once

#include <span>

#include "geo/geodesy.h"
#include "scenario/scenario.h"

namespace geoloc::eval {

/// The paper's "city level" radius (Section 5.1.1, citing Gharaibeh et al.).
inline constexpr double kCityLevelKm = 40.0;
/// The paper's "street level" radius (Section 5.2.1).
inline constexpr double kStreetLevelKm = 1.0;

/// Error of an estimate against a target's ground-truth location.
inline double error_km(const scenario::Scenario& s, std::size_t target_col,
                       const geo::GeoPoint& estimate) {
  return geo::distance_km(
      estimate, s.world().host(s.targets()[target_col]).true_location);
}

/// Fraction of errors within city level / street level.
double city_level_fraction(std::span<const double> errors_km) noexcept;
double street_level_fraction(std::span<const double> errors_km) noexcept;

}  // namespace geoloc::eval
