// Quality audit of a published snapshot against the simulator's ground
// truth: the numbers a dataset release note should carry (coverage, trust
// tiers, error distribution) — the "is the published artifact as good as
// the campaign it came from" check.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "publish/snapshot.h"
#include "scenario/scenario.h"

namespace geoloc::eval {

struct SnapshotQuality {
  std::size_t targets = 0;         ///< scenario targets audited
  std::size_t covered = 0;         ///< targets with a snapshot answer
  std::size_t tier_ok = 0;         ///< answers with CbgVerdict::Ok
  std::size_t tier_degraded = 0;
  std::size_t tier_unlocatable = 0;
  /// Answers per publish::Method (indexed by its underlying value).
  std::array<std::size_t, 4> by_method{};
  double median_error_km = 0.0;    ///< over covered targets
  double city_level_fraction = 0.0;  ///< errors <= 40 km (paper's bar)
  std::vector<double> errors_km;   ///< per covered target, snapshot order
};

/// Look up every scenario target in the snapshot and score the answers
/// against true locations.
SnapshotQuality evaluate_snapshot(const scenario::Scenario& s,
                                  const publish::Snapshot& snapshot);

}  // namespace geoloc::eval
