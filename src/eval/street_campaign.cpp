#include "eval/street_campaign.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "eval/metrics.h"
#include "util/env.h"
#include "util/stats.h"

namespace geoloc::eval {

namespace {

constexpr std::uint64_t kMagic = 0x5354524545543032ULL;  // "STREET02"

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}
template <typename T>
bool read_pod(std::FILE* f, T& v) {
  return std::fread(&v, sizeof v, 1, f) == 1;
}

}  // namespace

bool StreetCampaign::save(const std::string& path, std::uint64_t tag) const {
  FilePtr f{std::fopen(path.c_str(), "wb")};
  if (!f) return false;
  if (!write_pod(f.get(), kMagic) || !write_pod(f.get(), tag)) return false;
  const std::uint64_t n = records.size();
  if (!write_pod(f.get(), n)) return false;
  for (const StreetRecord& r : records) {
    if (!write_pod(f.get(), r.street_error_km) ||
        !write_pod(f.get(), r.cbg_error_km) ||
        !write_pod(f.get(), r.oracle_error_km) ||
        !write_pod(f.get(), r.elapsed_seconds) ||
        !write_pod(f.get(), r.negative_fraction) ||
        !write_pod(f.get(), r.pearson) || !write_pod(f.get(), r.tier_reached) ||
        !write_pod(f.get(), r.fell_back_to_cbg) ||
        !write_pod(f.get(), r.landmarks_measured) ||
        !write_pod(f.get(), r.geocode_queries) ||
        !write_pod(f.get(), r.websites_tested) ||
        !write_pod(f.get(), r.nearest_landmark_km) ||
        !write_pod(f.get(), r.nearest_checked_landmark_km)) {
      return false;
    }
    const std::uint32_t m = static_cast<std::uint32_t>(r.distances.size());
    if (!write_pod(f.get(), m)) return false;
    for (const auto& [g, d] : r.distances) {
      if (!write_pod(f.get(), g) || !write_pod(f.get(), d)) return false;
    }
  }
  return true;
}

bool StreetCampaign::load(const std::string& path, std::uint64_t tag) {
  FilePtr f{std::fopen(path.c_str(), "rb")};
  if (!f) return false;
  std::uint64_t magic = 0, file_tag = 0, n = 0;
  if (!read_pod(f.get(), magic) || !read_pod(f.get(), file_tag) ||
      !read_pod(f.get(), n) || magic != kMagic || file_tag != tag) {
    return false;
  }
  records.assign(n, {});
  for (StreetRecord& r : records) {
    std::uint32_t m = 0;
    if (!read_pod(f.get(), r.street_error_km) ||
        !read_pod(f.get(), r.cbg_error_km) ||
        !read_pod(f.get(), r.oracle_error_km) ||
        !read_pod(f.get(), r.elapsed_seconds) ||
        !read_pod(f.get(), r.negative_fraction) ||
        !read_pod(f.get(), r.pearson) || !read_pod(f.get(), r.tier_reached) ||
        !read_pod(f.get(), r.fell_back_to_cbg) ||
        !read_pod(f.get(), r.landmarks_measured) ||
        !read_pod(f.get(), r.geocode_queries) ||
        !read_pod(f.get(), r.websites_tested) ||
        !read_pod(f.get(), r.nearest_landmark_km) ||
        !read_pod(f.get(), r.nearest_checked_landmark_km) ||
        !read_pod(f.get(), m)) {
      records.clear();
      return false;
    }
    r.distances.resize(m);
    for (auto& [g, d] : r.distances) {
      if (!read_pod(f.get(), g) || !read_pod(f.get(), d)) {
        records.clear();
        return false;
      }
    }
  }
  return true;
}

const StreetCampaign& street_campaign(const scenario::Scenario& s,
                                      std::size_t max_distances_per_target) {
  // One campaign per scenario fingerprint per process.
  static std::mutex mu;
  static std::unordered_map<std::uint64_t, std::unique_ptr<StreetCampaign>>
      cache;
  const std::uint64_t tag = s.config().fingerprint() ^ 0x57CA3ULL;

  std::scoped_lock lock(mu);
  if (const auto it = cache.find(tag); it != cache.end()) return *it->second;

  auto campaign = std::make_unique<StreetCampaign>();

  const std::string dir =
      util::env::string_or("GEOLOC_CACHE_DIR", s.config().cache_dir);
  std::string path;
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    char buf[64];
    std::snprintf(buf, sizeof buf, "/street-campaign-%016llx.bin",
                  static_cast<unsigned long long>(tag));
    path = dir + buf;
    if (campaign->load(path, tag)) {
      return *cache.emplace(tag, std::move(campaign)).first->second;
    }
  }

  const core::StreetLevel street(s);
  campaign->records.reserve(s.targets().size());
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const core::StreetLevelResult run = street.geolocate(col);
    StreetRecord rec;
    rec.street_error_km =
        static_cast<float>(error_km(s, col, run.estimate));
    const core::CbgResult cbg = street.cbg_baseline(col);
    rec.cbg_error_km = static_cast<float>(
        cbg.ok ? error_km(s, col, cbg.estimate) : -1.0);
    const auto oracle = street.closest_landmark_oracle(col);
    rec.oracle_error_km = static_cast<float>(
        oracle ? error_km(s, col, *oracle) : -1.0);
    rec.elapsed_seconds = static_cast<float>(run.elapsed_seconds);
    rec.tier_reached = static_cast<std::uint8_t>(run.tier_reached);
    rec.fell_back_to_cbg = run.fell_back_to_cbg;
    rec.geocode_queries = static_cast<std::uint32_t>(
        run.tier2.geocode_queries + run.tier3.geocode_queries);
    rec.websites_tested = static_cast<std::uint32_t>(
        run.tier2.websites_tested + run.tier3.websites_tested);

    // Aggregate landmark measurements over both tiers.
    std::vector<double> geo_d, meas_d;
    std::uint32_t measured = 0, negative = 0;
    for (const auto* tier : {&run.tier2, &run.tier3}) {
      for (const core::LandmarkMeasurement& m : tier->landmarks) {
        if (m.pair_count == 0) continue;
        ++measured;
        if (!m.usable) ++negative;
        if (m.usable) {
          geo_d.push_back(m.geographic_distance_km);
          meas_d.push_back(m.measured_distance_km);
          if (rec.distances.size() < max_distances_per_target) {
            rec.distances.emplace_back(
                static_cast<float>(m.geographic_distance_km),
                static_cast<float>(m.measured_distance_km));
          }
        }
      }
    }
    rec.landmarks_measured = measured;
    rec.negative_fraction =
        measured > 0
            ? static_cast<float>(negative) / static_cast<float>(measured)
            : -1.0F;
    rec.pearson = static_cast<float>(util::pearson(geo_d, meas_d));

    // Figure 5b inputs: proximity of *harvested* landmarks, optimistic and
    // with the paper's < 1 ms latency check (pings from the target to every
    // harvested landmark within 40 km).
    auto check_gen =
        s.world().rng().fork("latency-check", col).gen();
    const sim::HostId target = s.targets()[col];
    for (const auto* tier : {&run.tier2, &run.tier3}) {
      for (const core::LandmarkMeasurement& m2 : tier->landmarks) {
        const auto g = static_cast<float>(m2.geographic_distance_km);
        if (rec.nearest_landmark_km < 0.0F || g < rec.nearest_landmark_km) {
          rec.nearest_landmark_km = g;
        }
        if (g <= 40.0F) {
          const sim::HostId server = s.web().website(m2.site).server;
          const auto rtt = s.latency().min_rtt_ms(target, server,
                                                  /*packets=*/3, check_gen);
          if (rtt && *rtt < 1.0 &&
              (rec.nearest_checked_landmark_km < 0.0F ||
               g < rec.nearest_checked_landmark_km)) {
            rec.nearest_checked_landmark_km = g;
          }
        }
      }
    }
    campaign->records.push_back(std::move(rec));
  }

  if (!path.empty()) campaign->save(path, tag);
  return *cache.emplace(tag, std::move(campaign)).first->second;
}

}  // namespace geoloc::eval
