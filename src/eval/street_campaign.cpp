#include "eval/street_campaign.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "eval/metrics.h"
#include "util/durable.h"
#include "util/env.h"
#include "util/stats.h"

namespace geoloc::eval {

namespace {

constexpr std::uint64_t kMagic = 0x5354524545543033ULL;  // "STREET03"
constexpr std::uint32_t kVersion = 3;

/// The fixed-width prefix of one serialised StreetRecord, in bytes; the
/// variable distances list follows. Used to bound the record count claimed
/// by a payload before any per-record allocation happens.
constexpr std::uint64_t kRecordFixedBytes =
    8 * sizeof(float) + sizeof(std::uint8_t) + sizeof(bool) +
    3 * sizeof(std::uint32_t) + sizeof(std::uint32_t);

}  // namespace

bool StreetCampaign::save(const std::string& path, std::uint64_t tag) const {
  util::durable::PayloadWriter w;
  w.pod(tag);
  w.pod(static_cast<std::uint64_t>(records.size()));
  for (const StreetRecord& r : records) {
    w.pod(r.street_error_km);
    w.pod(r.cbg_error_km);
    w.pod(r.oracle_error_km);
    w.pod(r.elapsed_seconds);
    w.pod(r.negative_fraction);
    w.pod(r.pearson);
    w.pod(r.tier_reached);
    w.pod(r.fell_back_to_cbg);
    w.pod(r.landmarks_measured);
    w.pod(r.geocode_queries);
    w.pod(r.websites_tested);
    w.pod(r.nearest_landmark_km);
    w.pod(r.nearest_checked_landmark_km);
    w.pod(static_cast<std::uint32_t>(r.distances.size()));
    for (const auto& [g, d] : r.distances) {
      w.pod(g);
      w.pod(d);
    }
  }
  return util::durable::write_framed(path, kMagic, kVersion, w.data());
}

bool StreetCampaign::load(const std::string& path, std::uint64_t tag) {
  // The durable frame already rejected truncation and bit-flips; every
  // read below is still bounds-checked so a checksummed-but-malformed
  // payload degrades to a clean miss, never a partially-filled record or
  // an attacker-sized allocation.
  const util::durable::FramedRead fr = util::durable::read_framed(path, kMagic);
  if (!fr.ok() || fr.version != kVersion) return false;

  util::durable::PayloadReader in(fr.payload);
  std::uint64_t file_tag = 0, n = 0;
  if (!in.pod(file_tag) || !in.pod(n) || file_tag != tag) return false;
  if (n > in.remaining() / kRecordFixedBytes) return false;

  const auto reject = [&] {
    records.clear();
    return false;
  };
  records.assign(static_cast<std::size_t>(n), {});
  for (StreetRecord& r : records) {
    std::uint32_t m = 0;
    if (!in.pod(r.street_error_km) || !in.pod(r.cbg_error_km) ||
        !in.pod(r.oracle_error_km) || !in.pod(r.elapsed_seconds) ||
        !in.pod(r.negative_fraction) || !in.pod(r.pearson) ||
        !in.pod(r.tier_reached) || !in.pod(r.fell_back_to_cbg) ||
        !in.pod(r.landmarks_measured) || !in.pod(r.geocode_queries) ||
        !in.pod(r.websites_tested) || !in.pod(r.nearest_landmark_km) ||
        !in.pod(r.nearest_checked_landmark_km) || !in.pod(m)) {
      return reject();
    }
    if (m > in.remaining() / (2 * sizeof(float))) return reject();
    r.distances.resize(m);
    for (auto& [g, d] : r.distances) {
      if (!in.pod(g) || !in.pod(d)) return reject();
    }
  }
  if (!in.exhausted()) return reject();
  return true;
}

const StreetCampaign& street_campaign(const scenario::Scenario& s,
                                      std::size_t max_distances_per_target) {
  // One campaign per scenario fingerprint per process.
  static std::mutex mu;
  static std::unordered_map<std::uint64_t, std::unique_ptr<StreetCampaign>>
      cache;
  const std::uint64_t tag = s.config().fingerprint() ^ 0x57CA3ULL;

  std::scoped_lock lock(mu);
  if (const auto it = cache.find(tag); it != cache.end()) return *it->second;

  auto campaign = std::make_unique<StreetCampaign>();

  const std::string dir =
      util::env::string_or("GEOLOC_CACHE_DIR", s.config().cache_dir);
  std::string path;
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    char buf[64];
    std::snprintf(buf, sizeof buf, "/street-campaign-%016llx.bin",
                  static_cast<unsigned long long>(tag));
    path = dir + buf;
    if (campaign->load(path, tag)) {
      return *cache.emplace(tag, std::move(campaign)).first->second;
    }
  }

  const core::StreetLevel street(s);
  campaign->records.reserve(s.targets().size());
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const core::StreetLevelResult run = street.geolocate(col);
    StreetRecord rec;
    rec.street_error_km =
        static_cast<float>(error_km(s, col, run.estimate));
    const core::CbgResult cbg = street.cbg_baseline(col);
    rec.cbg_error_km = static_cast<float>(
        cbg.ok ? error_km(s, col, cbg.estimate) : -1.0);
    const auto oracle = street.closest_landmark_oracle(col);
    rec.oracle_error_km = static_cast<float>(
        oracle ? error_km(s, col, *oracle) : -1.0);
    rec.elapsed_seconds = static_cast<float>(run.elapsed_seconds);
    rec.tier_reached = static_cast<std::uint8_t>(run.tier_reached);
    rec.fell_back_to_cbg = run.fell_back_to_cbg;
    rec.geocode_queries = static_cast<std::uint32_t>(
        run.tier2.geocode_queries + run.tier3.geocode_queries);
    rec.websites_tested = static_cast<std::uint32_t>(
        run.tier2.websites_tested + run.tier3.websites_tested);

    // Aggregate landmark measurements over both tiers.
    std::vector<double> geo_d, meas_d;
    std::uint32_t measured = 0, negative = 0;
    for (const auto* tier : {&run.tier2, &run.tier3}) {
      for (const core::LandmarkMeasurement& m : tier->landmarks) {
        if (m.pair_count == 0) continue;
        ++measured;
        if (!m.usable) ++negative;
        if (m.usable) {
          geo_d.push_back(m.geographic_distance_km);
          meas_d.push_back(m.measured_distance_km);
          if (rec.distances.size() < max_distances_per_target) {
            rec.distances.emplace_back(
                static_cast<float>(m.geographic_distance_km),
                static_cast<float>(m.measured_distance_km));
          }
        }
      }
    }
    rec.landmarks_measured = measured;
    rec.negative_fraction =
        measured > 0
            ? static_cast<float>(negative) / static_cast<float>(measured)
            : -1.0F;
    rec.pearson = static_cast<float>(util::pearson(geo_d, meas_d));

    // Figure 5b inputs: proximity of *harvested* landmarks, optimistic and
    // with the paper's < 1 ms latency check (pings from the target to every
    // harvested landmark within 40 km).
    auto check_gen =
        s.world().rng().fork("latency-check", col).gen();
    const sim::HostId target = s.targets()[col];
    for (const auto* tier : {&run.tier2, &run.tier3}) {
      for (const core::LandmarkMeasurement& m2 : tier->landmarks) {
        const auto g = static_cast<float>(m2.geographic_distance_km);
        if (rec.nearest_landmark_km < 0.0F || g < rec.nearest_landmark_km) {
          rec.nearest_landmark_km = g;
        }
        if (g <= 40.0F) {
          const sim::HostId server = s.web().website(m2.site).server;
          const auto rtt = s.latency().min_rtt_ms(target, server,
                                                  /*packets=*/3, check_gen);
          if (rtt && *rtt < 1.0 &&
              (rec.nearest_checked_landmark_km < 0.0F ||
               g < rec.nearest_checked_landmark_km)) {
            rec.nearest_checked_landmark_km = g;
          }
        }
      }
    }
    campaign->records.push_back(std::move(rec));
  }

  if (!path.empty()) campaign->save(path, tag);
  return *cache.emplace(tag, std::move(campaign)).first->second;
}

spatial::Calibrator calibrate_street_regions(const scenario::Scenario& s,
                                             const StreetCampaign& campaign,
                                             int cell_level) {
  spatial::Calibrator cal(cell_level);
  const std::size_t n =
      std::min(campaign.records.size(), s.targets().size());
  for (std::size_t col = 0; col < n; ++col) {
    const geo::GeoPoint where =
        s.world().host(s.targets()[col]).true_location;
    for (const auto& [geographic_km, measured_km] : campaign.records[col].distances) {
      // measured = min(D1+D2) * 4/9 c, so the delay is recoverable.
      const double delay_ms = measured_km / geo::kSoiFourNinthsKmPerMs;
      cal.add_sample(where, delay_ms, geographic_km);
    }
  }
  return cal;
}

}  // namespace geoloc::eval
