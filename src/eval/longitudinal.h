// Longitudinal campaign driver: the freshness economics of a published
// geolocation dataset.
//
// The source paper produces one snapshot; a *publishable* dataset (its
// stated goal) is a sequence of them, and the interesting question
// becomes economic: the world churns (sim/churn.h), every stale entry is
// a lie served to users, and every re-measurement costs ping credits the
// platform meters. This driver advances a scenario world month by month,
// runs a bounded re-measurement campaign each epoch through the resilient
// executor, compiles and publishes a snapshot version per epoch, and
// hot-swaps it into a serve::GeoService — the full production loop, not
// one pipeline run.
//
// Three re-measurement policies compete on an accuracy-vs-credit frontier
// (freshness_frontier, surfaced by bench_freshness_economics):
//
//   * **TtlExpiry** — the naive operator: re-measure whatever the TTL
//     clock says is due, oldest first. Spends credits uniformly; blind to
//     where the world actually moved.
//   * **StalenessQueue** — demand-driven: the epoch's lookup workload
//     trips stale hits, the service enqueues those prefixes
//     (serve::RemeasureQueue), and the campaign re-measures in first-hit
//     order. Spends credits where users look.
//   * **DiffTriggered** — churn-driven: every published diff
//     (publish::DiffStats::moved_prefixes) strikes the /16 blocks it saw
//     move; due entries are then ranked by P(moved since last measured)
//     under a two-rate model — members of struck blocks not yet
//     re-measured since the strike accumulate move probability at the
//     wave pace, everything else at the base reassignment rate. Because
//     churn is wave-correlated within /16 blocks, last month's observed
//     movers indict their neighbours. Caveat the frontier quantifies:
//     the diff only observes a mover when the rotation re-measures it,
//     so the strike lags by the rotation period — at tight budgets the
//     signal decays into an age proxy and the policy converges to
//     TtlExpiry rather than beating it (see EXPERIMENTS.md).
//
// Determinism & durability: every run is byte-identical across
// GEOLOC_THREADS (the oracle is the final snapshot's serialized bytes),
// and with `state_dir` set the driver persists per-epoch snapshots plus a
// framed driver-state file, so a run killed at any point — even mid-
// campaign, via the executor's own checkpoint — resumes to the exact same
// bytes. Churn is *replayed*, not persisted: epochs are a deterministic
// function of the seed, so resume re-derives the world instead of
// serializing it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "publish/compile.h"
#include "scenario/scenario.h"
#include "sim/churn.h"

namespace geoloc::eval {

enum class RemeasurePolicy : std::uint8_t {
  TtlExpiry = 0,
  StalenessQueue = 1,
  DiffTriggered = 2,
};

[[nodiscard]] std::string_view to_string(RemeasurePolicy p) noexcept;
[[nodiscard]] std::span<const RemeasurePolicy> all_policies() noexcept;

struct LongitudinalConfig {
  /// Epochs to advance past the bootstrap snapshot (epoch 0 compiles the
  /// full dataset; epochs 1..epochs churn + re-measure + republish).
  std::uint64_t epochs = 6;
  /// Simulated seconds per epoch (one month, matching the default
  /// CompileOptions::ok_ttl_s so trusted entries come due every epoch).
  double epoch_s = 30 * 86'400.0;

  sim::ChurnConfig churn;        ///< world evolution (seed lives here)
  publish::CompileOptions compile;  ///< TTL ladder + technique selection

  /// Max prefixes re-measured per epoch — the credit budget knob the
  /// frontier sweeps. 0 = unbounded (re-measure everything due).
  std::size_t budget_prefixes = 0;
  std::size_t vps_per_target = 8;  ///< VPs pinging each re-measured target
  int packets = 3;
  /// Executor submission batch per round. Part of the run's fingerprint:
  /// the killed and resumed invocations must agree on the round structure
  /// for the mid-campaign checkpoint to be accepted. Small values force
  /// multi-round campaigns (what makes interrupt_epoch actually bite).
  std::size_t campaign_batch = 10'000;

  /// Lookups served per epoch. The workload is deterministic and skewed
  /// (popularity ~ u^2 over the target list) — it scores the
  /// user-experienced error and feeds the StalenessQueue policy.
  std::size_t lookups_per_epoch = 256;

  /// Directory for per-epoch snapshots + driver state; empty disables
  /// durability (and resume).
  std::string state_dir;
  /// Interrupt the campaign of this epoch after `interrupt_after_rounds`
  /// rounds (the deterministic kill -9 stand-in; requires state_dir for
  /// the run to be resumable). 0 = never interrupt.
  std::uint64_t interrupt_epoch = 0;
  std::uint64_t interrupt_after_rounds = 1;
};

/// One epoch of the longitudinal loop, as scored ground truth.
struct EpochStats {
  std::uint64_t epoch = 0;

  // What the world did (sim::EpochChurnSummary digest).
  std::size_t prefixes_churned = 0;
  std::size_t vps_active = 0;

  // What the policy did.
  std::size_t stale_prefixes = 0;     ///< due at the epoch boundary
  std::size_t selected_prefixes = 0;  ///< actually re-measured (<= budget)
  std::size_t requests = 0;
  std::uint64_t credits_spent = 0;
  std::size_t refreshed_entries = 0;

  // User-experienced quality, scored on the epoch's lookup workload
  // *before* the campaign ran (the state users actually saw). The mean is
  // the frontier's accuracy axis: lookups are popularity-skewed, so it
  // weights each prefix by how often users actually hit it — the median
  // rides along as the robust per-epoch diagnostic.
  double query_mean_error_km = 0.0;
  double query_median_error_km = 0.0;
  double stale_hit_fraction = 0.0;

  // Published-dataset quality after the epoch's republish.
  double snapshot_median_error_km = 0.0;
  double diff_churn_fraction = 0.0;
  std::uint32_t dataset_version = 0;
};

struct LongitudinalResult {
  RemeasurePolicy policy = RemeasurePolicy::TtlExpiry;
  /// Epochs executed in *this* process. A resumed run only re-populates
  /// the epochs after the resume point; completed_epochs counts all.
  std::vector<EpochStats> epochs;
  std::uint64_t completed_epochs = 0;
  std::uint64_t total_credits = 0;  ///< cumulative, survives resume

  /// Mean over epochs of the per-epoch query-workload *mean* error — the
  /// frontier's accuracy axis (what users experienced, credit for credit,
  /// weighted by how often they asked).
  double mean_query_error_km = 0.0;
  /// Published-dataset median error after the final epoch.
  double final_snapshot_error_km = 0.0;

  /// Serialized bytes of the final published snapshot — the byte-identity
  /// oracle for thread-count and kill/resume invariance.
  std::vector<std::byte> final_snapshot_bytes;

  /// True when the run stopped at LongitudinalConfig::interrupt_epoch
  /// with the campaign checkpointed; re-invoke run_longitudinal with the
  /// same config (minus the interrupt) and state_dir to finish.
  bool interrupted = false;
};

/// Run the longitudinal loop. Mutates the scenario's world (churn) and
/// detaches it from the RTT disk cache — pass a scenario instance built
/// for this run, not a shared fixture. Byte-identical across
/// GEOLOC_THREADS and across kill/resume (see LongitudinalResult).
LongitudinalResult run_longitudinal(scenario::Scenario& s,
                                    RemeasurePolicy policy,
                                    const LongitudinalConfig& cfg = {});

/// One point of the accuracy-vs-credit frontier.
struct FrontierPoint {
  RemeasurePolicy policy = RemeasurePolicy::TtlExpiry;
  std::size_t budget_prefixes = 0;
  std::uint64_t credits_spent = 0;
  double mean_query_error_km = 0.0;
  double final_snapshot_error_km = 0.0;
};

/// Sweep budgets x policies, each cell on a freshly built scenario (churn
/// mutates the world, so runs cannot share one), and return the frontier
/// BENCH_freshness_economics.json publishes. `base` should have its
/// cache_dir cleared by the caller if disk caching is unwanted for the
/// *bootstrap* matrices (every post-churn epoch detaches automatically).
std::vector<FrontierPoint> freshness_frontier(
    const scenario::ScenarioConfig& base,
    std::span<const std::size_t> budgets, const LongitudinalConfig& cfg);

}  // namespace geoloc::eval
