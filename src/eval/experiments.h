// Experiment runners for the million-scale figures (2a-2c, 3a-3c, 4).
// Bench binaries print; these functions compute. Street-level figures pull
// from eval/street_campaign.h instead.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "atlas/executor.h"
#include "atlas/faults.h"
#include "core/cbg.h"
#include "scenario/scenario.h"
#include "scenario/tile_source.h"
#include "sim/city.h"

namespace geoloc::eval {

/// Per-target CBG errors using every VP (shared by Figures 2c, 4 and 7).
/// Cached per scenario fingerprint within the process.
const std::vector<double>& all_vp_errors(const scenario::Scenario& s,
                                         const core::CbgConfig& config = {});

/// Tile-streamed equivalent of all_vp_errors: identical output element for
/// element, but the dense target matrix is never materialised — per target
/// block, the VP-block tiles stream through the bounded cache while each
/// column's observations assemble in row order, then the CBG solves map in
/// parallel (DESIGN.md §14). Not process-cached; intended for worlds whose
/// dense matrix would not fit.
std::vector<double> streamed_all_vp_errors(const scenario::Scenario& s,
                                           const core::CbgConfig& config = {},
                                           scenario::TileShape shape = {},
                                           std::size_t tile_budget = 0);

/// Figure 2a/2b: random VP subsets of a given size; each trial draws one
/// subset and evaluates every target.
struct SubsetTrials {
  int subset_size = 0;
  std::vector<double> trial_median_errors_km;  ///< one entry per trial
};
std::vector<SubsetTrials> run_subset_size_sweep(
    const scenario::Scenario& s, std::span<const int> subset_sizes, int trials,
    const core::CbgConfig& config = {});

/// Figure 2c: remove, per target, every VP closer than the exclusion radius.
struct ExclusionErrors {
  double exclusion_km = 0.0;  ///< 0 = all VPs
  std::vector<double> errors_km;
};
std::vector<ExclusionErrors> run_remove_close_vps(
    const scenario::Scenario& s, std::span<const double> radii_km,
    const core::CbgConfig& config = {});

/// Figure 3a: the original VP selection — k VPs with the lowest RTT to the
/// target's /24 representatives (k = 0 means "all VPs").
struct RepSelectionErrors {
  int k = 0;
  std::vector<double> errors_km;
};
std::vector<RepSelectionErrors> run_rep_selection(
    const scenario::Scenario& s, std::span<const int> ks,
    const core::CbgConfig& config = {});

/// Figures 3b/3c: the two-step extension swept over first-step sizes.
struct TwoStepSweep {
  int first_step_size = 0;
  std::vector<double> errors_km;
  std::uint64_t total_pings = 0;   ///< step1 + step2 + final, summed over targets
  std::size_t failed_targets = 0;  ///< no VP could be selected
};
std::vector<TwoStepSweep> run_two_step_sweep(
    const scenario::Scenario& s, std::span<const int> first_step_sizes,
    const core::CbgConfig& config = {});

/// Figure 4: all-VP CBG errors split by target continent.
struct ContinentErrors {
  sim::Continent continent = sim::Continent::EU;
  std::vector<double> errors_km;
};
std::vector<ContinentErrors> run_per_continent(
    const scenario::Scenario& s, const core::CbgConfig& config = {});

/// Trial count for figure benches: GEOLOC_TRIALS env var, else `fallback`.
int trials_from_env(int fallback);

/// One weather condition of the failure-sensitivity sweep.
struct WeatherSpec {
  std::string label;
  atlas::FaultConfig config;
};

/// Outcome of running the ping campaign under one weather condition: what
/// the campaign cost (attempts, retries, abandoned measurements, wasted
/// credits — the columns the overhead tables gain) and what geolocation
/// quality survived (CBG verdict tally over the targets).
struct FailureSweepPoint {
  std::string label;
  std::size_t located = 0;      ///< CBG verdict Ok
  std::size_t degraded = 0;     ///< CBG verdict Degraded (starved constraints)
  std::size_t unlocatable = 0;  ///< CBG verdict Unlocatable
  double median_error_km = 0.0;  ///< over targets with an estimate
  /// Executor accounting; `results` is cleared (only counters are kept).
  atlas::CampaignReport report;
};

/// Failure-sensitivity sweep: execute the VP x target ping campaign under
/// each weather via the resilient executor (the first `max_vps` VPs
/// measure, the rest serve as the dead-VP replacement pool; 0 = all VPs,
/// no spares), then run CBG per target on whatever measurements survived.
std::vector<FailureSweepPoint> run_failure_sensitivity(
    const scenario::Scenario& s, std::span<const WeatherSpec> weathers,
    std::size_t max_vps = 0, const core::CbgConfig& config = {});

}  // namespace geoloc::eval
