// The full street-level campaign over every target, reduced to the records
// the paper's Figures 5a/5c/6a/6b/6c consume, with a disk cache — running
// the three-tier pipeline for 723 targets takes minutes on one core and
// four bench binaries need the same results.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/street_level.h"
#include "scenario/scenario.h"
#include "spatial/calibrator.h"

namespace geoloc::eval {

/// Per-target digest of a street-level run.
struct StreetRecord {
  float street_error_km = 0.0F;
  float cbg_error_km = 0.0F;
  /// Closest-landmark-oracle error; negative when no landmark was found
  /// (the paper then substitutes the CBG result).
  float oracle_error_km = -1.0F;
  float elapsed_seconds = 0.0F;
  /// Fraction of tier-2+3 landmarks whose final D1+D2 was negative
  /// (Figure 6a); negative when the target had no measured landmark.
  float negative_fraction = -1.0F;
  /// Pearson correlation between measured and geographic landmark
  /// distances (Figure 5c); computed over usable landmarks, NaN if < 2.
  float pearson = 0.0F;
  std::uint8_t tier_reached = 0;
  bool fell_back_to_cbg = false;
  std::uint32_t landmarks_measured = 0;
  std::uint32_t geocode_queries = 0;
  std::uint32_t websites_tested = 0;
  /// Distance to the nearest landmark the campaign harvested for this
  /// target (Figure 5b, optimistic column); negative when none was found.
  float nearest_landmark_km = -1.0F;
  /// Same, restricted to landmarks within 40 km whose ping from the target
  /// came back under 1 ms (Figure 5b, latency-checked column).
  float nearest_checked_landmark_km = -1.0F;
  /// (geographic km, measured km) per usable landmark — kept only for the
  /// targets the Figure 5c scatter needs; capped to bound the cache size.
  std::vector<std::pair<float, float>> distances;
};

struct StreetCampaign {
  std::vector<StreetRecord> records;  ///< indexed by target column

  /// Disk cache on the durable framed format (util/durable.h): atomic
  /// writes, XXH64-validated reads with bounds-checked decoding, corrupt
  /// files quarantined so the campaign reruns instead of crashing.
  bool save(const std::string& path, std::uint64_t tag) const;
  bool load(const std::string& path, std::uint64_t tag);
};

/// Run (or load from cache) the campaign. `max_distances_per_target` bounds
/// the per-record scatter payload.
const StreetCampaign& street_campaign(const scenario::Scenario& s,
                                      std::size_t max_distances_per_target =
                                          256);

/// Fit per-region delay -> distance calibrations from the campaign's
/// usable landmark measurements. Each record's (geographic km, measured
/// km) pairs are converted back to delays (measured = delay * 4/9 c) and
/// accumulated into the hierarchy cell of the record's target, so
/// spatial::Calibrator::fit_at answers "how fast does delay translate to
/// distance around here" per region.
[[nodiscard]] spatial::Calibrator calibrate_street_regions(
    const scenario::Scenario& s, const StreetCampaign& campaign,
    int cell_level = 4);

}  // namespace geoloc::eval
