#include "eval/metrics.h"

#include "util/stats.h"

namespace geoloc::eval {

double city_level_fraction(std::span<const double> errors_km) noexcept {
  return util::fraction_below(errors_km, kCityLevelKm);
}

double street_level_fraction(std::span<const double> errors_km) noexcept {
  return util::fraction_below(errors_km, kStreetLevelKm);
}

}  // namespace geoloc::eval
