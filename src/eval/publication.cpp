#include "eval/publication.h"

#include "geo/geodesy.h"
#include "util/stats.h"

namespace geoloc::eval {

SnapshotQuality evaluate_snapshot(const scenario::Scenario& s,
                                  const publish::Snapshot& snapshot) {
  SnapshotQuality q;
  q.targets = s.targets().size();
  std::size_t city_level = 0;
  for (const sim::HostId target : s.targets()) {
    const sim::Host& host = s.world().host(target);
    const auto hit = snapshot.find(host.addr);
    if (!hit) continue;
    ++q.covered;
    switch (hit->tier) {
      case core::CbgVerdict::Ok: ++q.tier_ok; break;
      case core::CbgVerdict::Degraded: ++q.tier_degraded; break;
      case core::CbgVerdict::Unlocatable: ++q.tier_unlocatable; break;
    }
    const auto method = static_cast<std::size_t>(hit->method);
    if (method < q.by_method.size()) ++q.by_method[method];
    const double error = geo::distance_km(hit->location, host.true_location);
    q.errors_km.push_back(error);
    if (error <= 40.0) ++city_level;
  }
  if (!q.errors_km.empty()) {
    q.median_error_km = util::median(q.errors_km);
    q.city_level_fraction =
        static_cast<double>(city_level) / static_cast<double>(q.covered);
  }
  return q;
}

}  // namespace geoloc::eval
