#include "core/cbg.h"

#include <algorithm>
#include <cmath>

#include "geo/constants.h"

namespace geoloc::core {

std::string_view to_string(CbgVerdict v) noexcept {
  switch (v) {
    case CbgVerdict::Ok: return "ok";
    case CbgVerdict::Degraded: return "degraded";
    case CbgVerdict::Unlocatable: return "unlocatable";
  }
  return "?";
}

std::vector<geo::Disk> constraint_disks(
    std::span<const VpObservation> observations, double soi_km_per_ms,
    int max_disks) {
  std::vector<geo::Disk> disks;
  disks.reserve(observations.size());
  for (const VpObservation& o : observations) {
    disks.push_back(geo::Disk{
        o.vp_location, geo::rtt_to_max_distance_km(o.min_rtt_ms, soi_km_per_ms)});
  }
  if (max_disks > 0 && disks.size() > static_cast<std::size_t>(max_disks)) {
    // Keep the tightest constraints only; the rest are almost surely
    // dominated (a far VP cannot produce a small disk under the SOI bound).
    std::nth_element(disks.begin(),
                     disks.begin() + static_cast<std::ptrdiff_t>(max_disks),
                     disks.end(), [](const geo::Disk& a, const geo::Disk& b) {
                       return a.radius_km < b.radius_km;
                     });
    disks.resize(static_cast<std::size_t>(max_disks));
  }
  return disks;
}

CbgResult cbg_geolocate(std::span<const VpObservation> observations,
                        const CbgConfig& config) {
  CbgResult result;
  if (observations.empty()) return result;

  result.disks =
      constraint_disks(observations, config.soi_km_per_ms, config.max_disks);
  result.region = geo::intersect_disks(result.disks, config.region);

  if (result.region.empty && config.fallback_soi_km_per_ms > 0.0) {
    result.disks = constraint_disks(
        observations, config.fallback_soi_km_per_ms, config.max_disks);
    result.region = geo::intersect_disks(result.disks, config.region);
    result.used_fallback_soi = true;
  }

  result.surviving_constraints = observations.size();
  if (!result.region.empty) {
    result.ok = true;
    result.estimate = result.region.centroid;
    // Equivalent-circle radius of the feasible region, widened linearly for
    // every constraint missing below the threshold: a fix built from one
    // disk is little better than "somewhere around this VP", and its
    // confidence radius says so.
    const double region_radius_km =
        std::sqrt(std::max(result.region.area_km2, 0.0) / geo::kPi);
    const auto survivors = static_cast<int>(observations.size());
    const int missing = std::max(0, config.min_constraints - survivors);
    result.confidence_radius_km = region_radius_km * (1.0 + missing);
    result.verdict = missing > 0 ? CbgVerdict::Degraded : CbgVerdict::Ok;
  }
  return result;
}

}  // namespace geoloc::core
