// Shortest Ping: map the target to the location of the vantage point with
// the lowest measured RTT — the simplest latency-based technique, used as a
// baseline throughout the million-scale paper.
#pragma once

#include <optional>
#include <span>

#include "core/cbg.h"

namespace geoloc::core {

struct ShortestPingResult {
  geo::GeoPoint estimate;
  double min_rtt_ms = 0.0;
  std::size_t winner_index = 0;  ///< index into the observation span
};

/// Returns nullopt for an empty observation set.
std::optional<ShortestPingResult> shortest_ping(
    std::span<const VpObservation> observations);

/// Shortest Ping under measurement failure: candidate VPs whose ping got no
/// reply carry a nullopt RTT. The survey reports how many candidates
/// actually answered, so a "winner" backed by 2 of 40 VPs is visibly weaker
/// than one backed by 40 of 40.
struct ShortestPingSurvey {
  std::optional<ShortestPingResult> best;  ///< nullopt: nobody answered
  std::size_t candidates = 0;              ///< VPs asked
  std::size_t responded = 0;               ///< VPs that returned an RTT

  [[nodiscard]] double response_rate() const {
    return candidates == 0 ? 0.0
                           : static_cast<double>(responded) /
                                 static_cast<double>(candidates);
  }
};

/// `rtts[i]` is VP i's min RTT toward the target (nullopt: no reply);
/// `vp_locations[i]` its reported location. Spans must be the same length.
ShortestPingSurvey shortest_ping_survey(
    std::span<const std::optional<double>> rtts,
    std::span<const geo::GeoPoint> vp_locations);

}  // namespace geoloc::core
