// Shortest Ping: map the target to the location of the vantage point with
// the lowest measured RTT — the simplest latency-based technique, used as a
// baseline throughout the million-scale paper.
#pragma once

#include <optional>
#include <span>

#include "core/cbg.h"

namespace geoloc::core {

struct ShortestPingResult {
  geo::GeoPoint estimate;
  double min_rtt_ms = 0.0;
  std::size_t winner_index = 0;  ///< index into the observation span
};

/// Returns nullopt for an empty observation set.
std::optional<ShortestPingResult> shortest_ping(
    std::span<const VpObservation> observations);

}  // namespace geoloc::core
