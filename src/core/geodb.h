// Simulated commercial geolocation databases (paper Section 6, Figure 7).
//
// Each profile reproduces the *error process* the paper measured against
// its 723 anchors — MaxMind free: 55% of targets within city level (40 km)
// with a heavy wrong-metro/wrong-country tail; IPinfo: 89% within city
// level, built (per the paper's exchange with IPinfo) from latency
// measurements refined with DNS / WHOIS / geofeed hints. Every entry keeps
// its provenance string, the explainability the paper asks databases for.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/prefix_table.h"
#include "scenario/scenario.h"

namespace geoloc::core {

enum class GeoDbProfile { MaxMindFree, IPinfo };
std::string_view to_string(GeoDbProfile p) noexcept;

struct GeoDbEntry {
  geo::GeoPoint location;
  std::string_view source;  ///< "latency", "dns", "whois", "geofeed", ...
};

class GeoDatabase {
 public:
  /// Build the database covering the scenario's targets.
  static GeoDatabase build(const scenario::Scenario& s, GeoDbProfile profile);

  /// Longest-prefix-match lookup.
  [[nodiscard]] std::optional<GeoDbEntry> lookup(net::IPv4Address a) const;

  [[nodiscard]] GeoDbProfile profile() const noexcept { return profile_; }
  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

  /// Every (prefix, entry) pair in network order — the export hook the
  /// snapshot builder uses to publish a database-sourced dataset.
  [[nodiscard]] std::vector<std::pair<net::Prefix, GeoDbEntry>> entries()
      const;

 private:
  explicit GeoDatabase(GeoDbProfile profile) : profile_(profile) {}

  GeoDbProfile profile_;
  net::PrefixTable<GeoDbEntry> table_;
};

}  // namespace geoloc::core
