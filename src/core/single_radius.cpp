#include "core/single_radius.h"

#include "core/shortest_ping.h"

namespace geoloc::core {

std::optional<SingleRadiusResult> single_radius(
    std::span<const VpObservation> observations,
    const SingleRadiusConfig& config) {
  const auto sp = shortest_ping(observations);
  if (!sp || sp->min_rtt_ms > config.max_rtt_ms) return std::nullopt;
  SingleRadiusResult r;
  r.estimate = sp->estimate;
  r.min_rtt_ms = sp->min_rtt_ms;
  r.winner_index = sp->winner_index;
  return r;
}

}  // namespace geoloc::core
