#include "core/shortest_ping.h"

namespace geoloc::core {

std::optional<ShortestPingResult> shortest_ping(
    std::span<const VpObservation> observations) {
  if (observations.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < observations.size(); ++i) {
    if (observations[i].min_rtt_ms < observations[best].min_rtt_ms) best = i;
  }
  ShortestPingResult r;
  r.estimate = observations[best].vp_location;
  r.min_rtt_ms = observations[best].min_rtt_ms;
  r.winner_index = best;
  return r;
}

ShortestPingSurvey shortest_ping_survey(
    std::span<const std::optional<double>> rtts,
    std::span<const geo::GeoPoint> vp_locations) {
  ShortestPingSurvey survey;
  survey.candidates = rtts.size();
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    if (!rtts[i]) continue;
    ++survey.responded;
    if (!survey.best || *rtts[i] < survey.best->min_rtt_ms) {
      survey.best = ShortestPingResult{vp_locations[i], *rtts[i], i};
    }
  }
  return survey;
}

}  // namespace geoloc::core
