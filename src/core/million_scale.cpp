#include "core/million_scale.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geo/geodesy.h"

namespace geoloc::core {

std::vector<std::size_t> MillionScale::select_vps_by_representatives(
    std::size_t target_col, int k) const {
  const auto& reps = scenario_->representative_rtts();
  const sim::HostId target = scenario_->targets()[target_col];
  std::vector<std::pair<float, std::size_t>> candidates;
  candidates.reserve(reps.rows());
  for (std::size_t r = 0; r < reps.rows(); ++r) {
    // The target anchor would trivially win against its own /24; exclude it
    // as the paper's anchors-as-both-targets-and-VPs setup requires.
    if (scenario_->vps()[r] == target) continue;
    const float rtt = reps.at(r, target_col);
    if (!scenario::RttMatrix::is_missing(rtt)) candidates.push_back({rtt, r});
  }
  const auto kk = std::min<std::size_t>(static_cast<std::size_t>(k),
                                        candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(kk),
                    candidates.end());
  std::vector<std::size_t> rows;
  rows.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) rows.push_back(candidates[i].second);
  return rows;
}

std::vector<VpObservation> MillionScale::observations(
    std::span<const std::size_t> vp_rows, std::size_t target_col) const {
  const auto& rtts = scenario_->target_rtts();
  const auto& world = scenario_->world();
  const sim::HostId target = scenario_->targets()[target_col];
  std::vector<VpObservation> obs;
  obs.reserve(vp_rows.size());
  for (std::size_t r : vp_rows) {
    // Anchors are both targets and VPs; a target never probes itself.
    if (scenario_->vps()[r] == target) continue;
    const float rtt = rtts.at(r, target_col);
    if (scenario::RttMatrix::is_missing(rtt)) continue;
    obs.push_back(VpObservation{
        world.host(scenario_->vps()[r]).reported_location, rtt});
  }
  return obs;
}

CbgResult MillionScale::geolocate(std::span<const std::size_t> vp_rows,
                                  std::size_t target_col,
                                  const CbgConfig& config) const {
  return cbg_geolocate(observations(vp_rows, target_col), config);
}

double MillionScale::error_km(const geo::GeoPoint& estimate,
                              std::size_t target_col) const {
  const auto& world = scenario_->world();
  return geo::distance_km(
      estimate,
      world.host(scenario_->targets()[target_col]).true_location);
}

std::vector<std::size_t> greedy_coverage_rows(const scenario::Scenario& s,
                                              std::size_t count) {
  const auto& world = s.world();
  const auto& vps = s.vps();
  const std::size_t n = vps.size();
  count = std::min(count, n);
  if (count == 0) return {};

  std::vector<geo::GeoPoint> locs(n);
  for (std::size_t i = 0; i < n; ++i) {
    locs[i] = world.host(vps[i]).reported_location;
  }

  // Seed: the VP maximising the summed log distance to a fixed sample of
  // the VP population (a full n^2 pass buys nothing: the seed only needs to
  // be somewhere isolated).
  auto gen = world.rng().fork("greedy-coverage").gen();
  std::vector<std::size_t> sample;
  const std::size_t sample_size = std::min<std::size_t>(n, 256);
  sample.reserve(sample_size);
  for (std::size_t i = 0; i < sample_size; ++i) sample.push_back(gen.index(n));

  std::size_t seed_row = 0;
  double best_seed_score = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (std::size_t j : sample) {
      score += std::log1p(geo::distance_km(locs[i], locs[j]));
    }
    if (score > best_seed_score) {
      best_seed_score = score;
      seed_row = i;
    }
  }

  std::vector<std::size_t> chosen{seed_row};
  std::vector<char> picked(n, 0);
  picked[seed_row] = 1;
  // score[i] = sum of log distances from i to the chosen set; adding a
  // member updates every candidate in O(n).
  std::vector<double> score(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    score[i] = std::log1p(geo::distance_km(locs[i], locs[seed_row]));
  }

  while (chosen.size() < count) {
    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!picked[i] && score[i] > best_score) {
        best_score = score[i];
        best = i;
      }
    }
    picked[best] = 1;
    chosen.push_back(best);
    for (std::size_t i = 0; i < n; ++i) {
      score[i] += std::log1p(geo::distance_km(locs[i], locs[best]));
    }
  }
  return chosen;
}

TwoStepSelector::TwoStepSelector(const scenario::Scenario& s,
                                 std::vector<std::size_t> first_step_rows,
                                 const TwoStepConfig& config)
    : scenario_(&s),
      first_step_rows_(std::move(first_step_rows)),
      config_(config) {}

TwoStepOutcome TwoStepSelector::run(std::size_t target_col) const {
  TwoStepOutcome out;
  const auto& world = scenario_->world();
  const auto& reps = scenario_->representative_rtts();
  const auto& vps = scenario_->vps();

  // Step 1: the coverage subset pings the representatives; CBG over those
  // RTTs bounds where the target('s prefix) can be.
  const sim::HostId self = scenario_->targets()[target_col];
  std::vector<VpObservation> obs;
  obs.reserve(first_step_rows_.size());
  for (std::size_t r : first_step_rows_) {
    if (vps[r] == self) continue;  // the target cannot probe itself
    const float rtt = reps.at(r, target_col);
    out.step1_pings += 3;  // three representatives probed per VP
    if (scenario::RttMatrix::is_missing(rtt)) continue;
    obs.push_back(
        VpObservation{world.host(vps[r]).reported_location, rtt});
  }
  const CbgResult region = cbg_geolocate(obs, config_.cbg);
  if (!region.ok) return out;

  // One VP per (AS, city) inside the region — city at the parent-place
  // granularity, as "same city" in the paper. Pruned, radius-sorted disks
  // let the tightest constraint reject most VPs on its first test.
  const auto pruned = geo::prune_dominated(region.disks);
  const sim::HostId target = scenario_->targets()[target_col];
  std::unordered_map<std::uint64_t, std::size_t> per_as_city;
  for (std::size_t r = 0; r < vps.size(); ++r) {
    if (vps[r] == target) continue;  // the target cannot be its own VP
    const sim::Host& h = world.host(vps[r]);
    if (!geo::region_contains(pruned, h.reported_location)) continue;
    const std::uint64_t key =
        (std::uint64_t{h.asn.value} << 32) |
        world.place(h.place).parent;
    per_as_city.try_emplace(key, r);
  }

  // Step 2: those VPs ping the representatives; lowest median RTT wins.
  std::size_t best_row = vps.size();
  float best_rtt = 0.0F;
  for (const auto& [key, r] : per_as_city) {
    out.step2_pings += 3;
    const float rtt = reps.at(r, target_col);
    if (scenario::RttMatrix::is_missing(rtt)) continue;
    if (best_row == vps.size() || rtt < best_rtt ||
        (rtt == best_rtt && r < best_row)) {
      best_rtt = rtt;
      best_row = r;
    }
  }
  out.region_vps = per_as_city.size();
  if (best_row == vps.size()) return out;

  // Final: the chosen VP pings the target; the estimate is the VP location
  // (a single constraint disk's centroid).
  out.final_pings = 1;
  out.chosen_row = best_row;
  out.estimate = world.host(vps[best_row]).reported_location;
  out.ok = true;
  return out;
}

std::uint64_t original_algorithm_pings(const scenario::Scenario& s) {
  return static_cast<std::uint64_t>(s.vps().size()) * 3U *
         s.targets().size();
}

RepresentativeFallback resilient_representatives(
    const scenario::Scenario& s, sim::HostId target,
    const atlas::FaultModel* faults, int count) {
  RepresentativeFallback out;
  const auto& world = s.world();
  const auto& set = s.hitlist().for_target(target);

  // Rank the /24's representatives by responsiveness score (ISI-style:
  // higher = more reliable), ties broken by host id for determinism.
  std::vector<const dataset::Representative*> ranked;
  ranked.reserve(set.reps.size());
  for (const dataset::Representative& rep : set.reps) {
    if (rep.host == sim::kInvalidHost) continue;
    ranked.push_back(&rep);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const dataset::Representative* a,
               const dataset::Representative* b) {
              if (a->responsiveness_score != b->responsiveness_score) {
                return a->responsiveness_score > b->responsiveness_score;
              }
              return a->host < b->host;
            });

  const auto quota = static_cast<std::size_t>(std::max(count, 0));
  for (std::size_t i = 0; i < ranked.size() && out.chosen.size() < quota;
       ++i) {
    const sim::HostId rep = ranked[i]->host;
    const bool down = !world.host(rep).responsive ||
                      (faults && faults->target_unresponsive(rep));
    if (down) {
      ++out.skipped_unresponsive;
      continue;
    }
    if (i >= quota) out.substituted = true;
    out.chosen.push_back(rep);
  }
  return out;
}

}  // namespace geoloc::core
