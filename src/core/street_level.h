// The street-level paper's three-tier system (Wang et al., NSDI 2011), as
// replicated in the IMC'23 study (Section 3.2):
//
//   Tier 1 — CBG at 4/9 c (fallback 2/3 c) from the anchor VPs; keep the
//            region and its centroid.
//   Tier 2 — sample the region with concentric circles (R = 5 km, 10 points
//            per circle), reverse-geocode the sample points to zip codes,
//            harvest websites recorded near those zips, keep the ones that
//            pass the three locally-hosted tests, and estimate each
//            landmark's delay to the target from per-VP traceroute pairs
//            (D1 + D2 at the last common hop, computed by RTT subtraction —
//            the paper's Appendix B shows why this is the only available
//            interpretation and why it is noisy). The landmark disks form a
//            refined region.
//   Tier 3 — repeat at R = 1 km / 36 points per circle inside the refined
//            region; the target is mapped to the landmark with the smallest
//            usable delay. Targets with no landmark fall back to the CBG
//            estimate, as the paper does for its 46 landmark-less targets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cbg.h"
#include "landmark/ecosystem.h"
#include "scenario/scenario.h"
#include "sim/cost_model.h"
#include "sim/traceroute.h"

namespace geoloc::core {

struct StreetLevelConfig {
  CbgConfig tier1;                ///< defaults set in the constructor: 4/9 c + fallback
  double tier2_ring_km = 5.0;     ///< R of the tier-2 concentric circles
  int tier2_points_per_circle = 10;  ///< alpha = 36 degrees
  double tier3_ring_km = 1.0;
  int tier3_points_per_circle = 36;  ///< alpha = 10 degrees
  int vps_per_landmark = 10;      ///< closest VPs by tier-1 RTT (IMC'23 change)
  int max_circles = 40;           ///< safety guard on region sampling
  int max_landmarks_per_tier = 500;
  sim::CostModelConfig cost;
};

/// One landmark's delay estimation against the target.
struct LandmarkMeasurement {
  landmark::WebsiteId site = 0;
  geo::GeoPoint claimed_location;      ///< the postal address (mapping result)
  double min_d1d2_ms = 0.0;  ///< min over VPs of the non-negative D1+D2
                             ///< values (the all-negative min when unusable)
  bool usable = false;       ///< at least one VP gave a non-negative D1+D2
  double measured_distance_km = 0.0;   ///< min_d1d2 x 4/9 c (usable only)
  double geographic_distance_km = 0.0; ///< claimed location -> target truth
  int vps_used = 0;
  int negative_pairs = 0;              ///< VP pairs whose D1+D2 was negative
  int pair_count = 0;
};

struct TierOutcome {
  geo::GeoPoint center;                   ///< sampling origin
  std::vector<LandmarkMeasurement> landmarks;
  std::size_t circles = 0;
  std::size_t sample_points = 0;
  std::uint64_t geocode_queries = 0;
  std::uint64_t websites_tested = 0;
  CbgResult refined;                      ///< landmark-disk region (tier 2)
};

struct StreetLevelResult {
  bool ok = false;
  geo::GeoPoint estimate;
  int tier_reached = 1;          ///< deepest tier that produced the estimate
  bool fell_back_to_cbg = false; ///< no usable landmark anywhere
  CbgResult tier1;
  TierOutcome tier2;
  TierOutcome tier3;
  std::uint64_t traceroutes = 0;
  double elapsed_seconds = 0.0;  ///< simulated wall-clock (Figure 6c)
};

class StreetLevel {
 public:
  StreetLevel(const scenario::Scenario& s, StreetLevelConfig config = {});

  /// Run the full pipeline for targets()[target_col].
  [[nodiscard]] StreetLevelResult geolocate(std::size_t target_col) const;

  /// The anchor-VP CBG baseline the paper compares against in Figure 5a
  /// (same tier-1 observations, 4/9-c speed with 2/3-c fallback).
  [[nodiscard]] CbgResult cbg_baseline(std::size_t target_col) const;

  /// Oracle: map the target to the geographically closest passing landmark
  /// (Figure 5a "Closest Landmark"); nullopt when no landmark exists within
  /// `search_radius_km`.
  [[nodiscard]] std::optional<geo::GeoPoint> closest_landmark_oracle(
      std::size_t target_col, double search_radius_km = 1'000.0) const;

  [[nodiscard]] const StreetLevelConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Tier-1 observations: anchor VPs only, excluding the target itself.
  [[nodiscard]] std::vector<VpObservation> tier1_observations(
      std::size_t target_col) const;

  /// Rows (into vps()) of the closest anchor VPs by tier-1 RTT.
  [[nodiscard]] std::vector<std::size_t> closest_vp_rows(
      std::size_t target_col, int k) const;

  /// Concentric-circle harvest + per-landmark delay measurement.
  void run_tier(std::size_t target_col, const geo::GeoPoint& center,
                const std::vector<geo::Disk>& region_disks, double ring_km,
                int points_per_circle,
                const std::vector<std::size_t>& vp_rows,
                const std::vector<sim::Traceroute>& target_traces,
                TierOutcome& out, std::uint64_t& traceroutes,
                sim::CostModel& cost, util::Pcg32& gen) const;

  /// D1+D2 for one (VP, landmark) pair given the VP's target traceroute.
  [[nodiscard]] std::optional<double> d1_plus_d2(
      const sim::Traceroute& to_landmark,
      const sim::Traceroute& to_target) const;

  const scenario::Scenario* scenario_;
  StreetLevelConfig config_;
  sim::TracerouteEngine tracer_;
};

}  // namespace geoloc::core
