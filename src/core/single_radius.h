// The "single-radius" technique behind RIPE IPMap (Du et al., CCR 2020),
// which the paper discusses as the other public geolocation effort
// (Section 8): a target is geolocated to the city of the vantage point
// with the lowest RTT, but only when that RTT is small enough to pin the
// target to city scale — otherwise the technique abstains. Coverage is
// traded for precision, which is why IPMap covers far fewer addresses
// than the topology contains.
#pragma once

#include <optional>
#include <span>

#include "core/cbg.h"

namespace geoloc::core {

struct SingleRadiusConfig {
  /// Maximum min-RTT for which the technique answers. 10 ms at 2/3 c is a
  /// ~1000 km disk; IPMap uses single-digit milliseconds in practice.
  double max_rtt_ms = 10.0;
};

struct SingleRadiusResult {
  geo::GeoPoint estimate;
  double min_rtt_ms = 0.0;
  std::size_t winner_index = 0;
};

/// Geolocate from a set of observations; nullopt when the technique
/// abstains (no VP within the RTT budget).
std::optional<SingleRadiusResult> single_radius(
    std::span<const VpObservation> observations,
    const SingleRadiusConfig& config = {});

}  // namespace geoloc::core
