// Million-scale campaigns over streaming RTT tiles (DESIGN.md §14).
//
// The dense pipeline (core/million_scale.h) reads two fully materialised
// RttMatrix campaigns — O(|VPs| × |targets|) floats before the first CBG
// solve. This runner executes the same algorithm against a
// scenario::RttTileSource pair: per rep-campaign block it streams the
// VP-block tiles once to pick each column's k lowest-RTT vantage points,
// then the chosen VPs ping the target through the sparse single-cell path
// and CBG runs on the result. Peak memory is the tile budget plus one
// block of selections; measurement cost is |VPs| × group per *rep column*
// (shared by every target in the /24) plus k cells per target — it scales
// with measurements used, not world size².
//
// Equivalence: with the scenario's own tile sources and the identity
// target→rep-column mapping, the selected rows, observations, CBG results
// and errors are bit-identical to MillionScale over the dense matrices
// (asserted by the scale suite).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atlas/faults.h"
#include "core/cbg.h"
#include "scenario/scenario.h"
#include "scenario/tile_source.h"

namespace geoloc::core {

/// Row indices of the k VPs with the lowest representative RTT for every
/// column of one rep-campaign target block — the streaming equivalent of
/// MillionScale::select_vps_by_representatives, column for column (same
/// rows, same order, including (rtt, row) tie handling). `col_self`, when
/// non-empty, names the host to exclude per *global* rep column (the
/// anchors-as-both-targets-and-VPs rule); columns without a self pass
/// kInvalidHost or an empty span.
std::vector<std::vector<std::size_t>> streamed_select_block(
    scenario::RttTileSource& reps, std::size_t target_block, int k,
    std::span<const sim::HostId> col_self = {});

struct StreamingCampaignConfig {
  int k = 3;  ///< VPs selected per target (the paper's shortest-ping k)
  CbgConfig cbg;
};

struct StreamingCampaignOutcome {
  std::size_t targets = 0;
  std::size_t located = 0;  ///< CBG produced an estimate
  std::size_t failed = 0;
  std::vector<double> errors_km;  ///< per target column; -1 when CBG failed
  std::uint64_t rep_cells = 0;     ///< rep-campaign cells generated
  std::uint64_t target_cells = 0;  ///< final sparse target pings
  scenario::RttTileSource::Stats rep_stats;
  scenario::RttTileSource::Stats target_stats;
};

/// Run the original million-scale algorithm over tile sources. `reps` is
/// the representative campaign (group up to 3), `targets` the final-ping
/// campaign (group 1, one column per target). `target_to_rep_col` maps a
/// target column to its rep column (several targets of one /24 share a rep
/// column at internet scale); empty means identity, which additionally
/// enables the dense pipeline's self-VP exclusion during selection and
/// requires reps.cols() == targets.cols(). Deterministic for any tile
/// shape, budget and GEOLOC_THREADS.
StreamingCampaignOutcome run_streaming_campaign(
    scenario::RttTileSource& reps, scenario::RttTileSource& targets,
    std::span<const std::uint32_t> target_to_rep_col = {},
    const StreamingCampaignConfig& config = {});

/// Rep-campaign tile source whose per-/24 destination groups come from
/// resilient_representatives — responsive reps ranked by hitlist score
/// with next-best substitution, the executor's fault-aware path — instead
/// of the raw hitlist order. Groups with fewer than three usable reps are
/// padded with kInvalidHost placeholders (never responsive, consume no
/// RNG), exactly how the dense path treats a rep that does not answer.
scenario::RttTileSource make_resilient_rep_source(
    const scenario::Scenario& s, const atlas::FaultModel* faults = nullptr,
    scenario::TileShape shape = {}, std::size_t budget_tiles = 0);

}  // namespace geoloc::core
