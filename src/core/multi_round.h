// Multi-round VP selection — the generalisation the paper proposes in its
// recommendations (Section 7.2.3): instead of one coarse step and one fine
// step, narrow the candidate VP set over k rounds, trading measurement
// overhead against wall-clock time (each round is one RIPE Atlas API
// round trip).
//
// Round i probes the representatives from the current candidate set,
// computes a CBG region from those RTTs, and shrinks the candidate set to
// one VP per (AS, city) inside the region, capped at a per-round budget.
// The final round keeps the lowest-median-RTT VP, which probes the target.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cbg.h"
#include "scenario/scenario.h"
#include "sim/cost_model.h"

namespace geoloc::core {

struct MultiRoundConfig {
  int rounds = 3;                   ///< >= 2; 2 reproduces the paper's scheme
  std::size_t first_round_size = 100;  ///< coverage subset for round 1
  /// Candidate-set cap per subsequent round, as a geometric ladder: round
  /// i+1 keeps at most max(first_round_size * shrink^i, min_candidates).
  double shrink = 0.25;
  std::size_t min_candidates = 8;
  CbgConfig cbg;
  double api_round_seconds = 180.0;  ///< Atlas latency per round (Fig 6c scale)
};

struct MultiRoundOutcome {
  bool ok = false;
  std::size_t chosen_row = 0;
  geo::GeoPoint estimate;
  std::uint64_t total_pings = 0;
  int rounds_executed = 0;
  double elapsed_seconds = 0.0;  ///< simulated: rounds x API latency
  std::vector<std::size_t> candidates_per_round;
};

class MultiRoundSelector {
 public:
  MultiRoundSelector(const scenario::Scenario& s, MultiRoundConfig config);

  [[nodiscard]] MultiRoundOutcome run(std::size_t target_col) const;

  [[nodiscard]] const MultiRoundConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One VP per (AS, parent city) among `candidates` inside the region,
  /// capped to `budget` by ascending representative RTT.
  [[nodiscard]] std::vector<std::size_t> narrow(
      const std::vector<geo::Disk>& region_disks,
      std::size_t target_col, std::size_t budget) const;

  const scenario::Scenario* scenario_;
  MultiRoundConfig config_;
  std::vector<std::size_t> first_round_rows_;
};

}  // namespace geoloc::core
