// Constraint-Based Geolocation (Gueye et al., ToN 2006) — the latency
// workhorse both replicated papers build on.
//
// Each vantage point with a measured min RTT to the target constrains the
// target to a disk around the VP (radius = RTT/2 x speed of Internet); the
// estimate is the centroid of the intersection of all disks. The classic
// technique uses 2/3 c; the street-level paper's tiers use 4/9 c, falling
// back to 2/3 c for the few targets whose 4/9-c disks do not intersect
// (IMC'23 paper, Section 5.2.1: 5 such targets).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "geo/constants.h"
#include "geo/disk.h"
#include "geo/region.h"

namespace geoloc::core {

/// One vantage point's contribution: its (reported) location and the
/// minimum RTT it measured to the target.
struct VpObservation {
  geo::GeoPoint vp_location;
  double min_rtt_ms = 0.0;
};

struct CbgConfig {
  double soi_km_per_ms = geo::kSoiTwoThirdsKmPerMs;
  /// Secondary speed used when the primary yields an empty intersection;
  /// 0 disables the fallback.
  double fallback_soi_km_per_ms = 0.0;
  /// Only the `max_disks` smallest disks are intersected. Larger disks are
  /// almost always dominated; this keeps the Figure 2a sweep (~720k CBG
  /// evaluations) tractable. See the DiskBudget ablation bench.
  int max_disks = 24;
  /// Below this many surviving constraints the verdict degrades: the
  /// estimate is still produced (ok stays true) but flagged Degraded with a
  /// widened confidence radius, so callers running under platform faults
  /// can tell a starved fix from a sound one instead of trusting a region
  /// built from one or two disks.
  int min_constraints = 3;
  geo::RegionOptions region;
};

/// How much the caller should trust a CBG answer when measurements failed
/// or went missing (platform weather, unresponsive targets).
enum class CbgVerdict : std::uint8_t {
  Ok,           ///< enough constraints survived; region is meaningful
  Degraded,     ///< region found, but from fewer than min_constraints disks
  Unlocatable,  ///< no observations, or an empty intersection even after
                ///< the fallback speed
};
std::string_view to_string(CbgVerdict v) noexcept;

struct CbgResult {
  bool ok = false;               ///< a non-empty region was found
  CbgVerdict verdict = CbgVerdict::Unlocatable;
  geo::GeoPoint estimate;        ///< centroid of the feasible region
  geo::Region region;
  std::vector<geo::Disk> disks;  ///< constraints actually intersected
  std::size_t surviving_constraints = 0;  ///< observations that yielded a disk
  /// Conservative error radius: the region's equivalent-circle radius,
  /// widened for degraded fixes (the fewer the constraints, the wider).
  double confidence_radius_km = 0.0;
  bool used_fallback_soi = false;
};

/// Convert observations into constraint disks at the given speed.
std::vector<geo::Disk> constraint_disks(
    std::span<const VpObservation> observations, double soi_km_per_ms,
    int max_disks);

/// Run CBG. An empty observation set yields ok = false.
CbgResult cbg_geolocate(std::span<const VpObservation> observations,
                        const CbgConfig& config = {});

}  // namespace geoloc::core
