#include "core/multi_round.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/million_scale.h"

namespace geoloc::core {

MultiRoundSelector::MultiRoundSelector(const scenario::Scenario& s,
                                       MultiRoundConfig config)
    : scenario_(&s), config_(std::move(config)) {
  config_.rounds = std::max(config_.rounds, 2);
  first_round_rows_ = greedy_coverage_rows(s, config_.first_round_size);
}

std::vector<std::size_t> MultiRoundSelector::narrow(
    const std::vector<geo::Disk>& region_disks, std::size_t target_col,
    std::size_t budget) const {
  const auto& world = scenario_->world();
  const auto& vps = scenario_->vps();
  const auto& reps = scenario_->representative_rtts();
  const sim::HostId target = scenario_->targets()[target_col];

  const auto pruned = geo::prune_dominated(region_disks);
  std::unordered_map<std::uint64_t, std::size_t> per_as_city;
  for (std::size_t r = 0; r < vps.size(); ++r) {
    if (vps[r] == target) continue;
    const sim::Host& h = world.host(vps[r]);
    if (!geo::region_contains(pruned, h.reported_location)) continue;
    const std::uint64_t key = (std::uint64_t{h.asn.value} << 32) |
                              world.place(h.place).parent;
    per_as_city.try_emplace(key, r);
  }

  std::vector<std::size_t> rows;
  rows.reserve(per_as_city.size());
  for (const auto& [key, r] : per_as_city) rows.push_back(r);
  // Cap by ascending representative RTT where it is already known; unknown
  // rows sort last (deterministically by row id).
  std::sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
    const float ra = reps.at(a, target_col);
    const float rb = reps.at(b, target_col);
    const bool ma = scenario::RttMatrix::is_missing(ra);
    const bool mb = scenario::RttMatrix::is_missing(rb);
    if (ma != mb) return mb;
    if (!ma && ra != rb) return ra < rb;
    return a < b;
  });
  if (rows.size() > budget) rows.resize(budget);
  return rows;
}

MultiRoundOutcome MultiRoundSelector::run(std::size_t target_col) const {
  MultiRoundOutcome out;
  const auto& world = scenario_->world();
  const auto& vps = scenario_->vps();
  const auto& reps = scenario_->representative_rtts();
  const sim::HostId target = scenario_->targets()[target_col];

  std::vector<std::size_t> candidates;
  candidates.reserve(first_round_rows_.size());
  for (std::size_t r : first_round_rows_) {
    if (vps[r] != target) candidates.push_back(r);
  }

  double budget = static_cast<double>(config_.first_round_size);
  for (int round = 0; round < config_.rounds; ++round) {
    out.candidates_per_round.push_back(candidates.size());
    ++out.rounds_executed;
    out.elapsed_seconds += config_.api_round_seconds;

    // Probe the representatives from every candidate.
    std::vector<VpObservation> obs;
    obs.reserve(candidates.size());
    for (std::size_t r : candidates) {
      out.total_pings += 3;
      const float rtt = reps.at(r, target_col);
      if (scenario::RttMatrix::is_missing(rtt)) continue;
      obs.push_back(
          VpObservation{world.host(vps[r]).reported_location, rtt});
    }
    if (obs.empty()) return out;

    const bool last_round = round == config_.rounds - 1;
    if (last_round) break;

    const CbgResult region = cbg_geolocate(obs, config_.cbg);
    if (!region.ok) return out;
    budget = std::max(budget * config_.shrink,
                      static_cast<double>(config_.min_candidates));
    candidates = narrow(region.disks, target_col,
                        static_cast<std::size_t>(std::llround(budget)));
    if (candidates.empty()) return out;
  }

  // Final pick: lowest median representative RTT among the last round.
  std::size_t best = vps.size();
  float best_rtt = 0.0F;
  for (std::size_t r : candidates) {
    const float rtt = reps.at(r, target_col);
    if (scenario::RttMatrix::is_missing(rtt)) continue;
    if (best == vps.size() || rtt < best_rtt ||
        (rtt == best_rtt && r < best)) {
      best = r;
      best_rtt = rtt;
    }
  }
  if (best == vps.size()) return out;

  out.total_pings += 1;  // the ping to the target itself
  out.chosen_row = best;
  out.estimate = world.host(vps[best]).reported_location;
  out.ok = true;
  return out;
}

}  // namespace geoloc::core
