#include "core/geodb.h"

#include "geo/geodesy.h"

namespace geoloc::core {

std::string_view to_string(GeoDbProfile p) noexcept {
  switch (p) {
    case GeoDbProfile::MaxMindFree: return "MaxMind (Free)";
    case GeoDbProfile::IPinfo: return "IPinfo";
  }
  return "?";
}

namespace {

struct Draw {
  double error_km;
  std::string_view source;
};

/// IPinfo-like error process: mostly hint-anchored (DNS / geofeed), a
/// latency-refined middle, and a small stale-WHOIS tail. Calibrated to the
/// paper's 89% city-level figure.
Draw draw_ipinfo(util::Pcg32& gen) {
  const double u = gen.uniform();
  if (u < 0.50) return {gen.exponential(5.0), "geofeed"};
  if (u < 0.67) return {gen.exponential(9.0), "dns"};
  if (u < 0.89) return {gen.uniform(8.0, 40.0), "latency"};
  if (u < 0.97) return {gen.uniform(40.0, 350.0), "latency"};
  return {gen.uniform(350.0, 4'000.0), "whois"};
}

/// MaxMind-free-like error process: a decent city-level core but a heavy
/// wrong-metro / wrong-country tail. Calibrated to the paper's 55%.
Draw draw_maxmind(util::Pcg32& gen) {
  const double u = gen.uniform();
  if (u < 0.40) return {gen.exponential(8.0), "city"};
  if (u < 0.58) return {gen.uniform(10.0, 40.0), "city"};
  if (u < 0.82) return {gen.uniform(40.0, 600.0), "region"};
  if (u < 0.95) return {gen.uniform(300.0, 2'000.0), "country"};
  return {gen.uniform(2'000.0, 9'000.0), "country"};
}

}  // namespace

GeoDatabase GeoDatabase::build(const scenario::Scenario& s,
                               GeoDbProfile profile) {
  GeoDatabase db(profile);
  const auto& world = s.world();
  auto gen = world.rng()
                 .fork(profile == GeoDbProfile::IPinfo ? "geodb-ipinfo"
                                                       : "geodb-maxmind")
                 .gen();

  for (sim::HostId target : s.targets()) {
    const sim::Host& h = world.host(target);
    const Draw d = profile == GeoDbProfile::IPinfo ? draw_ipinfo(gen)
                                                   : draw_maxmind(gen);
    GeoDbEntry entry;
    entry.location =
        geo::destination(h.true_location, gen.uniform(0.0, 360.0), d.error_km);
    entry.source = d.source;
    // IPinfo resolves /24s; the free MaxMind data is frequently coarser.
    const int plen =
        profile == GeoDbProfile::IPinfo ? 24 : (gen.chance(0.6) ? 24 : 16);
    db.table_.insert(net::Prefix{h.addr, plen}, entry);
  }
  return db;
}

std::vector<std::pair<net::Prefix, GeoDbEntry>> GeoDatabase::entries() const {
  std::vector<std::pair<net::Prefix, GeoDbEntry>> out;
  out.reserve(table_.size());
  table_.for_each([&](const net::Prefix& p, const GeoDbEntry& e) {
    out.emplace_back(p, e);
  });
  return out;
}

std::optional<GeoDbEntry> GeoDatabase::lookup(net::IPv4Address a) const {
  const auto hit = table_.lookup(a);
  if (!hit) return std::nullopt;
  return hit->second;
}

}  // namespace geoloc::core
