#include "core/streaming_campaign.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/million_scale.h"
#include "geo/geodesy.h"
#include "util/parallel.h"

namespace geoloc::core {

std::vector<std::vector<std::size_t>> streamed_select_block(
    scenario::RttTileSource& reps, std::size_t target_block, int k,
    std::span<const sim::HostId> col_self) {
  const std::size_t col_begin = target_block * reps.shape().target_block;
  const std::size_t col_end =
      std::min(reps.cols(), col_begin + reps.shape().target_block);
  const std::size_t n_cols = col_end - col_begin;
  const auto kk = static_cast<std::size_t>(std::max(k, 0));
  const auto& vps = reps.campaign().vps;

  // Per column, a max-heap of the k smallest (rtt, row) pairs. The pair
  // ordering is the one the dense partial_sort uses, and the set of k
  // smallest pairs is independent of scan order, so the sorted heap equals
  // the dense selection exactly — while only ever holding one VP-block
  // tile plus k pairs per column.
  std::vector<std::vector<std::pair<float, std::size_t>>> best(n_cols);
  for (std::size_t vb = 0; vb < reps.vp_blocks(); ++vb) {
    const auto& t = reps.tile(vb, target_block);
    for (std::size_t rr = 0; rr < t.rows(); ++rr) {
      const std::size_t r = t.vp_begin + rr;
      const float* row = t.rtt.data() + rr * t.cols();
      for (std::size_t cc = 0; cc < n_cols; ++cc) {
        const float rtt = row[cc];
        if (scenario::RttMatrix::is_missing(rtt)) continue;
        if (!col_self.empty() && vps[r] == col_self[col_begin + cc]) continue;
        auto& heap = best[cc];
        const std::pair<float, std::size_t> cand{rtt, r};
        if (heap.size() < kk) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end());
        } else if (kk != 0 && cand < heap.front()) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end());
        }
      }
    }
  }

  std::vector<std::vector<std::size_t>> out(n_cols);
  for (std::size_t cc = 0; cc < n_cols; ++cc) {
    std::sort(best[cc].begin(), best[cc].end());
    out[cc].reserve(best[cc].size());
    for (const auto& [rtt, r] : best[cc]) out[cc].push_back(r);
  }
  return out;
}

StreamingCampaignOutcome run_streaming_campaign(
    scenario::RttTileSource& reps, scenario::RttTileSource& targets,
    std::span<const std::uint32_t> target_to_rep_col,
    const StreamingCampaignConfig& config) {
  const auto& tc = targets.campaign();
  const sim::World& world = *tc.world;
  const std::size_t n_targets = targets.cols();
  const bool identity = target_to_rep_col.empty();
  if (identity && reps.cols() != n_targets) {
    throw std::invalid_argument(
        "run_streaming_campaign: identity mapping needs reps.cols() == "
        "targets.cols()");
  }
  if (!identity && target_to_rep_col.size() != n_targets) {
    throw std::invalid_argument(
        "run_streaming_campaign: target_to_rep_col must cover every target");
  }

  StreamingCampaignOutcome out;
  out.targets = n_targets;
  out.errors_km.assign(n_targets, -1.0);

  // Group target columns under the rep block their /24 column lives in, so
  // each rep tile stripe is generated once and every dependent target
  // consumes it while it is resident.
  const auto rep_col_of = [&](std::size_t t) -> std::size_t {
    return identity ? t : target_to_rep_col[t];
  };
  std::vector<std::vector<std::uint32_t>> targets_of_block(
      reps.target_blocks());
  for (std::size_t t = 0; t < n_targets; ++t) {
    targets_of_block[rep_col_of(t) / reps.shape().target_block].push_back(
        static_cast<std::uint32_t>(t));
  }

  struct TargetOutcome {
    double error_km = -1.0;
    std::uint32_t cells = 0;
  };
  for (std::size_t tb = 0; tb < reps.target_blocks(); ++tb) {
    const auto& block_targets = targets_of_block[tb];
    if (block_targets.empty()) continue;
    // Self-VP exclusion during selection is the dense pipeline's
    // anchors-as-both rule; it only applies when rep columns ARE target
    // columns (identity mapping).
    const auto selection = streamed_select_block(
        reps, tb, config.k,
        identity ? std::span<const sim::HostId>(tc.dsts)
                 : std::span<const sim::HostId>{});
    const std::size_t col_begin = tb * reps.shape().target_block;
    // Final pings + CBG per target: each column is a pure function of its
    // selection and the sparse cells it computes, so the block maps in
    // parallel and folds in column order (bit-identical at any thread
    // count).
    const std::vector<TargetOutcome> results =
        util::parallel_map<TargetOutcome>(
            block_targets.size(), [&](std::size_t i) {
              const std::size_t t = block_targets[i];
              const auto& rows = selection[rep_col_of(t) - col_begin];
              const sim::HostId target = tc.dsts[t];
              TargetOutcome to;
              std::vector<VpObservation> obs;
              obs.reserve(rows.size());
              for (const std::size_t r : rows) {
                if (tc.vps[r] == target) continue;
                const float rtt = targets.cell(r, t);
                ++to.cells;
                if (scenario::RttMatrix::is_missing(rtt)) continue;
                obs.push_back(VpObservation{
                    world.host(tc.vps[r]).reported_location, rtt});
              }
              const CbgResult res = cbg_geolocate(obs, config.cbg);
              if (res.ok) {
                to.error_km = geo::distance_km(
                    res.estimate, world.host(target).true_location);
              }
              return to;
            });
    for (std::size_t i = 0; i < block_targets.size(); ++i) {
      out.errors_km[block_targets[i]] = results[i].error_km;
      out.target_cells += results[i].cells;
      if (results[i].error_km >= 0.0) {
        ++out.located;
      } else {
        ++out.failed;
      }
    }
  }
  out.rep_cells = reps.stats().generated_cells;
  out.rep_stats = reps.stats();
  out.target_stats = targets.stats();
  return out;
}

scenario::RttTileSource make_resilient_rep_source(
    const scenario::Scenario& s, const atlas::FaultModel* faults,
    scenario::TileShape shape, std::size_t budget_tiles) {
  scenario::TileCampaign c;
  c.world = &s.world();
  c.latency = &s.latency();
  c.vps = s.vps();
  c.group = 3;
  c.dsts.reserve(s.targets().size() * 3);
  for (const sim::HostId target : s.targets()) {
    const RepresentativeFallback fb =
        resilient_representatives(s, target, faults, 3);
    for (const sim::HostId rep : fb.chosen) c.dsts.push_back(rep);
    for (std::size_t i = fb.chosen.size(); i < 3; ++i) {
      c.dsts.push_back(sim::kInvalidHost);
    }
  }
  c.stream = s.world().rng().fork("campaign-reps-resilient");
  c.ping_packets = s.config().ping_packets;
  return scenario::RttTileSource(std::move(c), shape, budget_tiles);
}

}  // namespace geoloc::core
