// The million-scale paper's machinery (Hu et al., IMC 2012) and the IMC'23
// replication's two-step extension (Section 5.1.4).
//
// Original VP selection: every VP pings three representatives of the
// target's /24; the k VPs with the lowest (median-across-representatives)
// RTT probe the target itself. Cost: |VPs| x 3 pings per target — 21.7M for
// the paper's 10k VPs and 723 targets, which is what makes the algorithm
// undeployable on RIPE Atlas (Section 5.1.3).
//
// Two-step extension: a small earth-covering subset pings the
// representatives first; CBG over those RTTs yields a region; one VP per
// (AS, city) inside the region pings the representatives; the VP with the
// lowest median RTT geolocates the target. Cost: ~13% of the original at
// equal accuracy (Figure 3b/3c).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atlas/faults.h"
#include "core/cbg.h"
#include "scenario/scenario.h"

namespace geoloc::core {

/// Helpers for the original selection algorithm, operating on the
/// scenario's measurement matrices (rows = VPs, columns = targets).
class MillionScale {
 public:
  explicit MillionScale(const scenario::Scenario& s) : scenario_(&s) {}

  /// Rows of the `k` VPs with the lowest representative RTT for the target
  /// column; rows with no responsive representative are skipped.
  [[nodiscard]] std::vector<std::size_t> select_vps_by_representatives(
      std::size_t target_col, int k) const;

  /// Build CBG observations for `vp_rows` against the target column from
  /// the target-RTT campaign, skipping missing measurements.
  [[nodiscard]] std::vector<VpObservation> observations(
      std::span<const std::size_t> vp_rows, std::size_t target_col) const;

  /// CBG over the given VP rows.
  [[nodiscard]] CbgResult geolocate(std::span<const std::size_t> vp_rows,
                                    std::size_t target_col,
                                    const CbgConfig& config = {}) const;

  /// Geolocation error (km) of an estimate against the target's true
  /// location.
  [[nodiscard]] double error_km(const geo::GeoPoint& estimate,
                                std::size_t target_col) const;

 private:
  const scenario::Scenario* scenario_;
};

/// Greedy earth-coverage VP subset (first step of the two-step extension;
/// the paper's "select the VP which maximizes the sum of the logarithmic
/// distances to the other VPs", akin to Metis). Deterministic.
std::vector<std::size_t> greedy_coverage_rows(const scenario::Scenario& s,
                                              std::size_t count);

struct TwoStepConfig {
  CbgConfig cbg;            ///< used for the step-1 region
  int sample_for_seed = 256;  ///< unused here; reserved for greedy tuning
};

/// Per-target outcome of the two-step algorithm, including the measurement
/// accounting behind Figure 3c.
struct TwoStepOutcome {
  bool ok = false;
  std::size_t chosen_row = 0;     ///< the single VP that geolocates the target
  geo::GeoPoint estimate;         ///< that VP's reported location
  std::uint64_t step1_pings = 0;  ///< first-step subset x representatives
  std::uint64_t step2_pings = 0;  ///< region VPs x representatives
  std::uint64_t final_pings = 0;  ///< the ping to the target itself
  std::size_t region_vps = 0;     ///< VPs considered in step 2 (one per AS/city)
};

class TwoStepSelector {
 public:
  /// `first_step_rows`: the greedy coverage subset (step-1 VPs).
  TwoStepSelector(const scenario::Scenario& s,
                  std::vector<std::size_t> first_step_rows,
                  const TwoStepConfig& config = {});

  [[nodiscard]] TwoStepOutcome run(std::size_t target_col) const;

  [[nodiscard]] std::span<const std::size_t> first_step_rows() const noexcept {
    return first_step_rows_;
  }

 private:
  const scenario::Scenario* scenario_;
  std::vector<std::size_t> first_step_rows_;
  TwoStepConfig config_;
};

/// Measurement cost of the *original* algorithm for this scenario:
/// |VPs| x 3 representatives x |targets| ping measurements.
std::uint64_t original_algorithm_pings(const scenario::Scenario& s);

/// Representatives of a target's /24 after the weather has had its say.
struct RepresentativeFallback {
  std::vector<sim::HostId> chosen;   ///< usable reps, best score first
  std::size_t skipped_unresponsive = 0;  ///< reps the fallback stepped over
  /// True when at least one chosen rep is not among the `count` best-scored
  /// (a next-best representative was substituted).
  bool substituted = false;
};

/// Pick up to `count` responsive representatives for `target`, falling back
/// to the next-best-scored hitlist entry when one is unresponsive — either
/// permanently (world model) or for this campaign (fault layer, may be
/// null). The original algorithm assumed all three reps answer; under
/// platform weather this is what "graceful" looks like: fewer or
/// substituted reps instead of a silently empty median.
RepresentativeFallback resilient_representatives(
    const scenario::Scenario& s, sim::HostId target,
    const atlas::FaultModel* faults = nullptr, int count = 3);

}  // namespace geoloc::core
