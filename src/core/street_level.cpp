#include "core/street_level.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "geo/geodesy.h"

namespace geoloc::core {

StreetLevel::StreetLevel(const scenario::Scenario& s, StreetLevelConfig config)
    : scenario_(&s),
      config_(std::move(config)),
      tracer_(s.world(), s.latency()) {
  // The street-level paper's speeds (Section 3.2.2): 4/9 c for the tiers,
  // 2/3 c as the fallback for the few targets whose 4/9-c disks are
  // disjoint. Only apply when the caller kept the defaults.
  if (config_.tier1.soi_km_per_ms == geo::kSoiTwoThirdsKmPerMs &&
      config_.tier1.fallback_soi_km_per_ms == 0.0) {
    config_.tier1.soi_km_per_ms = geo::kSoiFourNinthsKmPerMs;
    config_.tier1.fallback_soi_km_per_ms = geo::kSoiTwoThirdsKmPerMs;
  }
}

std::vector<VpObservation> StreetLevel::tier1_observations(
    std::size_t target_col) const {
  const auto& rtts = scenario_->target_rtts();
  const auto& world = scenario_->world();
  const auto& targets = scenario_->targets();
  const sim::HostId target = targets[target_col];

  std::vector<VpObservation> obs;
  obs.reserve(targets.size());
  // Anchor VPs occupy the first |targets| rows of the VP set by
  // construction (Scenario::build appends probes after anchors).
  for (std::size_t r = 0; r < targets.size(); ++r) {
    if (scenario_->vps()[r] == target) continue;  // a target never probes itself
    const float rtt = rtts.at(r, target_col);
    if (scenario::RttMatrix::is_missing(rtt)) continue;
    obs.push_back(VpObservation{
        world.host(scenario_->vps()[r]).reported_location, rtt});
  }
  return obs;
}

std::vector<std::size_t> StreetLevel::closest_vp_rows(std::size_t target_col,
                                                      int k) const {
  const auto& rtts = scenario_->target_rtts();
  const auto& targets = scenario_->targets();
  const sim::HostId target = targets[target_col];
  std::vector<std::pair<float, std::size_t>> cand;
  cand.reserve(targets.size());
  for (std::size_t r = 0; r < targets.size(); ++r) {
    if (scenario_->vps()[r] == target) continue;
    const float rtt = rtts.at(r, target_col);
    if (scenario::RttMatrix::is_missing(rtt)) continue;
    cand.push_back({rtt, r});
  }
  const auto kk =
      std::min<std::size_t>(static_cast<std::size_t>(k), cand.size());
  std::partial_sort(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(kk),
                    cand.end());
  std::vector<std::size_t> rows;
  rows.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) rows.push_back(cand[i].second);
  return rows;
}

CbgResult StreetLevel::cbg_baseline(std::size_t target_col) const {
  return cbg_geolocate(tier1_observations(target_col), config_.tier1);
}

std::optional<double> StreetLevel::d1_plus_d2(
    const sim::Traceroute& to_landmark,
    const sim::Traceroute& to_target) const {
  if (!to_landmark.reached || !to_target.reached) return std::nullopt;
  const auto common =
      sim::TracerouteEngine::last_common_hop(to_landmark, to_target);
  if (!common) return std::nullopt;
  const double rtt_r1_l = to_landmark.hops[*common].rtt_ms;
  const double rtt_r1_t = to_target.hops[*common].rtt_ms;
  const double rtt_l = *to_landmark.destination_rtt_ms();
  const double rtt_t = *to_target.destination_rtt_ms();
  // Appendix B of the IMC'23 paper: under last-link symmetry,
  // RTT(VP,X) = RTT(VP,R1) + 2 * Dx, so:
  const double d1 = (rtt_l - rtt_r1_l) / 2.0;
  const double d2 = (rtt_t - rtt_r1_t) / 2.0;
  return d1 + d2;
}

void StreetLevel::run_tier(std::size_t target_col, const geo::GeoPoint& center,
                           const std::vector<geo::Disk>& region_disks,
                           double ring_km, int points_per_circle,
                           const std::vector<std::size_t>& vp_rows,
                           const std::vector<sim::Traceroute>& target_traces,
                           TierOutcome& out, std::uint64_t& traceroutes,
                           sim::CostModel& cost, util::Pcg32& gen) const {
  out.center = center;
  const auto& eco = scenario_->web();
  const auto& mapping = scenario_->mapping();
  const auto& world = scenario_->world();
  const auto& targets = scenario_->targets();
  const sim::Host& target = world.host(targets[target_col]);

  // --- harvest: concentric circles -> sample points -> zips -> websites ---
  std::unordered_set<std::string> zips_seen;
  std::unordered_set<landmark::WebsiteId> sites_seen;
  std::vector<landmark::WebsiteId> passing;

  auto consider_point = [&](const geo::GeoPoint& p) {
    ++out.sample_points;
    const std::string zip = mapping.reverse_geocode(p);
    ++out.geocode_queries;
    cost.charge_geocode_queries(1);
    if (!zips_seen.insert(zip).second) return;
    // Overpass-style area query: amenities with a website around the zip
    // (the zone and its neighbours), answered by the spatial zip index.
    // The IDs arrive in the zone scan order the nested legacy loop used,
    // so the landmark cap admits the same sites.
    for (landmark::WebsiteId id : eco.websites_near_zip(mapping, zip)) {
      if (!sites_seen.insert(id).second) continue;
      ++out.websites_tested;
      cost.charge_web_tests(1);
      if (eco.website(id).passes_tests &&
          static_cast<int>(passing.size()) < config_.max_landmarks_per_tier) {
        passing.push_back(id);
      }
    }
  };

  consider_point(center);
  for (int circle = 1; circle <= config_.max_circles; ++circle) {
    const double radius = ring_km * circle;
    bool any_inside = false;
    for (int i = 0; i < points_per_circle; ++i) {
      const double bearing =
          360.0 * static_cast<double>(i) / points_per_circle;
      const geo::GeoPoint p = geo::destination(center, bearing, radius);
      if (!region_disks.empty() && !geo::region_contains(region_disks, p)) {
        continue;
      }
      any_inside = true;
      consider_point(p);
    }
    ++out.circles;
    if (!any_inside) break;
  }

  // --- measure: per landmark, traceroute pairs from the closest VPs -------
  out.landmarks.reserve(passing.size());
  for (landmark::WebsiteId id : passing) {
    const landmark::Website& site = eco.website(id);
    LandmarkMeasurement m;
    m.site = id;
    m.claimed_location = site.poi_location;
    m.geographic_distance_km =
        geo::distance_km(site.poi_location, target.true_location);

    // A negative D1+D2 cannot upper-bound a distance, so the minimum is
    // taken over the non-negative values; the landmark is unusable only
    // when every VP produced a negative estimate (Figure 6a counts these).
    double best_pos = 0.0, best_any = 0.0;
    bool have_pos = false, have_any = false;
    for (std::size_t vi = 0; vi < vp_rows.size(); ++vi) {
      const sim::HostId vp = scenario_->vps()[vp_rows[vi]];
      const sim::Traceroute to_landmark = tracer_.run(vp, site.server, gen);
      ++traceroutes;
      const auto d = d1_plus_d2(to_landmark, target_traces[vi]);
      if (!d) continue;
      ++m.pair_count;
      if (*d < 0.0) ++m.negative_pairs;
      if (!have_any || *d < best_any) {
        best_any = *d;
        have_any = true;
      }
      if (*d >= 0.0 && (!have_pos || *d < best_pos)) {
        best_pos = *d;
        have_pos = true;
      }
      ++m.vps_used;
    }
    if (have_any) {
      m.min_d1d2_ms = have_pos ? best_pos : best_any;
      m.usable = have_pos;
      if (m.usable) {
        m.measured_distance_km = best_pos * geo::kSoiFourNinthsKmPerMs;
      }
    }
    out.landmarks.push_back(m);
  }
  // Landmark + target traceroute rounds (two Atlas calls per tier).
  cost.charge_api_round();
  cost.charge_api_round();
}

StreetLevelResult StreetLevel::geolocate(std::size_t target_col) const {
  StreetLevelResult result;
  sim::CostModel cost(config_.cost);
  auto gen = scenario_->world()
                 .rng()
                 .fork("street-level", target_col)
                 .gen();

  // ---- tier 1 -------------------------------------------------------------
  result.tier1 = cbg_geolocate(tier1_observations(target_col), config_.tier1);
  cost.charge_api_round();
  if (!result.tier1.ok) {
    result.elapsed_seconds = cost.elapsed_seconds();
    return result;  // no region at either speed: give up (does not happen
                    // for responsive targets with sane VPs)
  }
  result.ok = true;
  result.estimate = result.tier1.estimate;
  result.tier_reached = 1;

  // The ten closest VPs by tier-1 RTT measure every landmark (the IMC'23
  // replication's overhead reduction, Section 3.2.2). Their target
  // traceroutes are shared across landmarks.
  const auto vp_rows =
      closest_vp_rows(target_col, config_.vps_per_landmark);
  const sim::HostId target = scenario_->targets()[target_col];
  std::vector<sim::Traceroute> target_traces;
  target_traces.reserve(vp_rows.size());
  for (std::size_t r : vp_rows) {
    target_traces.push_back(tracer_.run(scenario_->vps()[r], target, gen));
    ++result.traceroutes;
  }

  // ---- tier 2 -------------------------------------------------------------
  run_tier(target_col, result.tier1.estimate, result.tier1.disks,
           config_.tier2_ring_km, config_.tier2_points_per_circle, vp_rows,
           target_traces, result.tier2, result.traceroutes, cost, gen);

  // Refined region from the usable landmark disks.
  std::vector<geo::Disk> landmark_disks;
  for (const LandmarkMeasurement& m : result.tier2.landmarks) {
    if (m.usable) {
      landmark_disks.push_back(
          geo::Disk{m.claimed_location, m.measured_distance_km});
    }
  }
  geo::GeoPoint tier3_center = result.tier1.estimate;
  std::vector<geo::Disk> tier3_region = result.tier1.disks;
  if (!landmark_disks.empty()) {
    result.tier2.refined = [&] {
      CbgResult r;
      r.disks = geo::prune_dominated(landmark_disks);
      r.region = geo::intersect_disks(r.disks, config_.tier1.region);
      r.ok = !r.region.empty;
      if (r.ok) r.estimate = r.region.centroid;
      return r;
    }();
    if (result.tier2.refined.ok) {
      tier3_center = result.tier2.refined.estimate;
      tier3_region = result.tier2.refined.disks;
      result.estimate = tier3_center;
      result.tier_reached = 2;
    }
  }

  // ---- tier 3 -------------------------------------------------------------
  run_tier(target_col, tier3_center, tier3_region, config_.tier3_ring_km,
           config_.tier3_points_per_circle, vp_rows, target_traces,
           result.tier3, result.traceroutes, cost, gen);

  // Final mapping: the landmark with the smallest usable delay, searched in
  // tier 3 first, then tier 2.
  const LandmarkMeasurement* chosen = nullptr;
  for (const auto* tier : {&result.tier3, &result.tier2}) {
    for (const LandmarkMeasurement& m : tier->landmarks) {
      if (!m.usable) continue;
      if (!chosen || m.min_d1d2_ms < chosen->min_d1d2_ms) chosen = &m;
    }
    if (chosen) {
      result.estimate = chosen->claimed_location;
      result.tier_reached = tier == &result.tier3 ? 3 : 2;
      break;
    }
  }
  if (!chosen) {
    // No usable landmark: the technique answers with the CBG estimate, as
    // the paper does for its 46 landmark-less targets.
    result.estimate = result.tier1.estimate;
    result.fell_back_to_cbg = true;
  }

  result.elapsed_seconds = cost.elapsed_seconds();
  return result;
}

std::optional<geo::GeoPoint> StreetLevel::closest_landmark_oracle(
    std::size_t target_col, double search_radius_km) const {
  const auto& eco = scenario_->web();
  const auto& world = scenario_->world();
  const sim::Host& target =
      world.host(scenario_->targets()[target_col]);
  double best_d = search_radius_km;
  std::optional<geo::GeoPoint> best;
  for (landmark::WebsiteId id :
       eco.passing_near(target.true_location, search_radius_km)) {
    const double d =
        geo::distance_km(eco.website(id).poi_location, target.true_location);
    if (d <= best_d) {
      best_d = d;
      best = eco.website(id).poi_location;
    }
  }
  return best;
}

}  // namespace geoloc::core
