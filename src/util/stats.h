// Descriptive statistics used throughout the evaluation: medians,
// percentiles, empirical CDFs, Pearson correlation and least-squares fits.
// All functions are pure; sample vectors are taken by span/value and never
// mutated in place unless documented.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace geoloc::util {

/// Arithmetic mean. Returns 0 for an empty sample.
double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(std::span<const double> xs) noexcept;

/// Interpolated percentile of an *unsorted* sample. Uses the linear
/// interpolation between closest ranks (type-7, the numpy default).
/// `q` is clamped into [0, 100]; returns NaN for an empty sample or NaN q.
double percentile(std::span<const double> xs, double q);

/// Median, i.e. percentile(xs, 50).
double median(std::span<const double> xs);

/// Minimum / maximum. Return NaN for an empty sample.
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Fraction of samples <= threshold, i.e. the empirical CDF at `threshold`.
double fraction_below(std::span<const double> xs, double threshold) noexcept;

/// Pearson product-moment correlation coefficient.
/// Returns 0 when either sample has zero variance or fewer than 2 points.
/// Precondition: xs.size() == ys.size().
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative = 0.0;  ///< fraction of samples <= value, in (0, 1]
};

/// Full empirical CDF: one point per sample, sorted ascending.
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// CDF decimated to at most `max_points` points (keeps first/last); intended
/// for rendering paper figures as text without emitting 10k rows.
/// `max_points` < 2 cannot keep both endpoints: the full CDF is returned.
std::vector<CdfPoint> decimated_cdf(std::vector<double> xs,
                                    std::size_t max_points);

/// Five-number-style summary used in experiment reports.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};
Summary summarize(std::span<const double> xs);

/// Render a summary on one line, e.g. for log output.
std::string to_string(const Summary& s);

}  // namespace geoloc::util
