// Minimal CSV writing, so every figure's data can be exported for external
// plotting (set GEOLOC_EXPORT_DIR when running the bench binaries).
#pragma once

#include <fstream>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace geoloc::util {

/// Escape a field per RFC 4180 (quote when it contains comma/quote/newline).
std::string csv_escape(std::string_view field);

/// Streams rows to a .csv file. Move-only; flushes on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing; `ok()` reports failure instead of throwing
  /// so exports stay best-effort in bench binaries.
  explicit CsvWriter(const std::string& path);

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  [[nodiscard]] bool ok() const { return out_ && out_->good(); }

  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string_view> cells);

  /// Numeric convenience: writes doubles with full round-trip precision.
  void numeric_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::unique_ptr<std::ofstream> out_;
  std::size_t rows_ = 0;
};

/// The export directory from GEOLOC_EXPORT_DIR (created if needed);
/// nullopt when exporting is off.
std::optional<std::string> export_dir_from_env();

/// Convenience used by benches: open "<export-dir>/<name>.csv" when
/// exporting is enabled.
std::optional<CsvWriter> maybe_csv(const std::string& name);

}  // namespace geoloc::util
