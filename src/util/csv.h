// Minimal CSV writing, so every figure's data can be exported for external
// plotting (set GEOLOC_EXPORT_DIR when running the bench binaries).
#pragma once

#include <fstream>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace geoloc::util {

/// Escape a field per RFC 4180 (quote when it contains comma/quote/newline).
std::string csv_escape(std::string_view field);

/// Streams rows to a .csv file. Move-only.
///
/// Durability (util/durable.h): rows stream into `<path>.tmp.<pid>`; the
/// destination appears only when close() (or the destructor) promotes the
/// staging file with fsync + atomic rename. Stream failures — a full disk,
/// a yanked volume — are tracked on every row: `ok()` goes false, close()
/// returns false and warns instead of leaving a silently truncated export,
/// and the destination path is never touched by a failed write.
class CsvWriter {
 public:
  /// Opens the staging file for writing; `ok()` reports failure instead of
  /// throwing so exports stay best-effort in bench binaries.
  explicit CsvWriter(const std::string& path);

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  /// Promotes the staging file (flush, fsync, rename to the final path).
  ~CsvWriter();

  /// False once any write (or the open) failed; rows are dropped from then
  /// on and close() will report the loss instead of renaming a short file.
  [[nodiscard]] bool ok() const { return out_ && out_->good() && !failed_; }

  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string_view> cells);

  /// Numeric convenience: writes doubles with full round-trip precision.
  void numeric_row(const std::vector<double>& values);

  /// Finish the export: flush, verify the stream, fsync and atomically
  /// rename the staging file over the final path. Returns false (and
  /// removes the staging file) when any row was lost or the promotion
  /// failed — the destination then still holds its previous content.
  /// Idempotent; the destructor calls it for writers dropped at scope end.
  bool close();

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<std::ofstream> out_;
  std::size_t rows_ = 0;
  bool failed_ = false;
};

/// The export directory from GEOLOC_EXPORT_DIR (created if needed);
/// nullopt when exporting is off.
std::optional<std::string> export_dir_from_env();

/// Convenience used by benches: open "<export-dir>/<name>.csv" when
/// exporting is enabled.
std::optional<CsvWriter> maybe_csv(const std::string& name);

}  // namespace geoloc::util
