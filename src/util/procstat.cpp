#include "util/procstat.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace {

// Zero-initialized before any dynamic initialization runs, so allocations
// made during static construction are counted too.
std::atomic<std::uint64_t> g_alloc_count{0};

std::size_t status_field_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::size_t out = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      // "VmHWM:    123456 kB"
      out = static_cast<std::size_t>(
          std::strtoull(line + key_len + 1, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return out;
}

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  for (;;) {
    if (void* p = std::malloc(n)) return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc{};
    h();
  }
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = align;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (n + align - 1) / align * align;
  for (;;) {
    if (void* p = std::aligned_alloc(align, rounded)) return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc{};
    h();
  }
}

}  // namespace

namespace geoloc::util::procstat {

std::size_t peak_rss_kb() { return status_field_kb("VmHWM"); }
std::size_t rss_kb() { return status_field_kb("VmRSS"); }
std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace geoloc::util::procstat

// -- replaced global allocation functions ------------------------------------
// malloc/free-backed so the sanitizer presets still intercept the underlying
// allocations; every variant of operator new funnels through the counted
// helpers above. Sized and aligned deletes forward to free, matching the
// allocation side.

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(al));
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(al);
  const std::size_t want = n == 0 ? a : n;
  return std::aligned_alloc(a, (want + a - 1) / a * a);
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(al);
  const std::size_t want = n == 0 ? a : n;
  return std::aligned_alloc(a, (want + a - 1) / a * a);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
