#include "util/rng.h"

#include <cmath>

namespace geoloc::util {

double Pcg32::normal() noexcept {
  // Marsaglia polar method.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Pcg32::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Pcg32::exponential(double mean) noexcept {
  // Inverse CDF; uniform() < 1 so log argument is > 0.
  return -mean * std::log(1.0 - uniform());
}

double Pcg32::pareto(double x_m, double alpha) noexcept {
  return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

}  // namespace geoloc::util
