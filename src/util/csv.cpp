#include "util/csv.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "obs/log.h"
#include "util/durable.h"
#include "util/env.h"

namespace geoloc::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path)
    : path_(path),
      tmp_path_(durable::tmp_path_for(path)),
      out_(std::make_unique<std::ofstream>(tmp_path_)) {
  if (!out_->good()) failed_ = true;
}

CsvWriter::~CsvWriter() {
  if (out_) close();
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!ok()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(cells[i]);
  }
  *out_ << '\n';
  if (!out_->good()) {
    failed_ = true;
    return;
  }
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  std::vector<std::string> copy;
  copy.reserve(cells.size());
  for (std::string_view c : cells) copy.emplace_back(c);
  row(copy);
}

void CsvWriter::numeric_row(const std::vector<double>& values) {
  if (!ok()) return;
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  *out_ << os.str() << '\n';
  if (!out_->good()) {
    failed_ = true;
    return;
  }
  ++rows_;
}

bool CsvWriter::close() {
  if (!out_) return !failed_;
  out_->flush();
  if (!out_->good()) failed_ = true;
  out_->close();
  if (out_->fail()) failed_ = true;
  out_.reset();
  if (failed_) {
    std::remove(tmp_path_.c_str());
    obs::warn_once(("csv-write-failed:" + path_).c_str(),
                   "csv: export lost (write failure, full disk?): " + path_);
    return false;
  }
  std::string error;
  if (!durable::commit_tmp_file(tmp_path_, path_, &error)) {
    failed_ = true;
    obs::warn_once(("csv-commit-failed:" + path_).c_str(), "csv: " + error);
    return false;
  }
  return true;
}

std::optional<std::string> export_dir_from_env() {
  const std::string dir = env::string_or("GEOLOC_EXPORT_DIR", "");
  if (dir.empty()) return std::nullopt;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return std::nullopt;
  return std::string(dir);
}

std::optional<CsvWriter> maybe_csv(const std::string& name) {
  const auto dir = export_dir_from_env();
  if (!dir) return std::nullopt;
  CsvWriter w(*dir + "/" + name + ".csv");
  if (!w.ok()) return std::nullopt;
  return w;
}

}  // namespace geoloc::util
