// Process self-accounting for the bench emitters: peak/current RSS from
// /proc/self/status and a global allocation counter, so every
// GEOLOC_BENCH_JSON record carries the two numbers a perf regression shows
// up in first — how much memory the run actually touched (the million-scale
// acceptance gate is "peak RSS bounded by the tile budget, not by
// rows x cols") and how many heap allocations the hot path performed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace geoloc::util::procstat {

/// Peak resident set size (VmHWM) of this process in KiB; 0 when
/// /proc/self/status is unavailable (non-Linux).
[[nodiscard]] std::size_t peak_rss_kb();

/// Current resident set size (VmRSS) in KiB; 0 when unavailable.
[[nodiscard]] std::size_t rss_kb();

/// Number of global operator new invocations (all variants) since process
/// start. The counter lives in the replaced global allocation functions in
/// procstat.cpp — one relaxed atomic increment per allocation, cheap enough
/// to be always-on. Diff two readings around a region to count its
/// allocations.
[[nodiscard]] std::uint64_t alloc_count();

}  // namespace geoloc::util::procstat
