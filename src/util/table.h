// Minimal column-aligned text table, used by every bench binary to print the
// rows the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace geoloc::util {

/// Column-aligned text table with an optional title and header row.
///
/// Usage:
///   TextTable t{"Figure 3c"};
///   t.header({"VPs in first step", "Measurements"});
///   t.row({"500", "2.88M"});
///   std::cout << t.render();
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Format a fraction (0..1) as a percentage string, e.g. "13.2%".
  static std::string pct(double fraction, int precision = 1);

  /// Render with box-drawing-free ASCII so output diffs cleanly.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace geoloc::util
