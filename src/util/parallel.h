// The deterministic parallel engine: a reusable chunked thread pool with
// parallel_for / parallel_map and an index-ordered reduction.
//
// Determinism contract (DESIGN.md §9). Every helper here guarantees that
// results are *bit-identical for any worker count*, including 1:
//
//   - tasks are addressed by index; a task may only write state owned by
//     its own index (parallel_map commits results into slot i),
//   - any randomness a task needs must be derived from (seed, task index)
//     — never drawn from a shared generator, whose draw order would depend
//     on scheduling,
//   - parallel_reduce folds chunk partials in chunk-index order, and the
//     chunk grain is a parameter of the call, never of the worker count,
//     so floating-point association is fixed.
//
// The pool is sized by GEOLOC_THREADS (default: hardware concurrency).
// With one worker every helper runs inline on the calling thread — no
// threads are spawned and behaviour is exactly the historical serial code.
// Nested use is safe: a parallel_for issued from inside a worker runs
// inline rather than deadlocking the pool.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace geoloc::util {

/// Worker count the global pool is (or will be) sized to: the
/// set_thread_count override when active, else GEOLOC_THREADS, else the
/// hardware concurrency. Always >= 1.
[[nodiscard]] unsigned thread_count();

/// Test/tooling override of the worker count; 0 restores the environment
/// default. The global pool is re-sized lazily on its next use. Not safe to
/// call concurrently with running parallel work.
void set_thread_count(unsigned n);

/// A persistent pool of workers executing [begin, end) index chunks.
/// Construction spawns `threads - 1` workers (the caller participates in
/// every job, so one worker means "inline").
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Invoke chunk_fn(begin, end) over a partition of [0, n) into chunks of
  /// `grain` indices (the last chunk may be short). Chunks are claimed
  /// dynamically by the workers plus the calling thread; blocks until every
  /// chunk completed. Exceptions from chunk_fn are rethrown on the caller
  /// (first one wins). Runs inline when the pool has one worker, n fits a
  /// single chunk, or the caller is itself a pool worker.
  void run_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& chunk_fn);

 private:
  struct Impl;
  Impl* impl_;
  unsigned threads_;
};

/// The process-wide pool, lazily constructed (and re-sized after
/// set_thread_count) on first use.
[[nodiscard]] ThreadPool& global_pool();

namespace detail {
/// Default chunk grain: a pure function of n (never of the worker count) so
/// chunk boundaries — and with them any per-chunk fold order — are stable
/// across GEOLOC_THREADS values. Small n stays fine-grained so per-target
/// work (≈ms each) spreads; huge n amortises the per-chunk claim.
[[nodiscard]] constexpr std::size_t default_grain(std::size_t n) noexcept {
  if (n <= 4'096) return 1;
  if (n <= 262'144) return 64;
  return 1'024;
}
}  // namespace detail

/// fn(i) for every i in [0, n), in parallel. fn must only write state owned
/// by index i.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = detail::default_grain(n);
  global_pool().run_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// out[i] = fn(i) for every i in [0, n): results are committed by index, so
/// the output is identical for any worker count. T must be default- and
/// move-constructible.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                                          std::size_t grain = 0) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

/// Ordered deterministic reduction: acc = combine(acc, map_fn(i)) folded in
/// strict index order within each chunk, chunk partials folded in chunk
/// order. `init` must be an identity element of `combine` (0 for +, 1 for
/// *, empty for concat). Because the grain is a parameter (default: a
/// function of n only), the association of `combine` is identical for any
/// worker count — which is what makes floating-point reductions bit-stable.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t n, T init, MapFn&& map_fn,
                                CombineFn&& combine, std::size_t grain = 0) {
  if (n == 0) return init;
  if (grain == 0) grain = detail::default_grain(n);
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<T> partials(chunks, init);
  global_pool().run_chunks(
      n, grain, [&](std::size_t begin, std::size_t end) {
        T acc = init;
        for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map_fn(i));
        partials[begin / grain] = acc;
      });
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace geoloc::util
