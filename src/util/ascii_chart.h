// Text rendering of the paper's figures: multi-series CDF charts on a
// logarithmic x axis, plus scatter plots. Benches use these so a terminal
// run visually reproduces each figure's shape.
#pragma once

#include <string>
#include <vector>

namespace geoloc::util {

/// One named series of raw samples to be drawn as an empirical CDF.
struct CdfSeries {
  std::string label;
  std::vector<double> samples;
};

struct ChartOptions {
  int width = 72;        ///< plot columns
  int height = 20;       ///< plot rows
  bool log_x = true;     ///< logarithmic x axis (the paper's default)
  double min_x = 0.0;    ///< 0 = auto (from data; log axes clamp to >= 0.1)
  double max_x = 0.0;    ///< 0 = auto
  std::string x_label = "x";
  std::string y_label = "CDF";
};

/// Render empirical CDFs of all series over a shared axis.
/// Series are drawn with the characters '*', '+', 'o', 'x', '#', '@' in order.
std::string render_cdf_chart(const std::vector<CdfSeries>& series,
                             const ChartOptions& options = {});

/// One named series of (x, y) points for a scatter plot.
struct ScatterSeries {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;
};

struct ScatterOptions {
  int width = 72;
  int height = 24;
  bool log_x = true;
  bool log_y = true;
  std::string x_label = "x";
  std::string y_label = "y";
};

/// Render a scatter plot of all series over shared axes.
std::string render_scatter_chart(const std::vector<ScatterSeries>& series,
                                 const ScatterOptions& options = {});

}  // namespace geoloc::util
