#include "util/durable.h"

#include <cerrno>
#include <cstdio>
#include <memory>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/env.h"

namespace geoloc::util::durable {

namespace {

// "GLDURBL1" little-endian.
constexpr std::uint64_t kFrameMagic = 0x314C425255444C47ULL;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Durability counters. Bumped on the cold I/O paths only — never per
/// payload byte — so the layer stays invisible to the hot paths it guards.
struct DurableMetrics {
  obs::Counter& writes;
  obs::Counter& write_failures;
  obs::Counter& reads_ok;
  obs::Counter& reads_missing;
  obs::Counter& quarantined;
};

DurableMetrics& metrics() {
  static auto& reg = obs::Registry::instance();
  static DurableMetrics m{reg.counter("durable.writes"),
                          reg.counter("durable.write_failures"),
                          reg.counter("durable.reads_ok"),
                          reg.counter("durable.reads_missing"),
                          reg.counter("durable.quarantined")};
  return m;
}

bool fail(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  metrics().write_failures.add();
  return false;
}

void store_u32(std::byte* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}
void store_u64(std::byte* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}
std::uint32_t load_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}
std::uint64_t load_u64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

/// Parent directory of `path` ("." when the path has no slash), for the
/// post-rename directory fsync that makes the new directory entry durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

// -- XXH64 ------------------------------------------------------------------
// Reference: Collet — xxHash fast digest algorithm (XXH64 variant).

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

std::uint64_t read_u64(const std::byte* p) noexcept { return load_u64(p); }
std::uint32_t read_u32(const std::byte* p) noexcept { return load_u32(p); }

constexpr std::uint64_t xxh_round(std::uint64_t acc,
                                  std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = rotl64(acc, 31);
  return acc * kPrime1;
}

constexpr std::uint64_t xxh_merge(std::uint64_t acc,
                                  std::uint64_t val) noexcept {
  acc ^= xxh_round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

std::uint64_t xxh64(std::span<const std::byte> bytes,
                    std::uint64_t seed) noexcept {
  const std::byte* p = bytes.data();
  const std::byte* const end = p + bytes.size();
  std::uint64_t h;

  if (bytes.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = xxh_round(v1, read_u64(p));
      v2 = xxh_round(v2, read_u64(p + 8));
      v3 = xxh_round(v3, read_u64(p + 16));
      v4 = xxh_round(v4, read_u64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = xxh_merge(h, v1);
    h = xxh_merge(h, v2);
    h = xxh_merge(h, v3);
    h = xxh_merge(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(bytes.size());
  while (p + 8 <= end) {
    h ^= xxh_round(0, read_u64(p));
    h = rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read_u32(p)) * kPrime1;
    h = rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(*p)) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

// -- atomic write primitive -------------------------------------------------

std::string tmp_path_for(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

std::string quarantine_path_for(const std::string& path) {
  return path + ".corrupt";
}

bool atomic_write_file(const std::string& path,
                       std::span<const std::byte> bytes, std::string* error) {
  const std::string tmp = tmp_path_for(path);
  {
    FilePtr f{std::fopen(tmp.c_str(), "wb")};
    if (!f) {
      return fail(error, "durable: cannot open staging file: " + tmp);
    }
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
      f.reset();
      std::remove(tmp.c_str());
      return fail(error, "durable: short write to staging file: " + tmp);
    }
    if (std::fflush(f.get()) != 0 || ::fsync(::fileno(f.get())) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return fail(error, "durable: flush/fsync failed: " + tmp);
    }
    // fclose after fsync: the data and size are on stable storage before
    // the rename can make the file visible under its final name.
    std::FILE* raw = f.release();
    if (std::fclose(raw) != 0) {
      std::remove(tmp.c_str());
      return fail(error, "durable: close failed: " + tmp);
    }
  }
  return commit_tmp_file(tmp, path, error);
}

bool commit_tmp_file(const std::string& tmp_path, const std::string& path,
                     std::string* error) {
  // Re-fsync via a fresh descriptor: the caller may have streamed into the
  // file through a stack that never fsync'd (std::ofstream has no such
  // call). Redundant after atomic_write_file's own fsync, but cheap.
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0) {
    return fail(error, "durable: staging file vanished: " + tmp_path);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    std::remove(tmp_path.c_str());
    return fail(error, "durable: fsync failed: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return fail(error, "durable: rename failed: " + tmp_path + " -> " + path);
  }
  // Make the directory entry itself durable; failure here is not data
  // loss (the rename happened), so it degrades to a warning.
  if (!fsync_dir(parent_dir(path))) {
    obs::warn_once(("durable-dirsync:" + parent_dir(path)).c_str(),
                   "durable: directory fsync failed for " + parent_dir(path));
  }
  metrics().writes.add();
  return true;
}

bool quarantine(const std::string& path) {
  const std::string dest = quarantine_path_for(path);
  std::remove(dest.c_str());
  const bool renamed = std::rename(path.c_str(), dest.c_str()) == 0;
  if (!renamed) std::remove(path.c_str());
  metrics().quarantined.add();
  obs::warn_once(("durable-quarantine:" + path).c_str(),
                 "durable: corrupt artifact quarantined: " + path + " -> " +
                     (renamed ? dest : std::string("(removed)")));
  return renamed;
}

// -- framed files -----------------------------------------------------------

bool write_framed(const std::string& path, std::uint64_t magic,
                  std::uint32_t version, std::span<const std::byte> payload,
                  std::string* error) {
  std::vector<std::byte> out(kFrameOverheadBytes + payload.size());
  std::byte* h = out.data();
  store_u64(h + 0, kFrameMagic);
  store_u64(h + 8, magic);
  store_u32(h + 16, version);
  store_u32(h + 20, 0);
  store_u64(h + 24, payload.size());
  store_u64(h + 32, xxh64(std::span<const std::byte>(h, 32)));
  if (!payload.empty()) {
    std::memcpy(h + kFrameHeaderBytes, payload.data(), payload.size());
  }
  store_u64(h + kFrameHeaderBytes + payload.size(), xxh64(payload));
  return atomic_write_file(path, out, error);
}

FramedRead read_framed(const std::string& path, std::uint64_t magic,
                       bool quarantine_corrupt) {
  FramedRead r;
  const auto corrupt = [&](std::string why) -> FramedRead& {
    r.status = ReadStatus::Corrupt;
    r.error = "durable: " + path + ": " + std::move(why);
    r.payload.clear();
    if (quarantine_corrupt) quarantine(path);
    return r;
  };

  FilePtr f{std::fopen(path.c_str(), "rb")};
  if (!f) {
    r.status = errno == ENOENT ? ReadStatus::NotFound : ReadStatus::IoError;
    r.error = "durable: cannot open: " + path;
    if (r.status == ReadStatus::NotFound) metrics().reads_missing.add();
    return r;
  }

  std::vector<std::byte> bytes;
  std::byte buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  if (std::ferror(f.get()) != 0) {
    r.status = ReadStatus::IoError;
    r.error = "durable: read error: " + path;
    return r;
  }
  f.reset();

  if (bytes.size() < kFrameOverheadBytes) {
    return corrupt("truncated frame (" + std::to_string(bytes.size()) +
                   " bytes)");
  }
  const std::byte* h = bytes.data();
  if (load_u64(h + 0) != kFrameMagic) return corrupt("bad frame magic");
  if (load_u64(h + 32) != xxh64(std::span<const std::byte>(h, 32))) {
    return corrupt("header checksum mismatch");
  }
  if (load_u64(h + 8) != magic) return corrupt("foreign artifact magic");
  const std::uint64_t payload_len = load_u64(h + 24);
  if (payload_len != bytes.size() - kFrameOverheadBytes) {
    return corrupt("payload length " + std::to_string(payload_len) +
                   " does not match file size " +
                   std::to_string(bytes.size()));
  }
  const std::span<const std::byte> payload(h + kFrameHeaderBytes,
                                           payload_len);
  if (load_u64(h + kFrameHeaderBytes + payload_len) != xxh64(payload)) {
    return corrupt("payload checksum mismatch");
  }

  r.status = ReadStatus::Ok;
  r.version = load_u32(h + 16);
  r.payload.assign(payload.begin(), payload.end());
  metrics().reads_ok.add();
  return r;
}

namespace {

/// Holds a FramedRead so its payload vector outlives the view aliasing it.
struct BufferKeepalive {
  std::vector<std::byte> bytes;
};

/// munmap-on-destruction owner of a whole-file read-only mapping.
struct MmapKeepalive {
  void* base = nullptr;
  std::size_t length = 0;
  ~MmapKeepalive() {
    if (base != nullptr && base != MAP_FAILED) ::munmap(base, length);
  }
  MmapKeepalive() = default;
  MmapKeepalive(const MmapKeepalive&) = delete;
  MmapKeepalive& operator=(const MmapKeepalive&) = delete;
};

/// The buffered fallback: run read_framed and re-home its payload vector in
/// the view's keepalive so the span stays valid.
FramedView fallback_buffered(const std::string& path, std::uint64_t magic,
                             bool quarantine_corrupt) {
  FramedView v;
  FramedRead r = read_framed(path, magic, quarantine_corrupt);
  v.status = r.status;
  v.version = r.version;
  v.error = std::move(r.error);
  v.mapped = false;
  if (r.ok()) {
    auto keep = std::make_shared<BufferKeepalive>();
    keep->bytes = std::move(r.payload);
    v.payload = keep->bytes;
    v.keepalive = std::move(keep);
  }
  return v;
}

}  // namespace

FramedView read_framed_mapped(const std::string& path, std::uint64_t magic,
                              bool quarantine_corrupt) {
  if (env::flag("GEOLOC_DURABLE_NO_MMAP")) {
    return fallback_buffered(path, magic, quarantine_corrupt);
  }

  FramedView v;
  const auto corrupt = [&](std::string why) -> FramedView& {
    v.status = ReadStatus::Corrupt;
    v.error = "durable: " + path + ": " + std::move(why);
    v.payload = {};
    v.keepalive.reset();
    if (quarantine_corrupt) quarantine(path);
    return v;
  };

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      v.status = ReadStatus::NotFound;
      v.error = "durable: cannot open: " + path;
      metrics().reads_missing.add();
      return v;
    }
    return fallback_buffered(path, magic, quarantine_corrupt);
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return fallback_buffered(path, magic, quarantine_corrupt);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kFrameOverheadBytes) {
    ::close(fd);
    return corrupt("truncated frame (" + std::to_string(size) + " bytes)");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (base == MAP_FAILED) {
    return fallback_buffered(path, magic, quarantine_corrupt);
  }
  auto keep = std::make_shared<MmapKeepalive>();
  keep->base = base;
  keep->length = size;

  // Identical validation sequence to read_framed, against the mapping.
  const auto* h = static_cast<const std::byte*>(base);
  if (load_u64(h + 0) != kFrameMagic) return corrupt("bad frame magic");
  if (load_u64(h + 32) != xxh64(std::span<const std::byte>(h, 32))) {
    return corrupt("header checksum mismatch");
  }
  if (load_u64(h + 8) != magic) return corrupt("foreign artifact magic");
  const std::uint64_t payload_len = load_u64(h + 24);
  if (payload_len != size - kFrameOverheadBytes) {
    return corrupt("payload length " + std::to_string(payload_len) +
                   " does not match file size " + std::to_string(size));
  }
  const std::span<const std::byte> payload(h + kFrameHeaderBytes, payload_len);
  if (load_u64(h + kFrameHeaderBytes + payload_len) != xxh64(payload)) {
    return corrupt("payload checksum mismatch");
  }

  v.status = ReadStatus::Ok;
  v.version = load_u32(h + 16);
  v.payload = payload;
  v.keepalive = std::move(keep);
  v.mapped = true;
  metrics().reads_ok.add();
  return v;
}

}  // namespace geoloc::util::durable
