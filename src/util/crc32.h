// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
// Used by the snapshot format to detect corrupt or truncated files before
// any entry is interpreted. Software table-driven: ~1 GB/s, far above the
// snapshot sizes involved, and byte-order independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace geoloc::util {

/// CRC-32 of a byte range, optionally continuing from a previous value
/// (pass the prior return value as `seed` to checksum in chunks).
std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t seed = 0) noexcept;

}  // namespace geoloc::util
