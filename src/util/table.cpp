#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace geoloc::util {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (fraction * 100.0)
     << "%";
  return os.str();
}

std::string TextTable::render() const {
  // Compute column widths across header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace geoloc::util
