#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace geoloc::util {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty() || std::isnan(q)) return kNaN;
  // Clamp before computing the rank: a negative q would make `pos`
  // negative, and casting a negative double through floor to size_t is
  // undefined behaviour that over-indexed `sorted` in practice.
  q = std::clamp(q, 0.0, 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = (q / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return kNaN;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return kNaN;
  return *std::max_element(xs.begin(), xs.end());
}

double fraction_below(std::span<const double> xs, double threshold) noexcept {
  if (xs.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(xs.begin(), xs.end(),
                    [threshold](double x) { return x <= threshold; }));
  return n / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = xs.size();
  if (n != ys.size() || n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n != ys.size() || n < 2) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(xs.size());
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cdf.push_back({xs[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

std::vector<CdfPoint> decimated_cdf(std::vector<double> xs,
                                    std::size_t max_points) {
  auto full = empirical_cdf(std::move(xs));
  if (max_points < 2 || full.size() <= max_points) return full;
  std::vector<CdfPoint> out;
  out.reserve(max_points);
  const double step = static_cast<double>(full.size() - 1) /
                      static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(
        std::llround(step * static_cast<double>(i)));
    out.push_back(full[std::min(idx, full.size() - 1)]);
  }
  return out;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = min_of(xs);
  s.p25 = percentile(xs, 25.0);
  s.median = percentile(xs, 50.0);
  s.p75 = percentile(xs, 75.0);
  s.p90 = percentile(xs, 90.0);
  s.max = max_of(xs);
  s.mean = mean(xs);
  return s;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " min=" << s.min << " p25=" << s.p25
     << " median=" << s.median << " p75=" << s.p75 << " p90=" << s.p90
     << " max=" << s.max << " mean=" << s.mean;
  return os.str();
}

}  // namespace geoloc::util
