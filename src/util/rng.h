// Deterministic random-number generation for the whole reproduction.
//
// Every stochastic component of the simulation draws from a seeded hierarchy
// rooted at a single scenario seed, so that datasets, measurements and
// experiment results are reproducible bit-for-bit across runs and platforms.
// Nothing in src/ may use std::random_device or the wall clock for logic.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace geoloc::util {

/// SplitMix64: used for seeding and for hashing labels into substream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a label, used to derive independent named substreams.
constexpr std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// PCG32 (pcg32_oneseq): small, fast, statistically strong generator.
/// Reference: O'Neill — "PCG: A Family of Simple Fast Space-Efficient
/// Statistically Good Algorithms for Random Number Generation" (2014).
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept : Pcg32(0x853c49e6748fea9bULL) {}

  constexpr explicit Pcg32(std::uint64_t seed) noexcept : state_(0) {
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    // 53 random bits -> double mantissa.
    const std::uint64_t hi = next();
    const std::uint64_t lo = next();
    const std::uint64_t bits = ((hi << 32) | lo) >> 11;
    return static_cast<double>(bits) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method is
  /// overkill here; a simple rejection-free multiply-shift keeps bias below
  /// 2^-32 which is irrelevant for simulation purposes.
  constexpr std::uint32_t bounded(std::uint32_t bound) noexcept {
    const std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform size_t index in [0, n). Precondition: n > 0.
  constexpr std::size_t index(std::size_t n) noexcept {
    if (n <= std::numeric_limits<std::uint32_t>::max()) {
      return bounded(static_cast<std::uint32_t>(n));
    }
    const std::uint64_t r =
        (static_cast<std::uint64_t>(next()) << 32) | next();
    return static_cast<std::size_t>(r % n);
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no cached spare to stay
  /// stateless w.r.t. interleaving of calls).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with given mean (= 1/lambda).
  double exponential(double mean) noexcept;

  /// Pareto (Lomax-style heavy tail) with scale x_m and shape alpha.
  double pareto(double x_m, double alpha) noexcept;

 private:
  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t state_;
};

/// A node in the deterministic seed hierarchy. A stream can mint named or
/// indexed child streams whose sequences are independent of the order in
/// which siblings are created or consumed.
class RngStream {
 public:
  constexpr explicit RngStream(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Child stream for a named component, e.g. fork("latency").
  constexpr RngStream fork(std::string_view label) const noexcept {
    std::uint64_t s = seed_ ^ hash_label(label);
    return RngStream{splitmix64(s)};
  }

  /// Child stream for an indexed entity, e.g. fork("probe", 1234).
  constexpr RngStream fork(std::string_view label,
                           std::uint64_t index) const noexcept {
    std::uint64_t s = seed_ ^ hash_label(label) ^ (index * 0x9e3779b97f4a7c15ULL);
    return RngStream{splitmix64(s)};
  }

  /// Materialise a generator positioned at this node.
  constexpr Pcg32 gen() const noexcept { return Pcg32{seed_}; }

  constexpr std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace geoloc::util
