#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/stats.h"

namespace geoloc::util {

namespace {

constexpr const char kMarkers[] = {'*', '+', 'o', 'x', '#', '@'};
constexpr int kMarkerCount = static_cast<int>(sizeof(kMarkers));

struct Axis {
  double lo = 0.0;
  double hi = 1.0;
  bool log = false;

  /// Map a value to a column/row in [0, extent).
  [[nodiscard]] int to_cell(double v, int extent) const {
    double a = lo, b = hi, x = v;
    if (log) {
      a = std::log10(lo);
      b = std::log10(hi);
      x = std::log10(std::max(v, lo));
    }
    if (b <= a) return 0;
    const double t = std::clamp((x - a) / (b - a), 0.0, 1.0);
    return std::min(extent - 1, static_cast<int>(t * extent));
  }

  [[nodiscard]] double cell_value(int cell, int extent) const {
    const double t = static_cast<double>(cell) / std::max(1, extent - 1);
    if (log) {
      const double a = std::log10(lo), b = std::log10(hi);
      return std::pow(10.0, a + t * (b - a));
    }
    return lo + t * (hi - lo);
  }
};

std::string format_tick(double v) {
  std::ostringstream os;
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    os << std::scientific << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(v < 10 ? 1 : 0) << v;
  }
  return os.str();
}

void draw_x_axis(std::ostringstream& os, const Axis& x, int width,
                 const std::string& label) {
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "\n ";
  // Ticks at 0%, 25%, 50%, 75%, 100% of the axis.
  std::string ticks(static_cast<std::size_t>(width) + 1, ' ');
  for (int i = 0; i <= 4; ++i) {
    const int col = i * (width - 1) / 4;
    const std::string t = format_tick(x.cell_value(col, width));
    for (std::size_t j = 0; j < t.size(); ++j) {
      const std::size_t pos = static_cast<std::size_t>(col) + j;
      if (pos < ticks.size()) ticks[pos] = t[j];
    }
  }
  os << ticks << "\n " << std::string(static_cast<std::size_t>(width / 2 - 4), ' ')
     << '[' << label << "]\n";
}

}  // namespace

std::string render_cdf_chart(const std::vector<CdfSeries>& series,
                             const ChartOptions& options) {
  Axis x;
  x.log = options.log_x;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (double v : s.samples) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 1.0;
  }
  x.lo = options.min_x != 0.0 ? options.min_x : lo;
  x.hi = options.max_x != 0.0 ? options.max_x : hi;
  if (x.log) x.lo = std::max(x.lo, 0.1);
  if (x.hi <= x.lo) x.hi = x.lo + 1.0;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % kMarkerCount];
    auto cdf = empirical_cdf(series[si].samples);
    for (int col = 0; col < w; ++col) {
      const double value = x.cell_value(col, w);
      // CDF at `value`.
      const auto it = std::upper_bound(
          cdf.begin(), cdf.end(), value,
          [](double v, const CdfPoint& p) { return v < p.value; });
      const double frac = (it == cdf.begin()) ? 0.0 : std::prev(it)->cumulative;
      const int row =
          std::min(h - 1, static_cast<int>((1.0 - frac) * (h - 1) + 0.5));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }

  std::ostringstream os;
  for (int row = 0; row < h; ++row) {
    const double frac = 1.0 - static_cast<double>(row) / (h - 1);
    os << std::fixed << std::setprecision(2) << std::setw(4) << frac << " |"
       << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << "     ";
  draw_x_axis(os, x, w, options.x_label);
  os << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << kMarkers[si % kMarkerCount] << "=" << series[si].label;
  }
  os << '\n';
  return os.str();
}

std::string render_scatter_chart(const std::vector<ScatterSeries>& series,
                                 const ScatterOptions& options) {
  Axis x, y;
  x.log = options.log_x;
  y.log = options.log_y;
  double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
  double ylo = std::numeric_limits<double>::infinity(), yhi = -ylo;
  for (const auto& s : series) {
    for (double v : s.xs) {
      xlo = std::min(xlo, v);
      xhi = std::max(xhi, v);
    }
    for (double v : s.ys) {
      ylo = std::min(ylo, v);
      yhi = std::max(yhi, v);
    }
  }
  if (!std::isfinite(xlo)) {
    xlo = 0.0;
    xhi = 1.0;
    ylo = 0.0;
    yhi = 1.0;
  }
  x.lo = x.log ? std::max(xlo, 0.1) : xlo;
  x.hi = std::max(xhi, x.lo * 1.001 + 1e-9);
  y.lo = y.log ? std::max(ylo, 0.1) : ylo;
  y.hi = std::max(yhi, y.lo * 1.001 + 1e-9);

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % kMarkerCount];
    const auto& s = series[si];
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      const int col = x.to_cell(s.xs[i], w);
      const int row = h - 1 - y.to_cell(s.ys[i], h);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }

  std::ostringstream os;
  for (int row = 0; row < h; ++row) {
    const double yv = y.cell_value(h - 1 - row, h);
    os << std::setw(8) << format_tick(yv) << " |"
       << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << "         ";
  draw_x_axis(os, x, w, options.x_label);
  os << "  y: [" << options.y_label << "]   legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << kMarkers[si % kMarkerCount] << "=" << series[si].label;
  }
  os << '\n';
  return os.str();
}

}  // namespace geoloc::util
