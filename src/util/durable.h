// Crash-safe artifact I/O for every on-disk file the system re-reads.
//
// The paper's deliverable is a *reusable* dataset; longitudinal use only
// works if each artifact — RTT-matrix caches, street-campaign caches,
// published snapshots, campaign checkpoints, CSV exports — survives
// crashes, torn writes and bit-rot. This layer provides the two
// primitives everything durable is built on (DESIGN.md §11):
//
//   1. Atomic replacement: writers never touch the final path directly.
//      Bytes go to `<path>.tmp.<pid>`, are fsync'd, and only then renamed
//      over the destination (with a directory fsync), so a reader sees
//      either the old complete file or the new complete file — never a
//      prefix of the new one.
//
//   2. Framed integrity: a fixed header (frame magic, caller magic,
//      version, payload length, header XXH64) followed by the payload and
//      an XXH64 trailer. The validating reader detects truncation,
//      bit-flips and torn writes *before* a single payload byte is
//      interpreted, and *quarantines* corrupt files (rename to
//      `<path>.corrupt`) so the caller regenerates instead of crashing,
//      looping on the same bad file, or silently reading garbage.
//
// Payload (de)serialisation goes through PayloadWriter/PayloadReader:
// bounds-checked POD streams, so a validated-but-malformed payload (a
// buggy writer, a stale schema) degrades to a clean load failure too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace geoloc::util::durable {

/// XXH64 (Yann Collet's xxHash, 64-bit variant) of a byte range. Used as
/// the frame checksum: ~10 GB/s in software and 64 bits of detection,
/// enough that a passing trailer on a multi-GB artifact is conclusive.
[[nodiscard]] std::uint64_t xxh64(std::span<const std::byte> bytes,
                                  std::uint64_t seed = 0) noexcept;

/// The temp-file sibling a writer uses before the atomic rename:
/// "<path>.tmp.<pid>". Pid-suffixed so concurrent processes sharing a
/// cache directory never scribble on each other's staging file.
[[nodiscard]] std::string tmp_path_for(const std::string& path);

/// Quarantine destination of a corrupt file: "<path>.corrupt".
[[nodiscard]] std::string quarantine_path_for(const std::string& path);

/// Write `bytes` to `path` atomically: stage at tmp_path_for(path), fsync,
/// rename over `path`, fsync the parent directory. On any failure the
/// staging file is removed and `path` is left untouched (old content, or
/// still absent). Returns false with a one-line reason in `*error`.
bool atomic_write_file(const std::string& path,
                       std::span<const std::byte> bytes,
                       std::string* error = nullptr);

/// Durably promote an already-written staging file to `path`: fsync the
/// file, rename, fsync the directory. For writers that stream into the
/// temp file themselves (CsvWriter) instead of building bytes in memory.
/// On failure the staging file is removed.
bool commit_tmp_file(const std::string& tmp_path, const std::string& path,
                     std::string* error = nullptr);

/// Move a corrupt file out of the way (rename to quarantine_path_for,
/// replacing any earlier quarantine) so the next regeneration can write a
/// clean one and forensics keep the evidence. Emits a once-per-path
/// warning and bumps "durable.quarantined". Returns false if the rename
/// itself failed (the file is then best-effort removed).
bool quarantine(const std::string& path);

// -- framed checksummed files ----------------------------------------------

/// Fixed frame layout (little-endian):
///   [ 0..8)   frame magic "GLDURBL1"
///   [ 8..16)  caller magic (artifact format id)
///   [16..20)  caller format version
///   [20..24)  reserved (zero)
///   [24..32)  payload length in bytes
///   [32..40)  XXH64 of bytes [0..32)
///   [40..40+len)  payload
///   trailer:  XXH64 of the payload
inline constexpr std::size_t kFrameHeaderBytes = 40;
inline constexpr std::size_t kFrameTrailerBytes = 8;
inline constexpr std::size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;

/// Frame `payload` and write it atomically to `path`.
bool write_framed(const std::string& path, std::uint64_t magic,
                  std::uint32_t version, std::span<const std::byte> payload,
                  std::string* error = nullptr);

enum class ReadStatus : std::uint8_t {
  Ok,
  NotFound,  ///< no file at `path` — a cache miss, not a failure
  IoError,   ///< open/read failed for a reason other than absence
  Corrupt,   ///< bad frame: wrong magic, bad length, failed checksum
};

struct FramedRead {
  ReadStatus status = ReadStatus::IoError;
  std::uint32_t version = 0;        ///< caller format version (valid when Ok)
  std::vector<std::byte> payload;   ///< verified payload bytes (when Ok)
  std::string error;                ///< one-line reason (when not Ok)

  [[nodiscard]] bool ok() const noexcept { return status == ReadStatus::Ok; }
};

/// Read and validate a framed file. Every integrity failure — truncation,
/// flipped bits anywhere, torn write, trailing garbage, foreign magic —
/// comes back as Corrupt, and when `quarantine_corrupt` is set (the
/// default) the bad file has already been renamed aside so the caller's
/// regeneration path can simply write a fresh one.
[[nodiscard]] FramedRead read_framed(const std::string& path,
                                     std::uint64_t magic,
                                     bool quarantine_corrupt = true);

/// Zero-copy variant of a framed read: `payload` views the verified bytes
/// in place instead of owning a copy, and `keepalive` pins the backing
/// storage (an mmap'd file, or the fallback heap buffer) for as long as any
/// copy of it is held. Consumers that parse the payload into flat arrays —
/// the spatial interval index — can alias it directly and skip the
/// payload-sized allocation + memcpy of read_framed.
struct FramedView {
  ReadStatus status = ReadStatus::IoError;
  std::uint32_t version = 0;            ///< caller format version (when Ok)
  std::span<const std::byte> payload;   ///< verified payload bytes (when Ok)
  /// Owns whatever `payload` points into. Keep (a copy of) this alive for
  /// the lifetime of anything aliasing the payload.
  std::shared_ptr<const void> keepalive;
  bool mapped = false;                  ///< true = mmap, false = heap buffer
  std::string error;                    ///< one-line reason (when not Ok)

  [[nodiscard]] bool ok() const noexcept { return status == ReadStatus::Ok; }
};

/// Read and validate a framed file via mmap(PROT_READ, MAP_PRIVATE); the
/// full header + XXH64 validation of read_framed runs against the mapping
/// before a payload byte is exposed, and corrupt files are quarantined the
/// same way. When mmap is unavailable (open/fstat/mmap failure, or
/// GEOLOC_DURABLE_NO_MMAP=1) this degrades to the buffered read_framed with
/// the copied payload parked in `keepalive` — callers never need a second
/// code path. The payload starts kFrameHeaderBytes (40) into the
/// page-aligned mapping, so 8-byte-aligned fields at 8-byte payload offsets
/// stay aligned.
[[nodiscard]] FramedView read_framed_mapped(const std::string& path,
                                            std::uint64_t magic,
                                            bool quarantine_corrupt = true);

// -- bounds-checked payload codecs -----------------------------------------

/// Append-only byte buffer for building a frame payload out of PODs.
class PayloadWriter {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof v);
  }

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  [[nodiscard]] std::span<const std::byte> data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::byte> buf_;
};

/// Cursor over a verified payload. Every read is bounds-checked: a short
/// or overlong payload turns into `false` (and ok() goes false), never
/// into a partially-filled struct or an out-of-range allocation size.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::byte> data) noexcept
      : data_(data) {}

  template <typename T>
  [[nodiscard]] bool pod(T& v) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    return bytes(&v, sizeof v);
  }

  [[nodiscard]] bool bytes(void* p, std::size_t n) noexcept {
    if (n > remaining()) {
      failed_ = true;
      return false;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// True when the whole payload was consumed — readers require this so
  /// trailing bytes (a schema mismatch) are rejected, not ignored.
  [[nodiscard]] bool exhausted() const noexcept {
    return !failed_ && remaining() == 0;
  }
  [[nodiscard]] bool ok() const noexcept { return !failed_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace geoloc::util::durable
