#include "util/parallel.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"

namespace geoloc::util {

namespace {

/// Set while the current thread is executing pool work; nested parallel
/// calls detect it and run inline instead of waiting on their own pool.
thread_local bool t_inside_pool_job = false;

std::mutex g_config_mu;
unsigned g_thread_override = 0;  // 0 = follow the environment

/// Engine series on the obs registry. Counters are always on (one striped
/// relaxed add per event); per-chunk wall timing follows GEOLOC_TRACE so
/// the disabled path never reads the clock in the chunk loop.
struct PoolMetrics {
  obs::Counter& jobs;
  obs::Counter& inline_jobs;
  obs::Counter& chunks;
  obs::Counter& caller_chunks;  ///< chunks executed by the submitting thread
  obs::Counter& worker_chunks;  ///< chunks executed by pool workers
  obs::Gauge& workers;
  obs::Gauge& queue_depth;  ///< pending chunks of the job last submitted
  obs::Histogram& chunk_wall_ms;
  obs::Histogram& job_wall_ms;
};

PoolMetrics& pool_metrics() {
  static auto& reg = obs::Registry::instance();
  static PoolMetrics m{reg.counter("parallel.jobs"),
                       reg.counter("parallel.inline_jobs"),
                       reg.counter("parallel.chunks"),
                       reg.counter("parallel.caller_chunks"),
                       reg.counter("parallel.worker_chunks"),
                       reg.gauge("parallel.pool_workers"),
                       reg.gauge("parallel.queue_depth"),
                       reg.histogram("parallel.chunk_wall_ms"),
                       reg.histogram("parallel.job_wall_ms")};
  return m;
}

}  // namespace

unsigned thread_count() {
  std::scoped_lock lock(g_config_mu);
  if (g_thread_override > 0) return g_thread_override;
  return env::threads();
}

struct ThreadPool::Impl {
  // One job at a time. run_chunks publishes {chunk_fn, total, grain} under
  // the mutex and bumps `generation`; workers (and the caller, which always
  // participates) claim [begin, end) chunks under the same mutex, so a
  // late-waking worker from a previous job sees the generation mismatch and
  // returns without ever touching the new job's state. Chunk execution
  // itself runs unlocked.
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  const std::function<void(std::size_t, std::size_t)>* chunk_fn = nullptr;
  std::size_t total = 0;
  std::size_t grain = 1;
  std::size_t next = 0;
  std::size_t pending_chunks = 0;
  std::uint64_t generation = 0;
  std::exception_ptr first_error;
  bool shutdown = false;
  std::vector<std::thread> workers;

  void work(std::uint64_t job_generation, bool as_worker) {
    PoolMetrics& metrics = pool_metrics();
    const bool timing = obs::trace_enabled();
    const bool was_inside = t_inside_pool_job;
    t_inside_pool_job = true;
    while (true) {
      std::size_t begin;
      std::size_t end;
      const std::function<void(std::size_t, std::size_t)>* fn;
      {
        std::scoped_lock lock(mu);
        if (generation != job_generation || chunk_fn == nullptr ||
            next >= total) {
          break;
        }
        begin = next;
        end = std::min(next + grain, total);
        next = end;
        fn = chunk_fn;
      }
      metrics.chunks.add();
      (as_worker ? metrics.worker_chunks : metrics.caller_chunks).add();
      const auto chunk_start = timing ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point();
      std::exception_ptr error;
      try {
        (*fn)(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      if (timing) {
        metrics.chunk_wall_ms.observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - chunk_start)
                .count());
      }
      std::scoped_lock lock(mu);
      if (error && !first_error) first_error = error;
      metrics.queue_depth.set(static_cast<std::int64_t>(pending_chunks - 1));
      if (--pending_chunks == 0) done_cv.notify_all();
    }
    t_inside_pool_job = was_inside;
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    while (true) {
      std::uint64_t job_generation;
      {
        std::unique_lock lock(mu);
        work_cv.wait(lock, [&] {
          return shutdown || generation != seen_generation;
        });
        if (shutdown) return;
        job_generation = seen_generation = generation;
      }
      work(job_generation, /*as_worker=*/true);
    }
  }
};

ThreadPool::ThreadPool(unsigned threads)
    : impl_(new Impl), threads_(threads == 0 ? 1 : threads) {
  pool_metrics().workers.set(static_cast<std::int64_t>(threads_));
  impl_->workers.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::run_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  PoolMetrics& metrics = pool_metrics();
  // Serial fast path: one worker, a single chunk, or a nested call from
  // inside a pool job (which would deadlock waiting on its own workers).
  // Chunk boundaries are preserved so per-chunk folds associate the same.
  if (threads_ == 1 || n <= grain || t_inside_pool_job) {
    metrics.inline_jobs.add();
    for (std::size_t begin = 0; begin < n; begin += grain) {
      metrics.chunks.add();
      metrics.caller_chunks.add();
      chunk_fn(begin, std::min(begin + grain, n));
    }
    return;
  }

  metrics.jobs.add();
  const bool timing = obs::trace_enabled();
  const auto job_start = timing ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point();
  std::uint64_t job_generation;
  {
    std::scoped_lock lock(impl_->mu);
    impl_->chunk_fn = &chunk_fn;
    impl_->total = n;
    impl_->grain = grain;
    impl_->next = 0;
    impl_->pending_chunks = (n + grain - 1) / grain;
    impl_->first_error = nullptr;
    job_generation = ++impl_->generation;
    metrics.queue_depth.set(
        static_cast<std::int64_t>(impl_->pending_chunks));
  }
  impl_->work_cv.notify_all();

  // The caller is a worker too: claim chunks until the job runs dry.
  impl_->work(job_generation, /*as_worker=*/false);

  std::unique_lock lock(impl_->mu);
  impl_->done_cv.wait(lock, [&] { return impl_->pending_chunks == 0; });
  impl_->chunk_fn = nullptr;
  if (timing) {
    metrics.job_wall_ms.observe(std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() -
                                    job_start)
                                    .count());
  }
  if (impl_->first_error) std::rethrow_exception(impl_->first_error);
}

namespace {

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mu;

}  // namespace

ThreadPool& global_pool() {
  const unsigned want = thread_count();
  std::scoped_lock lock(g_pool_mu);
  if (!g_pool || g_pool->size() != want) {
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

void set_thread_count(unsigned n) {
  std::scoped_lock lock(g_config_mu);
  g_thread_override = n;
}

}  // namespace geoloc::util
