// One place for the environment knobs scattered across the bench mains and
// the library (GEOLOC_SMALL, GEOLOC_TRIALS, GEOLOC_CACHE_DIR,
// GEOLOC_THREADS, GEOLOC_EXPORT_DIR, GEOLOC_BENCH_JSON, GEOLOC_METRICS_JSON,
// GEOLOC_TRACE). Each helper parses one shape of value; the knob registry
// below is the documentation.
//
//   GEOLOC_SMALL=1        miniature scenario instead of paper scale
//   GEOLOC_TRIALS=N       trial count for the randomized sweeps
//   GEOLOC_CACHE_DIR=dir  where RTT-matrix / campaign caches live
//   GEOLOC_THREADS=N      worker threads for the parallel engine
//                         (default: hardware concurrency; 1 = serial;
//                         clamped to min(4 x cores, 256) with a warning)
//   GEOLOC_EXPORT_DIR=dir CSV export target for figure series
//   GEOLOC_BENCH_JSON=f   machine-readable bench records (JSON lines)
//   GEOLOC_METRICS_JSON=f obs-registry metrics dumps (JSON lines)
//   GEOLOC_TRACE=1        record obs trace spans (off by default)
//   GEOLOC_CHECKPOINT_DIR=dir   campaign checkpoint files (atlas executor
//                         derives campaign-<fingerprint>.ckpt per campaign;
//                         unset = no checkpointing unless a path is given
//                         explicitly via CheckpointPolicy::path)
//   GEOLOC_CHECKPOINT_EVERY=N   checkpoint cadence in completed rounds
//                         (default 1 = every round boundary)
//   GEOLOC_SERVE_PORT=N   TCP port for serve::Server (default 0 =
//                         kernel-assigned; printed at startup)
//   GEOLOC_SERVE_THREADS=N       epoll worker threads (default
//                         min(cores, 4), clamped to max_threads())
//   GEOLOC_SERVE_MAX_CONNS=N     admission limit; connections past it get
//                         one typed OVERLOADED reply and a close
//   GEOLOC_SERVE_MAX_BATCH=N     addresses per batch request (default 2048)
//   GEOLOC_SERVE_READ_DEADLINE_MS / GEOLOC_SERVE_WRITE_DEADLINE_MS
//                         per-connection deadlines (default 5000, capped
//                         at 60000 — the slowloris defense must fire)
//   GEOLOC_SERVE_DRAIN_MS=N      graceful-stop flush budget (default 2000)
//   GEOLOC_SERVE_MAX_OUTQ=N      per-connection output-queue bound, bytes
//                         (default 1 MiB; backpressure past it)
//   GEOLOC_SERVE_MAX_OUTSTANDING=N  server-wide queued-reply bound, bytes
//                         (default 8 MiB; requests shed past it)
//   GEOLOC_SERVE_REMEASURE_CAP=N    stale-prefix queue bound (default
//                         65536; drops counted on serve.remeasure_dropped)
//   GEOLOC_SPATIAL_MAX_CELLS=N   covering budget for spatial index queries
//                         (default 64, clamped to [4, 4096]; more cells =
//                         tighter coverings, fewer false candidates)
//   GEOLOC_RTT_TILE_VPS=N / GEOLOC_RTT_TILE_TARGETS=N   tile geometry of
//                         the streaming RTT producer (default 256 x 512;
//                         any shape yields the same bytes — DESIGN.md §14)
//   GEOLOC_RTT_TILE_BUDGET=N    max tiles resident in a source's LRU cache
//                         (default 64, clamped to >= 1; bounds peak memory,
//                         never results)
//   GEOLOC_DURABLE_NO_MMAP=1    force the buffered read path for framed
//                         artifacts (read_framed_mapped falls back; the
//                         mmap fast path is the default)
//   GEOLOC_MS_SLASH24S=N / GEOLOC_MS_TARGETS_PER_24=N / GEOLOC_MS_VPS=N
//                         bench_million_scale world size (defaults
//                         100000 / 10 / 128 = the 1M-target point)
//   GEOLOC_MS_RSS_CEILING_MB=N  bench_million_scale memory gate
//                         (default 4096)
//   GEOLOC_CHURN_SEED=N   world-churn RNG seed (sim/churn.h; default
//                         20240601)
//   GEOLOC_CHURN_PREFIX_PM=N    /24 reassignment onset rate per epoch,
//                         integer permille (default 20 = 2%)
//   GEOLOC_CHURN_WAVE_PM=N      fraction of a migrating /16's remaining
//                         siblings that follow per epoch, permille
//                         (default 340)
//   GEOLOC_CHURN_HOST_PM=N      individual host relocation rate, permille
//                         (default 5)
//   GEOLOC_CHURN_VP_DECOM_PM=N  VP decommission rate per epoch, permille
//                         (default 10)
//   GEOLOC_CHURN_VP_ADD_PM=N    VP additions per epoch as permille of the
//                         initial pool (default 10)
//   GEOLOC_CHURN_DRIFT_PM=N     reported-location drift onset rate,
//                         permille (default 10)
//   GEOLOC_CHURN_DRIFT_KM=N     drift step per epoch for a drifting VP,
//                         km (default 12)
//   GEOLOC_LONG_DEBUG=1   longitudinal driver: per-epoch policy
//                         diagnostics on stderr (selection quality vs
//                         ground truth; eval/longitudinal.cpp)
//   GEOLOC_HINT_COVERAGE_PM=N   fraction of targets with an rDNS-style
//                         hint, permille (sim/evidence.h; default 600)
//   GEOLOC_HINT_LIE_PM=N  fraction of hints that lie, permille
//                         (default 100)
//   GEOLOC_HINT_NOISE_KM=N      mean radial jitter of a hint around its
//                         hinted place, km (default 15)
//   GEOLOC_FEED_COVERAGE_PM=N   fraction of target /24s listed in some
//                         operator geofeed, permille (default 500)
//   GEOLOC_FEED_STALE_PM=N      honest-feed stale-entry rate, permille
//                         (default 50)
//   GEOLOC_FEED_COUNT=N   operator feeds the universe splits across
//                         (default 4)
//   GEOLOC_FEED_ADVERSARIAL=N   how many of those feeds lie (default 0)
//   GEOLOC_FEED_LIE_PM=N  per-entry lie rate of an adversarial feed,
//                         permille (default 800)
//   GEOLOC_FUSION_QUARANTINE_PM=N  rejection-rate threshold that
//                         quarantines an evidence source, permille
//                         (fusion/trust.h; default 400)
//   GEOLOC_FUSION_MIN_OBS=N     conclusive verifications before a source
//                         can be judged (default 5)
//   GEOLOC_FUSION_PROBATION=N   epochs a quarantined source sits out
//                         (default 2)
//   GEOLOC_FUSION_SLACK_KM=N    geometric + active-verification slack, km
//                         (fusion/engine.h; default 100)
//   GEOLOC_FUSION_VERIFY_K=N    nearest VPs pinged per claim (default 4)
//   GEOLOC_FUSION_MIN_CONCLUSIVE=N  answered verification pings needed
//                         for an accept (default 2)
#pragma once

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/log.h"

namespace geoloc::util::env {

/// True when the variable is set and its first character is '1'
/// (the GEOLOC_SMALL convention).
inline bool flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] == '1';
}

/// Positive integer value of the variable; `fallback` when unset, empty,
/// non-numeric, non-positive, out of int range, or followed by trailing
/// junk ("8x" is rejected, not read as 8 the way atoi would).
inline int int_or(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const char* end = v + std::strlen(v);
    int parsed = 0;
    const auto [ptr, ec] = std::from_chars(v, end, parsed);
    if (ec == std::errc() && ptr == end && parsed > 0) return parsed;
  }
  return fallback;
}

/// String value of the variable; `fallback` when unset. An explicitly empty
/// value is returned as empty (it means "disabled" for the cache dir).
inline std::string string_or(const char* name, std::string fallback) {
  if (const char* v = std::getenv(name)) return v;
  return fallback;
}

/// Hard ceiling on the worker count: oversubscribing by more than 4x the
/// hardware concurrency only adds scheduler thrash, and a stray
/// GEOLOC_THREADS=100000 must not try to spawn 100k threads.
inline unsigned max_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min((hw > 0 ? hw : 1) * 4u, 256u);
}

/// Worker-thread count for the parallel engine: GEOLOC_THREADS when set to
/// a positive integer, otherwise the hardware concurrency (at least 1);
/// clamped to max_threads() with a one-line warning.
inline unsigned threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int v = int_or("GEOLOC_THREADS", hw > 0 ? static_cast<int>(hw) : 1);
  const auto want = static_cast<unsigned>(v > 0 ? v : 1);
  const unsigned cap = max_threads();
  if (want > cap) {
    obs::warn_once("GEOLOC_THREADS-cap",
                   "GEOLOC_THREADS=" + std::to_string(want) +
                       " exceeds the worker ceiling; clamped to " +
                       std::to_string(cap));
    return cap;
  }
  return want;
}

}  // namespace geoloc::util::env
