// One place for the environment knobs scattered across the bench mains and
// the library (GEOLOC_SMALL, GEOLOC_TRIALS, GEOLOC_CACHE_DIR,
// GEOLOC_THREADS, GEOLOC_EXPORT_DIR, GEOLOC_BENCH_JSON). Each helper parses
// one shape of value; the knob registry below is the documentation.
//
//   GEOLOC_SMALL=1        miniature scenario instead of paper scale
//   GEOLOC_TRIALS=N       trial count for the randomized sweeps
//   GEOLOC_CACHE_DIR=dir  where RTT-matrix / campaign caches live
//   GEOLOC_THREADS=N      worker threads for the parallel engine
//                         (default: hardware concurrency; 1 = serial)
//   GEOLOC_EXPORT_DIR=dir CSV export target for figure series
//   GEOLOC_BENCH_JSON=f   machine-readable bench records (JSON lines)
#pragma once

#include <cstdlib>
#include <string>
#include <thread>

namespace geoloc::util::env {

/// True when the variable is set and its first character is '1'
/// (the GEOLOC_SMALL convention).
inline bool flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] == '1';
}

/// Positive integer value of the variable; `fallback` when unset, empty,
/// non-numeric or non-positive.
inline int int_or(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// String value of the variable; `fallback` when unset. An explicitly empty
/// value is returned as empty (it means "disabled" for the cache dir).
inline std::string string_or(const char* name, std::string fallback) {
  if (const char* v = std::getenv(name)) return v;
  return fallback;
}

/// Worker-thread count for the parallel engine: GEOLOC_THREADS when set to
/// a positive integer, otherwise the hardware concurrency (at least 1).
inline unsigned threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int v = int_or("GEOLOC_THREADS", hw > 0 ? static_cast<int>(hw) : 1);
  return static_cast<unsigned>(v > 0 ? v : 1);
}

}  // namespace geoloc::util::env
