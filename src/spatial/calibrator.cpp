#include "spatial/calibrator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/durable.h"

namespace geoloc::spatial {

namespace {
/// Minimum pairs before a fit is trusted over the fallback.
constexpr std::uint64_t kMinSamples = 3;
}  // namespace

Calibrator::Calibrator(int cell_level)
    : level_(std::clamp(cell_level, 0, kMaxLevel)) {}

void Calibrator::add_sample(const geo::GeoPoint& where, double delay_ms,
                            double distance_km) {
  static obs::Counter& samples =
      obs::Registry::instance().counter("spatial.calibrator.samples");
  samples.add();

  const std::uint64_t key = CellId::from_point(where, level_).token_lo();
  for (Acc* acc : {&cells_[key], &global_}) {
    ++acc->n;
    acc->sx += delay_ms;
    acc->sy += distance_km;
    acc->sxx += delay_ms * delay_ms;
    acc->sxy += delay_ms * distance_km;
  }
}

std::optional<double> Calibrator::slope_of(const Acc& acc) {
  if (acc.n < kMinSamples || acc.sxx <= 0.0) return std::nullopt;
  const double slope = acc.sxy / acc.sxx;
  if (slope <= 0.0) return std::nullopt;
  return std::min(slope, geo::kSoiTwoThirdsKmPerMs);
}

Calibrator::Fit Calibrator::fit_at(const geo::GeoPoint& p) const {
  const std::uint64_t key = CellId::from_point(p, level_).token_lo();
  if (const auto it = cells_.find(key); it != cells_.end()) {
    if (const auto slope = slope_of(it->second)) {
      return Fit{*slope, it->second.n, true};
    }
  }
  if (const auto slope = slope_of(global_)) {
    return Fit{*slope, global_.n, true};
  }
  return Fit{};
}

bool Calibrator::save(const std::string& path, std::string* error) const {
  util::durable::PayloadWriter w;
  w.pod(static_cast<std::int32_t>(level_));
  w.pod(static_cast<std::uint64_t>(cells_.size()));
  const auto put = [&w](const Acc& acc) {
    w.pod(acc.n);
    w.pod(acc.sx);
    w.pod(acc.sy);
    w.pod(acc.sxx);
    w.pod(acc.sxy);
  };
  put(global_);
  for (const auto& [key, acc] : cells_) {  // std::map: key order, stable
    w.pod(key);
    put(acc);
  }
  return util::durable::write_framed(path, kCalibratorMagic,
                                     kCalibratorVersion, w.data(), error);
}

std::optional<Calibrator> Calibrator::load(const std::string& path) {
  const util::durable::FramedRead fr =
      util::durable::read_framed(path, kCalibratorMagic);
  if (!fr.ok() || fr.version != kCalibratorVersion) return std::nullopt;

  util::durable::PayloadReader r(fr.payload);
  std::int32_t level = 0;
  std::uint64_t n_cells = 0;
  if (!r.pod(level) || !r.pod(n_cells)) return std::nullopt;
  if (level < 0 || level > kMaxLevel ||
      n_cells > fr.payload.size() / sizeof(Acc)) {
    return std::nullopt;
  }

  const auto get = [&r](Acc& acc) {
    return r.pod(acc.n) && r.pod(acc.sx) && r.pod(acc.sy) && r.pod(acc.sxx) &&
           r.pod(acc.sxy);
  };
  Calibrator c(level);
  if (!get(c.global_)) return std::nullopt;
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < n_cells; ++i) {
    std::uint64_t key = 0;
    Acc acc;
    if (!r.pod(key) || !get(acc)) return std::nullopt;
    if (i > 0 && key <= prev_key) return std::nullopt;  // must be ascending
    prev_key = key;
    c.cells_.emplace_hint(c.cells_.end(), key, acc);
  }
  if (!r.exhausted()) return std::nullopt;
  return c;
}

}  // namespace geoloc::spatial
