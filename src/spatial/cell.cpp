#include "spatial/cell.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace geoloc::spatial {

CellId CellId::from_point(const geo::GeoPoint& p, int level) {
  level = std::clamp(level, 0, kMaxLevel);
  const double lon = geo::normalize_lon(p.lon_deg);
  const int face = lon < 0.0 ? 0 : 1;
  const double cells = static_cast<double>(1u << level);
  // Fractions of the face square in [0, 1]; the upper edge (latitude 90,
  // or a longitude landing exactly on the face's eastern boundary after
  // rounding) clamps into the last row/column.
  const double u = (p.lat_deg + 90.0) / 180.0;
  const double v = (lon - (face == 0 ? -180.0 : 0.0)) / 180.0;
  const auto clamp_cell = [cells](double f) {
    const double scaled = std::floor(f * cells);
    return static_cast<std::uint32_t>(
        std::clamp(scaled, 0.0, cells - 1.0));
  };
  return CellId{level, face, clamp_cell(u), clamp_cell(v)};
}

std::uint64_t CellId::leaf_token(const geo::GeoPoint& p) {
  return from_point(p, kMaxLevel).token_lo();
}

std::uint64_t CellId::token_lo() const noexcept {
  const int shift = 2 * (kMaxLevel - level_);
  return (static_cast<std::uint64_t>(face_) << (2 * kMaxLevel)) |
         (detail::morton(i_, j_) << shift);
}

std::uint64_t CellId::token_hi() const noexcept {
  const int shift = 2 * (kMaxLevel - level_);
  return token_lo() + (1ULL << shift);
}

std::string CellId::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "L%d/f%d/%u,%u", level(), face(), i_, j_);
  return buf;
}

}  // namespace geoloc::spatial
