#include "spatial/zip_grid.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace geoloc::spatial {

namespace {

/// Parse one zone-key field: an optionally-negative decimal integer of at
/// least `min_chars` characters, ending exactly at `end`. Returns false on
/// short fields, non-digits, trailing garbage, or overflow.
bool parse_field(const char* first, const char* end, int min_chars,
                 int& out) {
  if (end - first < min_chars) return false;
  const auto [ptr, ec] = std::from_chars(first, end, out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

ZipGrid::Key ZipGrid::key_of(const geo::GeoPoint& p) const {
  return Key{
      static_cast<int>(std::floor((p.lat_deg + 90.0) / cell_deg_)),
      static_cast<int>(std::floor((p.lon_deg + 180.0) / cell_deg_))};
}

std::string ZipGrid::format(const Key& key) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "Z%05dx%05d", key.lat_cell, key.lon_cell);
  return buf;
}

std::optional<ZipGrid::Key> ZipGrid::parse(std::string_view zip) {
  if (zip.size() < 12 || zip.front() != 'Z') return std::nullopt;
  const std::size_t x = zip.find('x', 1);
  if (x == std::string_view::npos) return std::nullopt;
  Key key;
  if (!parse_field(zip.data() + 1, zip.data() + x, 5, key.lat_cell) ||
      !parse_field(zip.data() + x + 1, zip.data() + zip.size(), 5,
                   key.lon_cell)) {
    return std::nullopt;
  }
  return key;
}

bool ZipGrid::in_bounds(const Key& key) const {
  const int max_lat = static_cast<int>(std::ceil(180.0 / cell_deg_));
  const int max_lon = static_cast<int>(std::ceil(360.0 / cell_deg_));
  return key.lat_cell >= 0 && key.lat_cell <= max_lat && key.lon_cell >= 0 &&
         key.lon_cell <= max_lon;
}

geo::GeoPoint ZipGrid::representative(const Key& key) const {
  // Zone centre; boundary zones (only reachable by points exactly on
  // latitude 90 / longitude 180) clamp a quarter-cell inside the world so
  // they never wrap or collapse onto another zone's leaf cell.
  const double lat = std::min(-90.0 + (key.lat_cell + 0.5) * cell_deg_,
                              90.0 - cell_deg_ / 4.0);
  double lon = -180.0 + (key.lon_cell + 0.5) * cell_deg_;
  if (lon >= 180.0) lon = 180.0 - cell_deg_ / 4.0;
  return geo::GeoPoint{lat, lon};
}

std::uint64_t ZipGrid::token(const Key& key) const {
  return CellId::leaf_token(representative(key));
}

std::optional<std::uint64_t> ZipGrid::token_of_zip(
    std::string_view zip) const {
  const auto key = parse(zip);
  if (!key || !in_bounds(*key)) return std::nullopt;
  return token(*key);
}

std::vector<std::string> ZipGrid::neighbor_zones(const std::string& zip) const {
  const auto key = parse(zip);
  if (!key) return {zip};
  std::vector<std::string> zones;
  zones.reserve(9);
  for (int dlat = -1; dlat <= 1; ++dlat) {
    for (int dlon = -1; dlon <= 1; ++dlon) {
      zones.push_back(
          format(Key{key->lat_cell + dlat, key->lon_cell + dlon}));
    }
  }
  return zones;
}

}  // namespace geoloc::spatial
