// Immutable cells → intervals → sorted-arrays payload index (DESIGN.md
// §13).
//
// Every payload is keyed by the level-20 leaf token of its location
// (CellId::leaf_token). The index is three flat arrays in CSR layout:
// sorted unique tokens, per-token offsets, and payload IDs. A hierarchy
// cell at any level owns a contiguous token interval [token_lo, token_hi),
// so querying a covering is one binary search per cell plus a linear walk
// over the hits — no per-query allocation beyond the result.
//
// Builds are deterministic at any GEOLOC_THREADS: tokens are computed with
// util::parallel_map (committed by index), then (token, payload) pairs are
// sorted — same bytes for 1 or 64 workers. Within a token bucket payloads
// appear in ascending order, which the call sites rely on for identical
// iteration order with the legacy linear scans.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geo/disk.h"
#include "spatial/cell.h"
#include "spatial/covering.h"

namespace geoloc::spatial {

/// Artifact magic of a serialized IntervalIndex: "SPIDX001".
inline constexpr std::uint64_t kIntervalIndexMagic = 0x3130305844495053ULL;
inline constexpr std::uint32_t kIntervalIndexVersion = 1;

class IntervalIndex {
 public:
  struct Item {
    geo::GeoPoint point;
    std::uint32_t payload = 0;
  };

  IntervalIndex() = default;

  /// Build from located payloads. Tokens are computed in parallel; the
  /// result is byte-identical for any worker count.
  static IntervalIndex build(std::span<const Item> items);

  /// Build with payload i = i.
  static IntervalIndex build(std::span<const geo::GeoPoint> points);

  [[nodiscard]] std::size_t size() const noexcept { return payloads().size(); }
  [[nodiscard]] bool empty() const noexcept { return payloads().empty(); }
  [[nodiscard]] std::size_t token_count() const noexcept {
    return tokens().size();
  }

  /// Payloads whose leaf token equals `token`, ascending. Empty span when
  /// the token is absent.
  [[nodiscard]] std::span<const std::uint32_t> at_token(
      std::uint64_t token) const noexcept;

  /// Append every payload whose token falls in a cell of `cells` to `out`.
  /// Cells must be disjoint (as cover_disk/cover_rect produce), so no
  /// payload is appended twice; results come out in token order.
  void collect(std::span<const CellId> cells,
               std::vector<std::uint32_t>& out) const;

  /// Candidate payloads for a disk / rect query: every payload inside the
  /// region is present (guaranteed superset); the caller applies the exact
  /// predicate. Token order.
  [[nodiscard]] std::vector<std::uint32_t> candidates_in_disk(
      const geo::Disk& disk, const CoveringOptions& options = {}) const;
  [[nodiscard]] std::vector<std::uint32_t> candidates_in_rect(
      const LatLonRect& rect, const CoveringOptions& options = {}) const;

  // -- durable serialization ------------------------------------------------
  /// Serialize through the util::durable framed format (magic "SPIDX001").
  bool save(const std::string& path, std::string* error = nullptr) const;
  /// Load a saved index. nullopt on cache miss, corruption (the file is
  /// quarantined), or a malformed payload. Zero-copy: the three CSR arrays
  /// alias a read-only mmap of the file (checksum-validated first; buffered
  /// fallback when mmap fails), so loading a multi-GB index costs page
  /// faults, not an up-front copy. The mapping lives as long as any copy of
  /// the returned index.
  static std::optional<IntervalIndex> load(const std::string& path);

  /// True when this index aliases a loaded file instead of owning vectors.
  [[nodiscard]] bool zero_copy() const noexcept {
    return keepalive_ != nullptr;
  }
  /// True when the aliased storage is an actual mmap (false for the
  /// buffered-reader fallback, which still avoids the vector copies).
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }

  /// Logical equality over the CSR arrays, regardless of whether either
  /// side owns or aliases its storage.
  friend bool operator==(const IntervalIndex& a, const IntervalIndex& b);

 private:
  // The CSR arrays live either in the owned vectors (build path) or behind
  // the view spans pinned by `keepalive_` (zero-copy load path). All reads
  // go through these accessors. Default copy/move are safe in both modes:
  // copying an owning index copies the vectors (the stale view spans are
  // never consulted while keepalive_ is null), and copying a view index
  // shares the mapping through the shared_ptr.
  [[nodiscard]] std::span<const std::uint64_t> tokens() const noexcept {
    return keepalive_ ? tokens_view_ : std::span<const std::uint64_t>(tokens_);
  }
  [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept {
    return keepalive_ ? offsets_view_
                      : std::span<const std::uint32_t>(offsets_);
  }
  [[nodiscard]] std::span<const std::uint32_t> payloads() const noexcept {
    return keepalive_ ? payloads_view_
                      : std::span<const std::uint32_t>(payloads_);
  }

  std::vector<std::uint64_t> tokens_;   ///< sorted unique leaf tokens
  /// tokens_.size() + 1 bucket bounds; the [0] sentinel is always present
  /// so an empty index round-trips through save/load.
  std::vector<std::uint32_t> offsets_{0};
  std::vector<std::uint32_t> payloads_; ///< bucket-grouped payload IDs

  /// Zero-copy mode: pins the validated file bytes (mmap or fallback
  /// buffer); the spans below alias it and are authoritative while set.
  std::shared_ptr<const void> keepalive_;
  std::span<const std::uint64_t> tokens_view_;
  std::span<const std::uint32_t> offsets_view_;
  std::span<const std::uint32_t> payloads_view_;
  bool mapped_ = false;
};

}  // namespace geoloc::spatial
