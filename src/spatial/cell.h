// Hierarchical cell decomposition of the sphere for the spatial index
// subsystem (DESIGN.md §13).
//
// The world splits into two level-0 "faces" — the western hemisphere
// (longitude [-180, 0)) and the eastern ([0, 180)) — each a 180° x 180°
// square in lat/lon space. Every cell subdivides into four children
// (quadtree), so a level-L cell spans 180/2^L degrees of both latitude and
// longitude. Level 20 leaves span ~0.00017°, about 19 m of latitude: fine
// enough that the street-level tiers' postal zones (~0.045°) and POI
// coordinates never collide.
//
// Cells at any level map onto *leaf-token intervals*: the Morton
// (Z-order) interleave of a cell's (row, column) bits, extended to leaf
// depth, names the contiguous range of level-20 leaves the cell contains.
// Payloads indexed by their leaf token can therefore be queried for any
// covering cell with one binary search per cell — the cells → intervals →
// sorted arrays design of spatial::IntervalIndex.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "geo/geopoint.h"

namespace geoloc::spatial {

/// Deepest subdivision level. 2 * 20 Morton bits + 1 face bit = 41-bit
/// leaf tokens.
inline constexpr int kMaxLevel = 20;

/// Kilometres per degree of latitude (and of longitude at the equator) on
/// the spherical model — pi * R / 180.
inline constexpr double kKmPerDegree = 111.19492664455873;

/// A cell of the hierarchy: (level, face, row i from the south pole,
/// column j from the face's western edge). Invalid cells compare equal to
/// CellId{} and fail valid().
class CellId {
 public:
  constexpr CellId() = default;
  constexpr CellId(int level, int face, std::uint32_t i, std::uint32_t j)
      : level_(static_cast<std::uint8_t>(level)),
        face_(static_cast<std::uint8_t>(face)),
        i_(i),
        j_(j) {}

  /// The level-`level` cell containing `p`. Latitude 90 and the row/column
  /// grid edges clamp into the last cell, so every valid GeoPoint has a
  /// cell at every level.
  static CellId from_point(const geo::GeoPoint& p, int level);

  /// The leaf (level-20) token of the cell containing `p` — the key type
  /// of IntervalIndex.
  static std::uint64_t leaf_token(const geo::GeoPoint& p);

  [[nodiscard]] constexpr int level() const noexcept { return level_; }
  [[nodiscard]] constexpr int face() const noexcept { return face_; }
  [[nodiscard]] constexpr std::uint32_t i() const noexcept { return i_; }
  [[nodiscard]] constexpr std::uint32_t j() const noexcept { return j_; }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return level_ <= kMaxLevel && face_ <= 1 && i_ < (1u << level_) &&
           j_ < (1u << level_);
  }

  /// Cell edge length in degrees (180 / 2^level).
  [[nodiscard]] constexpr double size_deg() const noexcept {
    return 180.0 / static_cast<double>(1u << level_);
  }

  // -- lat/lon bounds ------------------------------------------------------
  [[nodiscard]] constexpr double lat_lo() const noexcept {
    return -90.0 + i_ * size_deg();
  }
  [[nodiscard]] constexpr double lat_hi() const noexcept {
    return lat_lo() + size_deg();
  }
  [[nodiscard]] constexpr double lon_lo() const noexcept {
    return (face_ == 0 ? -180.0 : 0.0) + j_ * size_deg();
  }
  [[nodiscard]] constexpr double lon_hi() const noexcept {
    return lon_lo() + size_deg();
  }
  [[nodiscard]] geo::GeoPoint center() const noexcept {
    return geo::GeoPoint{(lat_lo() + lat_hi()) / 2.0,
                         geo::normalize_lon((lon_lo() + lon_hi()) / 2.0)};
  }

  // -- hierarchy arithmetic ------------------------------------------------
  [[nodiscard]] constexpr CellId parent() const noexcept {
    return CellId{level_ - 1, face_, i_ >> 1, j_ >> 1};
  }
  /// Child `k` in [0, 4), ordered so ascending k is ascending token range.
  [[nodiscard]] constexpr CellId child(int k) const noexcept {
    return CellId{level_ + 1, face_, (i_ << 1) | (static_cast<std::uint32_t>(k) >> 1),
                  (j_ << 1) | (static_cast<std::uint32_t>(k) & 1)};
  }
  /// True when `other` is this cell or one of its descendants.
  [[nodiscard]] constexpr bool contains(const CellId& other) const noexcept {
    if (other.face_ != face_ || other.level_ < level_) return false;
    const int shift = other.level_ - level_;
    return (other.i_ >> shift) == i_ && (other.j_ >> shift) == j_;
  }
  [[nodiscard]] bool contains(const geo::GeoPoint& p) const {
    return from_point(p, level_) == *this;
  }

  // -- leaf-token interval -------------------------------------------------
  /// First leaf token of this cell's descendants (inclusive).
  [[nodiscard]] std::uint64_t token_lo() const noexcept;
  /// One past the last leaf token of this cell's descendants (exclusive).
  [[nodiscard]] std::uint64_t token_hi() const noexcept;

  /// "L<level>/f<face>/<i>,<j>" — debug output.
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const CellId&, const CellId&) = default;

 private:
  std::uint8_t level_ = 0xFF;  ///< 0xFF marks the invalid default cell
  std::uint8_t face_ = 0xFF;
  std::uint32_t i_ = 0;
  std::uint32_t j_ = 0;
};

namespace detail {
/// Spread the low 20 bits of `v` into the even bit positions of a 40-bit
/// word (standard Morton dilation).
constexpr std::uint64_t dilate20(std::uint64_t v) noexcept {
  v &= 0xFFFFFULL;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

/// Morton (Z-order) interleave of a row/column pair at `level` bits,
/// extended to leaf depth: rows occupy odd bits, columns even bits, and
/// the result is shifted so a cell's interleave prefixes all of its
/// descendants'.
constexpr std::uint64_t morton(std::uint32_t i, std::uint32_t j) noexcept {
  return (dilate20(i) << 1) | dilate20(j);
}
}  // namespace detail

}  // namespace geoloc::spatial
