// Cell coverings: bounded sets of hierarchy cells that are guaranteed
// supersets of a query region (a spherical disk or a lat/lon rectangle).
//
// Queries against spatial::IntervalIndex run in two stages — cover the
// region with at most `max_cells` cells, then binary-search each cell's
// leaf-token interval — so the covering only has to be a *superset*; the
// caller applies the exact predicate (great-circle distance, integer grid
// membership) to the candidates. Both coverings are deterministic: the
// same query and options always produce the same cell set, sorted by
// token.
//
// Disk coverings use rigorous triangle-inequality bounds (distance to the
// cell centre ± a circumradius upper bound), so a cell is only excluded
// when no point of it can lie inside the disk. Rectangle coverings
// intersect exactly in degree space, including ranges that wrap the
// anti-meridian.
#pragma once

#include <vector>

#include "geo/disk.h"
#include "spatial/cell.h"

namespace geoloc::spatial {

struct CoveringOptions {
  /// Cell budget. 0 means "use the GEOLOC_SPATIAL_MAX_CELLS environment
  /// knob" (default 64, clamped into [4, 4096]).
  int max_cells = 0;
  /// Deepest level the covering may subdivide to. Deeper levels fit the
  /// region tighter at the cost of more cells from the budget.
  int max_level = 16;
};

/// The covering budget the environment configures: GEOLOC_SPATIAL_MAX_CELLS
/// clamped into [4, 4096], 64 when unset or malformed. Read once per
/// process by the covering functions (cached); this helper re-reads the
/// environment on every call so tests can exercise the parse.
[[nodiscard]] int covering_budget_from_env();

/// A latitude/longitude rectangle in degrees. `lon_lo > lon_hi` means the
/// range wraps the anti-meridian; `full_lon` spans every longitude.
struct LatLonRect {
  double lat_lo = 0.0;
  double lat_hi = 0.0;
  double lon_lo = 0.0;
  double lon_hi = 0.0;
  bool full_lon = false;

  /// Build from raw degree bounds: latitudes are clamped to [-90, 90],
  /// longitudes normalized (a raw span >= 360 becomes full_lon).
  static LatLonRect from_degrees(double lat_lo, double lat_hi, double lon_lo,
                                 double lon_hi);

  [[nodiscard]] bool wraps() const noexcept {
    return !full_lon && lon_lo > lon_hi;
  }
  [[nodiscard]] bool contains(const geo::GeoPoint& p) const noexcept;
};

/// Cover the disk with at most options.max_cells disjoint cells, sorted by
/// token. Every point of the disk lies in exactly one returned cell.
[[nodiscard]] std::vector<CellId> cover_disk(const geo::Disk& disk,
                                             const CoveringOptions& options = {});

/// Cover the rectangle with at most options.max_cells disjoint cells,
/// sorted by token. Every point of the rectangle lies in exactly one
/// returned cell. An empty rectangle (lat_lo > lat_hi) returns {}.
[[nodiscard]] std::vector<CellId> cover_rect(const LatLonRect& rect,
                                             const CoveringOptions& options = {});

/// The covering's conservative disk/cell predicates, exposed for callers
/// that classify *their own* cells against constraint disks (the CBG
/// region sampler routes its polar grid through these; geo/region.cpp).
///
/// cell_may_intersect_disk is false only when no point of the cell can lie
/// inside the disk (triangle inequality: distance from the disk centre to
/// the cell centre minus a circumradius upper bound exceeds the disk
/// radius) — a sound proof of infeasibility for every point of the cell.
[[nodiscard]] bool cell_may_intersect_disk(const CellId& cell,
                                           const geo::Disk& disk);
/// True when every point of the cell provably lies inside the disk, so a
/// per-point containment test against that disk is redundant.
[[nodiscard]] bool cell_contained_in_disk(const CellId& cell,
                                          const geo::Disk& disk);

}  // namespace geoloc::spatial
