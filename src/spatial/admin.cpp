#include "spatial/admin.h"

#include <algorithm>
#include <limits>
#include <map>

#include "geo/geodesy.h"
#include "obs/metrics.h"

namespace geoloc::spatial {

std::string_view to_string(AdminLevel level) noexcept {
  switch (level) {
    case AdminLevel::Country: return "country";
    case AdminLevel::Region: return "region";
    case AdminLevel::Locality: return "locality";
    case AdminLevel::Street: return "street";
  }
  return "?";
}

AdminHierarchy AdminHierarchy::build(const sim::World& world,
                                     double zip_cell_deg) {
  AdminHierarchy h;
  h.zips_ = ZipGrid{zip_cell_deg};
  const std::span<const sim::Place> places = world.places();

  // Countries first, in name order (std::map, not unordered: area IDs must
  // not depend on hash iteration).
  std::map<std::string, AdminId> country_ids;
  for (const sim::Place& pl : places) country_ids.emplace(pl.country, 0);
  for (auto& [name, id] : country_ids) {
    id = static_cast<AdminId>(h.areas_.size());
    h.areas_.push_back(AdminArea{AdminLevel::Country, name, kNoAdmin, {}, 0});
  }

  // Regions: one per real city, in place order.
  std::vector<AdminId> region_by_place(places.size(), kNoAdmin);
  for (sim::PlaceId p = 0; p < places.size(); ++p) {
    if (places[p].satellite) continue;
    const AdminId id = static_cast<AdminId>(h.areas_.size());
    region_by_place[p] = id;
    h.areas_.push_back(AdminArea{AdminLevel::Region, places[p].name,
                                 country_ids.at(places[p].country),
                                 places[p].location, p});
  }

  // Localities: every place, parented to its (parent city's) region.
  h.locality_by_place_.assign(places.size(), kNoAdmin);
  h.place_points_.resize(places.size());
  for (sim::PlaceId p = 0; p < places.size(); ++p) {
    const AdminId id = static_cast<AdminId>(h.areas_.size());
    h.locality_by_place_[p] = id;
    h.place_points_[p] = places[p].location;
    h.areas_.push_back(AdminArea{AdminLevel::Locality, places[p].name,
                                 region_by_place[places[p].parent],
                                 places[p].location, p});
  }

  h.place_index_ = IntervalIndex::build(h.place_points_);
  return h;
}

std::size_t AdminHierarchy::count(AdminLevel level) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(areas_.begin(), areas_.end(),
                    [level](const AdminArea& a) { return a.level == level; }));
}

std::vector<AdminId> AdminHierarchy::chain(AdminId id) const {
  std::vector<AdminId> out;
  for (AdminId cur = id; cur != kNoAdmin; cur = areas_.at(cur).parent) {
    out.push_back(cur);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

AdminPath AdminHierarchy::locate(const geo::GeoPoint& p) const {
  static obs::Counter& locates =
      obs::Registry::instance().counter("spatial.admin.locates");
  locates.add();

  AdminPath path;
  path.street = zips_.format(zips_.key_of(p));
  if (place_points_.empty()) return path;

  // Expanding-radius nearest-place search: most queries land within a few
  // tens of km of a place, so the first ring usually suffices; the final
  // ring degenerates to "everything" and guarantees termination.
  sim::PlaceId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (double radius_km = 50.0;; radius_km *= 4.0) {
    const bool last = radius_km > 2.5e4;  // > half the Earth's circumference
    const std::vector<std::uint32_t> cand = place_index_.candidates_in_disk(
        geo::Disk{p, last ? 2.1e4 : radius_km});
    for (const std::uint32_t place : cand) {
      const double d = geo::distance_km(place_points_[place], p);
      if (d < best_d || (d == best_d && place < best)) {
        best_d = d;
        best = place;
      }
    }
    // A hit inside the queried radius is provably the global nearest;
    // candidates outside it (covering slack) can't prove that yet.
    if (best_d <= radius_km || last) break;
  }

  path.locality = locality_by_place_[best];
  path.region = areas_[path.locality].parent;
  path.country = path.region != kNoAdmin ? areas_[path.region].parent : kNoAdmin;
  return path;
}

}  // namespace geoloc::spatial
