#include "spatial/covering.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "geo/geodesy.h"
#include "obs/metrics.h"
#include "util/env.h"

namespace geoloc::spatial {

namespace {

constexpr int kDefaultBudget = 64;
constexpr int kMinBudget = 4;
constexpr int kMaxBudget = 4096;

int cached_budget() {
  static const int v = covering_budget_from_env();
  return v;
}

/// Upper bound on the great-circle distance from the cell centre to any
/// point of the cell: half the latitude span plus half the longitude span
/// scaled by the widest cosine the cell reaches. Walking first along the
/// meridian and then along a parallel reaches every cell point, and a path
/// length bounds the geodesic, so this is rigorous.
double circumradius_km(const CellId& cell) {
  const double half_span = cell.size_deg() / 2.0;
  const double lat_lo = cell.lat_lo();
  const double lat_hi = cell.lat_hi();
  const double max_cos =
      (lat_lo <= 0.0 && lat_hi >= 0.0)
          ? 1.0
          : std::cos(geo::deg_to_rad(std::min(std::abs(lat_lo),
                                              std::abs(lat_hi))));
  return half_span * kKmPerDegree * (1.0 + max_cos);
}

struct DiskQuery {
  const geo::Disk* disk;

  /// False only when no point of the cell can lie inside the disk.
  [[nodiscard]] bool may_intersect(const CellId& cell) const {
    const double d = geo::distance_km(disk->center, cell.center());
    return d - circumradius_km(cell) <= disk->radius_km;
  }
  /// True when every point of the cell provably lies inside the disk.
  [[nodiscard]] bool contained(const CellId& cell) const {
    const double d = geo::distance_km(disk->center, cell.center());
    return d + circumradius_km(cell) <= disk->radius_km;
  }
};

struct RectQuery {
  const LatLonRect* rect;

  [[nodiscard]] static bool lon_ranges_overlap(double a_lo, double a_hi,
                                               double b_lo, double b_hi) {
    return a_lo <= b_hi && a_hi >= b_lo;
  }

  [[nodiscard]] bool may_intersect(const CellId& cell) const {
    if (cell.lat_lo() > rect->lat_hi || cell.lat_hi() < rect->lat_lo) {
      return false;
    }
    if (rect->full_lon) return true;
    if (!rect->wraps()) {
      return lon_ranges_overlap(cell.lon_lo(), cell.lon_hi(), rect->lon_lo,
                                rect->lon_hi);
    }
    return lon_ranges_overlap(cell.lon_lo(), cell.lon_hi(), rect->lon_lo,
                              180.0) ||
           lon_ranges_overlap(cell.lon_lo(), cell.lon_hi(), -180.0,
                              rect->lon_hi);
  }
  [[nodiscard]] bool contained(const CellId& cell) const {
    if (cell.lat_lo() < rect->lat_lo || cell.lat_hi() > rect->lat_hi) {
      return false;
    }
    if (rect->full_lon) return true;
    if (!rect->wraps()) {
      return cell.lon_lo() >= rect->lon_lo && cell.lon_hi() <= rect->lon_hi;
    }
    return cell.lon_lo() >= rect->lon_lo || cell.lon_hi() <= rect->lon_hi;
  }
};

/// Breadth-first refinement: subdivide intersecting-but-not-contained
/// cells while the budget allows, emit the rest. Deterministic: the queue
/// is processed FIFO and children are enqueued in token order.
template <typename Query>
std::vector<CellId> cover(const Query& q, const CoveringOptions& options) {
  const int budget =
      options.max_cells > 0
          ? std::clamp(options.max_cells, kMinBudget, kMaxBudget)
          : cached_budget();
  const int max_level = std::clamp(options.max_level, 0, kMaxLevel);

  std::vector<CellId> result;
  std::deque<CellId> queue;
  for (int face = 0; face < 2; ++face) {
    const CellId root{0, face, 0, 0};
    if (q.may_intersect(root)) queue.push_back(root);
  }
  while (!queue.empty()) {
    const CellId cell = queue.front();
    queue.pop_front();
    const bool can_subdivide =
        cell.level() < max_level && !q.contained(cell) &&
        static_cast<int>(result.size() + queue.size()) + 4 <= budget;
    if (!can_subdivide) {
      result.push_back(cell);
      continue;
    }
    for (int k = 0; k < 4; ++k) {
      const CellId child = cell.child(k);
      if (q.may_intersect(child)) queue.push_back(child);
    }
  }
  std::sort(result.begin(), result.end(),
            [](const CellId& a, const CellId& b) {
              return a.token_lo() < b.token_lo();
            });

  static constexpr double kCellBounds[] = {1, 2, 4, 8, 16, 32, 64, 128,
                                           256, 512, 1024, 2048, 4096};
  static obs::Histogram& cells_hist =
      obs::Registry::instance().histogram("spatial.cover.cells", kCellBounds);
  cells_hist.observe(static_cast<double>(result.size()));
  return result;
}

}  // namespace

int covering_budget_from_env() {
  return std::clamp(util::env::int_or("GEOLOC_SPATIAL_MAX_CELLS",
                                      kDefaultBudget),
                    kMinBudget, kMaxBudget);
}

LatLonRect LatLonRect::from_degrees(double lat_lo, double lat_hi,
                                    double lon_lo, double lon_hi) {
  LatLonRect r;
  r.lat_lo = std::max(lat_lo, -90.0);
  r.lat_hi = std::min(lat_hi, 90.0);
  if (lon_hi - lon_lo >= 360.0) {
    r.full_lon = true;
    r.lon_lo = -180.0;
    r.lon_hi = 180.0;
  } else {
    r.lon_lo = geo::normalize_lon(lon_lo);
    // Keep a span ending exactly at the anti-meridian closed at 180
    // instead of wrapping to -180 (normalize_lon maps 180 -> -180).
    r.lon_hi = lon_hi == 180.0 ? 180.0 : geo::normalize_lon(lon_hi);
  }
  return r;
}

bool LatLonRect::contains(const geo::GeoPoint& p) const noexcept {
  if (p.lat_deg < lat_lo || p.lat_deg > lat_hi) return false;
  if (full_lon) return true;
  if (!wraps()) return p.lon_deg >= lon_lo && p.lon_deg <= lon_hi;
  return p.lon_deg >= lon_lo || p.lon_deg <= lon_hi;
}

std::vector<CellId> cover_disk(const geo::Disk& disk,
                               const CoveringOptions& options) {
  static obs::Counter& calls =
      obs::Registry::instance().counter("spatial.cover.disk");
  calls.add();
  return cover(DiskQuery{&disk}, options);
}

bool cell_may_intersect_disk(const CellId& cell, const geo::Disk& disk) {
  return DiskQuery{&disk}.may_intersect(cell);
}

bool cell_contained_in_disk(const CellId& cell, const geo::Disk& disk) {
  return DiskQuery{&disk}.contained(cell);
}

std::vector<CellId> cover_rect(const LatLonRect& rect,
                               const CoveringOptions& options) {
  static obs::Counter& calls =
      obs::Registry::instance().counter("spatial.cover.rect");
  calls.add();
  if (rect.lat_lo > rect.lat_hi) return {};
  return cover(RectQuery{&rect}, options);
}

}  // namespace geoloc::spatial
