// The postal-zone grid behind MappingService: "Z%05dx%05d" zone keys over
// a fixed-degree lat/lon lattice, plus the bridge from zone keys to
// spatial leaf tokens so zip → website lookups can run against an
// IntervalIndex.
//
// Key geometry (unchanged from the original MappingService formulas, which
// every recorded_zip in existing artifacts depends on):
//   lat_cell = floor((lat + 90) / cell_deg)
//   lon_cell = floor((lon + 180) / cell_deg)
//
// Parsing is strict: a key is 'Z', a lat field, 'x', a lon field — each
// field an optionally-negative decimal integer, at least 5 characters
// (zero-padded, matching the formatter), fully consumed. Trailing garbage
// ("Z00001x00002junk") and short fields ("Z1x2") are rejected; the
// sscanf-based parser this replaces accepted both.
//
// token(key) maps an in-bounds zone to the leaf token of a point inside
// the zone, clamped so boundary zones (latitude 90, longitude 180) keep
// distinct tokens instead of wrapping onto zone 0. Distinct in-bounds
// zones map to distinct tokens for any cell_deg >= ~0.001 degrees (leaf
// cells are ~0.00017 degrees).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geopoint.h"
#include "spatial/cell.h"

namespace geoloc::spatial {

class ZipGrid {
 public:
  explicit ZipGrid(double cell_deg) : cell_deg_(cell_deg) {}

  struct Key {
    int lat_cell = 0;
    int lon_cell = 0;
    friend constexpr bool operator==(const Key&, const Key&) = default;
  };

  /// Zone containing `p` (the zone_of floor arithmetic, verbatim).
  [[nodiscard]] Key key_of(const geo::GeoPoint& p) const;

  /// "Z%05dx%05d". Values wider than 5 digits keep all their digits.
  [[nodiscard]] std::string format(const Key& key) const;

  /// Strict inverse of format (see header comment). nullopt on any
  /// malformed input.
  [[nodiscard]] static std::optional<Key> parse(std::string_view zip);

  /// True when the key can be produced by key_of for a real coordinate:
  /// lat_cell in [0, ceil(180/cell_deg)], lon_cell in [0, ceil(360/cell_deg)].
  [[nodiscard]] bool in_bounds(const Key& key) const;

  /// A representative point inside the zone: the zone centre, clamped just
  /// inside the world for boundary zones so token() stays injective.
  [[nodiscard]] geo::GeoPoint representative(const Key& key) const;

  /// Leaf token of the zone — the IntervalIndex key for zip-bucketed
  /// payloads. Injective over in-bounds keys.
  [[nodiscard]] std::uint64_t token(const Key& key) const;

  /// parse + in_bounds + token in one step; nullopt for malformed or
  /// out-of-world keys (which can hold no websites).
  [[nodiscard]] std::optional<std::uint64_t> token_of_zip(
      std::string_view zip) const;

  /// The zone and its 8 neighbours in the legacy (dlat, dlon) scan order;
  /// {zip} for a malformed key — the MappingService::neighbor_zones
  /// contract.
  [[nodiscard]] std::vector<std::string> neighbor_zones(
      const std::string& zip) const;

  [[nodiscard]] double cell_deg() const noexcept { return cell_deg_; }

 private:
  double cell_deg_;
};

}  // namespace geoloc::spatial
