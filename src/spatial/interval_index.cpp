#include "spatial/interval_index.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/durable.h"
#include "util/parallel.h"

namespace geoloc::spatial {

namespace {

obs::Counter& query_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("spatial.index.queries");
  return c;
}

obs::Histogram& candidates_hist() {
  static constexpr double kBounds[] = {0,  1,   2,   4,    8,    16,   32,
                                       64, 128, 256, 1024, 4096, 16384};
  static obs::Histogram& h = obs::Registry::instance().histogram(
      "spatial.index.candidates", kBounds);
  return h;
}

}  // namespace

IntervalIndex IntervalIndex::build(std::span<const Item> items) {
  IntervalIndex idx;
  const std::size_t n = items.size();
  // Token computation is the expensive half of the build; each slot is
  // owned by its index, so the map is deterministic at any worker count.
  std::vector<std::uint64_t> tokens = util::parallel_map<std::uint64_t>(
      n, [&](std::size_t i) { return CellId::leaf_token(items[i].point); });

  std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i] = {tokens[i], items[i].payload};
  }
  std::sort(pairs.begin(), pairs.end());

  idx.payloads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (idx.tokens_.empty() || idx.tokens_.back() != pairs[i].first) {
      idx.tokens_.push_back(pairs[i].first);
      idx.offsets_.push_back(static_cast<std::uint32_t>(idx.payloads_.size()));
    }
    idx.payloads_.push_back(pairs[i].second);
    idx.offsets_.back() = static_cast<std::uint32_t>(idx.payloads_.size());
  }
  static obs::Counter& builds =
      obs::Registry::instance().counter("spatial.index.builds");
  static obs::Counter& entries =
      obs::Registry::instance().counter("spatial.index.entries");
  builds.add();
  entries.add(static_cast<std::int64_t>(n));
  return idx;
}

IntervalIndex IntervalIndex::build(std::span<const geo::GeoPoint> points) {
  std::vector<Item> items(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    items[i] = {points[i], static_cast<std::uint32_t>(i)};
  }
  return build(items);
}

std::span<const std::uint32_t> IntervalIndex::at_token(
    std::uint64_t token) const noexcept {
  const std::span<const std::uint64_t> toks = tokens();
  const std::span<const std::uint32_t> offs = offsets();
  const auto it = std::lower_bound(toks.begin(), toks.end(), token);
  if (it == toks.end() || *it != token) return {};
  const std::size_t b = static_cast<std::size_t>(it - toks.begin());
  return payloads().subspan(offs[b], offs[b + 1] - offs[b]);
}

void IntervalIndex::collect(std::span<const CellId> cells,
                            std::vector<std::uint32_t>& out) const {
  const std::span<const std::uint64_t> toks = tokens();
  const std::span<const std::uint32_t> offs = offsets();
  const std::span<const std::uint32_t> pay = payloads();
  for (const CellId& cell : cells) {
    const std::uint64_t lo = cell.token_lo();
    const std::uint64_t hi = cell.token_hi();
    auto it = std::lower_bound(toks.begin(), toks.end(), lo);
    for (; it != toks.end() && *it < hi; ++it) {
      const std::size_t b = static_cast<std::size_t>(it - toks.begin());
      out.insert(out.end(), pay.begin() + offs[b], pay.begin() + offs[b + 1]);
    }
  }
}

std::vector<std::uint32_t> IntervalIndex::candidates_in_disk(
    const geo::Disk& disk, const CoveringOptions& options) const {
  query_counter().add();
  std::vector<std::uint32_t> out;
  collect(cover_disk(disk, options), out);
  candidates_hist().observe(static_cast<double>(out.size()));
  return out;
}

std::vector<std::uint32_t> IntervalIndex::candidates_in_rect(
    const LatLonRect& rect, const CoveringOptions& options) const {
  query_counter().add();
  std::vector<std::uint32_t> out;
  collect(cover_rect(rect, options), out);
  candidates_hist().observe(static_cast<double>(out.size()));
  return out;
}

bool IntervalIndex::save(const std::string& path, std::string* error) const {
  const std::span<const std::uint64_t> toks = tokens();
  const std::span<const std::uint32_t> offs = offsets();
  const std::span<const std::uint32_t> pay = payloads();
  util::durable::PayloadWriter w;
  w.pod(static_cast<std::uint64_t>(toks.size()));
  w.pod(static_cast<std::uint64_t>(pay.size()));
  w.bytes(toks.data(), toks.size() * sizeof(std::uint64_t));
  w.bytes(offs.data(), offs.size() * sizeof(std::uint32_t));
  w.bytes(pay.data(), pay.size() * sizeof(std::uint32_t));
  return util::durable::write_framed(path, kIntervalIndexMagic,
                                     kIntervalIndexVersion, w.data(), error);
}

bool operator==(const IntervalIndex& a, const IntervalIndex& b) {
  return std::ranges::equal(a.tokens(), b.tokens()) &&
         std::ranges::equal(a.offsets(), b.offsets()) &&
         std::ranges::equal(a.payloads(), b.payloads());
}

std::optional<IntervalIndex> IntervalIndex::load(const std::string& path) {
  // Checksum-validated before use (read_framed_mapped runs the full header
  // + XXH64 sequence against the mapping); only then are the CSR arrays
  // aliased in place.
  util::durable::FramedView fv =
      util::durable::read_framed_mapped(path, kIntervalIndexMagic);
  if (!fv.ok() || fv.version != kIntervalIndexVersion) return std::nullopt;

  std::uint64_t n_tokens = 0;
  std::uint64_t n_payloads = 0;
  {
    util::durable::PayloadReader r(fv.payload);
    if (!r.pod(n_tokens) || !r.pod(n_payloads)) return std::nullopt;
    // Sanity-bound the counts by the remaining bytes before using them.
    const std::size_t need = n_tokens * sizeof(std::uint64_t) +
                             (n_tokens + 1) * sizeof(std::uint32_t) +
                             n_payloads * sizeof(std::uint32_t);
    if (n_tokens > fv.payload.size() || n_payloads > fv.payload.size() ||
        need != r.remaining()) {
      return std::nullopt;
    }
  }

  // Alias the three arrays in place. The payload sits kFrameHeaderBytes
  // (40) into a page-aligned mapping (or at the front of a heap buffer in
  // the fallback), and the two u64 counts precede the u64 token array, so
  // every array lands on its natural alignment; the check below is the
  // belt-and-braces guard for an exotic allocator.
  const std::byte* base = fv.payload.data() + 2 * sizeof(std::uint64_t);
  if (reinterpret_cast<std::uintptr_t>(base) % alignof(std::uint64_t) != 0) {
    return std::nullopt;
  }
  IntervalIndex idx;
  idx.tokens_view_ = std::span<const std::uint64_t>(
      reinterpret_cast<const std::uint64_t*>(base), n_tokens);
  idx.offsets_view_ = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(base +
                                             n_tokens * sizeof(std::uint64_t)),
      n_tokens + 1);
  idx.payloads_view_ = std::span<const std::uint32_t>(
      idx.offsets_view_.data() + n_tokens + 1, n_payloads);
  idx.keepalive_ = std::move(fv.keepalive);
  idx.mapped_ = fv.mapped;
  idx.offsets_.clear();  // the view is authoritative; drop the {0} sentinel

  // Structural validation: tokens strictly ascending, offsets monotone and
  // spanning the payload array.
  const std::span<const std::uint64_t> toks = idx.tokens();
  const std::span<const std::uint32_t> offs = idx.offsets();
  if (!std::is_sorted(toks.begin(), toks.end()) ||
      std::adjacent_find(toks.begin(), toks.end()) != toks.end() ||
      !std::is_sorted(offs.begin(), offs.end()) || offs.front() != 0 ||
      offs.back() != n_payloads) {
    return std::nullopt;
  }
  return idx;
}

}  // namespace geoloc::spatial
