#include "spatial/interval_index.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/durable.h"
#include "util/parallel.h"

namespace geoloc::spatial {

namespace {

obs::Counter& query_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("spatial.index.queries");
  return c;
}

obs::Histogram& candidates_hist() {
  static constexpr double kBounds[] = {0,  1,   2,   4,    8,    16,   32,
                                       64, 128, 256, 1024, 4096, 16384};
  static obs::Histogram& h = obs::Registry::instance().histogram(
      "spatial.index.candidates", kBounds);
  return h;
}

}  // namespace

IntervalIndex IntervalIndex::build(std::span<const Item> items) {
  IntervalIndex idx;
  const std::size_t n = items.size();
  // Token computation is the expensive half of the build; each slot is
  // owned by its index, so the map is deterministic at any worker count.
  std::vector<std::uint64_t> tokens = util::parallel_map<std::uint64_t>(
      n, [&](std::size_t i) { return CellId::leaf_token(items[i].point); });

  std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i] = {tokens[i], items[i].payload};
  }
  std::sort(pairs.begin(), pairs.end());

  idx.payloads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (idx.tokens_.empty() || idx.tokens_.back() != pairs[i].first) {
      idx.tokens_.push_back(pairs[i].first);
      idx.offsets_.push_back(static_cast<std::uint32_t>(idx.payloads_.size()));
    }
    idx.payloads_.push_back(pairs[i].second);
    idx.offsets_.back() = static_cast<std::uint32_t>(idx.payloads_.size());
  }
  static obs::Counter& builds =
      obs::Registry::instance().counter("spatial.index.builds");
  static obs::Counter& entries =
      obs::Registry::instance().counter("spatial.index.entries");
  builds.add();
  entries.add(static_cast<std::int64_t>(n));
  return idx;
}

IntervalIndex IntervalIndex::build(std::span<const geo::GeoPoint> points) {
  std::vector<Item> items(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    items[i] = {points[i], static_cast<std::uint32_t>(i)};
  }
  return build(items);
}

std::span<const std::uint32_t> IntervalIndex::at_token(
    std::uint64_t token) const noexcept {
  const auto it = std::lower_bound(tokens_.begin(), tokens_.end(), token);
  if (it == tokens_.end() || *it != token) return {};
  const std::size_t b = static_cast<std::size_t>(it - tokens_.begin());
  return std::span<const std::uint32_t>(payloads_)
      .subspan(offsets_[b], offsets_[b + 1] - offsets_[b]);
}

void IntervalIndex::collect(std::span<const CellId> cells,
                            std::vector<std::uint32_t>& out) const {
  for (const CellId& cell : cells) {
    const std::uint64_t lo = cell.token_lo();
    const std::uint64_t hi = cell.token_hi();
    auto it = std::lower_bound(tokens_.begin(), tokens_.end(), lo);
    for (; it != tokens_.end() && *it < hi; ++it) {
      const std::size_t b = static_cast<std::size_t>(it - tokens_.begin());
      out.insert(out.end(), payloads_.begin() + offsets_[b],
                 payloads_.begin() + offsets_[b + 1]);
    }
  }
}

std::vector<std::uint32_t> IntervalIndex::candidates_in_disk(
    const geo::Disk& disk, const CoveringOptions& options) const {
  query_counter().add();
  std::vector<std::uint32_t> out;
  collect(cover_disk(disk, options), out);
  candidates_hist().observe(static_cast<double>(out.size()));
  return out;
}

std::vector<std::uint32_t> IntervalIndex::candidates_in_rect(
    const LatLonRect& rect, const CoveringOptions& options) const {
  query_counter().add();
  std::vector<std::uint32_t> out;
  collect(cover_rect(rect, options), out);
  candidates_hist().observe(static_cast<double>(out.size()));
  return out;
}

bool IntervalIndex::save(const std::string& path, std::string* error) const {
  util::durable::PayloadWriter w;
  w.pod(static_cast<std::uint64_t>(tokens_.size()));
  w.pod(static_cast<std::uint64_t>(payloads_.size()));
  w.bytes(tokens_.data(), tokens_.size() * sizeof(std::uint64_t));
  w.bytes(offsets_.data(), offsets_.size() * sizeof(std::uint32_t));
  w.bytes(payloads_.data(), payloads_.size() * sizeof(std::uint32_t));
  return util::durable::write_framed(path, kIntervalIndexMagic,
                                     kIntervalIndexVersion, w.data(), error);
}

std::optional<IntervalIndex> IntervalIndex::load(const std::string& path) {
  const util::durable::FramedRead fr =
      util::durable::read_framed(path, kIntervalIndexMagic);
  if (!fr.ok() || fr.version != kIntervalIndexVersion) return std::nullopt;

  util::durable::PayloadReader r(fr.payload);
  std::uint64_t n_tokens = 0;
  std::uint64_t n_payloads = 0;
  if (!r.pod(n_tokens) || !r.pod(n_payloads)) return std::nullopt;
  // Sanity-bound the counts by the remaining bytes before allocating.
  const std::size_t need = n_tokens * sizeof(std::uint64_t) +
                           (n_tokens + 1) * sizeof(std::uint32_t) +
                           n_payloads * sizeof(std::uint32_t);
  if (n_tokens > fr.payload.size() || n_payloads > fr.payload.size() ||
      need != r.remaining()) {
    return std::nullopt;
  }

  IntervalIndex idx;
  idx.tokens_.resize(n_tokens);
  idx.offsets_.resize(n_tokens + 1);
  idx.payloads_.resize(n_payloads);
  if (!r.bytes(idx.tokens_.data(), n_tokens * sizeof(std::uint64_t)) ||
      !r.bytes(idx.offsets_.data(), (n_tokens + 1) * sizeof(std::uint32_t)) ||
      !r.bytes(idx.payloads_.data(), n_payloads * sizeof(std::uint32_t)) ||
      !r.exhausted()) {
    return std::nullopt;
  }
  // Structural validation: tokens strictly ascending, offsets monotone and
  // spanning the payload array.
  if (!std::is_sorted(idx.tokens_.begin(), idx.tokens_.end()) ||
      std::adjacent_find(idx.tokens_.begin(), idx.tokens_.end()) !=
          idx.tokens_.end() ||
      !std::is_sorted(idx.offsets_.begin(), idx.offsets_.end()) ||
      idx.offsets_.front() != 0 || idx.offsets_.back() != n_payloads) {
    return std::nullopt;
  }
  return idx;
}

}  // namespace geoloc::spatial
