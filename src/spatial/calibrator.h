// Per-region delay → distance calibration keyed by hierarchy cell
// (DESIGN.md §13).
//
// The street-level tiers convert a landmark's minimum D1+D2 delay into a
// distance with one global speed (4/9 c). Real last miles differ by
// region; the Calibrator accumulates (delay_ms, distance_km) pairs into
// the level-`cell_level` cell containing each sample and fits a
// through-origin least-squares line per cell, with a global fit as the
// fallback for unseen cells. Slopes are clamped into (0, 2/3 c] — a
// calibrated speed can never exceed the physical speed of internet.
//
// Accumulators live in a std::map keyed by cell token, so serialization
// and equality are deterministic regardless of insertion order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "geo/constants.h"
#include "geo/geopoint.h"
#include "spatial/cell.h"

namespace geoloc::spatial {

/// Artifact magic of a serialized Calibrator: "SPCAL001".
inline constexpr std::uint64_t kCalibratorMagic = 0x3130304C41435053ULL;
inline constexpr std::uint32_t kCalibratorVersion = 1;

class Calibrator {
 public:
  /// `cell_level` picks the region granularity: level 4 cells span 11.25
  /// degrees (~continental subregions), level 6 spans ~2.8 degrees.
  explicit Calibrator(int cell_level = 4);

  void add_sample(const geo::GeoPoint& where, double delay_ms,
                  double distance_km);

  struct Fit {
    double km_per_ms = geo::kSoiFourNinthsKmPerMs;
    std::uint64_t samples = 0;
    bool calibrated = false;  ///< false = the uncalibrated default speed
  };

  /// Fit for the cell containing `p`: the per-cell fit when the cell has
  /// enough samples, else the global fit, else the 4/9-c default.
  [[nodiscard]] Fit fit_at(const geo::GeoPoint& p) const;

  [[nodiscard]] double km_per_ms_at(const geo::GeoPoint& p) const {
    return fit_at(p).km_per_ms;
  }
  [[nodiscard]] double estimate_distance_km(const geo::GeoPoint& p,
                                            double delay_ms) const {
    return delay_ms * km_per_ms_at(p);
  }

  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return global_.n;
  }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] int cell_level() const noexcept { return level_; }

  /// Durable framed serialization (magic "SPCAL001").
  bool save(const std::string& path, std::string* error = nullptr) const;
  static std::optional<Calibrator> load(const std::string& path);

  friend bool operator==(const Calibrator&, const Calibrator&) = default;

 private:
  struct Acc {
    std::uint64_t n = 0;
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    friend bool operator==(const Acc&, const Acc&) = default;
  };
  /// Through-origin least squares over the accumulated pairs; nullopt when
  /// under-sampled or the slope falls outside (0, 2/3 c].
  static std::optional<double> slope_of(const Acc& acc);

  int level_;
  std::map<std::uint64_t, Acc> cells_;  ///< keyed by cell token_lo
  Acc global_;
};

}  // namespace geoloc::spatial
