// Typed administrative hierarchy over the simulated world, ordered
// general → specific: country → region → locality → street.
//
//   Country  — distinct Place::country values
//   Region   — each real city (a metro region; its satellites belong to it)
//   Locality — every place, city or satellite town
//   Street   — the postal zone (ZipGrid key) of the queried coordinate
//
// locate() resolves a coordinate to its path through the hierarchy by
// assigning it to the nearest place, found with an expanding-radius query
// against the spatial IntervalIndex rather than a scan over every place.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/world.h"
#include "spatial/interval_index.h"
#include "spatial/zip_grid.h"

namespace geoloc::spatial {

enum class AdminLevel : std::uint8_t { Country, Region, Locality, Street };
std::string_view to_string(AdminLevel level) noexcept;

using AdminId = std::uint32_t;
inline constexpr AdminId kNoAdmin = ~AdminId{0};

struct AdminArea {
  AdminLevel level = AdminLevel::Country;
  std::string name;
  AdminId parent = kNoAdmin;       ///< enclosing area; kNoAdmin for countries
  geo::GeoPoint center;            ///< representative point
  sim::PlaceId place = 0;          ///< backing place (regions and localities)
};

/// A coordinate's path through the hierarchy, general → specific.
struct AdminPath {
  AdminId country = kNoAdmin;
  AdminId region = kNoAdmin;
  AdminId locality = kNoAdmin;
  std::string street;              ///< postal-zone key of the coordinate
};

class AdminHierarchy {
 public:
  /// Build from the world's places. Deterministic: area IDs depend only on
  /// the world's place order, never on hash iteration or thread count.
  static AdminHierarchy build(const sim::World& world, double zip_cell_deg);

  [[nodiscard]] std::span<const AdminArea> areas() const noexcept {
    return areas_;
  }
  [[nodiscard]] const AdminArea& area(AdminId id) const {
    return areas_.at(id);
  }
  [[nodiscard]] std::size_t count(AdminLevel level) const noexcept;

  /// Ancestors of `id` from the top down, ending with `id` itself.
  [[nodiscard]] std::vector<AdminId> chain(AdminId id) const;

  /// Locality area of a place.
  [[nodiscard]] AdminId locality_of(sim::PlaceId place) const {
    return locality_by_place_.at(place);
  }

  /// Resolve a coordinate: nearest place (expanding-radius index query,
  /// exact-distance refined; ties break to the lowest place ID) plus the
  /// postal zone of the coordinate itself.
  [[nodiscard]] AdminPath locate(const geo::GeoPoint& p) const;

 private:
  std::vector<AdminArea> areas_;
  std::vector<AdminId> locality_by_place_;  ///< indexed by PlaceId
  std::vector<geo::GeoPoint> place_points_; ///< indexed by PlaceId
  IntervalIndex place_index_;               ///< payload = PlaceId
  ZipGrid zips_{0.045};
};

}  // namespace geoloc::spatial
