#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/trace.h"
#include "util/env.h"

namespace geoloc::obs {

namespace detail {

std::uint32_t thread_stripe() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  thread_local const std::uint32_t stripe =
      counter.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace detail

// -- Histogram --------------------------------------------------------------

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  // Pad each stripe's bucket row to a cache-line multiple so two stripes
  // never share a line.
  const std::size_t buckets = bounds_.size() + 1;  // + the +Inf bucket
  stride_ = (buckets + 7) / 8 * 8;
  counts_ = std::vector<std::atomic<std::uint64_t>>(kStripes * stride_);
}

void Histogram::observe(double x) noexcept {
  std::size_t b = 0;
  while (b < bounds_.size() && x > bounds_[b]) ++b;
  const std::size_t stripe = detail::thread_stripe() % kStripes;
  counts_[stripe * stride_ + b].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sums_[stripe].v, x);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t stripe = 0; stripe < kStripes; ++stripe) {
    for (std::size_t b = 0; b < s.counts.size(); ++b) {
      s.counts[b] +=
          counts_[stripe * stride_ + b].load(std::memory_order_relaxed);
    }
    s.sum += sums_[stripe].v.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : s.counts) s.total += c;
  return s;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (SumCell& c : sums_) c.v.store(0.0, std::memory_order_relaxed);
}

std::span<const double> default_latency_buckets_ms() noexcept {
  static constexpr double kBuckets[] = {
      0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,    25.0,
      50.0, 100.0, 250.0, 500.0, 1'000.0, 2'500.0, 5'000.0, 10'000.0,
      30'000.0};
  return kBuckets;
}

// -- Registry ---------------------------------------------------------------

Registry& Registry::instance() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> upper_bounds) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_latency_buckets_ms();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

namespace {

/// Prometheus metric name: "geoloc_" + name with [^a-zA-Z0-9_] -> '_'.
std::string prom_name(const std::string& name) {
  std::string out = "geoloc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string Registry::dump_prometheus() const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    const Histogram::Snapshot s = h->snapshot();
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < s.bounds.size(); ++b) {
      cumulative += s.counts[b];
      os << p << "_bucket{le=\"" << fmt_double(s.bounds[b]) << "\"} "
         << cumulative << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << s.total << "\n";
    os << p << "_sum " << fmt_double(s.sum) << "\n";
    os << p << "_count " << s.total << "\n";
  }
  return os.str();
}

std::string Registry::dump_json_lines(std::string_view tag) const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  const std::string tag_field =
      tag.empty() ? std::string()
                  : "\"bench\":\"" + std::string(tag) + "\",";
  for (const auto& [name, c] : counters_) {
    os << "{\"type\":\"counter\"," << tag_field << "\"name\":\"" << name
       << "\",\"value\":" << c->value() << "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "{\"type\":\"gauge\"," << tag_field << "\"name\":\"" << name
       << "\",\"value\":" << g->value() << "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    os << "{\"type\":\"histogram\"," << tag_field << "\"name\":\"" << name
       << "\",\"count\":" << s.total << ",\"sum\":" << fmt_double(s.sum)
       << ",\"buckets\":[";
    for (std::size_t b = 0; b < s.bounds.size(); ++b) {
      os << "[" << fmt_double(s.bounds[b]) << "," << s.counts[b] << "],";
    }
    os << "[\"+Inf\"," << s.counts.back() << "]]}\n";
  }
  return os.str();
}

void Registry::reset_for_test() {
  std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

bool flush_metrics_json(std::string_view tag, std::string path) {
  if (path.empty()) path = util::env::string_or("GEOLOC_METRICS_JSON", "");
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) {
    warn_once(("metrics-flush-open:" + path).c_str(),
              "obs: cannot open GEOLOC_METRICS_JSON target: " + path);
    return false;
  }
  // The dump is append-only (many processes may share the file), so the
  // atomic-rename primitive does not apply; what durability demands here
  // is that a short write — full disk, dead volume — is *reported* rather
  // than silently dropping the tail of the metrics stream.
  const std::string metrics = Registry::instance().dump_json_lines(tag);
  const std::string spans = spans_to_json_lines(tag);
  std::size_t written = std::fwrite(metrics.data(), 1, metrics.size(), f);
  written += std::fwrite(spans.data(), 1, spans.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != metrics.size() + spans.size() || !closed) {
    warn_once(("metrics-flush-short:" + path).c_str(),
              "obs: short write flushing metrics to " + path +
                  " (metrics dropped, disk full?)");
    return false;
  }
  return true;
}

}  // namespace geoloc::obs
