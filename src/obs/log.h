// Minimal warning channel for the library: one stderr line per distinct
// key, with every emission counted on the metrics registry
// ("obs.warnings"), so a sweep that tripped a guard rail is visible both
// on the console and in the metrics dump. Deliberately tiny — this is not
// a logging framework, it is the place env-knob clamps and other
// self-corrections report themselves.
//
// This header is self-contained (no util/ includes) so util/env.h can use
// it without an include cycle.
#pragma once

#include <string>

namespace geoloc::obs {

/// Print "[geoloc] <message>" to stderr the first time `key` is seen in
/// this process, and bump the "obs.warnings" counter (every first
/// emission). Later calls with the same key are silent no-ops. Returns
/// true when the line was printed.
bool warn_once(const char* key, const std::string& message);

}  // namespace geoloc::obs
