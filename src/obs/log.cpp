#include "obs/log.h"

#include <cstdio>
#include <mutex>
#include <unordered_set>

#include "obs/metrics.h"

namespace geoloc::obs {

bool warn_once(const char* key, const std::string& message) {
  static std::mutex mu;
  static auto* seen = new std::unordered_set<std::string>;
  {
    std::scoped_lock lock(mu);
    if (!seen->insert(key).second) return false;
  }
  Registry::instance().counter("obs.warnings").add();
  std::fprintf(stderr, "[geoloc] %s\n", message.c_str());
  return true;
}

}  // namespace geoloc::obs
