// Process-wide metrics registry: named counters, gauges and fixed-bucket
// latency histograms, written lock-free from hot paths and read coherently
// enough for dashboards (per-series values are exact; cross-series reads
// are not a consistent cut, same contract as serve::ServiceStats).
//
// Zero-perturbation contract (DESIGN.md §10). Instrumentation built on
// this registry must never change what the instrumented code computes:
//
//   * writers only touch registry-owned atomics — no RNG draws, no
//     ordering decisions, no allocation after the series is registered;
//   * counters are cache-line-striped per thread (the serve::GeoService
//     counter design, hoisted here) so hot readers do not ping-pong one
//     line and instrumented code scales exactly as uninstrumented code;
//   * registered series live for the process lifetime at stable
//     addresses, so call sites cache a `static Counter&` and the hot path
//     is one relaxed striped add — the registry mutex is only taken at
//     first use and at dump time.
//
// Values that *are* wall-clock timings vary run to run, but the set of
// series, their ordering in every dump (name-sorted) and every
// deterministic value (simulated durations, counts of deterministic
// events) are bit-stable across runs and GEOLOC_THREADS values.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace geoloc::obs {

namespace detail {
/// Stable per-thread stripe index (first-use order of threads).
std::uint32_t thread_stripe() noexcept;

/// Relaxed add for atomic doubles via CAS (portable; no C++20
/// fetch_add(double) dependency).
inline void atomic_add(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic counter, striped across cache lines by thread.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void add(std::uint64_t delta = 1) noexcept {
    cells_[detail::thread_stripe() % kStripes].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// Last-writer-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram (cumulative-style dump, Prometheus semantics:
/// bucket `le=B` counts observations <= B, plus an implicit +Inf bucket).
/// Bucket bounds are fixed at registration; observation is a branch-free
/// linear scan over <= ~20 bounds plus one striped relaxed add.
class Histogram {
 public:
  static constexpr std::size_t kStripes = 16;

  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double x) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper bounds, ascending
    std::vector<std::uint64_t> counts;   ///< per-bucket, bounds.size() + 1
    std::uint64_t total = 0;             ///< sum of counts
    double sum = 0.0;                    ///< sum of observed values
  };
  [[nodiscard]] Snapshot snapshot() const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::size_t stride_ = 0;  ///< padded per-stripe length, in atomics
  /// stripes * stride counters; stripe s bucket b lives at s * stride + b.
  std::vector<std::atomic<std::uint64_t>> counts_;
  struct alignas(64) SumCell {
    std::atomic<double> v{0.0};
  };
  SumCell sums_[kStripes];
};

/// Default latency bucket bounds, in milliseconds: 50µs .. 30s.
std::span<const double> default_latency_buckets_ms() noexcept;

/// The process-wide registry. Series are created on first use and live
/// forever at stable addresses; look the handle up once and cache it:
///
///   static obs::Counter& c = obs::Registry::instance().counter("x.y");
///   c.add();
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Bounds are fixed by the first registration of `name`; later callers
  /// get the existing histogram. Empty bounds = default_latency_buckets_ms.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});

  /// Prometheus text exposition (names sanitised to [a-z0-9_], prefixed
  /// "geoloc_"). Series appear in name-sorted order.
  [[nodiscard]] std::string dump_prometheus() const;

  /// One JSON object per line, name-sorted:
  ///   {"type":"counter","name":"a.b","value":12}
  ///   {"type":"gauge","name":"a.c","value":-3}
  ///   {"type":"histogram","name":"a.d","count":N,"sum":S,
  ///    "buckets":[[le,count],...,["+Inf",count]]}
  /// `tag` (when non-empty) is emitted as a "bench" field on every line,
  /// matching the GEOLOC_BENCH_JSON record shape.
  [[nodiscard]] std::string dump_json_lines(std::string_view tag = {}) const;

  /// Zero every registered series (objects and cached references stay
  /// valid). Test-only: not safe concurrently with writers.
  void reset_for_test();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Append the registry dump plus the aggregated trace-span summaries (see
/// obs/trace.h) as JSON lines to `path`, defaulting to $GEOLOC_METRICS_JSON.
/// Returns false (and writes nothing) when no path is configured, and
/// false with a warn_once when the write came up short (full disk) — the
/// flush never drops data silently.
bool flush_metrics_json(std::string_view tag = {}, std::string path = {});

}  // namespace geoloc::obs
