// Lightweight scoped trace spans with per-thread buffers.
//
// A TraceSpan records {name, nesting depth, wall duration} into a buffer
// owned by the recording thread — no shared state is touched between a
// span's open and close, so tracing adds two clock reads and one
// push_back to an instrumented region and nothing else. flush_spans()
// merges every thread's buffer into per-name aggregates, *sorted by span
// name*: the merge order is a pure function of the span names, never of
// thread scheduling, so the flushed summary's shape is deterministic even
// though the recorded durations are wall-clock.
//
// Tracing is off unless GEOLOC_TRACE=1 (or set_trace_enabled(true)); a
// disabled span is two branch instructions and touches no memory, which
// is what keeps the disabled-path overhead under the 2% budget
// (DESIGN.md §10). Spans never draw randomness and never branch the
// instrumented code: enabling tracing cannot move a single byte of any
// experiment output.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace geoloc::obs {

/// Whether spans record. Reads a cached GEOLOC_TRACE=1 unless overridden.
[[nodiscard]] bool trace_enabled() noexcept;

/// Programmatic override (tests, tools). Affects spans opened after the
/// call; spans already open complete under their creation-time setting.
void set_trace_enabled(bool enabled);

/// RAII span. Cheap to construct when tracing is disabled.
class TraceSpan {
 public:
  /// `name` must outlive the span (string literals in practice).
  explicit TraceSpan(const char* name) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

/// Per-name aggregate of every recorded span since the last flush.
struct SpanSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

/// Merge and clear every thread's span buffer. Returns one summary per
/// distinct span name, sorted by name (the deterministic merge order).
std::vector<SpanSummary> flush_spans();

/// flush_spans() rendered as JSON lines compatible with the metrics dump:
///   {"type":"span","name":…,"count":…,"total_ms":…,"max_ms":…}
/// `tag` (when non-empty) is emitted as a "bench" field on every line.
std::string spans_to_json_lines(std::string_view tag = {});

}  // namespace geoloc::obs
