#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/env.h"

namespace geoloc::obs {

namespace {

struct RawSpan {
  const char* name;
  std::uint32_t depth;
  double duration_ms;
};

/// One thread's recording buffer. The owning thread appends under the
/// buffer's mutex (uncontended except during a concurrent flush); flush
/// moves the records out. The global list holds shared_ptrs so a buffer
/// outlives its thread and late records are never lost.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<RawSpan> spans;
  std::uint32_t open_depth = 0;  ///< owning thread only
};

std::mutex g_buffers_mu;
std::vector<std::shared_ptr<ThreadBuffer>>& buffers() {
  static auto* v = new std::vector<std::shared_ptr<ThreadBuffer>>;
  return *v;
}

ThreadBuffer& this_thread_buffer() {
  thread_local const std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    std::scoped_lock lock(g_buffers_mu);
    buffers().push_back(b);
    return b;
  }();
  return *buf;
}

std::atomic<int> g_trace_override{-1};  // -1 = follow the environment

}  // namespace

bool trace_enabled() noexcept {
  const int o = g_trace_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool from_env = util::env::flag("GEOLOC_TRACE");
  return from_env;
}

void set_trace_enabled(bool enabled) {
  g_trace_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name) noexcept
    : name_(name), active_(trace_enabled()) {
  if (!active_) return;
  ++this_thread_buffer().open_depth;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  ThreadBuffer& buf = this_thread_buffer();
  const std::uint32_t depth = --buf.open_depth;
  std::scoped_lock lock(buf.mu);
  buf.spans.push_back({name_, depth, ms});
}

std::vector<SpanSummary> flush_spans() {
  std::vector<std::shared_ptr<ThreadBuffer>> snapshot;
  {
    std::scoped_lock lock(g_buffers_mu);
    snapshot = buffers();
  }
  std::map<std::string, SpanSummary> by_name;  // name-sorted: deterministic
  for (const auto& buf : snapshot) {
    std::vector<RawSpan> taken;
    {
      std::scoped_lock lock(buf->mu);
      taken = std::move(buf->spans);
      buf->spans.clear();
    }
    for (const RawSpan& s : taken) {
      SpanSummary& sum = by_name[s.name];
      if (sum.name.empty()) sum.name = s.name;
      ++sum.count;
      sum.total_ms += s.duration_ms;
      sum.max_ms = std::max(sum.max_ms, s.duration_ms);
    }
  }
  std::vector<SpanSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, sum] : by_name) out.push_back(std::move(sum));
  return out;
}

std::string spans_to_json_lines(std::string_view tag) {
  const std::vector<SpanSummary> summaries = flush_spans();
  std::ostringstream os;
  const std::string tag_field =
      tag.empty() ? std::string()
                  : "\"bench\":\"" + std::string(tag) + "\",";
  char num[64];
  for (const SpanSummary& s : summaries) {
    os << "{\"type\":\"span\"," << tag_field << "\"name\":\"" << s.name
       << "\",\"count\":" << s.count;
    std::snprintf(num, sizeof num, "%.3f", s.total_ms);
    os << ",\"total_ms\":" << num;
    std::snprintf(num, sizeof num, "%.3f", s.max_ms);
    os << ",\"max_ms\":" << num << "}\n";
  }
  return os.str();
}

}  // namespace geoloc::obs
