#include "publish/diff.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "geo/geodesy.h"
#include "util/stats.h"

namespace geoloc::publish {

namespace {

/// Strict (network, length) order — the order snapshots are stored in.
int compare(const net::Prefix& a, const net::Prefix& b) noexcept {
  if (a.network() != b.network()) return a.network() < b.network() ? -1 : 1;
  if (a.length() != b.length()) return a.length() < b.length() ? -1 : 1;
  return 0;
}

}  // namespace

DiffStats diff_snapshots(const Snapshot& from, const Snapshot& to,
                         double move_threshold_km) {
  DiffStats d;
  d.from_version = from.dataset_version();
  d.to_version = to.dataset_version();
  d.from_entries = from.size();
  d.to_entries = to.size();

  std::vector<double> moves_km;
  std::vector<double> nonzero_moves_km;
  std::size_t i = 0, j = 0;
  while (i < from.size() || j < to.size()) {
    if (i == from.size()) {
      ++d.added;
      ++j;
      continue;
    }
    if (j == to.size()) {
      ++d.removed;
      ++i;
      continue;
    }
    const SnapshotEntry a = from.entry(i);
    const SnapshotEntry b = to.entry(j);
    const int c = compare(a.prefix, b.prefix);
    if (c < 0) {
      ++d.removed;
      ++i;
      continue;
    }
    if (c > 0) {
      ++d.added;
      ++j;
      continue;
    }
    ++d.retained;
    const double move = geo::distance_km(a.location, b.location);
    // Every retained entry contributes its displacement — including 0 for
    // the ones that held still. Medianing only the movers silently
    // overstated churn on mostly-static snapshots (the common case).
    moves_km.push_back(move);
    if (move > 0.0) nonzero_moves_km.push_back(move);
    if (move > move_threshold_km) {
      ++d.moved;
      d.moved_prefixes.push_back(b.prefix);
    }
    if (move > d.max_move_km) d.max_move_km = move;
    if (a.method != b.method) ++d.method_changes;
    if (a.tier != b.tier) ++d.tier_changes;
    if (b.measured_at_s > a.measured_at_s) ++d.refreshed;
    ++i;
    ++j;
  }
  if (!moves_km.empty()) d.median_move_km = util::median(moves_km);
  if (!nonzero_moves_km.empty()) {
    d.median_nonzero_move_km = util::median(nonzero_moves_km);
  }
  return d;
}

std::string format_diff(const DiffStats& d) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "snapshot diff v%u -> v%u: %zu -> %zu entries\n",
                d.from_version, d.to_version, d.from_entries, d.to_entries);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  added %zu, removed %zu, retained %zu (refreshed %zu)\n",
                d.added, d.removed, d.retained, d.refreshed);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  moved %zu (median %.1f km over retained, %.1f km over movers, "
      "max %.1f km), method changes %zu, tier changes %zu\n",
      d.moved, d.median_move_km, d.median_nonzero_move_km, d.max_move_km,
      d.method_changes, d.tier_changes);
  out += buf;
  std::snprintf(buf, sizeof buf, "  churn fraction %.1f%%\n",
                100.0 * d.churn_fraction());
  out += buf;
  return out;
}

}  // namespace geoloc::publish
