// Compiles campaign results into publishable snapshot records: the bridge
// between "we measured things" (scenario matrices, executor reports) and
// "here is the dataset" (publish::Snapshot).
//
// Per target the compiler picks a technique — street-level for a budgeted
// head of the target list (expensive), the million-scale two-step
// selection when asked, all-VP CBG otherwise — and falls back to a
// simulated commercial database entry when latency measurement could not
// locate the target at all. Every record keeps the method, the CbgVerdict
// trust tier, a confidence radius, a provenance string and the simulated
// measurement timestamp, published at the target's /24 granularity.
#pragma once

#include <vector>

#include "atlas/executor.h"
#include "core/geodb.h"
#include "publish/snapshot.h"
#include "scenario/scenario.h"

namespace geoloc::publish {

struct CompileOptions {
  core::CbgConfig cbg;          ///< CBG settings for all latency methods
  double measured_at_s = 0.0;   ///< simulated campaign completion time
  float ok_ttl_s = 30 * 86'400.0f;        ///< trusted fixes re-measure monthly
  float degraded_ttl_s = 7 * 86'400.0f;   ///< starved fixes re-measure weekly
  float fallback_ttl_s = 86'400.0f;       ///< db imports re-measure daily

  /// Run the street-level pipeline for the first N target columns
  /// (requires the scenario's web ecosystem; costly per target).
  int street_level_budget = 0;
  /// Use the two-step million-scale selection instead of all-VP CBG for
  /// the remaining targets.
  bool two_step = false;
  int two_step_first_step = 100;  ///< greedy-coverage subset size

  /// When CBG comes back Unlocatable, import the entry from a simulated
  /// commercial database instead of dropping the prefix.
  bool geodb_fallback = true;
  core::GeoDbProfile fallback_profile = core::GeoDbProfile::IPinfo;
};

/// Compile one record per scenario target (prefix = the target's /24).
std::vector<Record> compile_entries(const scenario::Scenario& s,
                                    const CompileOptions& options = {});

/// Re-compile records for exactly the targets a re-measurement campaign
/// reached: group the report's successful pings by target, run CBG over
/// each group, stamp `options.measured_at_s`. Targets with no usable
/// measurement in the report are skipped (their old entry stays until the
/// next campaign). Used by the serving layer's staleness loop.
std::vector<Record> refresh_entries(const scenario::Scenario& s,
                                    const atlas::CampaignReport& report,
                                    const CompileOptions& options = {});

}  // namespace geoloc::publish
