// Snapshot-to-snapshot churn analysis, after Gouel et al.'s longitudinal
// study of a commercial geolocation database: between two published
// versions, how many prefixes appeared, vanished, or *moved* — and how
// far. Inter-version churn is a dataset property worth publishing next to
// the dataset itself; consumers pinning a version need to know what an
// upgrade will reshuffle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "publish/snapshot.h"

namespace geoloc::publish {

struct DiffStats {
  std::uint32_t from_version = 0;
  std::uint32_t to_version = 0;
  std::size_t from_entries = 0;
  std::size_t to_entries = 0;

  std::size_t added = 0;     ///< prefixes only in the newer snapshot
  std::size_t removed = 0;   ///< prefixes only in the older snapshot
  std::size_t retained = 0;  ///< prefixes present in both

  // Of the retained prefixes:
  std::size_t moved = 0;           ///< location moved beyond the threshold
  std::size_t method_changes = 0;  ///< produced by a different technique
  std::size_t tier_changes = 0;    ///< CbgVerdict tier changed
  std::size_t refreshed = 0;       ///< measured_at_s advanced

  /// Median displacement over ALL retained entries, unmoved (0 km) ones
  /// included. An earlier version medianed only the nonzero moves, which
  /// overstated churn whenever most of the dataset held still — and would
  /// mislead any policy reading the median as "how much did the world
  /// move". The moved-only view lives in median_nonzero_move_km.
  double median_move_km = 0.0;
  /// Median over retained entries with a nonzero displacement; 0 when no
  /// entry moved at all.
  double median_nonzero_move_km = 0.0;
  double max_move_km = 0.0;

  /// Retained prefixes whose location moved beyond the threshold, in
  /// snapshot (ascending prefix) order — the diff-triggered re-measurement
  /// policy's input signal (eval/longitudinal.h): a moved prefix marks its
  /// neighbourhood as churning.
  std::vector<net::Prefix> moved_prefixes;

  /// (added + removed + moved) / max(from_entries, to_entries); 0 when both
  /// snapshots are empty.
  [[nodiscard]] double churn_fraction() const noexcept {
    const std::size_t denom =
        from_entries > to_entries ? from_entries : to_entries;
    return denom == 0 ? 0.0
                      : static_cast<double>(added + removed + moved) /
                            static_cast<double>(denom);
  }
};

/// Compare two snapshots entry-by-entry (linear merge over the sorted
/// prefix arrays). `move_threshold_km` separates relocation from
/// re-measurement jitter.
DiffStats diff_snapshots(const Snapshot& from, const Snapshot& to,
                         double move_threshold_km = 1.0);

/// Multi-line human-readable report.
std::string format_diff(const DiffStats& d);

}  // namespace geoloc::publish
