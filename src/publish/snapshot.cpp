#include "publish/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "util/crc32.h"
#include "util/durable.h"

namespace geoloc::publish {

namespace {

constexpr std::uint32_t kMagic = 0x4E534C47u;  // "GLSN" little-endian

// -- little-endian field codecs (byte-order independent) -------------------

void store_u16(std::byte* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>(v >> 8);
}
void store_u32(std::byte* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}
void store_u64(std::byte* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}
void store_f64(std::byte* p, double v) noexcept {
  store_u64(p, std::bit_cast<std::uint64_t>(v));
}
void store_f32(std::byte* p, float v) noexcept {
  store_u32(p, std::bit_cast<std::uint32_t>(v));
}

std::uint16_t load_u16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (static_cast<std::uint8_t>(p[1]) << 8));
}
std::uint32_t load_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}
std::uint64_t load_u64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}
double load_f64(const std::byte* p) noexcept {
  return std::bit_cast<double>(load_u64(p));
}
float load_f32(const std::byte* p) noexcept {
  return std::bit_cast<float>(load_u32(p));
}

bool fail(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

/// (network, length) ordering shared by the builder and the validator.
bool prefix_less(const net::Prefix& a, const net::Prefix& b) noexcept {
  if (a.network() != b.network()) return a.network() < b.network();
  return a.length() < b.length();
}

}  // namespace

std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::Cbg: return "cbg";
    case Method::TwoStep: return "two-step";
    case Method::StreetLevel: return "street-level";
    case Method::GeoDb: return "geodb";
    case Method::Fused: return "fused";
  }
  return "?";
}

Record to_record(const SnapshotEntry& e) {
  Record r;
  r.prefix = e.prefix;
  r.location = e.location;
  r.method = e.method;
  r.tier = e.tier;
  r.confidence_radius_km = e.confidence_radius_km;
  r.ttl_s = e.ttl_s;
  r.measured_at_s = e.measured_at_s;
  r.provenance = std::string(e.provenance);
  return r;
}

// -- builder ---------------------------------------------------------------

void SnapshotBuilder::add(Record record) {
  records_.push_back(std::move(record));
}

void SnapshotBuilder::add(std::span<const Record> records) {
  records_.insert(records_.end(), records.begin(), records.end());
}

std::vector<std::byte> SnapshotBuilder::build(const SnapshotMeta& meta) const {
  // Sort by (network, length); among duplicates of the same prefix the
  // last-added record wins.
  std::vector<const Record*> order;
  order.reserve(records_.size());
  for (const Record& r : records_) order.push_back(&r);
  std::stable_sort(order.begin(), order.end(),
                   [](const Record* a, const Record* b) {
                     return prefix_less(a->prefix, b->prefix);
                   });
  std::vector<const Record*> kept;
  kept.reserve(order.size());
  for (const Record* r : order) {
    if (!kept.empty() && kept.back()->prefix == r->prefix) {
      kept.back() = r;  // stable sort kept insertion order within ties
    } else {
      kept.push_back(r);
    }
  }

  // String pool: snapshot source first, then per-entry provenance,
  // deduplicated.
  std::vector<char> pool;
  std::unordered_map<std::string_view, std::uint32_t> interned;
  const auto intern = [&](std::string_view s) -> std::uint32_t {
    if (s.empty()) return 0;
    if (const auto it = interned.find(s); it != interned.end()) {
      return it->second;
    }
    const auto offset = static_cast<std::uint32_t>(pool.size());
    pool.insert(pool.end(), s.begin(), s.end());
    interned.emplace(s, offset);
    return offset;
  };
  const std::uint32_t source_offset = intern(meta.source);
  std::vector<std::uint32_t> provenance_offsets(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    provenance_offsets[i] = intern(kept[i]->provenance);
  }

  const std::size_t total =
      kHeaderBytes + kept.size() * kEntryStride + pool.size();
  std::vector<std::byte> out(total);

  std::byte* e = out.data() + kHeaderBytes;
  for (std::size_t i = 0; i < kept.size(); ++i, e += kEntryStride) {
    const Record& r = *kept[i];
    store_u32(e + 0, r.prefix.network().value());
    e[4] = static_cast<std::byte>(r.prefix.length());
    e[5] = static_cast<std::byte>(r.method);
    e[6] = static_cast<std::byte>(r.tier);
    e[7] = std::byte{0};
    store_f64(e + 8, r.location.lat_deg);
    store_f64(e + 16, r.location.lon_deg);
    store_f64(e + 24, r.measured_at_s);
    store_f32(e + 32, r.confidence_radius_km);
    store_f32(e + 36, r.ttl_s);
    store_u32(e + 40, provenance_offsets[i]);
    store_u32(e + 44, static_cast<std::uint32_t>(r.provenance.size()));
  }
  if (!pool.empty()) {
    std::memcpy(out.data() + kHeaderBytes + kept.size() * kEntryStride,
                pool.data(), pool.size());
  }

  std::byte* h = out.data();
  store_u32(h + 0, kMagic);
  store_u16(h + 4, kFormatVersion);
  store_u16(h + 6, static_cast<std::uint16_t>(kHeaderBytes));
  store_u32(h + 8, meta.dataset_version);
  store_u32(h + 12, static_cast<std::uint32_t>(kEntryStride));
  store_u64(h + 16, kept.size());
  store_u64(h + 24, pool.size());
  store_f64(h + 32, meta.created_at_s);
  store_u32(h + 40, source_offset);
  store_u32(h + 44, static_cast<std::uint32_t>(meta.source.size()));
  const std::uint32_t payload_crc = util::crc32(
      std::span<const std::byte>(out).subspan(kHeaderBytes));
  store_u32(h + 48, payload_crc);
  store_u32(h + 52, util::crc32(std::span<const std::byte>(h, 52)));
  store_u64(h + 56, 0);
  return out;
}

bool SnapshotBuilder::write_file(const std::string& path,
                                 const SnapshotMeta& meta,
                                 std::string* error) const {
  // Atomic replacement (util/durable.h): a crash mid-publish leaves the
  // previous snapshot version intact, never a torn file under the name a
  // serving process is about to load.
  return util::durable::atomic_write_file(path, build(meta), error);
}

// -- reader ----------------------------------------------------------------

SnapshotEntry Snapshot::entry(std::size_t i) const noexcept {
  const std::byte* e = raw_.data() + kHeaderBytes + i * kEntryStride;
  SnapshotEntry out;
  out.prefix = net::Prefix{net::IPv4Address{load_u32(e + 0)},
                           static_cast<std::uint8_t>(e[4])};
  out.method = static_cast<Method>(e[5]);
  out.tier = static_cast<core::CbgVerdict>(e[6]);
  out.location.lat_deg = load_f64(e + 8);
  out.location.lon_deg = load_f64(e + 16);
  out.measured_at_s = load_f64(e + 24);
  out.confidence_radius_km = load_f32(e + 32);
  out.ttl_s = load_f32(e + 36);
  const std::uint32_t off = load_u32(e + 40);
  const std::uint32_t len = load_u32(e + 44);
  out.provenance = std::string_view(
      reinterpret_cast<const char*>(raw_.data() + pool_offset_ + off), len);
  return out;
}

std::optional<SnapshotEntry> Snapshot::find(net::IPv4Address a) const {
  const auto* slot = index_.lookup(a);
  if (!slot) return std::nullopt;
  return entry(slot->value);
}

std::shared_ptr<const Snapshot> Snapshot::from_bytes(
    std::vector<std::byte> bytes, std::string* error) {
  const auto reject = [&](std::string message) {
    fail(error, "snapshot: " + std::move(message));
    return nullptr;
  };

  if (bytes.size() < kHeaderBytes) {
    return reject("truncated header (" + std::to_string(bytes.size()) +
                  " bytes)");
  }
  const std::byte* h = bytes.data();
  if (load_u32(h + 0) != kMagic) return reject("bad magic");
  if (load_u32(h + 52) !=
      util::crc32(std::span<const std::byte>(h, 52))) {
    return reject("header CRC mismatch");
  }
  const std::uint16_t version = load_u16(h + 4);
  if (version != kFormatVersion) {
    return reject("unsupported format version " + std::to_string(version));
  }
  if (load_u16(h + 6) != kHeaderBytes) return reject("bad header size");
  if (load_u32(h + 12) != kEntryStride) return reject("bad entry stride");

  const std::uint64_t count = load_u64(h + 16);
  const std::uint64_t pool_bytes = load_u64(h + 24);
  // Overflow-safe expected-size check.
  if (count > (bytes.size() - kHeaderBytes) / kEntryStride) {
    return reject("truncated: entry region exceeds file size");
  }
  const std::uint64_t expected =
      kHeaderBytes + count * kEntryStride + pool_bytes;
  if (expected != bytes.size()) {
    return reject("size mismatch: expected " + std::to_string(expected) +
                  " bytes, have " + std::to_string(bytes.size()));
  }
  if (load_u32(h + 48) !=
      util::crc32(std::span<const std::byte>(bytes).subspan(kHeaderBytes))) {
    return reject("payload CRC mismatch");
  }

  const std::uint32_t source_offset = load_u32(h + 40);
  const std::uint32_t source_len = load_u32(h + 44);
  if (static_cast<std::uint64_t>(source_offset) + source_len > pool_bytes) {
    return reject("source string out of pool range");
  }

  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->raw_ = std::move(bytes);
  snap->entry_count_ = static_cast<std::size_t>(count);
  snap->pool_offset_ =
      kHeaderBytes + static_cast<std::size_t>(count) * kEntryStride;
  snap->dataset_version_ = load_u32(h + 8);
  snap->created_at_s_ = load_f64(h + 32);
  snap->payload_crc_ = load_u32(h + 48);
  h = snap->raw_.data();  // bytes moved; re-anchor views
  snap->source_ = std::string_view(
      reinterpret_cast<const char*>(h + snap->pool_offset_ + source_offset),
      source_len);

  // Semantic validation: every entry well-formed, strictly sorted.
  std::vector<std::pair<net::Prefix, std::uint32_t>> index_entries;
  index_entries.reserve(snap->entry_count_);
  for (std::size_t i = 0; i < snap->entry_count_; ++i) {
    const std::byte* e = h + kHeaderBytes + i * kEntryStride;
    const std::uint32_t network = load_u32(e + 0);
    const int len = static_cast<std::uint8_t>(e[4]);
    if (len > 32) {
      return reject("entry " + std::to_string(i) + ": prefix length " +
                    std::to_string(len));
    }
    if ((network & ~net::Prefix::mask(len)) != 0) {
      return reject("entry " + std::to_string(i) + ": host bits set");
    }
    if (static_cast<std::uint8_t>(e[5]) >
        static_cast<std::uint8_t>(Method::Fused)) {
      return reject("entry " + std::to_string(i) + ": unknown method");
    }
    if (static_cast<std::uint8_t>(e[6]) >
        static_cast<std::uint8_t>(core::CbgVerdict::Unlocatable)) {
      return reject("entry " + std::to_string(i) + ": unknown tier");
    }
    const std::uint32_t off = load_u32(e + 40);
    const std::uint32_t plen = load_u32(e + 44);
    if (static_cast<std::uint64_t>(off) + plen > pool_bytes) {
      return reject("entry " + std::to_string(i) +
                    ": provenance out of pool range");
    }
    const net::Prefix prefix{net::IPv4Address{network}, len};
    if (!index_entries.empty() &&
        !prefix_less(index_entries.back().first, prefix)) {
      return reject("entries not strictly sorted at index " +
                    std::to_string(i));
    }
    index_entries.emplace_back(prefix, static_cast<std::uint32_t>(i));
  }
  snap->index_ = net::FlatLpm<std::uint32_t>::build(std::move(index_entries));
  return snap;
}

std::shared_ptr<const Snapshot> Snapshot::load(const std::string& path,
                                               std::string* error,
                                               bool quarantine_corrupt) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    fail(error, "snapshot: cannot open: " + path);
    return nullptr;
  }
  std::vector<std::byte> bytes;
  std::byte buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    fail(error, "snapshot: read error: " + path);
    return nullptr;
  }
  auto snap = from_bytes(std::move(bytes), error);
  // The file existed and was readable but failed validation: quarantine it
  // so the publisher's next write starts clean and retries don't spin on
  // the same bad bytes (util/durable.h quarantine semantics).
  if (!snap && quarantine_corrupt) util::durable::quarantine(path);
  return snap;
}

}  // namespace geoloc::publish
