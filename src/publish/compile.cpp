#include "publish/compile.h"

#include <map>
#include <numeric>
#include <optional>
#include <string>

#include "core/million_scale.h"
#include "core/street_level.h"

namespace geoloc::publish {

namespace {

float ttl_for(core::CbgVerdict tier, const CompileOptions& o) noexcept {
  switch (tier) {
    case core::CbgVerdict::Ok: return o.ok_ttl_s;
    case core::CbgVerdict::Degraded: return o.degraded_ttl_s;
    case core::CbgVerdict::Unlocatable: return o.fallback_ttl_s;
  }
  return o.fallback_ttl_s;
}

Record base_record(const scenario::Scenario& s, std::size_t target_col,
                   const CompileOptions& o) {
  Record r;
  const sim::Host& host = s.world().host(s.targets()[target_col]);
  r.prefix = net::slash24_of(host.addr);
  r.measured_at_s = o.measured_at_s;
  return r;
}

/// All-VP CBG for one target column.
Record compile_cbg(const core::MillionScale& tools,
                   std::span<const std::size_t> all_rows,
                   const scenario::Scenario& s, std::size_t target_col,
                   const CompileOptions& o) {
  Record r = base_record(s, target_col, o);
  const core::CbgResult cbg = tools.geolocate(all_rows, target_col, o.cbg);
  r.method = Method::Cbg;
  r.tier = cbg.verdict;
  r.location = cbg.estimate;
  r.confidence_radius_km = static_cast<float>(cbg.confidence_radius_km);
  r.provenance = "cbg/all-vps:obs=" + std::to_string(all_rows.size()) +
                 ",disks=" + std::to_string(cbg.surviving_constraints);
  r.ttl_s = ttl_for(r.tier, o);
  return r;
}

}  // namespace

std::vector<Record> compile_entries(const scenario::Scenario& s,
                                    const CompileOptions& options) {
  const core::MillionScale tools(s);
  std::vector<std::size_t> all_rows(s.vps().size());
  std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});

  std::optional<core::StreetLevel> street;
  const int street_budget =
      s.has_web() ? options.street_level_budget : 0;
  if (street_budget > 0) street.emplace(s);

  std::optional<core::TwoStepSelector> two_step;
  if (options.two_step) {
    two_step.emplace(s, core::greedy_coverage_rows(
                            s, static_cast<std::size_t>(
                                   options.two_step_first_step)),
                     core::TwoStepConfig{.cbg = options.cbg});
  }

  std::optional<core::GeoDatabase> fallback_db;

  std::vector<Record> out;
  out.reserve(s.targets().size());
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    Record r = base_record(s, col, options);
    if (street && col < static_cast<std::size_t>(street_budget)) {
      const core::StreetLevelResult res = street->geolocate(col);
      r.method = Method::StreetLevel;
      r.tier = res.tier1.verdict;
      r.location = res.estimate;
      // Confidence narrows with the deepest tier that answered: tier 3
      // maps to a landmark inside a 1 km sampling ring, tier 2 to a 5 km
      // ring, tier 1 falls back to the CBG region radius.
      r.confidence_radius_km =
          res.fell_back_to_cbg || res.tier_reached <= 1
              ? static_cast<float>(res.tier1.confidence_radius_km)
              : (res.tier_reached >= 3 ? 5.0f : 10.0f);
      r.provenance = "street-level:tier=" + std::to_string(res.tier_reached) +
                     (res.fell_back_to_cbg ? ",cbg-fallback" : "");
      r.ttl_s = ttl_for(r.tier, options);
    } else if (two_step) {
      const core::TwoStepOutcome res = two_step->run(col);
      r.method = Method::TwoStep;
      r.tier = res.ok ? core::CbgVerdict::Ok : core::CbgVerdict::Unlocatable;
      r.location = res.estimate;
      // The answer is the chosen VP's location; city-level trust is the
      // honest radius for single-VP proximity fixes.
      r.confidence_radius_km = 40.0f;
      r.provenance =
          "two-step:first=" + std::to_string(options.two_step_first_step) +
          ",region-vps=" + std::to_string(res.region_vps);
      r.ttl_s = ttl_for(r.tier, options);
    } else {
      r = compile_cbg(tools, all_rows, s, col, options);
    }

    if (r.tier == core::CbgVerdict::Unlocatable && options.geodb_fallback) {
      if (!fallback_db) {
        fallback_db =
            core::GeoDatabase::build(s, options.fallback_profile);
      }
      const sim::Host& host = s.world().host(s.targets()[col]);
      if (const auto hit = fallback_db->lookup(host.addr)) {
        r.method = Method::GeoDb;
        r.tier = core::CbgVerdict::Degraded;  // imported, not measured
        r.location = hit->location;
        r.confidence_radius_km = 40.0f;  // city-level claim of the profile
        r.provenance = "geodb/" +
                       std::string(core::to_string(options.fallback_profile)) +
                       ":" + std::string(hit->source);
        r.ttl_s = options.fallback_ttl_s;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<Record> refresh_entries(const scenario::Scenario& s,
                                    const atlas::CampaignReport& report,
                                    const CompileOptions& options) {
  // Group the campaign's usable pings by target, in target order.
  std::map<sim::HostId, std::vector<core::VpObservation>> by_target;
  for (const atlas::PingMeasurement& m : report.results) {
    if (!m.answered()) continue;
    by_target[m.target].push_back(core::VpObservation{
        s.world().host(m.vp).reported_location, *m.min_rtt_ms});
  }

  std::vector<Record> out;
  out.reserve(by_target.size());
  for (const auto& [target, observations] : by_target) {
    const core::CbgResult cbg = core::cbg_geolocate(observations, options.cbg);
    Record r;
    r.prefix = net::slash24_of(s.world().host(target).addr);
    r.method = Method::Cbg;
    r.tier = cbg.verdict;
    r.location = cbg.estimate;
    r.confidence_radius_km = static_cast<float>(cbg.confidence_radius_km);
    r.measured_at_s = options.measured_at_s;
    r.ttl_s = ttl_for(r.tier, options);
    r.provenance = "cbg/remeasured:obs=" + std::to_string(observations.size()) +
                   ",disks=" + std::to_string(cbg.surviving_constraints);
    if (r.tier == core::CbgVerdict::Unlocatable) continue;  // keep old entry
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace geoloc::publish
