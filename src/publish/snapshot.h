// The published dataset artifact: an immutable, versioned, checksummed
// binary snapshot of per-prefix geolocation answers.
//
// The paper's end goal is a *publicly available* dataset; what a consumer
// downloads is one of these files. Design constraints, in order:
//
//   * **Per-prefix granularity with provenance** — every entry carries the
//     prefix it answers for, the technique that produced it (CBG,
//     million-scale two-step, street-level, geolocation database), the
//     CbgVerdict trust tier, a confidence radius and a free-form
//     provenance string ("Lost in the Prefix": a bare coordinate without
//     scope and origin is unusable downstream).
//   * **Versioned and diffable** — snapshots carry a dataset version and a
//     simulated-time creation stamp; publish/diff.h reports churn between
//     versions (the longitudinal-study finding that inter-version movement
//     is itself signal).
//   * **Corruption-evident** — magic, format version, and CRC-32 over both
//     header and payload are validated before any entry is interpreted;
//     truncated, bit-flipped or semantically invalid files are rejected
//     with a clean error, never undefined behaviour.
//   * **Zero-copy serving** — the reader keeps the file bytes as one flat
//     buffer; entries decode on demand and provenance strings are
//     string_views into the buffer. Loading builds a net::FlatLpm index
//     over the (already sorted) entries for O(log n) cache-friendly LPM.
//
// On-disk layout (all integers little-endian, doubles as IEEE-754 bits):
//
//   [header: 64 bytes]
//     0  u32 magic            "GLSN" (0x47 0x4C 0x53 0x4E)
//     4  u16 format_version   kFormatVersion
//     6  u16 header_bytes     64
//     8  u32 dataset_version  monotonically increasing per publication
//    12  u32 entry_stride     48
//    16  u64 entry_count
//    24  u64 string_pool_bytes
//    32  f64 created_at_s     simulated publication time
//    40  u32 source_offset    snapshot-level source string (in pool)
//    44  u32 source_len
//    48  u32 payload_crc32    CRC-32 over entries || string pool
//    52  u32 header_crc32     CRC-32 over header bytes [0, 52)
//    56  u64 reserved (0)
//   [entries: entry_count x 48 bytes, sorted by (network, prefix length),
//    no duplicate prefixes]
//     0  u32 network          host bits below prefix_len are zero
//     4  u8  prefix_len       0..32
//     5  u8  method           publish::Method
//     6  u8  tier             core::CbgVerdict
//     7  u8  flags            reserved, 0
//     8  f64 lat_deg
//    16  f64 lon_deg
//    24  f64 measured_at_s    simulated measurement time
//    32  f32 confidence_radius_km
//    36  f32 ttl_s            staleness horizon relative to measured_at_s
//    40  u32 provenance_offset (into string pool)
//    44  u32 provenance_len
//   [string pool: string_pool_bytes bytes, deduplicated]
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/cbg.h"
#include "geo/geopoint.h"
#include "net/flat_lpm.h"
#include "net/ipv4.h"

namespace geoloc::publish {

inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kEntryStride = 48;

/// The technique that produced an entry.
enum class Method : std::uint8_t {
  Cbg,          ///< constraint-based geolocation over the VP mesh
  TwoStep,      ///< million-scale two-step VP selection (Section 5.1.4)
  StreetLevel,  ///< three-tier landmark pipeline (Section 3.2)
  GeoDb,        ///< imported from a commercial geolocation database
  Fused,        ///< CBG fused with verified operator evidence (fusion::)
};
std::string_view to_string(Method m) noexcept;

/// An owning entry, the builder's input (and the diff tool's working form).
struct Record {
  net::Prefix prefix;
  geo::GeoPoint location;
  Method method = Method::Cbg;
  core::CbgVerdict tier = core::CbgVerdict::Ok;
  float confidence_radius_km = 0.0f;
  float ttl_s = 0.0f;            ///< 0 disables staleness for the entry
  double measured_at_s = 0.0;    ///< simulated time of the measurement
  std::string provenance;
};

/// A decoded entry; `provenance` views into the snapshot's buffer and is
/// valid for the snapshot's lifetime.
struct SnapshotEntry {
  net::Prefix prefix;
  geo::GeoPoint location;
  Method method = Method::Cbg;
  core::CbgVerdict tier = core::CbgVerdict::Ok;
  float confidence_radius_km = 0.0f;
  float ttl_s = 0.0f;
  double measured_at_s = 0.0;
  std::string_view provenance;

  /// Entry age at `now_s` (simulated seconds).
  [[nodiscard]] double age_s(double now_s) const noexcept {
    return now_s - measured_at_s;
  }
  /// First instant at which the entry counts as stale, or +inf when
  /// ttl_s == 0 (staleness disabled). Exposed so every consumer —
  /// stale_at here, serve::GeoService::stale_prefixes, the longitudinal
  /// driver's TTL policy — derives the boundary from one definition.
  [[nodiscard]] double stale_horizon_s() const noexcept {
    return ttl_s > 0.0f
               ? measured_at_s + static_cast<double>(ttl_s)
               : std::numeric_limits<double>::infinity();
  }
  /// True when the entry has reached its staleness horizon at `now_s`:
  /// stale iff now_s >= measured_at_s + ttl_s (ttl_s == 0 never goes
  /// stale). The boundary is *inclusive* — an entry measured at the start
  /// of an epoch with ttl equal to the epoch length is due exactly at the
  /// next epoch. An earlier version used a strict `>`, so under exact
  /// epoch arithmetic (ttl == k * epoch_s) entries were never considered
  /// stale at the instant they were due and TTL-driven re-measurement
  /// silently skipped a full epoch.
  [[nodiscard]] bool stale_at(double now_s) const noexcept {
    return now_s >= stale_horizon_s();
  }
};

/// Copy a decoded entry back into owning form (to carry entries of one
/// snapshot into the next version's builder).
Record to_record(const SnapshotEntry& e);

/// Snapshot-level metadata stamped by the builder.
struct SnapshotMeta {
  std::uint32_t dataset_version = 1;
  double created_at_s = 0.0;  ///< simulated publication time
  std::string source;         ///< campaign / pipeline description
};

/// An immutable loaded snapshot. Thread-safe for concurrent reads.
class Snapshot {
 public:
  /// Parse and validate a snapshot from raw bytes (takes ownership).
  /// Returns nullptr and sets *error on any corruption.
  static std::shared_ptr<const Snapshot> from_bytes(
      std::vector<std::byte> bytes, std::string* error = nullptr);

  /// Read and validate a snapshot file. A file that exists but fails
  /// validation is quarantined (renamed to `<path>.corrupt`, see
  /// util/durable.h) unless `quarantine_corrupt` is false, so the caller's
  /// republish path writes a fresh file instead of fighting the bad one.
  static std::shared_ptr<const Snapshot> load(const std::string& path,
                                              std::string* error = nullptr,
                                              bool quarantine_corrupt = true);

  [[nodiscard]] std::uint32_t dataset_version() const noexcept {
    return dataset_version_;
  }
  [[nodiscard]] double created_at_s() const noexcept { return created_at_s_; }
  [[nodiscard]] std::string_view source() const noexcept { return source_; }
  [[nodiscard]] std::uint32_t payload_crc() const noexcept {
    return payload_crc_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entry_count_; }
  [[nodiscard]] bool empty() const noexcept { return entry_count_ == 0; }

  /// Decode entry `i` (entries are sorted by (network, prefix length)).
  /// Precondition: i < size().
  [[nodiscard]] SnapshotEntry entry(std::size_t i) const noexcept;

  /// Longest-prefix match over the snapshot's entries.
  [[nodiscard]] std::optional<SnapshotEntry> find(net::IPv4Address a) const;

  /// The flattened LPM index (entry indices as values), for callers that
  /// batch lookups or benchmark the structure directly.
  [[nodiscard]] const net::FlatLpm<std::uint32_t>& index() const noexcept {
    return index_;
  }

 private:
  Snapshot() = default;

  std::vector<std::byte> raw_;
  std::size_t entry_count_ = 0;
  std::size_t pool_offset_ = 0;  ///< byte offset of the string pool
  std::uint32_t dataset_version_ = 0;
  std::uint32_t payload_crc_ = 0;
  double created_at_s_ = 0.0;
  std::string_view source_;
  net::FlatLpm<std::uint32_t> index_;
};

/// Assembles records into the binary format. Records may be added in any
/// order; build() sorts by (network, prefix length) and, for duplicate
/// prefixes, keeps the *last* one added (so "carry over v1, then add the
/// refreshed entries" composes the way callers expect).
class SnapshotBuilder {
 public:
  void add(Record record);
  void add(std::span<const Record> records);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Serialize. Deterministic: equal inputs yield identical bytes.
  [[nodiscard]] std::vector<std::byte> build(const SnapshotMeta& meta) const;

  /// Serialize straight to a file, atomically: the bytes are staged at a
  /// temp path, fsync'd and renamed over `path` (util/durable.h), so a
  /// crash mid-publish never leaves a torn snapshot behind. Returns false
  /// and sets *error on I/O failure (the destination is then untouched).
  bool write_file(const std::string& path, const SnapshotMeta& meta,
                  std::string* error = nullptr) const;

 private:
  std::vector<Record> records_;
};

}  // namespace geoloc::publish
