// Streaming, tiled RTT production (DESIGN.md §14).
//
// The dense campaigns materialise a full VP × target RttMatrix up front —
// O(rows × cols) floats and seconds of synthesis even when a consumer needs
// a sliver of it. RttTileSource replaces the up-front matrix with an
// on-demand producer of fixed-size VP-block × target-block tiles:
// consumers ask for the tile covering (r, c), the source generates it
// (rows parallelised on util::parallel), keeps at most
// GEOLOC_RTT_TILE_BUDGET tiles in a bounded LRU cache, and evicts
// deterministically in least-recently-used order. Campaign cost then
// scales with the measurements a consumer actually touches, not with
// world size².
//
// Determinism and equivalence: every cell's randomness is the same pure
// function of (row, column) the dense loops use —
// stream.fork("m", (r << 20) | c) — and the cell synthesis routes through
// the bit-identical batched base-RTT path, so a tile holds exactly the
// bytes the dense matrix holds at those coordinates, for any tile shape,
// any access order, any eviction history and any GEOLOC_THREADS. The
// scale test suite asserts this (tiled materialise == dense loops,
// byte for byte). The (r << 20) | c packing caps campaigns at 2^20
// (1 048 576) columns, one bit above the 1 M-target acceptance point;
// the constructor enforces the bound instead of silently colliding.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "scenario/rtt_matrix.h"
#include "sim/latency_model.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::scenario {

class Scenario;

/// Tile geometry. Zero means "take the env default":
/// GEOLOC_RTT_TILE_VPS (256) rows × GEOLOC_RTT_TILE_TARGETS (512) columns.
struct TileShape {
  std::size_t vp_block = 0;
  std::size_t target_block = 0;
};

/// What one campaign measures. Column c pings the destination group
/// dsts[c * group .. (c + 1) * group): group == 1 is a plain target
/// campaign (cell = min RTT), group == 3 the /24-representative campaign
/// (cell = median over the responsive representatives' min RTTs, exactly
/// as the dense representative_rtts loop computes it).
struct TileCampaign {
  const sim::World* world = nullptr;
  const sim::LatencyModel* latency = nullptr;
  std::vector<sim::HostId> vps;
  std::vector<sim::HostId> dsts;
  std::size_t group = 1;
  util::RngStream stream{0};  ///< per-cell forks "m", (r << 20) | c
  int ping_packets = 3;
};

class RttTileSource {
 public:
  /// One generated tile: row-major floats, NaN = no response.
  struct Tile {
    std::size_t vp_begin = 0, vp_end = 0;
    std::size_t target_begin = 0, target_end = 0;
    std::vector<float> rtt;

    [[nodiscard]] std::size_t rows() const noexcept { return vp_end - vp_begin; }
    [[nodiscard]] std::size_t cols() const noexcept {
      return target_end - target_begin;
    }
    /// Cell (r, c) in *global* matrix coordinates.
    [[nodiscard]] float at(std::size_t r, std::size_t c) const {
      return rtt[(r - vp_begin) * cols() + (c - target_begin)];
    }
  };

  struct Stats {
    std::uint64_t hits = 0;        ///< tile() served from the cache
    std::uint64_t misses = 0;      ///< tiles generated on demand
    std::uint64_t evictions = 0;   ///< tiles discarded by the LRU bound
    std::uint64_t generated_cells = 0;
    std::size_t resident_tiles = 0;
    std::size_t resident_bytes = 0;       ///< tile payload bytes held now
    std::size_t peak_resident_bytes = 0;  ///< high-water mark incl. scratch
  };

  /// `budget_tiles` bounds the cache (0 = GEOLOC_RTT_TILE_BUDGET, default
  /// 64, clamped to >= 1). Throws std::invalid_argument on a campaign with
  /// more than 2^20 columns or a dsts size that is not a multiple of group.
  explicit RttTileSource(TileCampaign campaign, TileShape shape = {},
                         std::size_t budget_tiles = 0);

  /// The scenario's two campaigns, cell-for-cell equal to the dense
  /// target_rtts() / representative_rtts() materialisation loops.
  static RttTileSource for_targets(const Scenario& s, TileShape shape = {},
                                   std::size_t budget_tiles = 0);
  static RttTileSource for_representatives(const Scenario& s,
                                           TileShape shape = {},
                                           std::size_t budget_tiles = 0);

  [[nodiscard]] std::size_t rows() const noexcept {
    return campaign_.vps.size();
  }
  [[nodiscard]] std::size_t cols() const noexcept {
    return campaign_.dsts.size() / campaign_.group;
  }
  [[nodiscard]] std::size_t vp_blocks() const noexcept;
  [[nodiscard]] std::size_t target_blocks() const noexcept;
  [[nodiscard]] const TileShape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t budget_tiles() const noexcept { return budget_; }
  [[nodiscard]] const TileCampaign& campaign() const noexcept {
    return campaign_;
  }

  /// Borrow the tile at block coordinates, generating it on a cache miss
  /// and evicting the least recently used tile past the budget. The
  /// reference stays valid until the next tile()/at() call.
  const Tile& tile(std::size_t vp_block, std::size_t target_block);

  /// Cell (r, c) through the cache — the random-access consumer's path.
  float at(std::size_t r, std::size_t c);

  /// Cell (r, c) computed directly, touching neither the cache nor other
  /// cells — the sparse consumer's path (k selected VPs ping one target).
  [[nodiscard]] float cell(std::size_t r, std::size_t c) const;

  /// Assemble the full dense matrix by sweeping tiles in row-major block
  /// order with a single scratch tile (generate → copy → discard); the
  /// cache is bypassed, so peak memory is matrix + one tile.
  [[nodiscard]] RttMatrix materialise() const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void generate(std::size_t vp_block, std::size_t target_block,
                Tile& out) const;
  [[nodiscard]] float synthesise_cell(std::size_t r, std::size_t c,
                                      const double* base) const;
  void note_resident(std::size_t bytes) const;

  TileCampaign campaign_;
  TileShape shape_;
  std::size_t budget_ = 0;
  sim::LatencyModel::HostSoA vp_soa_;
  sim::LatencyModel::HostSoA dst_soa_;

  struct CacheEntry {
    std::size_t key = 0;
    Tile tile;
  };
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<std::size_t, std::list<CacheEntry>::iterator> cached_;
  mutable Stats stats_;
};

/// Env-knob readers, shared with the benches: tile geometry and cache
/// budget (see util/env.h's registry).
[[nodiscard]] TileShape tile_shape_from_env();
[[nodiscard]] std::size_t tile_budget_from_env();

}  // namespace geoloc::scenario
