#include "scenario/presets.h"

namespace geoloc::scenario {

ScenarioConfig paper_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  return c;  // the struct defaults ARE the paper-scale configuration
}

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.catalog.anchor_quota = {/*af=*/3, /*as=*/20, /*eu=*/60, /*na=*/18,
                            /*oc=*/3, /*sa=*/5};
  c.catalog.anchors_misgeolocated = 3;
  c.catalog.probes_kept = 800;
  c.catalog.probes_misgeolocated = 8;
  c.catalog.anchor_as_pool = 80;
  c.catalog.probe_as_pool = 300;
  c.world.satellites_per_city = 1.2;
  c.web.websites_per_1k_pop = 0.08;
  c.web.max_websites_per_place = 1'200;
  return c;
}

}  // namespace geoloc::scenario
