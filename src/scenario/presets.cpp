#include "scenario/presets.h"

namespace geoloc::scenario {

ScenarioConfig paper_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  return c;  // the struct defaults ARE the paper-scale configuration
}

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.catalog.anchor_quota = {/*af=*/3, /*as=*/20, /*eu=*/60, /*na=*/18,
                            /*oc=*/3, /*sa=*/5};
  c.catalog.anchors_misgeolocated = 3;
  c.catalog.probes_kept = 800;
  c.catalog.probes_misgeolocated = 8;
  c.catalog.anchor_as_pool = 80;
  c.catalog.probe_as_pool = 300;
  c.world.satellites_per_city = 1.2;
  c.web.websites_per_1k_pop = 0.08;
  c.web.max_websites_per_place = 1'200;
  return c;
}

atlas::FaultConfig calm_weather() {
  return {};  // enabled = false: no faults, bit-identical to no fault layer
}

atlas::FaultConfig stormy_weather(std::uint64_t seed) {
  atlas::FaultConfig w;
  w.enabled = true;
  w.seed = seed;
  // ~6 % of probes gone for good within a campaign day (anchors at a
  // quarter of that hazard).
  w.vp_abandon_per_day = 0.06;
  // Roughly one outage spell per VP every other day, half an hour each.
  w.vp_outages_per_day = 0.5;
  w.vp_outage_mean_s = 1'800.0;
  // More than a tenth of destinations dark for the whole campaign.
  w.target_unresponsive_rate = 0.12;
  // API weather: transient round failures and credit rejections.
  w.round_failure_rate = 0.05;
  w.measurement_rejection_rate = 0.01;
  return w;
}

atlas::FaultConfig drizzle_weather(std::uint64_t seed) {
  atlas::FaultConfig w;
  w.enabled = true;
  w.seed = seed;
  w.vp_abandon_per_day = 0.01;
  w.vp_outages_per_day = 0.1;
  w.vp_outage_mean_s = 900.0;
  w.target_unresponsive_rate = 0.03;
  w.round_failure_rate = 0.01;
  w.measurement_rejection_rate = 0.002;
  return w;
}

}  // namespace geoloc::scenario
