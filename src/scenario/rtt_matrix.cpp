#include "scenario/rtt_matrix.h"

#include <limits>

#include "util/durable.h"

namespace geoloc::scenario {

namespace {
// Caller magic for the durable frame ("GEOLOCM2"): version 2 of the
// RTT-matrix cache, the first to carry checksums. Version-1 files (bare
// header + floats) fail the frame magic, are quarantined, and regenerate.
constexpr std::uint64_t kMagic = 0x47454F4C4F434D32ULL;
constexpr std::uint32_t kVersion = 2;
}  // namespace

bool RttMatrix::save(const std::string& path, std::uint64_t tag) const {
  util::durable::PayloadWriter w;
  w.pod(tag);
  w.pod(static_cast<std::uint64_t>(rows_));
  w.pod(static_cast<std::uint64_t>(cols_));
  if (!data_.empty()) w.bytes(data_.data(), data_.size() * sizeof(float));
  return util::durable::write_framed(path, kMagic, kVersion, w.data());
}

bool RttMatrix::load(const std::string& path, std::uint64_t tag) {
  const util::durable::FramedRead r = util::durable::read_framed(path, kMagic);
  if (!r.ok() || r.version != kVersion) return false;

  util::durable::PayloadReader in(r.payload);
  std::uint64_t file_tag = 0, rows = 0, cols = 0;
  if (!in.pod(file_tag) || !in.pod(rows) || !in.pod(cols)) return false;
  // A tag mismatch is a stale cache from another configuration, not
  // corruption: miss, regenerate, overwrite.
  if (file_tag != tag) return false;

  // Validate the header dimensions against the actual payload size before
  // allocating anything: rows*cols must not overflow, and the cell region
  // must be exactly rows*cols floats — a checksummed-but-malformed payload
  // (buggy or hostile writer) must not trigger a huge allocation or a
  // short read into a partially-filled matrix.
  if (cols != 0 &&
      rows > std::numeric_limits<std::uint64_t>::max() / cols) {
    return false;
  }
  const std::uint64_t cells = rows * cols;
  if (cells > in.remaining() / sizeof(float) ||
      in.remaining() != cells * sizeof(float)) {
    return false;
  }

  rows_ = static_cast<std::size_t>(rows);
  cols_ = static_cast<std::size_t>(cols);
  data_.assign(static_cast<std::size_t>(cells), 0.0F);
  if (!data_.empty() &&
      !in.bytes(data_.data(), data_.size() * sizeof(float))) {
    data_.clear();
    rows_ = cols_ = 0;
    return false;
  }
  return in.exhausted();
}

}  // namespace geoloc::scenario
