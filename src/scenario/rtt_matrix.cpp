#include "scenario/rtt_matrix.h"

#include <cstdio>
#include <memory>

namespace geoloc::scenario {

namespace {
constexpr std::uint64_t kMagic = 0x47454F4C4F433031ULL;  // "GEOLOC01"

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool RttMatrix::save(const std::string& path, std::uint64_t tag) const {
  FilePtr f{std::fopen(path.c_str(), "wb")};
  if (!f) return false;
  const std::uint64_t header[4] = {kMagic, tag, rows_, cols_};
  if (std::fwrite(header, sizeof header, 1, f.get()) != 1) return false;
  if (!data_.empty() &&
      std::fwrite(data_.data(), sizeof(float), data_.size(), f.get()) !=
          data_.size()) {
    return false;
  }
  return true;
}

bool RttMatrix::load(const std::string& path, std::uint64_t tag) {
  FilePtr f{std::fopen(path.c_str(), "rb")};
  if (!f) return false;
  std::uint64_t header[4] = {};
  if (std::fread(header, sizeof header, 1, f.get()) != 1) return false;
  if (header[0] != kMagic || header[1] != tag) return false;
  rows_ = static_cast<std::size_t>(header[2]);
  cols_ = static_cast<std::size_t>(header[3]);
  data_.assign(rows_ * cols_, 0.0F);
  if (!data_.empty() &&
      std::fread(data_.data(), sizeof(float), data_.size(), f.get()) !=
          data_.size()) {
    data_.clear();
    rows_ = cols_ = 0;
    return false;
  }
  return true;
}

}  // namespace geoloc::scenario
