// Dense VP x target RTT matrices — the tier-1 measurement campaigns of both
// replicated papers, materialised once and shared by every experiment.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace geoloc::scenario {

/// Row-major dense matrix of minimum RTTs in milliseconds.
/// NaN encodes "no response" (unresponsive destination or total loss).
class RttMatrix {
 public:
  RttMatrix() = default;
  /// Throws std::length_error when rows * cols overflows std::size_t — the
  /// durable loader validates its counts the same way, and a silently
  /// wrapped allocation here would hand out a tiny matrix with out-of-range
  /// indexing instead of failing loudly.
  RttMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(checked_extent(rows, cols),
                                        std::numeric_limits<float>::quiet_NaN()) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, float v) { data_[r * cols_ + c] = v; }

  [[nodiscard]] static bool is_missing(float v) noexcept {
    return std::isnan(v);
  }

  /// Binary (de)serialisation for the scenario disk cache, on the durable
  /// framed format (util/durable.h): saves are atomic (temp file + rename)
  /// and loads validate an XXH64 checksum before interpreting a byte, so a
  /// torn or bit-rotted cache is quarantined and regenerated instead of
  /// read as garbage. `tag` guards against mixing caches from different
  /// configurations; a mismatch is a plain miss, not corruption.
  bool save(const std::string& path, std::uint64_t tag) const;
  bool load(const std::string& path, std::uint64_t tag);

 private:
  [[nodiscard]] static std::size_t checked_extent(std::size_t rows,
                                                  std::size_t cols) {
    if (cols != 0 &&
        rows > std::numeric_limits<std::size_t>::max() / cols) {
      throw std::length_error("RttMatrix: rows * cols overflows size_t");
    }
    return rows * cols;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace geoloc::scenario
