// The fully assembled replication scenario: world + datasets + models.
//
// Construction follows the paper's data pipeline:
//   1. build the world (places, ASes),
//   2. generate anchors and probes (dataset::build_catalog) — including the
//      hosts with bogus geolocation that Section 4.3 exists to catch,
//   3. build the hitlist representatives for every anchor /24,
//   4. generate the web ecosystem (street-level landmark candidates),
//   5. sanitise anchors then probes (speed-of-Internet mesh filtering),
//   6. expose the sanitised target and VP sets every experiment consumes.
//
// The two measurement campaigns shared by the experiments — min-RTT from
// every VP to every target, and to every target's /24 representatives —
// are materialised lazily as dense matrices and cached on disk, because a
// single core re-deriving ~30M RTT samples per bench binary would dominate
// every run.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/catalog.h"
#include "dataset/hitlist.h"
#include "dataset/population_grid.h"
#include "dataset/sanitize.h"
#include "landmark/ecosystem.h"
#include "landmark/mapping_service.h"
#include "scenario/rtt_matrix.h"
#include "sim/latency_model.h"
#include "sim/world.h"

namespace geoloc::scenario {

/// The default directory for cached RTT matrices ("geoloc_cache"): the one
/// definition ScenarioConfig and the bench mains share.
[[nodiscard]] const std::string& default_cache_dir();

struct ScenarioConfig {
  std::uint64_t seed = 20230415;
  sim::WorldConfig world;
  dataset::CatalogConfig catalog;
  dataset::HitlistConfig hitlist;
  sim::LatencyModelConfig latency;
  landmark::EcosystemConfig web;
  bool build_web = true;   ///< skip the web ecosystem when not needed
  int ping_packets = 3;    ///< Atlas default per measurement
  /// Directory for cached RTT matrices; empty disables the cache. The
  /// GEOLOC_CACHE_DIR environment variable, when set, overrides this.
  std::string cache_dir = default_cache_dir();

  /// Stable fingerprint of everything that affects generated data; used as
  /// the disk-cache tag.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config = {});

  /// A scenario without the web ecosystem (million-scale experiments only):
  /// cheaper to build.
  static Scenario without_web(ScenarioConfig config = {});

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }

  [[nodiscard]] sim::World& world() noexcept { return *world_; }
  [[nodiscard]] const sim::World& world() const noexcept { return *world_; }
  [[nodiscard]] const sim::LatencyModel& latency() const noexcept {
    return *latency_;
  }
  [[nodiscard]] const dataset::Catalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const dataset::Hitlist& hitlist() const noexcept {
    return *hitlist_;
  }
  [[nodiscard]] const landmark::MappingService& mapping() const noexcept {
    return mapping_;
  }
  /// Precondition: the scenario was built with build_web.
  [[nodiscard]] const landmark::WebEcosystem& web() const;
  [[nodiscard]] bool has_web() const noexcept { return web_ != nullptr; }
  [[nodiscard]] const dataset::PopulationGrid& population() const;

  // -- sanitised datasets (Section 4.3 outputs) ----------------------------
  /// The study's targets: sanitised anchors (723 by default).
  [[nodiscard]] const std::vector<sim::HostId>& targets() const noexcept {
    return targets_;
  }
  /// Million-scale VP set: sanitised probes + anchors.
  [[nodiscard]] const std::vector<sim::HostId>& vps() const noexcept {
    return vps_;
  }
  /// Street-level VP set: the anchors only (Section 4.2.1 of the paper).
  [[nodiscard]] const std::vector<sim::HostId>& anchor_vps() const noexcept {
    return targets_;
  }
  [[nodiscard]] const dataset::SanitizeResult& anchor_sanitisation()
      const noexcept {
    return anchor_sanitisation_;
  }
  [[nodiscard]] const dataset::SanitizeResult& probe_sanitisation()
      const noexcept {
    return probe_sanitisation_;
  }

  // -- measurement campaigns ----------------------------------------------
  // Materialisation runs on the parallel engine (bit-identical for any
  // GEOLOC_THREADS; see DESIGN.md §9), but the lazy-init itself is not
  // guarded: touch each matrix once from a single thread before sharing the
  // scenario across parallel tasks — the eval entry points do this.
  /// Min RTT (ping_packets packets) from vps()[r] to targets()[c].
  [[nodiscard]] const RttMatrix& target_rtts() const;
  /// Median over the responsive /24 representatives of targets()[c] of the
  /// min RTT from vps()[r]; NaN when no representative answered.
  [[nodiscard]] const RttMatrix& representative_rtts() const;

  /// Row index of a VP / column index of a target in the matrices.
  [[nodiscard]] std::size_t vp_index(sim::HostId vp) const;
  [[nodiscard]] std::size_t target_index(sim::HostId target) const;

  /// Drop the materialised RTT matrices and detach this scenario from the
  /// disk cache. Required after mutating the world (sim::ChurnModel): the
  /// matrices describe the pre-mutation world, and the disk cache is keyed
  /// by the *config* fingerprint, which does not see world mutations — a
  /// churned scenario must neither read nor write it.
  void invalidate_rtt_matrices();

 private:
  Scenario(ScenarioConfig config, bool build_web);
  void build();
  [[nodiscard]] std::optional<std::string> cache_path(
      const std::string& name) const;

  ScenarioConfig config_;
  std::unique_ptr<sim::World> world_;
  dataset::Catalog catalog_;
  std::unique_ptr<dataset::Hitlist> hitlist_;
  landmark::MappingService mapping_;
  std::unique_ptr<landmark::WebEcosystem> web_;
  std::unique_ptr<sim::LatencyModel> latency_;
  mutable std::unique_ptr<dataset::PopulationGrid> population_;

  dataset::SanitizeResult anchor_sanitisation_;
  dataset::SanitizeResult probe_sanitisation_;
  std::vector<sim::HostId> targets_;
  std::vector<sim::HostId> vps_;
  std::unordered_map<sim::HostId, std::size_t> vp_index_;
  std::unordered_map<sim::HostId, std::size_t> target_index_;

  mutable std::unique_ptr<RttMatrix> target_rtts_;
  mutable std::unique_ptr<RttMatrix> rep_rtts_;
  /// Set by invalidate_rtt_matrices(): the config fingerprint no longer
  /// describes the (mutated) world, so the disk cache is off for good,
  /// GEOLOC_CACHE_DIR override included.
  bool cache_disabled_ = false;
};

}  // namespace geoloc::scenario
