// Ready-made scenario configurations.
#pragma once

#include "atlas/faults.h"
#include "scenario/scenario.h"

namespace geoloc::scenario {

/// The paper-scale configuration: 723 sanitised anchors (732 generated, 9
/// misgeolocated), 10,000 sanitised probes (10,096 generated, 96
/// misgeolocated), full web ecosystem. This is the configuration every
/// bench binary uses.
ScenarioConfig paper_config(std::uint64_t seed = 20230415);

/// A miniature configuration for unit/integration tests and quick demos:
/// ~100 anchors, ~800 probes, a thinned web ecosystem. Same code paths,
/// seconds instead of minutes.
ScenarioConfig small_config(std::uint64_t seed = 42);

// -- platform weather presets (atlas fault layer) --------------------------

/// Fair skies: the fault layer fully disabled. Campaigns executed under
/// this preset are bit-identical to campaigns run without a fault layer.
atlas::FaultConfig calm_weather();

/// Operational reality dialled up: ≥5 % probe churn over a campaign day,
/// ≥10 % of destinations unresponsive, transient API-round failures, VP
/// outage spells, and occasional credit rejections. Heavy, survivable —
/// what the resilient executor exists for.
atlas::FaultConfig stormy_weather(std::uint64_t seed = 20231031);

/// Between calm and stormy: the background failure level a long-running
/// Atlas campaign absorbs on an ordinary day.
atlas::FaultConfig drizzle_weather(std::uint64_t seed = 20230601);

}  // namespace geoloc::scenario
