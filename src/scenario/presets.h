// Ready-made scenario configurations.
#pragma once

#include "scenario/scenario.h"

namespace geoloc::scenario {

/// The paper-scale configuration: 723 sanitised anchors (732 generated, 9
/// misgeolocated), 10,000 sanitised probes (10,096 generated, 96
/// misgeolocated), full web ecosystem. This is the configuration every
/// bench binary uses.
ScenarioConfig paper_config(std::uint64_t seed = 20230415);

/// A miniature configuration for unit/integration tests and quick demos:
/// ~100 anchors, ~800 probes, a thinned web ecosystem. Same code paths,
/// seconds instead of minutes.
ScenarioConfig small_config(std::uint64_t seed = 42);

}  // namespace geoloc::scenario
