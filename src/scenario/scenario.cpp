#include "scenario/scenario.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/tile_source.h"
#include "util/env.h"

namespace geoloc::scenario {

namespace {

/// RTT-matrix materialisation series: cache hit/miss counters plus a wall
/// histogram over materialisations. Observed strictly *around* the
/// parallel_for (which derives every cell's randomness from (r, c)), so
/// the matrices — and the disk-cache tag they feed — are untouched by
/// instrumentation.
struct MatrixMetrics {
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cells;
  obs::Histogram& materialise_wall_ms;
};

MatrixMetrics& matrix_metrics() {
  static auto& reg = obs::Registry::instance();
  static MatrixMetrics m{reg.counter("scenario.rtt_matrix.cache_hits"),
                         reg.counter("scenario.rtt_matrix.cache_misses"),
                         reg.counter("scenario.rtt_matrix.cells"),
                         reg.histogram("scenario.rtt_matrix.wall_ms")};
  return m;
}

/// Fold a double into the fingerprint bit-exactly.
std::uint64_t mix(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

const std::string& default_cache_dir() {
  static const std::string dir = "geoloc_cache";
  return dir;
}

std::uint64_t ScenarioConfig::fingerprint() const {
  // Bump whenever dataset/model *generation code* changes in a way configs
  // cannot express — it invalidates every on-disk cache.
  constexpr std::uint64_t kDataLayoutVersion = 3;

  std::uint64_t h = 0x1234fedcULL;
  h = mix(h, kDataLayoutVersion);
  h = mix(h, seed);
  h = mix(h, world.seed);
  h = mix(h, world.satellites_per_city);
  h = mix(h, world.satellite_min_km);
  h = mix(h, world.satellite_max_km);
  h = mix(h, world.more_specific_announce_rate);
  for (const int q :
       {catalog.anchor_quota.af, catalog.anchor_quota.as,
        catalog.anchor_quota.eu, catalog.anchor_quota.na,
        catalog.anchor_quota.oc, catalog.anchor_quota.sa,
        catalog.anchors_misgeolocated, catalog.probes_kept,
        catalog.probes_misgeolocated, catalog.anchor_as_pool,
        catalog.probe_as_pool}) {
    h = mix(h, static_cast<std::uint64_t>(q));
  }
  for (const double v :
       {catalog.probe_weights.af, catalog.probe_weights.as,
        catalog.probe_weights.eu, catalog.probe_weights.na,
        catalog.probe_weights.oc, catalog.probe_weights.sa,
        catalog.anchor_last_mile_min_ms, catalog.anchor_last_mile_max_ms,
        catalog.anchor_last_mile_high_floor_ms,
        catalog.anchor_last_mile_high_mean_ms,
        catalog.probe_last_mile_low_min_ms, catalog.probe_last_mile_low_max_ms,
        catalog.probe_last_mile_high_mean_ms,
        catalog.probe_satellite_bias, catalog.anchor_offset_mean_km,
        catalog.probe_offset_mean_km, catalog.misgeolocation_min_km}) {
    h = mix(h, v);
  }
  for (const double v : catalog.anchor_high_last_mile_prob) h = mix(h, v);
  for (const double v : catalog.anchor_satellite_bias_by_continent) {
    h = mix(h, v);
  }
  for (const double v : catalog.probe_high_last_mile_prob) h = mix(h, v);
  for (const double v : world.poorly_connected_city_prob) h = mix(h, v);
  h = mix(h, world.access_penalty_floor_ms);
  h = mix(h, world.access_penalty_mean_ms);
  h = mix(h, world.local_peering_rate);
  for (const double v :
       {hitlist.colocated_rate, hitlist.stray_min_km, hitlist.responsive_rate,
        hitlist.rep_last_mile_min_ms, hitlist.rep_last_mile_max_ms}) {
    h = mix(h, v);
  }
  for (const double v :
       {latency.min_inflation, latency.inflation_mu, latency.inflation_sigma,
        latency.inflation_host_sigma, latency.short_path_boost_km,
        latency.short_path_floor_km, latency.overhead_mean_ms,
        latency.overhead_local_mean_ms, latency.jitter_mean_ms,
        latency.loss_rate,
        latency.router_asym_sigma, latency.router_icmp_mean_ms,
        latency.router_icmp_tail_scale_ms, latency.router_icmp_tail_alpha,
        latency.router_icmp_tail_prob}) {
    h = mix(h, v);
  }
  for (const double v :
       {web.websites_per_1k_pop, web.hotspot_prob, web.hotspot_spread_km,
        web.loose_spread_km, web.local_share, web.cdn_share, web.chain_rate,
        web.zip_mismatch_rate, web.cdn_detect_rate, web.remote_detect_rate,
        web.local_false_detect_rate, web.webserver_last_mile_min_ms,
        web.webserver_last_mile_max_ms}) {
    h = mix(h, v);
  }
  for (const int q : {web.max_websites_per_place, web.min_websites_per_city,
                      web.cdn_pop_count, web.datacenter_hub_count}) {
    h = mix(h, static_cast<std::uint64_t>(q));
  }
  h = mix(h, static_cast<std::uint64_t>(ping_packets));
  h = mix(h, static_cast<std::uint64_t>(build_web ? 1 : 0));
  return h;
}

Scenario::Scenario(ScenarioConfig config)
    : Scenario(std::move(config), /*build_web=*/true) {}

Scenario Scenario::without_web(ScenarioConfig config) {
  config.build_web = false;
  return Scenario(std::move(config), false);
}

Scenario::Scenario(ScenarioConfig config, bool build_web) : config_(config) {
  config_.build_web = build_web && config_.build_web;
  build();
}

void Scenario::build() {
  sim::WorldConfig wc = config_.world;
  wc.seed = config_.seed;
  world_ = std::make_unique<sim::World>(wc);

  catalog_ = dataset::build_catalog(*world_, config_.catalog);
  hitlist_ = std::make_unique<dataset::Hitlist>(
      dataset::Hitlist::build(*world_, catalog_.anchors, config_.hitlist));
  if (config_.build_web) {
    web_ = std::make_unique<landmark::WebEcosystem>(
        landmark::WebEcosystem::build(*world_, mapping_, config_.web));
  }
  latency_ = std::make_unique<sim::LatencyModel>(*world_, config_.latency);

  dataset::SanitizeConfig sc;
  sc.ping_packets = config_.ping_packets;
  anchor_sanitisation_ =
      dataset::sanitize_anchors(*latency_, catalog_.anchors, sc);
  probe_sanitisation_ = dataset::sanitize_probes(
      *latency_, catalog_.probes, anchor_sanitisation_.kept, sc);

  targets_ = anchor_sanitisation_.kept;
  vps_ = targets_;
  vps_.insert(vps_.end(), probe_sanitisation_.kept.begin(),
              probe_sanitisation_.kept.end());

  for (std::size_t i = 0; i < vps_.size(); ++i) vp_index_[vps_[i]] = i;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    target_index_[targets_[i]] = i;
  }
}

const landmark::WebEcosystem& Scenario::web() const {
  if (!web_) {
    throw std::logic_error(
        "scenario was built without the web ecosystem (build_web=false)");
  }
  return *web_;
}

const dataset::PopulationGrid& Scenario::population() const {
  if (!population_) {
    population_ = std::make_unique<dataset::PopulationGrid>(*world_);
  }
  return *population_;
}

std::optional<std::string> Scenario::cache_path(
    const std::string& name) const {
  if (cache_disabled_) return std::nullopt;
  const std::string dir = util::env::string_or("GEOLOC_CACHE_DIR",
                                               config_.cache_dir);
  if (dir.empty()) return std::nullopt;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return std::nullopt;
  char tag[32];
  std::snprintf(tag, sizeof tag, "%016llx",
                static_cast<unsigned long long>(config_.fingerprint()));
  return dir + "/" + name + "-" + tag + ".bin";
}

const RttMatrix& Scenario::target_rtts() const {
  if (target_rtts_) return *target_rtts_;
  const obs::TraceSpan span("scenario.rtt_matrix.target");
  const std::uint64_t tag = config_.fingerprint() ^ 0x7a7a1ULL;
  const auto path = cache_path("target-rtts");
  auto m = std::make_unique<RttMatrix>();
  if (path && m->load(*path, tag)) {
    matrix_metrics().cache_hits.add();
    target_rtts_ = std::move(m);
    return *target_rtts_;
  }
  matrix_metrics().cache_misses.add();
  const auto start = std::chrono::steady_clock::now();
  // Small worlds still get the dense matrix, but it is assembled from the
  // streaming tile source (one scratch tile at a time) — byte-identical to
  // the old per-cell loop for any tile shape and GEOLOC_THREADS, which
  // keeps the disk-cache tag honest. Million-scale consumers skip this
  // method entirely and stream the tiles directly (DESIGN.md §14).
  m = std::make_unique<RttMatrix>(
      RttTileSource::for_targets(*this).materialise());
  matrix_metrics().cells.add(vps_.size() * targets_.size());
  matrix_metrics().materialise_wall_ms.observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (path) m->save(*path, tag);
  target_rtts_ = std::move(m);
  return *target_rtts_;
}

const RttMatrix& Scenario::representative_rtts() const {
  if (rep_rtts_) return *rep_rtts_;
  const obs::TraceSpan span("scenario.rtt_matrix.representatives");
  const std::uint64_t tag = config_.fingerprint() ^ 0x4e4e2ULL;
  const auto path = cache_path("rep-rtts");
  auto m = std::make_unique<RttMatrix>();
  if (path && m->load(*path, tag)) {
    matrix_metrics().cache_hits.add();
    rep_rtts_ = std::move(m);
    return *rep_rtts_;
  }
  matrix_metrics().cache_misses.add();
  const auto start = std::chrono::steady_clock::now();
  // Same tiling as target_rtts(); the representative campaign's median
  // semantics live in the tile source's cell recipe.
  m = std::make_unique<RttMatrix>(
      RttTileSource::for_representatives(*this).materialise());
  matrix_metrics().cells.add(vps_.size() * targets_.size());
  matrix_metrics().materialise_wall_ms.observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (path) m->save(*path, tag);
  rep_rtts_ = std::move(m);
  return *rep_rtts_;
}

void Scenario::invalidate_rtt_matrices() {
  target_rtts_.reset();
  rep_rtts_.reset();
  // The fingerprint tag no longer describes this world, so both disk-cache
  // load and save must stop — including via the GEOLOC_CACHE_DIR override,
  // hence the flag rather than just clearing config_.cache_dir.
  config_.cache_dir.clear();
  cache_disabled_ = true;
}

std::size_t Scenario::vp_index(sim::HostId vp) const {
  return vp_index_.at(vp);
}
std::size_t Scenario::target_index(sim::HostId target) const {
  return target_index_.at(target);
}

}  // namespace geoloc::scenario
