#include "scenario/tile_source.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "util/env.h"
#include "util/parallel.h"

namespace geoloc::scenario {

namespace {

struct TileMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& cells;
};

TileMetrics& tile_metrics() {
  static auto& reg = obs::Registry::instance();
  static TileMetrics m{reg.counter("scenario.rtt_tiles.hits"),
                       reg.counter("scenario.rtt_tiles.misses"),
                       reg.counter("scenario.rtt_tiles.evictions"),
                       reg.counter("scenario.rtt_tiles.cells")};
  return m;
}

constexpr std::size_t kMaxColumns = std::size_t{1} << 20;

}  // namespace

TileShape tile_shape_from_env() {
  return TileShape{
      static_cast<std::size_t>(util::env::int_or("GEOLOC_RTT_TILE_VPS", 256)),
      static_cast<std::size_t>(
          util::env::int_or("GEOLOC_RTT_TILE_TARGETS", 512))};
}

std::size_t tile_budget_from_env() {
  return static_cast<std::size_t>(
      util::env::int_or("GEOLOC_RTT_TILE_BUDGET", 64));
}

RttTileSource::RttTileSource(TileCampaign campaign, TileShape shape,
                             std::size_t budget_tiles)
    : campaign_(std::move(campaign)) {
  if (campaign_.world == nullptr || campaign_.latency == nullptr) {
    throw std::invalid_argument(
        "RttTileSource: campaign needs a world and a latency model");
  }
  if (campaign_.group < 1 || campaign_.group > 3) {
    throw std::invalid_argument(
        "RttTileSource: destination group size must be 1..3");
  }
  if (campaign_.dsts.size() % campaign_.group != 0) {
    throw std::invalid_argument(
        "RttTileSource: dsts size must be a multiple of group");
  }
  if (cols() > kMaxColumns) {
    throw std::invalid_argument(
        "RttTileSource: the (r << 20) | c cell-RNG packing caps campaigns "
        "at 2^20 columns");
  }
  const TileShape env = tile_shape_from_env();
  shape_.vp_block = std::max<std::size_t>(
      1, shape.vp_block != 0 ? shape.vp_block : env.vp_block);
  shape_.target_block = std::max<std::size_t>(
      1, shape.target_block != 0 ? shape.target_block : env.target_block);
  budget_ = std::max<std::size_t>(
      1, budget_tiles != 0 ? budget_tiles : tile_budget_from_env());
  vp_soa_ = campaign_.latency->host_soa(campaign_.vps);
  dst_soa_ = campaign_.latency->host_soa(campaign_.dsts);
}

RttTileSource RttTileSource::for_targets(const Scenario& s, TileShape shape,
                                         std::size_t budget_tiles) {
  TileCampaign c;
  c.world = &s.world();
  c.latency = &s.latency();
  c.vps = s.vps();
  c.dsts = s.targets();
  c.group = 1;
  c.stream = s.world().rng().fork("campaign-target");
  c.ping_packets = s.config().ping_packets;
  return RttTileSource(std::move(c), shape, budget_tiles);
}

RttTileSource RttTileSource::for_representatives(const Scenario& s,
                                                 TileShape shape,
                                                 std::size_t budget_tiles) {
  TileCampaign c;
  c.world = &s.world();
  c.latency = &s.latency();
  c.vps = s.vps();
  c.group = 3;
  c.dsts.reserve(s.targets().size() * 3);
  for (const sim::HostId target : s.targets()) {
    for (const auto& rep : s.hitlist().for_target(target).reps) {
      c.dsts.push_back(rep.host);
    }
  }
  c.stream = s.world().rng().fork("campaign-reps");
  c.ping_packets = s.config().ping_packets;
  return RttTileSource(std::move(c), shape, budget_tiles);
}

std::size_t RttTileSource::vp_blocks() const noexcept {
  return (rows() + shape_.vp_block - 1) / shape_.vp_block;
}

std::size_t RttTileSource::target_blocks() const noexcept {
  return (cols() + shape_.target_block - 1) / shape_.target_block;
}

float RttTileSource::synthesise_cell(std::size_t r, std::size_t c,
                                     const double* base) const {
  // The dense loops' cell recipe, verbatim: one RNG forked from (r, c),
  // consumed sequentially across the column's destination group, median by
  // the same explicit swap sequence. Any change here breaks tile-vs-dense
  // byte-identity.
  auto gen = campaign_.stream.fork("m", (r << 20) | c).gen();
  const std::size_t g = campaign_.group;
  double vals[3];
  int n = 0;
  for (std::size_t k = 0; k < g; ++k) {
    const std::size_t d = c * g + k;
    const auto sample = campaign_.latency->ping_sample_with_base(
        base[k], dst_soa_.responsive[d] != 0, campaign_.ping_packets, gen);
    if (sample.min_rtt_ms) vals[n++] = *sample.min_rtt_ms;
  }
  if (n == 0) return std::numeric_limits<float>::quiet_NaN();
  if (n > 1 && vals[0] > vals[1]) std::swap(vals[0], vals[1]);
  if (n > 2 && vals[1] > vals[2]) std::swap(vals[1], vals[2]);
  if (n > 1 && vals[0] > vals[1]) std::swap(vals[0], vals[1]);
  const double med = (n == 3)   ? vals[1]
                     : (n == 2) ? (vals[0] + vals[1]) / 2.0
                                : vals[0];
  return static_cast<float>(med);
}

void RttTileSource::generate(std::size_t vp_block, std::size_t target_block,
                             Tile& out) const {
  const std::size_t g = campaign_.group;
  out.vp_begin = vp_block * shape_.vp_block;
  out.vp_end = std::min(rows(), out.vp_begin + shape_.vp_block);
  out.target_begin = target_block * shape_.target_block;
  out.target_end = std::min(cols(), out.target_begin + shape_.target_block);
  const std::size_t tile_rows = out.rows();
  const std::size_t tile_cols = out.cols();
  out.rtt.assign(tile_rows * tile_cols,
                 std::numeric_limits<float>::quiet_NaN());
  // Rows own disjoint slices and every cell derives its randomness from
  // (r, c), so the tile is bit-identical at any worker count — the same
  // argument the dense loops make (DESIGN.md §9).
  util::parallel_for(
      tile_rows,
      [&](std::size_t rr) {
        const std::size_t r = out.vp_begin + rr;
        sim::LatencyModel::CityPairCache cache;
        std::vector<double> base(tile_cols * g);
        campaign_.latency->base_rtt_ms_batch(vp_soa_, r, dst_soa_,
                                             out.target_begin * g,
                                             out.target_end * g, cache,
                                             base.data());
        float* row_out = out.rtt.data() + rr * tile_cols;
        for (std::size_t cc = 0; cc < tile_cols; ++cc) {
          row_out[cc] =
              synthesise_cell(r, out.target_begin + cc, base.data() + cc * g);
        }
      },
      /*grain=*/1);
  stats_.generated_cells += tile_rows * tile_cols;
  tile_metrics().cells.add(static_cast<std::int64_t>(tile_rows * tile_cols));
}

void RttTileSource::note_resident(std::size_t bytes) const {
  stats_.peak_resident_bytes = std::max(stats_.peak_resident_bytes, bytes);
}

const RttTileSource::Tile& RttTileSource::tile(std::size_t vp_block,
                                               std::size_t target_block) {
  const std::size_t key = vp_block * target_blocks() + target_block;
  if (const auto it = cached_.find(key); it != cached_.end()) {
    ++stats_.hits;
    tile_metrics().hits.add();
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().tile;
  }
  ++stats_.misses;
  tile_metrics().misses.add();
  lru_.emplace_front();
  lru_.front().key = key;
  generate(vp_block, target_block, lru_.front().tile);
  cached_[key] = lru_.begin();
  stats_.resident_bytes += lru_.front().tile.rtt.size() * sizeof(float);
  note_resident(stats_.resident_bytes);
  while (lru_.size() > budget_) {
    const CacheEntry& victim = lru_.back();
    stats_.resident_bytes -= victim.tile.rtt.size() * sizeof(float);
    cached_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    tile_metrics().evictions.add();
  }
  stats_.resident_tiles = lru_.size();
  return lru_.front().tile;
}

float RttTileSource::at(std::size_t r, std::size_t c) {
  return tile(r / shape_.vp_block, c / shape_.target_block).at(r, c);
}

float RttTileSource::cell(std::size_t r, std::size_t c) const {
  sim::LatencyModel::CityPairCache cache;
  double base[3];
  const std::size_t g = campaign_.group;
  campaign_.latency->base_rtt_ms_batch(vp_soa_, r, dst_soa_, c * g,
                                       (c + 1) * g, cache, base);
  return synthesise_cell(r, c, base);
}

RttMatrix RttTileSource::materialise() const {
  RttMatrix m(rows(), cols());
  Tile scratch;
  const std::size_t n_vb = vp_blocks();
  const std::size_t n_tb = target_blocks();
  for (std::size_t vb = 0; vb < n_vb; ++vb) {
    for (std::size_t tb = 0; tb < n_tb; ++tb) {
      generate(vb, tb, scratch);
      note_resident(stats_.resident_bytes +
                    scratch.rtt.size() * sizeof(float));
      for (std::size_t r = scratch.vp_begin; r < scratch.vp_end; ++r) {
        for (std::size_t c = scratch.target_begin; c < scratch.target_end;
             ++c) {
          m.set(r, c, scratch.at(r, c));
        }
      }
    }
  }
  return m;
}

}  // namespace geoloc::scenario
