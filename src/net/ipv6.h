// IPv6 addresses and prefixes — groundwork for the paper's declared future
// work (Section 2.1): the million-scale VP selection does not transfer to
// IPv6 because /24-style representative discovery fails in a space where a
// single /64 outnumbers the whole IPv4 Internet. See
// bench_ext_ipv6_sparsity for the quantified argument.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace geoloc::net {

/// A 128-bit IPv6 address.
class IPv6Address {
 public:
  constexpr IPv6Address() = default;
  constexpr IPv6Address(std::uint64_t hi, std::uint64_t lo) noexcept
      : hi_(hi), lo_(lo) {}

  /// Parse RFC 4291 text (hex groups with optional "::" compression).
  /// Embedded-IPv4 notation is not supported.
  static std::optional<IPv6Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// The i-th 16-bit group (0 = most significant).
  [[nodiscard]] constexpr std::uint16_t group(int i) const noexcept {
    const std::uint64_t word = i < 4 ? hi_ : lo_;
    return static_cast<std::uint16_t>(word >> (16 * (3 - (i & 3))));
  }

  /// RFC 5952 canonical text (lowercase, longest zero run compressed).
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IPv6Address&,
                                    const IPv6Address&) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// An IPv6 CIDR prefix.
class Prefix6 {
 public:
  constexpr Prefix6() = default;
  constexpr Prefix6(IPv6Address address, int length) noexcept
      : length_(length), network_(mask(address, length)) {}

  static std::optional<Prefix6> parse(std::string_view text);

  [[nodiscard]] constexpr IPv6Address network() const noexcept {
    return network_;
  }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  [[nodiscard]] constexpr bool contains(const IPv6Address& a) const noexcept {
    return mask(a, length_) == network_;
  }

  /// log2 of the number of addresses covered (the count itself overflows
  /// any integer for short prefixes).
  [[nodiscard]] constexpr int size_log2() const noexcept {
    return 128 - length_;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix6&, const Prefix6&) = default;

 private:
  static constexpr IPv6Address mask(const IPv6Address& a, int len) noexcept {
    if (len <= 0) return {};
    if (len >= 128) return a;
    if (len >= 64) {
      const int low_bits = len - 64;
      const std::uint64_t m =
          low_bits == 0 ? 0 : ~std::uint64_t{0} << (64 - low_bits);
      return {a.hi(), a.lo() & m};
    }
    return {a.hi() & (~std::uint64_t{0} << (64 - len)), 0};
  }

  int length_ = 0;
  IPv6Address network_;
};

}  // namespace geoloc::net
