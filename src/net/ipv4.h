// IPv4 addresses, prefixes and AS numbers. The reproduction is IPv4-only,
// like the paper (Section 2.1: representative selection relies on /24
// density, which does not transfer to IPv6).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace geoloc::net {

/// An IPv4 address stored host-order for arithmetic convenience.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t value) noexcept : value_(value) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<IPv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IPv4Address&,
                                    const IPv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix.
class Prefix {
 public:
  constexpr Prefix() = default;
  /// Host bits of `address` below `length` are zeroed.
  constexpr Prefix(IPv4Address address, int length) noexcept
      : length_(length),
        network_(length == 0 ? 0 : (address.value() & mask(length))) {}

  /// Parse "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr IPv4Address network() const noexcept {
    return IPv4Address{network_};
  }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  [[nodiscard]] constexpr bool contains(IPv4Address a) const noexcept {
    return length_ == 0 || (a.value() & mask(length_)) == network_;
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.network());
  }

  /// Number of addresses covered.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return 1ULL << (32 - length_);
  }

  /// The i-th address inside the prefix. Precondition: i < size().
  [[nodiscard]] constexpr IPv4Address address_at(std::uint32_t i) const noexcept {
    return IPv4Address{network_ + i};
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  static constexpr std::uint32_t mask(int length) noexcept {
    return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  }

 private:
  int length_ = 0;
  std::uint32_t network_ = 0;
};

/// The /24 containing `a` — the granularity at which the million-scale
/// paper picks representatives.
constexpr Prefix slash24_of(IPv4Address a) noexcept { return Prefix{a, 24}; }

/// An autonomous-system number.
struct Asn {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(const Asn&, const Asn&) = default;
};

}  // namespace geoloc::net
