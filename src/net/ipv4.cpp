#include "net/ipv4.h"

#include <charconv>
#include <sstream>

namespace geoloc::net {

namespace {

/// Parse a decimal integer in [0, max]; advances `text` past the digits.
std::optional<std::uint32_t> parse_uint(std::string_view& text,
                                        std::uint32_t max) {
  std::uint32_t v = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr == begin || v > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return v;
}

}  // namespace

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    const auto octet = parse_uint(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
    if (i < 3) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
  }
  if (!text.empty()) return std::nullopt;
  return IPv4Address{value};
}

std::string IPv4Address::to_string() const {
  std::ostringstream os;
  os << static_cast<int>(octet(0)) << '.' << static_cast<int>(octet(1)) << '.'
     << static_cast<int>(octet(2)) << '.' << static_cast<int>(octet(3));
  return os.str();
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  const auto len = parse_uint(len_text, 32);
  if (!len || !len_text.empty()) return std::nullopt;
  return Prefix{*addr, static_cast<int>(*len)};
}

std::string Prefix::to_string() const {
  std::ostringstream os;
  os << network().to_string() << '/' << length_;
  return os.str();
}

}  // namespace geoloc::net
