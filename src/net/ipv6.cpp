#include "net/ipv6.h"

#include <charconv>
#include <cstdio>
#include <vector>

namespace geoloc::net {

namespace {

/// Parse one hex group (1-4 digits); advances `text`.
std::optional<std::uint16_t> parse_group(std::string_view& text) {
  std::uint32_t v = 0;
  const char* begin = text.data();
  const char* end = text.data() + std::min<std::size_t>(text.size(), 4);
  const auto [ptr, ec] = std::from_chars(begin, end, v, 16);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint16_t>(v);
}

IPv6Address from_groups(const std::array<std::uint16_t, 8>& g) {
  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | g[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | g[static_cast<std::size_t>(i)];
  return {hi, lo};
}

}  // namespace

std::optional<IPv6Address> IPv6Address::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;

  // Split on "::" (at most one occurrence).
  const auto gap = text.find("::");
  std::string_view head = text, tail;
  bool has_gap = false;
  if (gap != std::string_view::npos) {
    has_gap = true;
    head = text.substr(0, gap);
    tail = text.substr(gap + 2);
    if (tail.find("::") != std::string_view::npos) return std::nullopt;
  }

  auto parse_side = [](std::string_view side,
                       std::vector<std::uint16_t>& out) {
    if (side.empty()) return true;
    for (;;) {
      const auto g = parse_group(side);
      if (!g) return false;
      out.push_back(*g);
      if (side.empty()) return true;
      if (side.front() != ':') return false;
      side.remove_prefix(1);
      if (side.empty()) return false;  // trailing single ':'
    }
  };

  std::vector<std::uint16_t> front, back;
  if (!parse_side(head, front)) return std::nullopt;
  if (has_gap && !parse_side(tail, back)) return std::nullopt;

  std::array<std::uint16_t, 8> groups{};
  if (has_gap) {
    if (front.size() + back.size() > 7) return std::nullopt;
    for (std::size_t i = 0; i < front.size(); ++i) groups[i] = front[i];
    for (std::size_t i = 0; i < back.size(); ++i) {
      groups[8 - back.size() + i] = back[i];
    }
  } else {
    if (front.size() != 8) return std::nullopt;
    for (std::size_t i = 0; i < 8; ++i) groups[i] = front[i];
  }
  return from_groups(groups);
}

std::string IPv6Address::to_string() const {
  // RFC 5952: compress the longest run of >= 2 zero groups; lowercase hex.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  char buf[48];
  int pos = 0;
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      // One ':' marks the gap; the previous group already wrote its own
      // separator (or we add it for a leading gap).
      buf[pos++] = ':';
      if (i == 0) buf[pos++] = ':';
      i += best_len - 1;
      continue;
    }
    pos += std::snprintf(buf + pos, sizeof buf - static_cast<std::size_t>(pos),
                         "%x", group(i));
    if (i != 7) buf[pos++] = ':';
  }
  return std::string(buf, static_cast<std::size_t>(pos));
}

std::optional<Prefix6> Prefix6::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  std::uint32_t len = 0;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      len > 128) {
    return std::nullopt;
  }
  return Prefix6{*addr, static_cast<int>(len)};
}

std::string Prefix6::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace geoloc::net
