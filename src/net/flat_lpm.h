// Flattened longest-prefix-match table for read-heavy serving paths.
//
// net::PrefixTable (a binary trie) is the right structure while a table is
// being *built* — cheap inserts, natural LPM — but lookups chase up to 32
// heap pointers, each a potential cache miss. Once a prefix set is frozen
// (a published dataset snapshot), LPM over it can be answered from two
// flat arrays instead: sweep the prefixes in network order, resolving
// nesting with a stack, and emit the disjoint address intervals each
// prefix *owns*. A lookup is then a binary search over the interval start
// addresses, narrowed to a handful of candidates by a 64Ki-entry chunk
// table indexed with the address's top 16 bits (the classic DIR-16 / DXR
// move): in routing-table-shaped inputs a chunk holds only a few
// intervals, so the search degenerates to one or two contiguous probes.
//
// Build is O(n log n) and the interval arrays are at most 2n+1 long; the
// chunk table adds a flat 256 KiB per frozen table.
// The table is immutable after build(); concurrent lookups are safe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace geoloc::net {

/// Immutable LPM over a frozen prefix set. Duplicate prefixes in the input
/// resolve to the last occurrence (matching PrefixTable::insert overwrite
/// semantics when entries are added in insertion order).
template <typename Value>
class FlatLpm {
 public:
  struct Slot {
    Prefix prefix;
    Value value;
  };

  FlatLpm() = default;

  /// Freeze a prefix set. Consumes the entries (they are sorted in place).
  static FlatLpm build(std::vector<std::pair<Prefix, Value>> entries) {
    FlatLpm t;
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first.network() != b.first.network()) {
                         return a.first.network() < b.first.network();
                       }
                       return a.first.length() < b.first.length();
                     });
    t.slots_.reserve(entries.size());
    for (auto& [prefix, value] : entries) {
      if (!t.slots_.empty() && t.slots_.back().prefix == prefix) {
        t.slots_.back().value = std::move(value);  // last insert wins
      } else {
        t.slots_.push_back(Slot{prefix, std::move(value)});
      }
    }
    t.build_intervals();
    return t;
  }

  /// Longest-prefix match; nullptr when nothing covers the address.
  [[nodiscard]] const Slot* lookup(IPv4Address a) const noexcept {
    if (starts_.empty()) return nullptr;
    // The owning interval's index lies in [chunk_[hi16], chunk_[hi16 + 1]]:
    // the last interval starting at or before `a` within that window.
    const std::uint32_t hi16 = a.value() >> 16;
    const std::uint32_t lo = chunk_[hi16];
    const std::uint32_t hi = chunk_[hi16 + 1];
    const auto first = starts_.begin() + lo + 1;
    const auto last = starts_.begin() + hi + 1;
    const auto it = std::upper_bound(first, last, a.value());
    const std::int32_t owner = owner_[(it - starts_.begin()) - 1];
    return owner < 0 ? nullptr : &slots_[static_cast<std::size_t>(owner)];
  }

  /// Batched lookup: out[i] receives lookup(addrs[i]).
  /// Precondition: out.size() >= addrs.size().
  void lookup_batch(std::span<const IPv4Address> addrs,
                    std::span<const Slot*> out) const noexcept {
    for (std::size_t i = 0; i < addrs.size(); ++i) out[i] = lookup(addrs[i]);
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }
  /// The frozen entries, sorted by (network, length).
  [[nodiscard]] std::span<const Slot> slots() const noexcept { return slots_; }
  /// Disjoint ownership intervals the prefix set flattened into.
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return starts_.size();
  }

 private:
  void build_intervals() {
    starts_ = {0};
    owner_ = {-1};
    std::vector<std::int32_t> stack;  // active (nested) slots, outermost first
    const auto end_of = [&](std::int32_t i) {
      const Prefix& p = slots_[static_cast<std::size_t>(i)].prefix;
      return static_cast<std::uint64_t>(p.network().value()) + p.size() - 1;
    };
    const auto set_owner_at = [&](std::uint64_t pos, std::int32_t owner) {
      if (pos > 0xFFFFFFFFull) return;  // past the address space
      const auto p = static_cast<std::uint32_t>(pos);
      if (starts_.back() == p) {
        owner_.back() = owner;  // deeper prefix starting at the same address
      } else if (owner_.back() != owner) {
        starts_.push_back(p);
        owner_.push_back(owner);
      }
    };
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const std::uint64_t start = slots_[i].prefix.network().value();
      while (!stack.empty() && end_of(stack.back()) < start) {
        const std::uint64_t next = end_of(stack.back()) + 1;
        stack.pop_back();
        set_owner_at(next, stack.empty() ? -1 : stack.back());
      }
      stack.push_back(static_cast<std::int32_t>(i));
      set_owner_at(start, stack.back());
    }
    while (!stack.empty()) {
      const std::uint64_t next = end_of(stack.back()) + 1;
      stack.pop_back();
      set_owner_at(next, stack.empty() ? -1 : stack.back());
    }
    // chunk_[t] = index of the last interval starting at or before t<<16;
    // one extra entry so lookup can read chunk_[hi16 + 1] unconditionally.
    chunk_.resize((1u << 16) + 1);
    std::uint32_t i = 0;
    for (std::uint32_t t = 0; t < (1u << 16); ++t) {
      const std::uint32_t pos = t << 16;
      while (i + 1 < starts_.size() && starts_[i + 1] <= pos) ++i;
      chunk_[t] = i;
    }
    chunk_.back() = static_cast<std::uint32_t>(starts_.size() - 1);
  }

  std::vector<Slot> slots_;            // sorted by (network, length)
  std::vector<std::uint32_t> starts_;  // interval start addresses, ascending
  std::vector<std::int32_t> owner_;    // slot index owning the interval, or -1
  std::vector<std::uint32_t> chunk_;   // top-16-bit index into starts_
};

}  // namespace geoloc::net
