// Longest-prefix-match table: a binary (path-uncompressed) trie from CIDR
// prefixes to values. Used for the simulated BGP table (landmark/target
// same-prefix analysis, Section 5.2.3) and for the prefix-keyed commercial
// geolocation databases (Section 6).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace geoloc::net {

/// Maps prefixes to values with longest-prefix-match lookup.
/// Inserting the same prefix twice overwrites the stored value.
template <typename Value>
class PrefixTable {
 public:
  PrefixTable() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite.
  void insert(const Prefix& prefix, Value value) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->entry) ++size_;
    node->entry = std::pair<Prefix, Value>{prefix, std::move(value)};
  }

  /// Longest-prefix match for an address.
  [[nodiscard]] std::optional<std::pair<Prefix, Value>> lookup(
      IPv4Address address) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, Value>> best = node->entry;
    const std::uint32_t bits = address.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->entry) best = node->entry;
    }
    return best;
  }

  /// Exact-prefix fetch (no LPM).
  [[nodiscard]] const Value* find_exact(const Prefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (!node) return nullptr;
    }
    return node->entry ? &node->entry->second : nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Visit every (prefix, value) pair in network order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(root_.get(), fn);
  }

 private:
  struct Node {
    std::optional<std::pair<Prefix, Value>> entry;
    std::unique_ptr<Node> children[2];
  };

  template <typename Fn>
  static void visit(const Node* node, Fn& fn) {
    if (!node) return;
    if (node->entry) fn(node->entry->first, node->entry->second);
    visit(node->children[0].get(), fn);
    visit(node->children[1].get(), fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace geoloc::net
