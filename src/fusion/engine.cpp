#include "fusion/engine.h"

#include "geo/constants.h"
#include "geo/geodesy.h"
#include "util/env.h"

namespace geoloc::fusion {

std::string_view to_string(EvidenceKind k) noexcept {
  switch (k) {
    case EvidenceKind::Hint: return "hint";
    case EvidenceKind::Geofeed: return "geofeed";
  }
  return "?";
}

std::string_view to_string(ClaimVerdict v) noexcept {
  switch (v) {
    case ClaimVerdict::Accepted: return "accepted";
    case ClaimVerdict::RejectedGeometric: return "rejected-geometric";
    case ClaimVerdict::RejectedActive: return "rejected-active";
    case ClaimVerdict::Inconclusive: return "inconclusive";
  }
  return "?";
}

EngineConfig EngineConfig::from_env() {
  EngineConfig c;
  c.slack_km = static_cast<double>(util::env::int_or(
      "GEOLOC_FUSION_SLACK_KM", static_cast<int>(c.slack_km)));
  c.verify_k = util::env::int_or("GEOLOC_FUSION_VERIFY_K", c.verify_k);
  c.min_conclusive =
      util::env::int_or("GEOLOC_FUSION_MIN_CONCLUSIVE", c.min_conclusive);
  return c;
}

bool geometric_feasible(std::span<const geo::Disk> disks,
                        const geo::GeoPoint& claim, double slack_km) {
  for (const geo::Disk& d : disks) {
    if (geo::distance_km(d.center, claim) > d.radius_km + slack_km) {
      return false;
    }
  }
  return true;
}

ClaimVerdict verify_claim(const geo::GeoPoint& claim,
                          std::span<const VerifyPing> pings,
                          const EngineConfig& config, int* contradictions) {
  int answered = 0;
  int contra = 0;
  for (const VerifyPing& p : pings) {
    if (!p.rtt_ms) continue;
    ++answered;
    // The RTT bounds how far the *target* can be from this VP. If the
    // claimed point is beyond that bound (plus slack), the target cannot
    // be there — a physical proof, not a heuristic.
    const double bound_km =
        geo::rtt_to_max_distance_km(*p.rtt_ms, config.soi_km_per_ms);
    if (geo::distance_km(p.vp_location, claim) > bound_km + config.slack_km) {
      ++contra;
    }
  }
  if (contradictions) *contradictions = contra;
  // One contradicting VP is a proof on its own: the fault model only loses
  // or inflates RTTs, and inflation *widens* the bound, so a too-small RTT
  // can never be weather. Acceptance, by contrast, is absence of evidence
  // and needs a quorum of answers before it means anything.
  if (contra > 0) return ClaimVerdict::RejectedActive;
  if (answered < config.min_conclusive) return ClaimVerdict::Inconclusive;
  return ClaimVerdict::Accepted;
}

}  // namespace geoloc::fusion
