#include "fusion/pipeline.h"

#include <algorithm>
#include <unordered_map>

#include "atlas/faults.h"
#include "atlas/platform.h"
#include "geo/geodesy.h"
#include "obs/metrics.h"
#include "util/parallel.h"

namespace geoloc::fusion {

namespace {

float ttl_for(core::CbgVerdict tier, const PipelineOptions& o) noexcept {
  return tier == core::CbgVerdict::Ok ? o.ok_ttl_s : o.degraded_ttl_s;
}

/// Per-target CBG over a campaign's surviving measurements, plus the
/// observation counts the provenance strings need.
struct Solved {
  std::vector<core::CbgResult> results;     // column order
  std::vector<std::size_t> observations;    // column order
};

Solved solve_all(const scenario::Scenario& s,
                 const atlas::CampaignReport& report,
                 const core::CbgConfig& cbg) {
  const auto& world = s.world();
  std::vector<std::vector<core::VpObservation>> per_target(
      s.targets().size());
  for (const atlas::PingMeasurement& m : report.results) {
    if (m.target == m.vp) continue;  // anchors are both targets and VPs
    per_target[s.target_index(m.target)].push_back(core::VpObservation{
        world.host(m.vp).reported_location, *m.min_rtt_ms});
  }
  Solved out;
  out.results = util::parallel_map<core::CbgResult>(
      s.targets().size(),
      [&](std::size_t col) { return core::cbg_geolocate(per_target[col], cbg); });
  out.observations.reserve(per_target.size());
  for (const auto& obs : per_target) out.observations.push_back(obs.size());
  return out;
}

std::vector<publish::Record> latency_records(const scenario::Scenario& s,
                                             const Solved& solved,
                                             const PipelineOptions& o) {
  std::vector<publish::Record> out;
  out.reserve(s.targets().size());
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const core::CbgResult& cbg = solved.results[col];
    publish::Record r;
    r.prefix = net::slash24_of(s.world().host(s.targets()[col]).addr);
    r.measured_at_s = o.measured_at_s;
    r.method = publish::Method::Cbg;
    r.tier = cbg.verdict;
    r.location = cbg.estimate;
    r.confidence_radius_km = static_cast<float>(cbg.confidence_radius_km);
    r.ttl_s = ttl_for(r.tier, o);
    r.provenance =
        "cbg/campaign:obs=" + std::to_string(solved.observations[col]) +
        ",disks=" + std::to_string(cbg.surviving_constraints);
    out.push_back(std::move(r));
  }
  return out;
}

/// The per-target claim lists, in evaluation order: the hint corpus first,
/// then geofeed entries in bundle order. Feeds enter through the strict
/// parser; a feed quarantined at parse time contributes nothing.
std::vector<std::vector<Claim>> assemble_claims(
    const scenario::Scenario& s, const EvidenceBundle& evidence,
    const GeofeedLimits& limits, std::size_t* feeds_quarantined) {
  std::vector<std::vector<Claim>> out(s.targets().size());

  for (const sim::LocationHint& h : evidence.hints) {
    out[s.target_index(h.target)].push_back(
        Claim{h.location, EvidenceKind::Hint, "rdns"});
  }

  // Geofeed entries publish at /24 granularity; map them onto target
  // columns through the targets' own /24s (unknown prefixes are ignored —
  // a feed may legitimately cover address space we do not measure).
  std::unordered_map<std::uint32_t, std::size_t> col_by_net;
  col_by_net.reserve(s.targets().size());
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const auto p = net::slash24_of(s.world().host(s.targets()[col]).addr);
    col_by_net.emplace(p.network().value(), col);
  }
  for (const EvidenceBundle::Feed& feed : evidence.feeds) {
    const GeofeedParseResult parsed = parse_geofeed(feed.text, limits);
    if (parsed.quarantined) {
      ++*feeds_quarantined;
      continue;
    }
    for (const GeofeedEntry& e : parsed.entries) {
      if (e.prefix.length() != 24) continue;
      const auto it = col_by_net.find(e.prefix.network().value());
      if (it == col_by_net.end()) continue;
      out[it->second].push_back(
          Claim{e.location, EvidenceKind::Geofeed, feed.source});
    }
  }
  return out;
}

/// The k responsive campaign VPs nearest to `p` (by reported location —
/// what an operator of the platform actually knows). Deterministic:
/// distance ties break on VP list order.
std::vector<sim::HostId> nearest_vps(const sim::World& world,
                                     std::span<const sim::HostId> vps,
                                     const geo::GeoPoint& p, int k) {
  struct Ranked {
    double dist;
    std::size_t index;
    sim::HostId vp;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(vps.size());
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const sim::Host& host = world.host(vps[i]);
    if (!host.responsive) continue;
    ranked.push_back(
        Ranked{geo::distance_km(host.reported_location, p), i, vps[i]});
  }
  const std::size_t want =
      std::min(ranked.size(), static_cast<std::size_t>(std::max(k, 1)));
  std::partial_sort(ranked.begin(), ranked.begin() + want, ranked.end(),
                    [](const Ranked& a, const Ranked& b) {
                      return a.dist != b.dist ? a.dist < b.dist
                                              : a.index < b.index;
                    });
  std::vector<sim::HostId> out;
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) out.push_back(ranked[i].vp);
  return out;
}

struct VpSplit {
  std::span<const sim::HostId> campaign;
  std::span<const sim::HostId> spares;
};

VpSplit split_vps(const scenario::Scenario& s, std::size_t max_vps) {
  const auto& all = s.vps();
  const std::size_t n =
      (max_vps == 0 || max_vps >= all.size()) ? all.size() : max_vps;
  return VpSplit{{all.data(), n}, {all.data() + n, all.size() - n}};
}

}  // namespace

EvidenceBundle EvidenceBundle::from_generated(
    std::vector<sim::LocationHint> hints,
    const std::vector<sim::GeneratedFeed>& feeds) {
  EvidenceBundle b;
  b.hints = std::move(hints);
  b.feeds.reserve(feeds.size());
  for (const sim::GeneratedFeed& f : feeds) {
    b.feeds.push_back(Feed{f.source, f.text});
  }
  return b;
}

LatencyCampaign run_latency_campaign(const scenario::Scenario& s,
                                     const PipelineOptions& options) {
  const auto [campaign_vps, spares] = split_vps(s, options.max_vps);
  atlas::Platform platform(s.world(), s.latency());
  const atlas::FaultModel faults(s.world(), options.weather);
  platform.set_fault_model(&faults);
  atlas::CampaignExecutor executor(platform, options.executor);

  LatencyCampaign out;
  out.report = executor.execute_full_mesh(
      campaign_vps, s.targets(), s.config().ping_packets, spares);
  Solved solved = solve_all(s, out.report, options.cbg);
  out.records = latency_records(s, solved, options);
  out.per_target = std::move(solved.results);
  return out;
}

FusedCampaignResult run_fused_campaign(const scenario::Scenario& s,
                                       const EvidenceBundle& evidence,
                                       const PipelineOptions& options) {
  const auto [campaign_vps, spares] = split_vps(s, options.max_vps);
  const auto& world = s.world();
  atlas::Platform platform(world, s.latency());
  const atlas::FaultModel faults(world, options.weather);
  platform.set_fault_model(&faults);
  atlas::CampaignExecutor executor(platform, options.executor);

  FusedCampaignResult result;

  // -- 1. base campaign + CBG + latency records (the fallback answers) ----
  result.base_report = executor.execute_full_mesh(
      campaign_vps, s.targets(), s.config().ping_packets, spares);
  Solved solved = solve_all(s, result.base_report, options.cbg);
  result.records = latency_records(s, solved, options);

  // -- 2. evidence intake --------------------------------------------------
  const std::vector<std::vector<Claim>> claims = assemble_claims(
      s, evidence, options.feed_limits, &result.feeds_quarantined);

  // -- 3. trust-gated fusion, serial in target order ----------------------
  TrustTracker own_tracker(options.trust);
  TrustTracker& trust =
      options.trust_state ? *options.trust_state : own_tracker;
  result.decisions.resize(s.targets().size());

  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const sim::HostId target = s.targets()[col];
    FusionDecision& decision = result.decisions[col];

    int rejected_here = 0;
    bool any_inconclusive = false;
    bool any_active_reject = false;
    for (std::size_t ci = 0; ci < claims[col].size(); ++ci) {
      const Claim& claim = claims[col][ci];
      if (!trust.consult(claim.source)) {
        ++result.skipped_quarantined;
        continue;
      }
      decision.has_claim = true;
      ++result.claims;

      // Stage 1: free geometry from the base campaign.
      if (!geometric_feasible(solved.results[col].disks, claim.location,
                              options.engine.slack_km)) {
        trust.record(claim.source, ClaimOutcome::Rejected);
        ++result.rejected_geometric;
        ++rejected_here;
        continue;
      }

      // Stage 2: targeted pings from the k nearest VPs, through the same
      // executor (and weather) as everything else.
      const std::vector<sim::HostId> verifiers = nearest_vps(
          world, campaign_vps, claim.location, options.engine.verify_k);
      std::vector<atlas::MeasurementRequest> requests;
      requests.reserve(verifiers.size());
      for (const sim::HostId vp : verifiers) {
        requests.push_back(atlas::MeasurementRequest{
            vp, target, atlas::MeasurementKind::Ping,
            s.config().ping_packets});
      }
      result.verify_pings += requests.size();
      const atlas::CampaignReport rep = executor.execute(requests);

      std::vector<VerifyPing> pings;
      pings.reserve(verifiers.size());
      for (const sim::HostId vp : verifiers) {
        VerifyPing p;
        p.vp_location = world.host(vp).reported_location;
        for (const atlas::PingMeasurement& m : rep.results) {
          if (m.vp == vp && m.target == target) {
            p.rtt_ms = m.min_rtt_ms;
            break;
          }
        }
        pings.push_back(p);
      }

      int contradictions = 0;
      const ClaimVerdict verdict = verify_claim(
          claim.location, pings, options.engine, &contradictions);
      if (verdict == ClaimVerdict::Accepted) {
        trust.record(claim.source, ClaimOutcome::Accepted);
        ++result.accepted;
        decision.verdict = ClaimVerdict::Accepted;
        decision.claim_index = ci;
        decision.location = claim.location;
        decision.provenance = "fused/" +
                              std::string(to_string(claim.kind)) + ":" +
                              claim.source +
                              ",verifiers=" + std::to_string(pings.size());
        break;  // first verified claim wins
      }
      if (verdict == ClaimVerdict::RejectedActive) {
        trust.record(claim.source, ClaimOutcome::Rejected);
        ++result.rejected_active;
        ++rejected_here;
        any_active_reject = true;
      } else {
        // Inconclusive: the storm ate the verdict. No trust signal — an
        // honest operator must not be quarantined by weather — and no
        // acceptance either: the claim is downgraded, the latency answer
        // stands.
        trust.record(claim.source, ClaimOutcome::Inconclusive);
        ++result.inconclusive;
        any_inconclusive = true;
      }
    }

    // -- 4. publication ----------------------------------------------------
    publish::Record& r = result.records[col];
    if (decision.verdict == ClaimVerdict::Accepted) {
      r.method = publish::Method::Fused;
      r.tier = core::CbgVerdict::Ok;
      r.location = decision.location;
      r.confidence_radius_km =
          std::min(r.confidence_radius_km,
                   static_cast<float>(options.engine.slack_km));
      r.ttl_s = options.ok_ttl_s;
      r.provenance = decision.provenance + ";" + r.provenance;
    } else if (decision.has_claim) {
      decision.verdict = any_inconclusive ? ClaimVerdict::Inconclusive
                         : any_active_reject
                             ? ClaimVerdict::RejectedActive
                             : ClaimVerdict::RejectedGeometric;
      decision.provenance =
          any_inconclusive
              ? "evidence-inconclusive"
              : "evidence-rejected=" + std::to_string(rejected_here);
      r.provenance += ";" + decision.provenance;
    }
  }

  trust.advance_epoch();
  result.trust = trust;

  static auto& reg = obs::Registry::instance();
  static obs::Counter& c_claims = reg.counter("fusion.claims");
  static obs::Counter& c_accepted = reg.counter("fusion.accepted");
  static obs::Counter& c_rej_geo = reg.counter("fusion.rejected_geometric");
  static obs::Counter& c_rej_act = reg.counter("fusion.rejected_active");
  static obs::Counter& c_inconclusive = reg.counter("fusion.inconclusive");
  static obs::Counter& c_skipped = reg.counter("fusion.skipped_quarantined");
  static obs::Counter& c_pings = reg.counter("fusion.verify_pings");
  static constexpr double kPingBounds[] = {0, 1, 2, 4, 8, 16, 32, 64};
  static obs::Histogram& h_pings =
      reg.histogram("fusion.verify_pings_per_target", kPingBounds);
  c_claims.add(result.claims);
  c_accepted.add(result.accepted);
  c_rej_geo.add(result.rejected_geometric);
  c_rej_act.add(result.rejected_active);
  c_inconclusive.add(result.inconclusive);
  c_skipped.add(result.skipped_quarantined);
  c_pings.add(result.verify_pings);
  if (!evidence.empty()) {
    h_pings.observe(static_cast<double>(result.verify_pings) /
                    static_cast<double>(s.targets().size()));
  }

  result.per_target = std::move(solved.results);
  return result;
}

}  // namespace geoloc::fusion
