#include "fusion/trust.h"

#include "obs/metrics.h"
#include "util/env.h"

namespace geoloc::fusion {

TrustConfig TrustConfig::from_env() {
  TrustConfig c;
  if (const int pm = util::env::int_or("GEOLOC_FUSION_QUARANTINE_PM", -1);
      pm > 0) {
    c.quarantine_rejection_rate = static_cast<double>(pm) / 1000.0;
  }
  c.min_observations = static_cast<std::uint32_t>(util::env::int_or(
      "GEOLOC_FUSION_MIN_OBS", static_cast<int>(c.min_observations)));
  c.probation_epochs = static_cast<std::uint32_t>(util::env::int_or(
      "GEOLOC_FUSION_PROBATION", static_cast<int>(c.probation_epochs)));
  return c;
}

bool TrustTracker::consult(std::string_view source) const {
  const auto it = sources_.find(source);
  return it == sources_.end() || !it->second.quarantined;
}

void TrustTracker::record(std::string_view source, ClaimOutcome outcome) {
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    it = sources_.emplace(std::string(source), SourceTrust{}).first;
  }
  SourceTrust& t = it->second;
  switch (outcome) {
    case ClaimOutcome::Accepted: ++t.accepted; break;
    case ClaimOutcome::Rejected: ++t.rejected; break;
    case ClaimOutcome::Inconclusive: ++t.inconclusive; break;
  }
  if (!t.quarantined && t.conclusive() >= config_.min_observations &&
      t.rejection_rate() > config_.quarantine_rejection_rate) {
    t.quarantined = true;
    t.release_epoch = epoch_ + config_.probation_epochs;
    ++t.quarantines;
    static obs::Counter& quarantines =
        obs::Registry::instance().counter("fusion.trust.quarantines");
    quarantines.add();
  }
}

void TrustTracker::advance_epoch() {
  ++epoch_;
  for (auto& [name, t] : sources_) {
    if (t.quarantined && epoch_ >= t.release_epoch) {
      const std::uint32_t lifetime = t.quarantines;
      t = SourceTrust{};  // released: a clean slate, trust re-earned
      t.quarantines = lifetime;
    }
  }
}

const SourceTrust* TrustTracker::find(std::string_view source) const {
  const auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : &it->second;
}

}  // namespace geoloc::fusion
