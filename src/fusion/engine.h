// Trust-but-verify evidence fusion for one target.
//
// A claim ("this target is at P") earns the published answer only by
// surviving two independent attacks:
//
//   1. Geometric filter — P must lie inside every CBG constraint disk
//      (plus slack for last-mile inflation). Latency already measured from
//      dozens of VPs is free evidence; a claim the physics of those RTTs
//      excludes is rejected without spending a single verification ping.
//   2. Active verification — targeted pings from the k VPs nearest to P.
//      Each answered ping gives an upper bound on the VP->target distance
//      (RTT/2 x speed of Internet); a VP whose bound is smaller than its
//      distance to P *proves* the target is not at P. Contradiction from
//      enough VPs rejects the claim; no contradiction with enough answers
//      accepts it.
//
// Verification under platform weather is fail-safe: if too few targeted
// pings answered to conclude anything, the claim is *downgraded* — the
// latency-only answer stands and the source's trust is untouched — never
// accepted by default. An attacker cannot ride a storm into the dataset,
// and an honest operator cannot be quarantined by one.
//
// The engine is pure: it sees pre-measured ping results and returns a
// decision. Issuing the pings (and the trust bookkeeping across targets)
// is the pipeline's job (fusion/pipeline.h), which keeps every decision
// rule unit-testable without a platform.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/cbg.h"
#include "geo/geopoint.h"

namespace geoloc::fusion {

/// Where a claim came from (provenance and per-kind accounting).
enum class EvidenceKind : std::uint8_t { Hint, Geofeed };
std::string_view to_string(EvidenceKind k) noexcept;

/// One candidate location for a target.
struct Claim {
  geo::GeoPoint location;
  EvidenceKind kind = EvidenceKind::Hint;
  std::string source;  ///< trust-tracker key ("rdns", "feed-1.example", ...)
};

/// One targeted verification ping, already executed.
struct VerifyPing {
  geo::GeoPoint vp_location;
  std::optional<double> rtt_ms;  ///< nullopt: no echo came back
};

enum class ClaimVerdict : std::uint8_t {
  Accepted,           ///< verified; claim becomes the answer
  RejectedGeometric,  ///< outside the CBG constraint region
  RejectedActive,     ///< targeted RTTs prove the claim impossible
  Inconclusive,       ///< too few verification answers (weather)
};
std::string_view to_string(ClaimVerdict v) noexcept;

struct EngineConfig {
  /// Slack added to every distance bound before calling a claim
  /// impossible: absorbs last-mile delay turning into phantom kilometres.
  /// Default generous enough that honest city-level evidence survives.
  double slack_km = 100.0;
  /// Verification VPs consulted per claim (the k nearest to the claim).
  int verify_k = 4;
  /// Minimum answered verification pings for a conclusive verdict.
  int min_conclusive = 2;
  /// Speed of Internet for the active-verification distance bounds.
  double soi_km_per_ms = geo::kSoiTwoThirdsKmPerMs;

  /// Overlay GEOLOC_FUSION_SLACK_KM / GEOLOC_FUSION_VERIFY_K /
  /// GEOLOC_FUSION_MIN_CONCLUSIVE onto the defaults.
  static EngineConfig from_env();
};

/// Stage 1: can the claim coexist with the CBG constraint disks? A target
/// CBG could not constrain at all (no disks) passes trivially — there is
/// no geometry to contradict, stage 2 must do the work.
[[nodiscard]] bool geometric_feasible(std::span<const geo::Disk> disks,
                                      const geo::GeoPoint& claim,
                                      double slack_km);

/// Stage 2: judge a claim from its targeted pings. `contradictions` (when
/// non-null) receives the number of VPs that disproved the claim.
[[nodiscard]] ClaimVerdict verify_claim(const geo::GeoPoint& claim,
                                        std::span<const VerifyPing> pings,
                                        const EngineConfig& config,
                                        int* contradictions = nullptr);

/// A fused decision for one target.
struct FusionDecision {
  ClaimVerdict verdict = ClaimVerdict::Inconclusive;
  bool has_claim = false;       ///< any claim was evaluated at all
  std::size_t claim_index = 0;  ///< which claim the verdict is about
  geo::GeoPoint location;       ///< the accepted location (when Accepted)
  std::string provenance;       ///< human-readable audit trail fragment
};

}  // namespace geoloc::fusion
