// Per-source trust accounting with quarantine and probation.
//
// Every evidence source (the rDNS hint corpus, each operator geofeed)
// accumulates verification outcomes as the fusion engine processes
// targets. A source whose *rejection rate* — claims actively disproven
// over claims conclusively tested — crosses the threshold is quarantined:
// its remaining claims are not consulted at all, so an adversarial feed
// stops costing verification pings after it has burned its credibility.
// Inconclusive verifications (weather) are deliberately excluded from the
// rate: a storm must not be able to quarantine an honest operator.
//
// Quarantine is not forever: after `probation_epochs` calls to
// advance_epoch() the source is released with its counters reset — it
// starts from scratch and must re-earn consultation, re-entering
// quarantine after `min_observations` new rejections just as fast as the
// first time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace geoloc::fusion {

struct TrustConfig {
  double quarantine_rejection_rate = 0.4;  ///< rate that triggers quarantine
  std::uint32_t min_observations = 5;  ///< conclusive tests before judging
  std::uint32_t probation_epochs = 2;  ///< epochs a quarantine lasts

  /// Overlay GEOLOC_FUSION_QUARANTINE_PM / GEOLOC_FUSION_MIN_OBS /
  /// GEOLOC_FUSION_PROBATION onto the defaults.
  static TrustConfig from_env();
};

/// What verification concluded about one claim.
enum class ClaimOutcome : std::uint8_t {
  Accepted,      ///< survived geometry and active verification
  Rejected,      ///< disproven (geometric exclusion or RTT contradiction)
  Inconclusive,  ///< verification starved (weather); no trust signal
};

struct SourceTrust {
  std::uint32_t accepted = 0;
  std::uint32_t rejected = 0;
  std::uint32_t inconclusive = 0;
  bool quarantined = false;
  std::uint32_t release_epoch = 0;  ///< epoch at which quarantine lifts
  std::uint32_t quarantines = 0;    ///< lifetime count, survives resets

  [[nodiscard]] std::uint32_t conclusive() const noexcept {
    return accepted + rejected;
  }
  [[nodiscard]] double rejection_rate() const noexcept {
    return conclusive() == 0
               ? 0.0
               : static_cast<double>(rejected) /
                     static_cast<double>(conclusive());
  }
};

class TrustTracker {
 public:
  explicit TrustTracker(const TrustConfig& config = {}) : config_(config) {}

  /// True when the source's claims should be evaluated at all.
  [[nodiscard]] bool consult(std::string_view source) const;

  /// Record a verification outcome; may flip the source into quarantine.
  void record(std::string_view source, ClaimOutcome outcome);

  /// Advance the probation clock (the pipeline calls this once per
  /// campaign epoch); sources whose window elapsed are released and reset.
  void advance_epoch();

  [[nodiscard]] const SourceTrust* find(std::string_view source) const;
  [[nodiscard]] const std::map<std::string, SourceTrust, std::less<>>&
  sources() const noexcept {
    return sources_;
  }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const TrustConfig& config() const noexcept { return config_; }

 private:
  TrustConfig config_;
  // Ordered map: iteration (diagnostics, serialization) is deterministic.
  std::map<std::string, SourceTrust, std::less<>> sources_;
  std::uint32_t epoch_ = 0;
};

}  // namespace geoloc::fusion
