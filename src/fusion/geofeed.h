// Strict geofeed ingest: RFC 8805-shaped CSV, extended with coordinates.
//
// A feed is operator-published text straight off the Internet, so the
// parser trusts nothing: every field must consume its bytes completely
// (the ZipGrid from_chars discipline — "48.2x" is a defect, not 48.2),
// coordinates must be in range, prefixes must be real CIDR with no host
// bits set. Each bad line becomes a *typed* defect with its line number;
// a feed whose defect fraction crosses the quarantine threshold is
// rejected wholesale — a mostly-garbage feed is more likely hostile or
// corrupt than sloppy, and consuming its few "valid" lines is how poisoned
// evidence gets in.
//
// Accepted line shape (comments with '#' and blank lines are skipped):
//
//   prefix,country,city,lat,lon
//   192.0.2.0/24,AT,Vienna,48.208500,16.373800
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geopoint.h"
#include "net/ipv4.h"

namespace geoloc::fusion {

/// Why a geofeed line was rejected.
enum class GeofeedError : std::uint8_t {
  FieldCount,    ///< not exactly 5 comma-separated fields
  BadPrefix,     ///< prefix field is not a.b.c.d/len
  HostBitsSet,   ///< prefix has bits below its mask (192.0.2.1/24)
  PrefixTooWide, ///< shorter than /8: no operator feeds a quarter-Internet
  BadLatitude,   ///< not a full-consumption decimal in [-90, 90]
  BadLongitude,  ///< not a full-consumption decimal in [-180, 180]
  EmptyField,    ///< country or city field is empty
};
std::string_view to_string(GeofeedError e) noexcept;

/// One rejected line.
struct GeofeedDefect {
  std::size_t line = 0;  ///< 1-based line number in the feed text
  GeofeedError error = GeofeedError::FieldCount;
};

/// One accepted line.
struct GeofeedEntry {
  net::Prefix prefix;
  std::string country;
  std::string city;
  geo::GeoPoint location;
};

struct GeofeedLimits {
  /// Quarantine when defects / (defects + entries) exceeds this, provided
  /// at least `min_lines` data lines were seen (a single typo in a
  /// two-line feed is noise, 40% garbage in a thousand-line feed is not).
  double quarantine_defect_fraction = 0.3;
  std::size_t min_lines = 10;
  /// Hard ceiling on data lines examined; beyond it parsing stops and the
  /// feed is quarantined (a gigabyte "feed" is an attack, not data).
  std::size_t max_lines = 1 << 20;
};

struct GeofeedParseResult {
  std::vector<GeofeedEntry> entries;
  std::vector<GeofeedDefect> defects;
  /// True when the feed as a whole must not be consulted; `entries` is
  /// cleared so a quarantined feed cannot leak evidence through oversight.
  bool quarantined = false;

  [[nodiscard]] std::size_t data_lines() const noexcept {
    return entries.size() + defects.size();
  }
};

/// Parse one feed's text. Never throws; any byte sequence yields a result.
GeofeedParseResult parse_geofeed(std::string_view text,
                                 const GeofeedLimits& limits = {});

}  // namespace geoloc::fusion
