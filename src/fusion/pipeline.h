// The fused measurement campaign: latency base + adversarial evidence.
//
// Orchestration of one campaign epoch:
//
//   1. Base campaign — full VP x target mesh through the resilient
//      executor under the configured weather, then one CBG solve per
//      target (exactly the latency-only pipeline the eval sweeps run).
//   2. Evidence intake — rDNS hints arrive as structured claims; geofeeds
//      arrive as *text* and pass through the strict parser
//      (fusion/geofeed.h), so malformed or mostly-garbage feeds are
//      quarantined at the door.
//   3. Trust-gated fusion — per target, in target order: claims from
//      quarantined sources are skipped, survivors run the trust-but-verify
//      engine (geometric filter, then targeted pings from the k nearest
//      VPs through the same executor and weather). Outcomes feed the
//      per-source trust tracker, which can quarantine a source mid-pass.
//   4. Publication — one publish::Record per target; accepted evidence
//      publishes as Method::Fused with the full audit trail in the
//      provenance string, everything else keeps the latency answer.
//
// Determinism contract: the whole pipeline is a pure function of
// (scenario, evidence, options) and is byte-identical for any
// GEOLOC_THREADS — the fusion pass is serial in target order, and all
// measurement goes through the executor's thread-invariant rounds. With
// empty evidence the verification executor is never invoked, so the base
// CampaignReport, the records and the compiled snapshot bytes are
// *identical* to run_latency_campaign's (pinned by fusion_pipeline_test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atlas/executor.h"
#include "core/cbg.h"
#include "fusion/engine.h"
#include "fusion/geofeed.h"
#include "fusion/trust.h"
#include "publish/snapshot.h"
#include "scenario/scenario.h"
#include "sim/evidence.h"

namespace geoloc::fusion {

/// The evidence available for one campaign epoch. Feeds are raw text —
/// the pipeline parses them the way it would parse a real operator's.
struct EvidenceBundle {
  std::vector<sim::LocationHint> hints;
  struct Feed {
    std::string source;
    std::string text;
  };
  std::vector<Feed> feeds;

  [[nodiscard]] bool empty() const noexcept {
    return hints.empty() && feeds.empty();
  }

  /// Bundle up generator output (sim/evidence.h) for the pipeline.
  static EvidenceBundle from_generated(
      std::vector<sim::LocationHint> hints,
      const std::vector<sim::GeneratedFeed>& feeds);
};

struct PipelineOptions {
  core::CbgConfig cbg;
  EngineConfig engine;
  TrustConfig trust;
  /// Persistent trust state carried across campaign epochs. When null the
  /// run starts a fresh tracker from `trust`; either way the final state
  /// is copied into FusedCampaignResult::trust.
  TrustTracker* trust_state = nullptr;
  GeofeedLimits feed_limits;
  atlas::FaultConfig weather;      ///< default: calm (fault layer disabled)
  atlas::ExecutorConfig executor;
  /// Campaign VPs (0 = every scenario VP); the rest serve as spares.
  std::size_t max_vps = 0;
  double measured_at_s = 0.0;
  float ok_ttl_s = 30 * 86'400.0f;
  float degraded_ttl_s = 7 * 86'400.0f;
};

/// The latency-only baseline: base campaign + CBG + records, no evidence
/// machinery anywhere near the code path.
struct LatencyCampaign {
  atlas::CampaignReport report;
  std::vector<core::CbgResult> per_target;  ///< column order
  std::vector<publish::Record> records;     ///< one per target, column order
};
LatencyCampaign run_latency_campaign(const scenario::Scenario& s,
                                     const PipelineOptions& options = {});

struct FusedCampaignResult {
  atlas::CampaignReport base_report;
  std::vector<core::CbgResult> per_target;
  std::vector<FusionDecision> decisions;  ///< one per target, column order
  std::vector<publish::Record> records;
  TrustTracker trust;  ///< final tracker state (epoch already advanced)

  // -- accounting ----------------------------------------------------------
  std::size_t claims = 0;              ///< claims evaluated (post-gating)
  std::size_t accepted = 0;
  std::size_t rejected_geometric = 0;
  std::size_t rejected_active = 0;
  std::size_t inconclusive = 0;        ///< downgraded to the latency answer
  std::size_t skipped_quarantined = 0; ///< claims gated out by trust
  std::size_t feeds_quarantined = 0;   ///< feeds rejected at parse time
  std::size_t verify_pings = 0;        ///< targeted pings requested
};
FusedCampaignResult run_fused_campaign(const scenario::Scenario& s,
                                       const EvidenceBundle& evidence,
                                       const PipelineOptions& options = {});

}  // namespace geoloc::fusion
