#include "fusion/geofeed.h"

#include <array>
#include <charconv>
#include <cmath>
#include <optional>

#include "obs/metrics.h"

namespace geoloc::fusion {

namespace {

/// Full-consumption double parse: every byte of `s` must belong to the
/// number. Trailing junk, empty fields, inf/nan spellings all fail
/// (from_chars happily reads "nan", and NaN slides through any range
/// check, so finiteness is tested explicitly).
std::optional<double> parse_coord(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

/// Split on ','; returns false unless exactly `fields.size()` fields.
template <std::size_t N>
bool split_fields(std::string_view line, std::array<std::string_view, N>& out) {
  std::size_t n = 0;
  while (true) {
    const std::size_t comma = line.find(',');
    if (n == N) return false;
    out[n++] = line.substr(0, comma);
    if (comma == std::string_view::npos) break;
    line.remove_prefix(comma + 1);
  }
  return n == N;
}

std::optional<GeofeedError> parse_line(std::string_view line,
                                       GeofeedEntry& out) {
  std::array<std::string_view, 5> f;
  if (!split_fields(line, f)) return GeofeedError::FieldCount;

  const auto prefix = net::Prefix::parse(f[0]);
  if (!prefix) return GeofeedError::BadPrefix;
  // Prefix::parse zeroes host bits; re-parsing the address exposes them.
  const auto addr = net::IPv4Address::parse(
      f[0].substr(0, f[0].find('/')));
  if (addr && addr->value() != prefix->network().value()) {
    return GeofeedError::HostBitsSet;
  }
  if (prefix->length() < 8) return GeofeedError::PrefixTooWide;
  if (f[1].empty() || f[2].empty()) return GeofeedError::EmptyField;

  const auto lat = parse_coord(f[3]);
  if (!lat || *lat < -90.0 || *lat > 90.0) return GeofeedError::BadLatitude;
  const auto lon = parse_coord(f[4]);
  if (!lon || *lon < -180.0 || *lon > 180.0) {
    return GeofeedError::BadLongitude;
  }

  out.prefix = *prefix;
  out.country = std::string(f[1]);
  out.city = std::string(f[2]);
  out.location = geo::GeoPoint{*lat, *lon};
  return std::nullopt;
}

}  // namespace

std::string_view to_string(GeofeedError e) noexcept {
  switch (e) {
    case GeofeedError::FieldCount: return "field-count";
    case GeofeedError::BadPrefix: return "bad-prefix";
    case GeofeedError::HostBitsSet: return "host-bits-set";
    case GeofeedError::PrefixTooWide: return "prefix-too-wide";
    case GeofeedError::BadLatitude: return "bad-latitude";
    case GeofeedError::BadLongitude: return "bad-longitude";
    case GeofeedError::EmptyField: return "empty-field";
  }
  return "?";
}

GeofeedParseResult parse_geofeed(std::string_view text,
                                 const GeofeedLimits& limits) {
  static auto& reg = obs::Registry::instance();
  static obs::Counter& feeds = reg.counter("fusion.geofeed.feeds");
  static obs::Counter& lines_ok = reg.counter("fusion.geofeed.entries");
  static obs::Counter& lines_bad = reg.counter("fusion.geofeed.defects");
  static obs::Counter& quarantines = reg.counter("fusion.geofeed.quarantined");
  feeds.add();

  GeofeedParseResult result;
  std::size_t line_no = 0;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    if (result.data_lines() >= limits.max_lines) {
      result.quarantined = true;
      break;
    }
    GeofeedEntry entry;
    if (const auto err = parse_line(line, entry)) {
      result.defects.push_back(GeofeedDefect{line_no, *err});
    } else {
      result.entries.push_back(std::move(entry));
    }
  }

  lines_ok.add(result.entries.size());
  lines_bad.add(result.defects.size());
  if (!result.quarantined && result.data_lines() >= limits.min_lines) {
    const double bad = static_cast<double>(result.defects.size());
    result.quarantined =
        bad / static_cast<double>(result.data_lines()) >
        limits.quarantine_defect_fraction;
  }
  if (result.quarantined) {
    result.entries.clear();
    quarantines.add();
  }
  return result;
}

}  // namespace geoloc::fusion
