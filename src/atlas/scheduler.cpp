#include "atlas/scheduler.h"

#include <algorithm>
#include <unordered_map>

namespace geoloc::atlas {

MeasurementScheduler::MeasurementScheduler(const Platform& platform,
                                           const SchedulerConfig& config)
    : platform_(&platform), config_(config) {}

CampaignPlan MeasurementScheduler::plan(
    std::span<const MeasurementRequest> requests) const {
  CampaignPlan out;
  out.measurements = requests.size();
  if (requests.empty()) return out;

  const auto& credits = platform_->config().credits;

  // Process in batches (API rounds). Within a round, VPs probe in
  // parallel, so the round's duration is the slowest VP's packet budget.
  std::unordered_map<sim::HostId, double> rate_cache;

  std::size_t index = 0;
  while (index < requests.size()) {
    const std::size_t batch =
        std::min(config_.batch_size, requests.size() - index);
    std::unordered_map<sim::HostId, std::uint64_t> packets_per_vp;
    for (std::size_t i = index; i < index + batch; ++i) {
      const MeasurementRequest& r = requests[i];
      std::uint64_t packets = 0;
      if (r.kind == MeasurementKind::Ping) {
        packets = static_cast<std::uint64_t>(r.packets);
        out.credits +=
            credits.per_ping_packet * static_cast<std::uint64_t>(r.packets);
      } else {
        packets = static_cast<std::uint64_t>(config_.traceroute_packets);
        out.credits += credits.per_traceroute;
      }
      packets_per_vp[r.vp] += packets;
      out.packets += packets;
    }
    // Concurrency ceiling: a VP can have at most max_concurrent running,
    // but the binding constraint in practice is its packet rate.
    out.duration_s += round_duration_s(*platform_, packets_per_vp, rate_cache) +
                      config_.round_overhead_s;
    ++out.rounds;
    index += batch;
  }
  return out;
}

double round_duration_s(
    const Platform& platform,
    const std::unordered_map<sim::HostId, std::uint64_t>& packets_per_vp,
    std::unordered_map<sim::HostId, double>& rate_cache) {
  double round_s = 0.0;
  for (const auto& [vp, packets] : packets_per_vp) {
    auto it = rate_cache.find(vp);
    if (it == rate_cache.end()) {
      it = rate_cache.emplace(vp, platform.probing_rate_pps(vp)).first;
    }
    round_s = std::max(
        round_s, static_cast<double>(packets) / std::max(it->second, 1e-9));
  }
  return round_s;
}

CampaignPlan MeasurementScheduler::plan_full_mesh(
    std::span<const sim::HostId> vps, std::span<const sim::HostId> targets,
    int packets) const {
  std::vector<MeasurementRequest> requests;
  requests.reserve(vps.size() * targets.size());
  for (sim::HostId vp : vps) {
    for (sim::HostId target : targets) {
      requests.push_back({vp, target, MeasurementKind::Ping, packets});
    }
  }
  return plan(requests);
}

}  // namespace geoloc::atlas
