#include "atlas/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <limits>

#include "atlas/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"

namespace geoloc::atlas {

double RetryPolicy::backoff_s(int failed_attempts) const {
  if (failed_attempts <= 0) return 0.0;
  const double wait =
      initial_backoff_s *
      std::pow(backoff_multiplier, static_cast<double>(failed_attempts - 1));
  return std::min(wait, max_backoff_s);
}

CampaignExecutor::CampaignExecutor(Platform& platform,
                                   const ExecutorConfig& config)
    : platform_(&platform), config_(config) {}

namespace {

struct Pending {
  MeasurementRequest req;
  int attempts = 0;      ///< submissions so far
  double eligible_s = 0.0;  ///< earliest time the next attempt may run
};

/// What the (serial) fault-decision pass concluded for one round slot; the
/// execution pass then runs the Execute slots as one parallel ping batch
/// and commits every outcome back in round order.
enum class SlotAction : std::uint8_t {
  Abandon,      ///< dead VP, no spare: off the books immediately
  Requeue,      ///< outage deferral or API rejection: back off and retry
  ExecutePing,  ///< in the round's ping batch (task_index set)
  ExecuteTrace  ///< traceroutes run serially (their engine caches routes)
};

struct RoundSlot {
  Pending item;
  SlotAction action = SlotAction::Abandon;
  std::size_t task_index = 0;  ///< into the round's ping batch
};

/// Executor series on the obs registry. Everything here is observed
/// *after* the decision/commit passes computed it — the instrumentation
/// reads the report and the simulated clock, it never participates in a
/// weather draw or an ordering decision, so the CampaignReport stays
/// byte-identical with metrics on or off (DESIGN.md §10).
struct ExecutorMetrics {
  obs::Counter& campaigns;
  obs::Counter& requested;
  obs::Counter& completed;
  obs::Counter& abandoned;
  obs::Counter& attempts;
  obs::Counter& retries;
  obs::Counter& rejections;
  obs::Counter& no_replies;
  obs::Counter& outage_deferrals;
  obs::Counter& dead_vp_reassignments;
  obs::Counter& round_failures;
  obs::Counter& rounds;
  obs::Histogram& round_sim_s;    ///< simulated per-round duration
  obs::Histogram& round_wall_ms;  ///< real per-round wall time (GEOLOC_TRACE)
};

ExecutorMetrics& executor_metrics() {
  // Simulated round durations are deterministic, so their histogram is
  // part of the bit-stable metric set; only round_wall_ms varies by run.
  static constexpr double kSimSecondsBuckets[] = {
      1.0,     5.0,     15.0,    60.0,     240.0,
      960.0,   3'600.0, 14'400.0, 86'400.0, 604'800.0};
  static auto& reg = obs::Registry::instance();
  static ExecutorMetrics m{
      reg.counter("atlas.executor.campaigns"),
      reg.counter("atlas.executor.requested"),
      reg.counter("atlas.executor.completed"),
      reg.counter("atlas.executor.abandoned"),
      reg.counter("atlas.executor.attempts"),
      reg.counter("atlas.executor.retries"),
      reg.counter("atlas.executor.rejections"),
      reg.counter("atlas.executor.no_replies"),
      reg.counter("atlas.executor.outage_deferrals"),
      reg.counter("atlas.executor.dead_vp_reassignments"),
      reg.counter("atlas.executor.round_failures"),
      reg.counter("atlas.executor.rounds"),
      reg.histogram("atlas.executor.round_sim_s", kSimSecondsBuckets),
      reg.histogram("atlas.executor.round_wall_ms")};
  return m;
}

}  // namespace

CampaignReport CampaignExecutor::execute(
    std::span<const MeasurementRequest> requests,
    std::span<const sim::HostId> spare_vps) {
  CampaignReport report;
  report.requested = requests.size();
  if (requests.empty()) return report;
  const obs::TraceSpan span("atlas.executor.execute");
  ExecutorMetrics& metrics = executor_metrics();
  const bool wall_timing = obs::trace_enabled();

  const FaultModel* faults = platform_->fault_model();
  if (faults && !faults->enabled()) faults = nullptr;
  const RetryPolicy& retry = config_.retry;
  const SchedulerConfig& sched = config_.scheduler;

  std::deque<Pending> queue;
  std::unordered_map<sim::HostId, double> rate_cache;
  double now_s = 0.0;
  std::uint64_t submission_counter = 0;
  std::size_t spare_cursor = 0;

  // -- checkpointing (DESIGN.md §11) ---------------------------------------
  // Resolve the checkpoint file: an explicit path wins; otherwise
  // GEOLOC_CHECKPOINT_DIR yields a per-campaign file keyed by fingerprint.
  std::string ckpt_path = config_.checkpoint.path;
  std::uint64_t ckpt_fp = 0;
  std::uint64_t ckpt_every = 0;
  if (ckpt_path.empty()) {
    const std::string dir =
        util::env::string_or("GEOLOC_CHECKPOINT_DIR", "");
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (!ec) {
        ckpt_fp =
            campaign_fingerprint(requests, spare_vps, config_, *platform_);
        char name[48];
        std::snprintf(name, sizeof name, "/campaign-%016llx.ckpt",
                      static_cast<unsigned long long>(ckpt_fp));
        ckpt_path = dir + name;
      }
    }
  }
  if (!ckpt_path.empty()) {
    if (ckpt_fp == 0) {
      ckpt_fp = campaign_fingerprint(requests, spare_vps, config_, *platform_);
    }
    ckpt_every = config_.checkpoint.every_rounds != 0
                     ? config_.checkpoint.every_rounds
                     : static_cast<std::uint64_t>(
                           util::env::int_or("GEOLOC_CHECKPOINT_EVERY", 1));
  }

  // Resume: restore queue, clocks, draw cursors, accumulated report, and
  // the platform usage counters (== measurement RNG ordinals) from a
  // matching checkpoint. A missing, foreign or quarantined-corrupt file
  // simply means a fresh start.
  bool resumed = false;
  if (!ckpt_path.empty() && config_.checkpoint.resume) {
    CampaignCheckpoint c;
    if (load_checkpoint(ckpt_path, ckpt_fp, &c)) {
      report = std::move(c.report);
      report.requested = requests.size();  // equal by fingerprint binding
      now_s = c.now_s;
      submission_counter = c.submission_counter;
      spare_cursor = static_cast<std::size_t>(c.spare_cursor);
      platform_->restore_usage(c.usage);
      for (const PendingMeasurement& p : c.queue) {
        queue.push_back({p.req, p.attempts, p.eligible_s});
      }
      resumed = true;
    }
  }
  if (!resumed) {
    for (const MeasurementRequest& r : requests) queue.push_back({r, 0, 0.0});
  }
  if (config_.collect_results) report.results.reserve(requests.size());

  /// Round-boundary hook: persist state on the configured cadence (and
  /// always before a stop_after_rounds exit), then report whether the
  /// bounded work slice is up. Returns true when execution must stop.
  const auto at_round_boundary = [&]() -> bool {
    const bool stop = config_.checkpoint.stop_after_rounds != 0 &&
                      report.rounds >= config_.checkpoint.stop_after_rounds &&
                      !queue.empty();
    if (!ckpt_path.empty() &&
        ((ckpt_every != 0 && report.rounds % ckpt_every == 0) || stop)) {
      CampaignCheckpoint c;
      c.fingerprint = ckpt_fp;
      c.now_s = now_s;
      c.submission_counter = submission_counter;
      c.spare_cursor = static_cast<std::uint64_t>(spare_cursor);
      c.usage = platform_->usage();
      c.report = report;
      c.queue.reserve(queue.size());
      for (const Pending& p : queue) {
        c.queue.push_back({p.req, p.attempts, p.eligible_s});
      }
      save_checkpoint(ckpt_path, c);
    }
    return stop;
  };

  // A measurement that failed its attempt goes back to the queue with a
  // capped-exponential wait, or is abandoned once its budget is gone.
  auto requeue_or_abandon = [&](Pending item) {
    if (item.attempts >= retry.max_attempts) {
      ++report.abandoned;
      return;
    }
    item.eligible_s = now_s + retry.backoff_s(item.attempts);
    queue.push_back(item);
  };

  // Replacement VP for a measurement whose probe died: the next spare that
  // is still on the platform (round-robin, deterministic).
  auto find_spare = [&](double t_s) -> sim::HostId {
    for (std::size_t i = 0; i < spare_vps.size(); ++i) {
      const sim::HostId cand = spare_vps[(spare_cursor + i) % spare_vps.size()];
      if (!faults || !faults->vp_abandoned(cand, t_s)) {
        spare_cursor = (spare_cursor + i + 1) % spare_vps.size();
        return cand;
      }
    }
    return sim::kInvalidHost;
  };

  while (!queue.empty()) {
    // Gather the round: eligible measurements, up to the batch size.
    std::vector<Pending> round;
    round.reserve(std::min(queue.size(), sched.batch_size));
    {
      std::deque<Pending> rest;
      while (!queue.empty()) {
        Pending item = queue.front();
        queue.pop_front();
        if (item.eligible_s <= now_s && round.size() < sched.batch_size) {
          round.push_back(item);
        } else {
          rest.push_back(item);
        }
      }
      queue = std::move(rest);
    }
    if (round.empty()) {
      // Everything pending is backing off; fast-forward to the first
      // eligible measurement and account the idle wait.
      double next = std::numeric_limits<double>::infinity();
      for (const Pending& p : queue) next = std::min(next, p.eligible_s);
      report.backoff_wait_s += next - now_s;
      now_s = next;
      continue;
    }

    ++report.rounds;
    const std::uint64_t round_index = report.rounds - 1;
    const double round_start_sim_s = now_s;
    const auto round_start_wall = wall_timing
                                      ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point();
    const auto observe_round = [&] {
      metrics.round_sim_s.observe(now_s - round_start_sim_s);
      if (wall_timing) {
        metrics.round_wall_ms.observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - round_start_wall)
                .count());
      }
    };

    if (faults && faults->round_fails(round_index)) {
      // The whole submission round failed transiently (API weather). The
      // round overhead is burnt; every measurement in it pays an attempt
      // and backs off.
      ++report.round_failures;
      now_s += sched.round_overhead_s;
      report.duration_s = now_s;
      for (Pending& item : round) {
        ++report.attempts;
        if (item.attempts > 0) ++report.retries;
        ++item.attempts;
        requeue_or_abandon(item);
      }
      observe_round();
      if (at_round_boundary()) {
        report.interrupted = true;
        return report;
      }
      continue;
    }

    // Decision pass (serial, round order): weather consultations and the
    // attempt accounting happen in exactly the sequence the plain serial
    // loop used — the spare cursor and the rejection counter are shared
    // state whose draw order is part of the campaign's determinism
    // contract. Executable pings are only *collected* here; their sampling
    // is order-independent by construction (per-ordinal RNG streams) and
    // runs as one parallel batch below.
    std::vector<RoundSlot> slots;
    slots.reserve(round.size());
    std::vector<PingTask> ping_tasks;
    ping_tasks.reserve(round.size());
    for (Pending& item : round) {
      RoundSlot slot{item, SlotAction::Abandon, 0};
      // Permanent churn: a dead probe never answers again, so either move
      // the measurement to a spare or abandon it outright — retrying
      // against a dead VP would only burn the budget.
      if (faults && faults->vp_abandoned(slot.item.req.vp, now_s)) {
        const sim::HostId spare =
            config_.reassign_dead_vps ? find_spare(now_s) : sim::kInvalidHost;
        if (spare == sim::kInvalidHost) {
          ++report.abandoned;
          slots.push_back(slot);  // action stays Abandon (already counted)
          continue;
        }
        ++report.vp_reassignments;
        slot.item.req.vp = spare;
      }

      ++report.attempts;
      if (slot.item.attempts > 0) ++report.retries;
      ++slot.item.attempts;

      // Transient outage: the probe is offline right now but will be back;
      // defer the measurement past a backoff wait.
      if (faults && faults->vp_in_outage(slot.item.req.vp, now_s)) {
        ++report.outage_deferrals;
        slot.action = SlotAction::Requeue;
        slots.push_back(slot);
        continue;
      }

      // Credit / rate-limit rejection: the API refused the submission.
      // Nothing ran, nothing is billed, but the attempt is spent.
      if (faults && faults->measurement_rejected(submission_counter++)) {
        ++report.rejections;
        slot.action = SlotAction::Requeue;
        slots.push_back(slot);
        continue;
      }

      if (slot.item.req.kind == MeasurementKind::Ping) {
        slot.action = SlotAction::ExecutePing;
        slot.task_index = ping_tasks.size();
        ping_tasks.push_back({slot.item.req.vp, slot.item.req.target,
                              slot.item.req.packets});
      } else {
        slot.action = SlotAction::ExecuteTrace;
      }
      slots.push_back(slot);
    }

    // Sampling pass: the round's pings as one batch — bit-identical to the
    // serial per-item calls, for any GEOLOC_THREADS.
    std::vector<PingMeasurement> ping_results(ping_tasks.size());
    platform_->ping_many(ping_tasks, ping_results);

    // Commit pass (serial, round order): outcome accounting and requeues in
    // the same interleaving the serial loop produced.
    std::unordered_map<sim::HostId, std::uint64_t> packets_per_vp;
    const std::uint64_t per_ping_packet =
        platform_->config().credits.per_ping_packet;
    for (RoundSlot& slot : slots) {
      switch (slot.action) {
        case SlotAction::Abandon:
          break;  // already accounted in the decision pass
        case SlotAction::Requeue:
          requeue_or_abandon(slot.item);
          break;
        case SlotAction::ExecutePing: {
          const PingMeasurement& m = ping_results[slot.task_index];
          const std::uint64_t cost =
              per_ping_packet * static_cast<std::uint64_t>(m.packets_sent);
          report.credits_spent += cost;
          packets_per_vp[slot.item.req.vp] +=
              static_cast<std::uint64_t>(m.packets_sent);
          if (m.answered()) {
            ++report.completed;
            if (config_.collect_results) report.results.push_back(m);
          } else {
            ++report.no_replies;
            report.credits_wasted += cost;
            requeue_or_abandon(slot.item);
          }
          break;
        }
        case SlotAction::ExecuteTrace: {
          const std::uint64_t before = platform_->usage().credits;
          const sim::Traceroute tr =
              platform_->traceroute(slot.item.req.vp, slot.item.req.target);
          const std::uint64_t cost = platform_->usage().credits - before;
          report.credits_spent += cost;
          packets_per_vp[slot.item.req.vp] +=
              static_cast<std::uint64_t>(sched.traceroute_packets);
          if (!tr.hops.empty()) {
            ++report.completed;
          } else {
            report.credits_wasted += cost;
            requeue_or_abandon(slot.item);
          }
          break;
        }
      }
    }

    now_s += round_duration_s(*platform_, packets_per_vp, rate_cache) +
             sched.round_overhead_s;
    report.duration_s = now_s;
    observe_round();
    if (at_round_boundary()) {
      report.interrupted = true;
      return report;
    }
  }

  report.duration_s = now_s;

  // The campaign completed: its checkpoint is spent. Removing it keeps a
  // later identical campaign from short-circuiting to this one's result.
  if (!ckpt_path.empty()) std::remove(ckpt_path.c_str());

  // Campaign totals onto the registry, in one pass off the finished
  // report: zero per-measurement cost and, by construction, zero effect
  // on the report itself.
  metrics.campaigns.add();
  metrics.requested.add(report.requested);
  metrics.completed.add(report.completed);
  metrics.abandoned.add(report.abandoned);
  metrics.attempts.add(report.attempts);
  metrics.retries.add(report.retries);
  metrics.rejections.add(report.rejections);
  metrics.no_replies.add(report.no_replies);
  metrics.outage_deferrals.add(report.outage_deferrals);
  metrics.dead_vp_reassignments.add(report.vp_reassignments);
  metrics.round_failures.add(report.round_failures);
  metrics.rounds.add(report.rounds);
  return report;
}

CampaignReport CampaignExecutor::execute_full_mesh(
    std::span<const sim::HostId> vps, std::span<const sim::HostId> targets,
    int packets, std::span<const sim::HostId> spare_vps) {
  std::vector<MeasurementRequest> requests;
  requests.reserve(vps.size() * targets.size());
  for (sim::HostId vp : vps) {
    for (sim::HostId target : targets) {
      requests.push_back({vp, target, MeasurementKind::Ping, packets});
    }
  }
  return execute(requests, spare_vps);
}

}  // namespace geoloc::atlas
