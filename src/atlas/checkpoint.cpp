#include "atlas/checkpoint.h"

#include "util/durable.h"

namespace geoloc::atlas {

namespace {

constexpr std::uint64_t kMagic = 0x313054504B434C47ULL;  // "GLCKPT01"
constexpr std::uint32_t kVersion = 1;

/// Fixed-width size of one encoded PingMeasurement / PendingMeasurement,
/// used to bound claimed counts before allocating.
constexpr std::uint64_t kResultBytes = 4 + 4 + 1 + 8 + 4 + 4;
constexpr std::uint64_t kPendingBytes = 4 + 4 + 1 + 4 + 4 + 8;

void put_report(util::durable::PayloadWriter& w, const CampaignReport& r) {
  w.pod(static_cast<std::uint64_t>(r.requested));
  w.pod(static_cast<std::uint64_t>(r.completed));
  w.pod(static_cast<std::uint64_t>(r.abandoned));
  w.pod(r.attempts);
  w.pod(r.retries);
  w.pod(r.rejections);
  w.pod(r.no_replies);
  w.pod(r.outage_deferrals);
  w.pod(r.vp_reassignments);
  w.pod(r.round_failures);
  w.pod(static_cast<std::uint64_t>(r.rounds));
  w.pod(r.credits_spent);
  w.pod(r.credits_wasted);
  w.pod(r.duration_s);
  w.pod(r.backoff_wait_s);
  w.pod(static_cast<std::uint64_t>(r.results.size()));
  for (const PingMeasurement& m : r.results) {
    w.pod(static_cast<std::uint32_t>(m.vp));
    w.pod(static_cast<std::uint32_t>(m.target));
    w.pod(static_cast<std::uint8_t>(m.min_rtt_ms.has_value() ? 1 : 0));
    w.pod(m.min_rtt_ms.value_or(0.0));
    w.pod(static_cast<std::int32_t>(m.packets_sent));
    w.pod(static_cast<std::int32_t>(m.packets_received));
  }
}

bool get_report(util::durable::PayloadReader& in, CampaignReport* r) {
  std::uint64_t requested = 0, completed = 0, abandoned = 0, rounds = 0,
                n_results = 0;
  if (!in.pod(requested) || !in.pod(completed) || !in.pod(abandoned) ||
      !in.pod(r->attempts) || !in.pod(r->retries) || !in.pod(r->rejections) ||
      !in.pod(r->no_replies) || !in.pod(r->outage_deferrals) ||
      !in.pod(r->vp_reassignments) || !in.pod(r->round_failures) ||
      !in.pod(rounds) || !in.pod(r->credits_spent) ||
      !in.pod(r->credits_wasted) || !in.pod(r->duration_s) ||
      !in.pod(r->backoff_wait_s) || !in.pod(n_results)) {
    return false;
  }
  r->requested = static_cast<std::size_t>(requested);
  r->completed = static_cast<std::size_t>(completed);
  r->abandoned = static_cast<std::size_t>(abandoned);
  r->rounds = static_cast<std::size_t>(rounds);
  if (n_results > in.remaining() / kResultBytes) return false;
  r->results.resize(static_cast<std::size_t>(n_results));
  for (PingMeasurement& m : r->results) {
    std::uint32_t vp = 0, target = 0;
    std::uint8_t has_rtt = 0;
    double rtt = 0.0;
    std::int32_t sent = 0, received = 0;
    if (!in.pod(vp) || !in.pod(target) || !in.pod(has_rtt) || !in.pod(rtt) ||
        !in.pod(sent) || !in.pod(received) || has_rtt > 1) {
      return false;
    }
    m.vp = vp;
    m.target = target;
    m.min_rtt_ms = has_rtt ? std::optional<double>(rtt) : std::nullopt;
    m.packets_sent = sent;
    m.packets_received = received;
  }
  return true;
}

}  // namespace

std::uint64_t campaign_fingerprint(
    std::span<const MeasurementRequest> requests,
    std::span<const sim::HostId> spare_vps, const ExecutorConfig& config,
    const Platform& platform) {
  util::durable::PayloadWriter w;
  // World identity and weather: the same request list against a different
  // world or under different skies is a different campaign.
  w.pod(platform.world().rng().seed());
  const PlatformConfig& pc = platform.config();
  w.pod(pc.credits.per_ping_packet);
  w.pod(pc.credits.per_traceroute);
  w.pod(static_cast<std::int32_t>(pc.ping_packets));
  w.pod(pc.probe_pps_min);
  w.pod(pc.probe_pps_max);
  w.pod(pc.anchor_pps_min);
  w.pod(pc.anchor_pps_max);
  if (const FaultModel* faults = platform.fault_model();
      faults && faults->enabled()) {
    const FaultConfig& fc = faults->config();
    w.pod(std::uint8_t{1});
    w.pod(fc.seed);
    w.pod(fc.vp_abandon_per_day);
    w.pod(fc.anchor_stability);
    w.pod(fc.vp_outages_per_day);
    w.pod(fc.vp_outage_mean_s);
    w.pod(fc.target_unresponsive_rate);
    w.pod(fc.round_failure_rate);
    w.pod(fc.measurement_rejection_rate);
  } else {
    w.pod(std::uint8_t{0});
  }
  // Executor knobs that steer the round loop. The checkpoint policy
  // itself is deliberately excluded: resuming with a different cadence or
  // stop point is the whole point.
  w.pod(static_cast<std::uint64_t>(config.scheduler.max_concurrent));
  w.pod(static_cast<std::uint64_t>(config.scheduler.batch_size));
  w.pod(config.scheduler.round_overhead_s);
  w.pod(static_cast<std::int32_t>(config.scheduler.traceroute_packets));
  w.pod(static_cast<std::int32_t>(config.retry.max_attempts));
  w.pod(config.retry.initial_backoff_s);
  w.pod(config.retry.backoff_multiplier);
  w.pod(config.retry.max_backoff_s);
  w.pod(static_cast<std::uint8_t>(config.reassign_dead_vps));
  w.pod(static_cast<std::uint8_t>(config.collect_results));
  // The work itself.
  w.pod(static_cast<std::uint64_t>(requests.size()));
  for (const MeasurementRequest& r : requests) {
    w.pod(static_cast<std::uint32_t>(r.vp));
    w.pod(static_cast<std::uint32_t>(r.target));
    w.pod(static_cast<std::uint8_t>(r.kind));
    w.pod(static_cast<std::int32_t>(r.packets));
  }
  w.pod(static_cast<std::uint64_t>(spare_vps.size()));
  for (sim::HostId vp : spare_vps) w.pod(static_cast<std::uint32_t>(vp));
  return util::durable::xxh64(w.data(), /*seed=*/kMagic);
}

std::vector<std::byte> encode_report(const CampaignReport& r) {
  util::durable::PayloadWriter w;
  put_report(w, r);
  return w.take();
}

bool decode_report(std::span<const std::byte> bytes, CampaignReport* out) {
  util::durable::PayloadReader in(bytes);
  CampaignReport r;
  if (!get_report(in, &r) || !in.exhausted()) return false;
  *out = std::move(r);
  return true;
}

bool save_checkpoint(const std::string& path, const CampaignCheckpoint& c,
                     std::string* error) {
  util::durable::PayloadWriter w;
  w.pod(c.fingerprint);
  w.pod(c.now_s);
  w.pod(c.submission_counter);
  w.pod(c.spare_cursor);
  w.pod(c.usage.pings);
  w.pod(c.usage.ping_packets);
  w.pod(c.usage.traceroutes);
  w.pod(c.usage.credits);
  put_report(w, c.report);
  w.pod(static_cast<std::uint64_t>(c.queue.size()));
  for (const PendingMeasurement& p : c.queue) {
    w.pod(static_cast<std::uint32_t>(p.req.vp));
    w.pod(static_cast<std::uint32_t>(p.req.target));
    w.pod(static_cast<std::uint8_t>(p.req.kind));
    w.pod(static_cast<std::int32_t>(p.req.packets));
    w.pod(p.attempts);
    w.pod(p.eligible_s);
  }
  return util::durable::write_framed(path, kMagic, kVersion, w.data(), error);
}

bool load_checkpoint(const std::string& path, std::uint64_t fingerprint,
                     CampaignCheckpoint* out) {
  const util::durable::FramedRead fr = util::durable::read_framed(path, kMagic);
  if (!fr.ok() || fr.version != kVersion) return false;

  util::durable::PayloadReader in(fr.payload);
  CampaignCheckpoint c;
  if (!in.pod(c.fingerprint)) return false;
  // A fingerprint mismatch is a checkpoint of some *other* campaign
  // sharing the path — not corruption; start this one from scratch.
  if (c.fingerprint != fingerprint) return false;
  if (!in.pod(c.now_s) || !in.pod(c.submission_counter) ||
      !in.pod(c.spare_cursor) || !in.pod(c.usage.pings) ||
      !in.pod(c.usage.ping_packets) || !in.pod(c.usage.traceroutes) ||
      !in.pod(c.usage.credits)) {
    return false;
  }
  if (!get_report(in, &c.report)) return false;
  std::uint64_t n_queue = 0;
  if (!in.pod(n_queue) || n_queue > in.remaining() / kPendingBytes) {
    return false;
  }
  c.queue.resize(static_cast<std::size_t>(n_queue));
  for (PendingMeasurement& p : c.queue) {
    std::uint32_t vp = 0, target = 0;
    std::uint8_t kind = 0;
    std::int32_t packets = 0;
    if (!in.pod(vp) || !in.pod(target) || !in.pod(kind) || !in.pod(packets) ||
        !in.pod(p.attempts) || !in.pod(p.eligible_s) ||
        kind > static_cast<std::uint8_t>(MeasurementKind::Traceroute)) {
      return false;
    }
    p.req.vp = vp;
    p.req.target = target;
    p.req.kind = static_cast<MeasurementKind>(kind);
    p.req.packets = packets;
  }
  if (!in.exhausted()) return false;
  *out = std::move(c);
  return true;
}

}  // namespace geoloc::atlas
