// Resilient campaign execution against the (possibly stormy) platform.
//
// The scheduler plans a campaign; this executor actually runs one, the way
// the IMC'23 authors had to on the real RIPE Atlas: submitting rounds,
// watching probes disconnect mid-campaign, eating transient API failures
// and credit rejections, retrying with capped exponential backoff, and
// re-assigning measurements whose probe died for good. The CampaignReport
// accounts for what resilience costs — attempts, retries, abandoned
// measurements, credits wasted on unanswered probes, and the wall-clock
// added by backoff — the numbers the paper's overhead arguments
// (Figure 3c, Section 5.1.3) implicitly absorbed.
//
// Weather comes from the FaultModel attached to the Platform; without one
// (or with a calm preset) execution degenerates to the plain measurement
// loop and is bit-identical to calling Platform::ping in request order.
//
// Execution is parallel and deterministic: each round makes its weather
// decisions serially (spare cursor and rejection counter are draw-order
// state), samples the surviving pings as one Platform::ping_many batch on
// the parallel engine, and commits outcomes back in round order — so the
// CampaignReport is byte-identical for any GEOLOC_THREADS value
// (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atlas/faults.h"
#include "atlas/scheduler.h"

namespace geoloc::atlas {

/// Capped exponential backoff with a per-measurement retry budget.
struct RetryPolicy {
  int max_attempts = 3;  ///< submission attempts per measurement (1 = no retry)
  double initial_backoff_s = 60.0;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 960.0;

  /// Wait before the next attempt, after `failed_attempts` failures.
  [[nodiscard]] double backoff_s(int failed_attempts) const;
};

/// Crash-safe checkpointing of a running campaign (DESIGN.md §11). At
/// every round boundary the executor can persist its complete state —
/// pending queue, simulated clock, RNG ordinals (platform usage counters),
/// accumulated CampaignReport — through the durable atomic-write layer, so
/// a killed campaign resumes exactly where it died: the resumed run's
/// CampaignReport is byte-identical to an uninterrupted one.
struct CheckpointPolicy {
  /// Checkpoint file. Empty disables checkpointing unless
  /// GEOLOC_CHECKPOINT_DIR is set, in which case the executor derives
  /// "<dir>/campaign-<fingerprint>.ckpt" per campaign.
  std::string path;
  /// Checkpoint every N completed rounds; 0 defers to
  /// GEOLOC_CHECKPOINT_EVERY (default 1 — every round boundary).
  std::uint64_t every_rounds = 0;
  /// Load a matching checkpoint at execute() start. A checkpoint whose
  /// campaign fingerprint (requests, spares, config, world seed, weather)
  /// differs is ignored; a corrupt one is quarantined and ignored.
  bool resume = true;
  /// Stop (with report.interrupted set) after this many rounds, leaving a
  /// fresh checkpoint behind — the deterministic stand-in for `kill -9` in
  /// the crash/resume tests, and an ops hook for bounded work slices.
  /// 0 runs to completion.
  std::uint64_t stop_after_rounds = 0;
};

struct ExecutorConfig {
  SchedulerConfig scheduler;  ///< batching, round overhead, traceroute packets
  RetryPolicy retry;
  CheckpointPolicy checkpoint;
  /// Re-assign a measurement to a spare VP when its probe abandoned the
  /// platform mid-campaign (requires spare_vps at execute time).
  bool reassign_dead_vps = true;
  /// Keep every successful PingMeasurement in the report. Disable for
  /// campaigns where only the accounting matters.
  bool collect_results = true;
};

/// What executing a campaign actually took. `requested == completed +
/// abandoned` always holds on return of a completed (non-interrupted)
/// campaign.
struct CampaignReport {
  std::size_t requested = 0;
  std::size_t completed = 0;  ///< measurement produced a result
  std::size_t abandoned = 0;  ///< gave up after the retry budget (or dead VP)

  std::uint64_t attempts = 0;       ///< submissions, including retries
  std::uint64_t retries = 0;        ///< attempts beyond each first
  std::uint64_t rejections = 0;     ///< credit / rate-limit rejections
  std::uint64_t no_replies = 0;     ///< executed pings with zero echo replies
  std::uint64_t outage_deferrals = 0;  ///< submissions hitting a VP outage
  std::uint64_t vp_reassignments = 0;  ///< measurements moved off dead VPs
  std::uint64_t round_failures = 0;    ///< transient whole-round API failures

  std::size_t rounds = 0;  ///< submission rounds, including failed ones
  std::uint64_t credits_spent = 0;
  std::uint64_t credits_wasted = 0;  ///< spent on attempts with no usable RTT

  double duration_s = 0.0;      ///< campaign wall clock, waits included
  double backoff_wait_s = 0.0;  ///< wall clock spent waiting out backoff

  /// True when execution stopped at CheckpointPolicy::stop_after_rounds
  /// with work still pending; the checkpoint holds the state to resume
  /// from. Never set on a completed campaign (and `requested ==
  /// completed + abandoned` then holds as always).
  bool interrupted = false;

  /// Successful measurements, in completion order (when collect_results).
  std::vector<PingMeasurement> results;

  [[nodiscard]] double duration_days() const { return duration_s / 86'400.0; }
  [[nodiscard]] double success_rate() const {
    return requested == 0
               ? 1.0
               : static_cast<double>(completed) / static_cast<double>(requested);
  }
};

class CampaignExecutor {
 public:
  /// The platform is mutated (measurements run, credits billed). Weather is
  /// read from platform.fault_model(); none attached means calm skies.
  explicit CampaignExecutor(Platform& platform,
                            const ExecutorConfig& config = {});

  /// Run the campaign. `spare_vps` is the replacement pool for measurements
  /// whose VP permanently disconnected (tried in order, round-robin).
  CampaignReport execute(std::span<const MeasurementRequest> requests,
                         std::span<const sim::HostId> spare_vps = {});

  /// Convenience mirror of MeasurementScheduler::plan_full_mesh.
  CampaignReport execute_full_mesh(std::span<const sim::HostId> vps,
                                   std::span<const sim::HostId> targets,
                                   int packets = 3,
                                   std::span<const sim::HostId> spare_vps = {});

  [[nodiscard]] const ExecutorConfig& config() const noexcept {
    return config_;
  }

 private:
  Platform* platform_;
  ExecutorConfig config_;
};

}  // namespace geoloc::atlas
