#include "atlas/platform.h"

#include "util/parallel.h"

namespace geoloc::atlas {

Platform::Platform(const sim::World& world, const sim::LatencyModel& latency,
                   const PlatformConfig& config)
    : world_(&world),
      latency_(&latency),
      tracer_(world, latency),
      config_(config),
      stream_(world.rng().fork("platform")) {}

PingMeasurement Platform::ping(sim::HostId vp, sim::HostId target) {
  return ping(vp, target, config_.ping_packets);
}

PingMeasurement Platform::sample_ping(sim::HostId vp, sim::HostId target,
                                      int packets,
                                      std::uint64_t ordinal) const {
  PingMeasurement m;
  m.vp = vp;
  m.target = target;
  m.packets_sent = packets;
  // Weather-unresponsive targets eat every echo request; the packets (and
  // credits) are spent regardless.
  if (!(faults_ && faults_->target_unresponsive(target))) {
    auto gen = stream_.fork("ping", ordinal).gen();
    const auto sample = latency_->ping_sample(vp, target, packets, gen);
    m.min_rtt_ms = sample.min_rtt_ms;
    m.packets_received = sample.packets_received;
  }
  return m;
}

void Platform::bill_ping(int packets) noexcept {
  ++usage_.pings;
  usage_.ping_packets += static_cast<std::uint64_t>(packets);
  usage_.credits +=
      config_.credits.per_ping_packet * static_cast<std::uint64_t>(packets);
}

PingMeasurement Platform::ping(sim::HostId vp, sim::HostId target,
                               int packets) {
  const PingMeasurement m = sample_ping(vp, target, packets, usage_.pings);
  bill_ping(packets);
  return m;
}

void Platform::ping_many(std::span<const PingTask> tasks,
                         std::span<PingMeasurement> out) {
  const std::uint64_t base = usage_.pings;
  util::parallel_for(tasks.size(), [&](std::size_t i) {
    out[i] = sample_ping(tasks[i].vp, tasks[i].target, tasks[i].packets,
                         base + i);
  });
  // Billing is a serial commit in task order, so the usage counters agree
  // with the equivalent loop of ping() calls at every intermediate step.
  for (const PingTask& t : tasks) bill_ping(t.packets);
}

sim::Traceroute Platform::traceroute(sim::HostId vp, sim::HostId target) {
  auto gen = stream_.fork("trace", usage_.traceroutes).gen();
  ++usage_.traceroutes;
  usage_.credits += config_.credits.per_traceroute;
  return tracer_.run(vp, target, gen);
}

std::vector<PingMeasurement> Platform::ping_from_all(
    std::span<const sim::HostId> vps, sim::HostId target) {
  std::vector<PingMeasurement> out(vps.size());
  ping_from_all(vps, target, out);
  return out;
}

void Platform::ping_from_all(std::span<const sim::HostId> vps,
                             sim::HostId target,
                             std::span<PingMeasurement> out) {
  const std::uint64_t base = usage_.pings;
  util::parallel_for(vps.size(), [&](std::size_t i) {
    out[i] = sample_ping(vps[i], target, config_.ping_packets, base + i);
  });
  for (std::size_t i = 0; i < vps.size(); ++i) bill_ping(config_.ping_packets);
}

double Platform::probing_rate_pps(sim::HostId vp) const {
  const sim::Host& h = world_->host(vp);
  auto gen = world_->rng().fork("pps", vp).gen();
  if (h.kind == sim::HostKind::Anchor) {
    return gen.uniform(config_.anchor_pps_min, config_.anchor_pps_max);
  }
  return gen.uniform(config_.probe_pps_min, config_.probe_pps_max);
}

DeployabilityAnswer analyze_deployability(const DeployabilityQuestion& q,
                                          const PlatformConfig& config) {
  DeployabilityAnswer a;
  a.packets_per_vp = static_cast<double>(q.target_prefixes) *
                     q.representatives_per_prefix * q.packets_per_ping;
  a.total_packets =
      static_cast<std::uint64_t>(a.packets_per_vp) * q.vantage_points;
  const double probe_mid = (config.probe_pps_min + config.probe_pps_max) / 2.0;
  a.days_at_probe_rate = a.days_at_pps(probe_mid);
  a.days_at_original_rate = a.days_at_pps(500.0);
  return a;
}

}  // namespace geoloc::atlas
