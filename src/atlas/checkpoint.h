// Campaign checkpoint format — the crash-safety half of the executor.
//
// A real multi-week Atlas campaign (the paper's street-level runs took
// days; the ROADMAP's production scale takes longer) cannot afford to lose
// everything to one OOM-kill or host reboot. The executor's state at a
// round boundary is small and closed: the pending queue, the simulated
// clock, the draw-order cursors (submission counter, spare cursor), the
// platform's usage counters — which *are* the RNG ordinals, because every
// measurement's randomness derives from fork("ping", usage.pings)
// (DESIGN.md §9) — and the accumulated CampaignReport. Persisting exactly
// that tuple through the durable framed format (util/durable.h) makes
// resumption provably exact: the resumed run re-enters the round loop with
// bit-identical state, so its final CampaignReport is byte-identical to an
// uninterrupted run's — a property the kill-and-resume tests assert by
// comparing encode_report() bytes (tests/durable_checkpoint_test.cpp).
//
// Checkpoints are bound to a campaign fingerprint (requests, spares,
// executor config, platform config, world seed, weather config) so a
// checkpoint can never resume the wrong campaign; a stale or foreign one
// is simply ignored and a corrupt one is quarantined.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "atlas/executor.h"

namespace geoloc::atlas {

/// One queued measurement as checkpointed: the request plus its retry
/// position (mirrors the executor's internal Pending state).
struct PendingMeasurement {
  MeasurementRequest req;
  std::int32_t attempts = 0;
  double eligible_s = 0.0;
};

/// Complete executor state at a round boundary.
struct CampaignCheckpoint {
  std::uint64_t fingerprint = 0;  ///< campaign identity (see above)
  double now_s = 0.0;
  std::uint64_t submission_counter = 0;
  std::uint64_t spare_cursor = 0;
  UsageCounters usage;     ///< platform counters == measurement RNG ordinals
  CampaignReport report;   ///< accumulated so far, results included
  std::vector<PendingMeasurement> queue;  ///< still-pending, in queue order
};

/// Identity of a campaign for checkpoint binding: a hash over the request
/// list, spare pool, executor config, platform config, world seed and
/// fault config. Two campaigns that could diverge get different
/// fingerprints; re-running the same campaign reproduces the same one.
[[nodiscard]] std::uint64_t campaign_fingerprint(
    std::span<const MeasurementRequest> requests,
    std::span<const sim::HostId> spare_vps, const ExecutorConfig& config,
    const Platform& platform);

/// Canonical byte encoding of a CampaignReport (the `interrupted` flag,
/// which is transport state rather than campaign outcome, excluded).
/// Deterministic: equal reports yield identical bytes — this is the
/// byte-identity oracle the resume tests compare with.
[[nodiscard]] std::vector<std::byte> encode_report(const CampaignReport& r);

/// Decode the result of encode_report. Returns false on malformed input
/// (bounds-checked; never a partial report).
[[nodiscard]] bool decode_report(std::span<const std::byte> bytes,
                                 CampaignReport* out);

/// Atomically persist a checkpoint (durable framed write).
bool save_checkpoint(const std::string& path, const CampaignCheckpoint& c,
                     std::string* error = nullptr);

/// Load a checkpoint and validate it against `fingerprint`. Returns false
/// on absence, corruption (the file is then quarantined) or fingerprint
/// mismatch — all of which mean "start from the beginning".
[[nodiscard]] bool load_checkpoint(const std::string& path,
                                   std::uint64_t fingerprint,
                                   CampaignCheckpoint* out);

}  // namespace geoloc::atlas
