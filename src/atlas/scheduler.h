// Campaign scheduling against the platform's probing budgets.
//
// The study's measurement campaigns were only possible because RIPE Atlas
// granted an upgraded account ("hundreds of millions of credits",
// Section 4.1.1). This scheduler turns a measurement plan — who pings whom,
// how many packets — into rounds that respect each VP's sustainable
// probing rate and the platform's concurrent-measurement ceiling, and
// reports the credit bill and the campaign's wall-clock duration.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "atlas/platform.h"

namespace geoloc::atlas {

enum class MeasurementKind : std::uint8_t { Ping, Traceroute };

struct MeasurementRequest {
  sim::HostId vp = sim::kInvalidHost;
  sim::HostId target = sim::kInvalidHost;
  MeasurementKind kind = MeasurementKind::Ping;
  int packets = 3;  ///< per ping; traceroutes bill a flat packet estimate
};

struct SchedulerConfig {
  /// Platform ceiling on measurements running at once (Atlas enforces
  /// per-account concurrency; the study's upgraded account raised it).
  std::size_t max_concurrent = 100;
  /// Measurements batched into one API round.
  std::size_t batch_size = 10'000;
  /// API overhead per round (submission + result collection), seconds.
  double round_overhead_s = 120.0;
  /// Packets a traceroute is worth when charging a VP's packet budget.
  int traceroute_packets = 16;
};

struct CampaignPlan {
  std::size_t measurements = 0;
  std::size_t rounds = 0;
  std::uint64_t credits = 0;
  std::uint64_t packets = 0;
  /// Campaign duration: per-round max over VPs of (packets / pps), plus the
  /// per-round API overhead.
  double duration_s = 0.0;

  [[nodiscard]] double duration_days() const { return duration_s / 86'400.0; }
};

class MeasurementScheduler {
 public:
  MeasurementScheduler(const Platform& platform,
                       const SchedulerConfig& config = {});

  /// Plan (without executing) a campaign; deterministic.
  [[nodiscard]] CampaignPlan plan(
      std::span<const MeasurementRequest> requests) const;

  /// Convenience: the tier-1 campaign — every VP pings every target.
  [[nodiscard]] CampaignPlan plan_full_mesh(
      std::span<const sim::HostId> vps, std::span<const sim::HostId> targets,
      int packets = 3) const;

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

 private:
  const Platform* platform_;
  SchedulerConfig config_;
};

/// Duration of one parallel API round: within a round VPs probe
/// concurrently, so the round lasts as long as the slowest VP's packet
/// budget at its sustainable rate. `rate_cache` memoises probing_rate_pps
/// across rounds (the caller owns it). Shared by the planner and the
/// executor so planned and executed durations agree.
double round_duration_s(
    const Platform& platform,
    const std::unordered_map<sim::HostId, std::uint64_t>& packets_per_vp,
    std::unordered_map<sim::HostId, double>& rate_cache);

}  // namespace geoloc::atlas
