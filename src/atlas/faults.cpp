#include "atlas/faults.h"

#include <algorithm>

namespace geoloc::atlas {

namespace {
constexpr double kSecondsPerDay = 86'400.0;
}  // namespace

FaultModel::FaultModel(const sim::World& world, const FaultConfig& config)
    : world_(&world), config_(config), root_(config.seed) {}

util::RngStream FaultModel::stream(std::string_view label,
                                   std::uint64_t index) const {
  return root_.fork(label, index);
}

double FaultModel::vp_abandon_time_s(sim::HostId vp) const {
  if (!enabled() || config_.vp_abandon_per_day <= 0.0) return kNever;
  double hazard_per_day = config_.vp_abandon_per_day;
  if (world_->host(vp).kind == sim::HostKind::Anchor) {
    hazard_per_day *= config_.anchor_stability;
    if (hazard_per_day <= 0.0) return kNever;
  }
  auto gen = stream("abandon", vp).gen();
  return gen.exponential(kSecondsPerDay / hazard_per_day);
}

std::vector<OutageWindow> FaultModel::outage_windows(sim::HostId vp,
                                                     double horizon_s) const {
  std::vector<OutageWindow> windows;
  if (!enabled() || config_.vp_outages_per_day <= 0.0 || horizon_s <= 0.0) {
    return windows;
  }
  // Renewal process: alternating up-spells (exponential, mean set by the
  // outage rate) and down-spells (exponential, configured mean). The
  // sequence is a pure function of (seed, vp), so any horizon replays the
  // same weather.
  const double mean_up_s = kSecondsPerDay / config_.vp_outages_per_day;
  const double mean_down_s = std::max(config_.vp_outage_mean_s, 1.0);
  auto gen = stream("outage", vp).gen();
  double t = 0.0;
  while (t < horizon_s) {
    t += gen.exponential(mean_up_s);
    if (t >= horizon_s) break;
    const double down = gen.exponential(mean_down_s);
    windows.push_back({t, t + down});
    t += down;
  }
  return windows;
}

bool FaultModel::vp_in_outage(sim::HostId vp, double t_s) const {
  if (!enabled() || config_.vp_outages_per_day <= 0.0 || t_s < 0.0) {
    return false;
  }
  const double mean_up_s = kSecondsPerDay / config_.vp_outages_per_day;
  const double mean_down_s = std::max(config_.vp_outage_mean_s, 1.0);
  auto gen = stream("outage", vp).gen();
  double t = 0.0;
  while (t <= t_s) {
    t += gen.exponential(mean_up_s);  // up spell ends
    if (t > t_s) return false;
    t += gen.exponential(mean_down_s);  // down spell ends
    if (t > t_s) return true;
  }
  return false;
}

bool FaultModel::target_unresponsive(sim::HostId target) const {
  if (!enabled() || config_.target_unresponsive_rate <= 0.0) return false;
  auto gen = stream("target-weather", target).gen();
  return gen.chance(config_.target_unresponsive_rate);
}

bool FaultModel::round_fails(std::uint64_t round_index) const {
  if (!enabled() || config_.round_failure_rate <= 0.0) return false;
  auto gen = stream("round", round_index).gen();
  return gen.chance(config_.round_failure_rate);
}

bool FaultModel::measurement_rejected(std::uint64_t submission_index) const {
  if (!enabled() || config_.measurement_rejection_rate <= 0.0) return false;
  auto gen = stream("reject", submission_index).gen();
  return gen.chance(config_.measurement_rejection_rate);
}

}  // namespace geoloc::atlas
