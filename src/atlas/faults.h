// Fault injection — the platform's "weather".
//
// The IMC'23 campaigns only succeeded because the authors absorbed constant
// operational failure: probes churn and disconnect mid-campaign, targets go
// dark, and the platform rejects or rate-limits measurements (paper
// Sections 4.1.1, 5.1.3). The simulator's only failure mode used to be
// per-packet loss; this layer adds everything above the packet:
//
//   - permanent probe abandonment (churn), sampled from a per-day hazard;
//   - transient per-VP outage windows (a renewal process of up/down spells);
//   - per-target campaign-long unresponsiveness;
//   - transient API-round failures (submission or collection breaks);
//   - credit / rate-limit rejections of individual measurements.
//
// Everything is deterministic under `FaultConfig::seed`: the weather is a
// pure function of (seed, host id, time) or (seed, counter), so a campaign
// replays bit-for-bit. The layer is strictly opt-in — a default-constructed
// FaultConfig (or the calm preset) disables every fault and leaves existing
// experiments bit-identical.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::atlas {

struct FaultConfig {
  /// Master switch. When false, every query reports fair weather regardless
  /// of the rates below (bit-identical to running without a fault layer).
  bool enabled = false;
  /// Weather seed, independent of the scenario seed so the same world can
  /// be stressed under different skies.
  std::uint64_t seed = 20230415;

  // -- probe churn ---------------------------------------------------------
  /// Hazard rate of permanent VP disconnection, per simulated day. Each VP
  /// draws an exponential abandonment time; a rate of 0 keeps every VP.
  double vp_abandon_per_day = 0.0;
  /// Anchors are racked infrastructure, not volunteer USB sticks: they
  /// churn at this fraction of the probe hazard.
  double anchor_stability = 0.25;

  // -- transient VP outages ------------------------------------------------
  /// Expected outage spells per VP per simulated day (renewal process).
  double vp_outages_per_day = 0.0;
  /// Mean duration of one outage spell, seconds.
  double vp_outage_mean_s = 1'800.0;

  // -- target weather ------------------------------------------------------
  /// Fraction of destinations that never answer for the whole campaign
  /// (host stays up in the world model; the weather eats its replies).
  double target_unresponsive_rate = 0.0;

  // -- API weather ---------------------------------------------------------
  /// Probability that a whole submission round fails transiently and must
  /// be re-submitted.
  double round_failure_rate = 0.0;
  /// Probability that the platform rejects one measurement submission
  /// (credit check, concurrency ceiling, rate limit). Rejections cost no
  /// credits but burn a retry.
  double measurement_rejection_rate = 0.0;
};

/// One transient outage window of a VP, seconds since campaign start.
struct OutageWindow {
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Deterministic fault oracle. Thread-safe: all queries are const and
/// derive their randomness from (seed, identity) alone.
class FaultModel {
 public:
  FaultModel(const sim::World& world, const FaultConfig& config = {});

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  // -- probe churn ---------------------------------------------------------
  /// Simulated time at which the VP permanently disconnects (infinity when
  /// it survives any campaign).
  [[nodiscard]] double vp_abandon_time_s(sim::HostId vp) const;
  [[nodiscard]] bool vp_abandoned(sim::HostId vp, double t_s) const {
    return enabled() && t_s >= vp_abandon_time_s(vp);
  }

  // -- transient outages ---------------------------------------------------
  /// True when the VP sits inside an outage window at `t_s`.
  [[nodiscard]] bool vp_in_outage(sim::HostId vp, double t_s) const;
  /// The VP's outage windows intersecting [0, horizon_s).
  [[nodiscard]] std::vector<OutageWindow> outage_windows(
      sim::HostId vp, double horizon_s) const;
  /// Neither permanently abandoned nor inside an outage window.
  [[nodiscard]] bool vp_available(sim::HostId vp, double t_s) const {
    return !vp_abandoned(vp, t_s) && !vp_in_outage(vp, t_s);
  }

  // -- target weather ------------------------------------------------------
  [[nodiscard]] bool target_unresponsive(sim::HostId target) const;

  // -- API weather ---------------------------------------------------------
  [[nodiscard]] bool round_fails(std::uint64_t round_index) const;
  [[nodiscard]] bool measurement_rejected(std::uint64_t submission_index) const;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

 private:
  [[nodiscard]] util::RngStream stream(std::string_view label,
                                       std::uint64_t index) const;

  const sim::World* world_;
  FaultConfig config_;
  util::RngStream root_;
};

}  // namespace geoloc::atlas
