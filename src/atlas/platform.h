// A RIPE-Atlas-like measurement platform facade over the simulator.
//
// The replication's measurement code talks to this interface only — the
// same boundary the original study has with the real RIPE Atlas API. The
// platform meters credits, counts measurements, and models the per-class
// probing-rate limits that make the million-scale VP-selection algorithm
// undeployable (paper Section 5.1.3: a probe can sustain 4-12 pps, an
// anchor 200-400 pps, versus the 500 pps the 2012 study assumed).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atlas/faults.h"
#include "sim/cost_model.h"
#include "sim/latency_model.h"
#include "sim/traceroute.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::atlas {

/// RIPE-style credit costs (one credit per ping packet; traceroutes are
/// flat-rated).
struct CreditPolicy {
  std::uint64_t per_ping_packet = 1;
  std::uint64_t per_traceroute = 20;
};

struct PlatformConfig {
  CreditPolicy credits;
  int ping_packets = 3;  ///< packets per ping measurement (Atlas default)
  /// Sustainable probing rates, packets/second (paper Section 5.1.3).
  double probe_pps_min = 4.0;
  double probe_pps_max = 12.0;
  double anchor_pps_min = 200.0;
  double anchor_pps_max = 400.0;
};

struct PingMeasurement {
  sim::HostId vp = sim::kInvalidHost;
  sim::HostId target = sim::kInvalidHost;
  std::optional<double> min_rtt_ms;  ///< nullopt: unresponsive / all lost
  int packets_sent = 0;
  int packets_received = 0;  ///< loss is observable per measurement

  [[nodiscard]] bool answered() const noexcept { return min_rtt_ms.has_value(); }
};

/// Aggregate measurement counters, the currency of the paper's overhead
/// arguments (Figure 3c).
struct UsageCounters {
  std::uint64_t pings = 0;
  std::uint64_t ping_packets = 0;
  std::uint64_t traceroutes = 0;
  std::uint64_t credits = 0;
};

class Platform {
 public:
  Platform(const sim::World& world, const sim::LatencyModel& latency,
           const PlatformConfig& config = {});

  /// One ping measurement (ping_packets echo requests, min RTT reported).
  PingMeasurement ping(sim::HostId vp, sim::HostId target);

  /// Ping with an explicit packet count (the hitlist scans use 1).
  PingMeasurement ping(sim::HostId vp, sim::HostId target, int packets);

  /// One traceroute measurement.
  sim::Traceroute traceroute(sim::HostId vp, sim::HostId target);

  /// Ping from many VPs to one target, as one logical Atlas measurement.
  std::vector<PingMeasurement> ping_from_all(std::span<const sim::HostId> vps,
                                             sim::HostId target);

  [[nodiscard]] const UsageCounters& usage() const noexcept { return usage_; }
  void reset_usage() noexcept { usage_ = {}; }

  /// Attach the fault-injection layer ("weather"). Unset (or a disabled
  /// FaultModel) leaves every measurement bit-identical to a fault-free
  /// platform. A weather-unresponsive target still bills its echo requests
  /// — credits are spent whether or not replies come back.
  void set_fault_model(const FaultModel* faults) noexcept { faults_ = faults; }
  [[nodiscard]] const FaultModel* fault_model() const noexcept {
    return faults_;
  }

  /// Sustainable probing rate of a VP in packets/second (deterministic per
  /// host, uniform within its class band).
  [[nodiscard]] double probing_rate_pps(sim::HostId vp) const;

  [[nodiscard]] const sim::World& world() const noexcept { return *world_; }
  [[nodiscard]] const sim::LatencyModel& latency() const noexcept {
    return *latency_;
  }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

 private:
  const sim::World* world_;
  const sim::LatencyModel* latency_;
  sim::TracerouteEngine tracer_;
  PlatformConfig config_;
  UsageCounters usage_;
  util::Pcg32 gen_;
  const FaultModel* faults_ = nullptr;
};

/// Inputs of the Section 5.1.3 deployability analysis.
struct DeployabilityQuestion {
  std::uint64_t target_prefixes = 11'500'000;  ///< routable /24s (2023 order)
  int representatives_per_prefix = 3;
  std::uint64_t vantage_points = 10'000;
  double packets_per_ping = 3.0;
};

struct DeployabilityAnswer {
  double packets_per_vp = 0.0;          ///< each VP probes every representative
  double days_at_pps(double pps) const {
    return packets_per_vp / pps / 86'400.0;
  }
  double days_at_probe_rate = 0.0;      ///< at the platform's probe band midpoint
  double days_at_original_rate = 0.0;   ///< at the 2012 study's 500 pps
  std::uint64_t total_packets = 0;
};

/// Evaluate whether the original (all-VPs-probe-every-/24) selection
/// algorithm fits the platform's probing budget.
DeployabilityAnswer analyze_deployability(const DeployabilityQuestion& q,
                                          const PlatformConfig& config = {});

}  // namespace geoloc::atlas
