// A RIPE-Atlas-like measurement platform facade over the simulator.
//
// The replication's measurement code talks to this interface only — the
// same boundary the original study has with the real RIPE Atlas API. The
// platform meters credits, counts measurements, and models the per-class
// probing-rate limits that make the million-scale VP-selection algorithm
// undeployable (paper Section 5.1.3: a probe can sustain 4-12 pps, an
// anchor 200-400 pps, versus the 500 pps the 2012 study assumed).
//
// Measurement randomness is derived per ordinal — the i-th ping of a
// platform's lifetime draws from fork("ping", i) of the platform stream,
// never from a generator advanced across calls — so a batch (ping_many)
// samples concurrently on the parallel engine and is still bit-identical
// to the same pings issued one by one (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atlas/faults.h"
#include "sim/cost_model.h"
#include "sim/latency_model.h"
#include "sim/traceroute.h"
#include "sim/world.h"
#include "util/rng.h"

namespace geoloc::atlas {

/// RIPE-style credit costs (one credit per ping packet; traceroutes are
/// flat-rated).
struct CreditPolicy {
  std::uint64_t per_ping_packet = 1;
  std::uint64_t per_traceroute = 20;
};

struct PlatformConfig {
  CreditPolicy credits;
  int ping_packets = 3;  ///< packets per ping measurement (Atlas default)
  /// Sustainable probing rates, packets/second (paper Section 5.1.3).
  double probe_pps_min = 4.0;
  double probe_pps_max = 12.0;
  double anchor_pps_min = 200.0;
  double anchor_pps_max = 400.0;
};

struct PingMeasurement {
  sim::HostId vp = sim::kInvalidHost;
  sim::HostId target = sim::kInvalidHost;
  std::optional<double> min_rtt_ms;  ///< nullopt: unresponsive / all lost
  int packets_sent = 0;
  int packets_received = 0;  ///< loss is observable per measurement

  [[nodiscard]] bool answered() const noexcept { return min_rtt_ms.has_value(); }
};

/// One entry of a batched ping submission (Platform::ping_many).
struct PingTask {
  sim::HostId vp = sim::kInvalidHost;
  sim::HostId target = sim::kInvalidHost;
  int packets = 3;
};

/// Aggregate measurement counters, the currency of the paper's overhead
/// arguments (Figure 3c).
struct UsageCounters {
  std::uint64_t pings = 0;
  std::uint64_t ping_packets = 0;
  std::uint64_t traceroutes = 0;
  std::uint64_t credits = 0;
};

class Platform {
 public:
  Platform(const sim::World& world, const sim::LatencyModel& latency,
           const PlatformConfig& config = {});

  /// One ping measurement (ping_packets echo requests, min RTT reported).
  PingMeasurement ping(sim::HostId vp, sim::HostId target);

  /// Ping with an explicit packet count (the hitlist scans use 1).
  PingMeasurement ping(sim::HostId vp, sim::HostId target, int packets);

  /// Batched pings: out[i] corresponds to tasks[i], and the whole batch is
  /// bit-identical to calling ping() once per task in order — each
  /// measurement's randomness is derived from its ordinal, not from a
  /// shared draw sequence, so the sampling runs on the parallel engine
  /// (util::parallel_for) while billing commits in task order.
  /// Precondition: out.size() == tasks.size().
  void ping_many(std::span<const PingTask> tasks,
                 std::span<PingMeasurement> out);

  /// One traceroute measurement.
  sim::Traceroute traceroute(sim::HostId vp, sim::HostId target);

  /// Ping from many VPs to one target, as one logical Atlas measurement.
  std::vector<PingMeasurement> ping_from_all(std::span<const sim::HostId> vps,
                                             sim::HostId target);

  /// Allocation-free ping_from_all for the 10k-VP mesh hot path: writes
  /// out[i] for vps[i] into a caller-owned buffer (out.size() == vps.size())
  /// instead of growing a fresh vector per round.
  void ping_from_all(std::span<const sim::HostId> vps, sim::HostId target,
                     std::span<PingMeasurement> out);

  [[nodiscard]] const UsageCounters& usage() const noexcept { return usage_; }
  void reset_usage() noexcept { usage_ = {}; }

  /// Restore usage counters from a campaign checkpoint. Measurement
  /// randomness is derived from the ordinal usage_.pings (and
  /// usage_.traceroutes), so a resumed campaign that restores the
  /// interrupted run's counters continues the exact RNG sequence the
  /// uninterrupted run would have drawn (atlas/checkpoint.h).
  void restore_usage(const UsageCounters& u) noexcept { usage_ = u; }

  /// Attach the fault-injection layer ("weather"). Unset (or a disabled
  /// FaultModel) leaves every measurement bit-identical to a fault-free
  /// platform. A weather-unresponsive target still bills its echo requests
  /// — credits are spent whether or not replies come back.
  void set_fault_model(const FaultModel* faults) noexcept { faults_ = faults; }
  [[nodiscard]] const FaultModel* fault_model() const noexcept {
    return faults_;
  }

  /// Sustainable probing rate of a VP in packets/second (deterministic per
  /// host, uniform within its class band).
  [[nodiscard]] double probing_rate_pps(sim::HostId vp) const;

  [[nodiscard]] const sim::World& world() const noexcept { return *world_; }
  [[nodiscard]] const sim::LatencyModel& latency() const noexcept {
    return *latency_;
  }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

 private:
  /// Sample one ping without billing it. Pure function of (platform stream,
  /// ordinal, vp, target, packets): the RNG stream is forked per
  /// measurement ordinal rather than advanced across calls, which is what
  /// lets ping_many sample a whole batch concurrently and still match a
  /// serial loop bit for bit (DESIGN.md §9).
  [[nodiscard]] PingMeasurement sample_ping(sim::HostId vp, sim::HostId target,
                                            int packets,
                                            std::uint64_t ordinal) const;
  void bill_ping(int packets) noexcept;

  const sim::World* world_;
  const sim::LatencyModel* latency_;
  sim::TracerouteEngine tracer_;
  PlatformConfig config_;
  UsageCounters usage_;
  util::RngStream stream_;
  const FaultModel* faults_ = nullptr;
};

/// Inputs of the Section 5.1.3 deployability analysis.
struct DeployabilityQuestion {
  std::uint64_t target_prefixes = 11'500'000;  ///< routable /24s (2023 order)
  int representatives_per_prefix = 3;
  std::uint64_t vantage_points = 10'000;
  double packets_per_ping = 3.0;
};

struct DeployabilityAnswer {
  double packets_per_vp = 0.0;          ///< each VP probes every representative
  double days_at_pps(double pps) const {
    return packets_per_vp / pps / 86'400.0;
  }
  double days_at_probe_rate = 0.0;      ///< at the platform's probe band midpoint
  double days_at_original_rate = 0.0;   ///< at the 2012 study's 500 pps
  std::uint64_t total_packets = 0;
};

/// Evaluate whether the original (all-VPs-probe-every-/24) selection
/// algorithm fits the platform's probing budget.
DeployabilityAnswer analyze_deployability(const DeployabilityQuestion& q,
                                          const PlatformConfig& config = {});

}  // namespace geoloc::atlas
