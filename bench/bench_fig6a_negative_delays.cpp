// Figure 6a of the IMC'23 paper: CDF over targets of the fraction of
// landmarks whose D1+D2 delay estimate is negative (and therefore unusable
// as a distance bound) — the evidence that the traceroute-subtraction
// method is untrustworthy without reverse-path information (Appendix B).
#include <cstdio>

#include "bench_common.h"
#include "eval/street_campaign.h"
#include "util/ascii_chart.h"
#include "util/stats.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 6a", "fraction of landmarks with unusable (negative) D1+D2",
      "for half the targets at least ~28% of landmarks are unusable");

  const auto& s = bench::bench_scenario();
  const auto& camp = eval::street_campaign(s);

  std::vector<double> fractions;
  for (const auto& r : camp.records) {
    if (r.negative_fraction >= 0) fractions.push_back(r.negative_fraction);
  }
  std::printf("targets with measured landmarks: %zu\n", fractions.size());
  std::printf("median fraction of unusable landmarks: %.2f (paper: 0.28)\n",
              util::median(fractions));
  std::printf("p90: %.2f  max: %.2f\n\n", util::percentile(fractions, 90),
              util::max_of(fractions));

  util::ChartOptions opt;
  opt.log_x = false;
  opt.x_label = "fraction of landmarks with D1+D2 < 0";
  std::printf("%s\n",
              util::render_cdf_chart({{"targets", fractions}}, opt).c_str());
  return 0;
}
