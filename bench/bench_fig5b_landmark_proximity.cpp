// Figure 5b (table) of the IMC'23 paper: number of targets with at least
// one landmark passing the locally-hosted tests within 1/5/10/40 km,
// without and with the additional <1 ms latency check.
#include <cstdio>

#include "bench_common.h"
#include "eval/street_campaign.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 5b", "targets with a close landmark (+/- latency checks)",
      "28% of targets within 1 km / 76% within 40 km, dropping to 19% / 72% "
      "with the <1 ms latency check");

  const auto& s = bench::bench_scenario();
  const auto& camp = eval::street_campaign(s);
  const auto n = static_cast<double>(camp.records.size());

  util::TextTable t{"landmark proximity (harvested landmark sets)"};
  t.header({"Landmark distance", "# of targets",
            "# with latency-checked landmarks"});
  for (double radius : {1.0, 5.0, 10.0, 40.0}) {
    int plain = 0, checked = 0;
    for (const auto& r : camp.records) {
      plain += r.nearest_landmark_km >= 0 && r.nearest_landmark_km <= radius;
      checked += r.nearest_checked_landmark_km >= 0 &&
                 r.nearest_checked_landmark_km <= radius;
    }
    t.row({util::TextTable::num(radius, 0) + " km",
           std::to_string(plain) + " (" +
               util::TextTable::pct(plain / n, 0) + ")",
           std::to_string(checked) + " (" +
               util::TextTable::pct(checked / n, 0) + ")"});
  }
  std::printf("%s\n", t.render().c_str());

  // The companion prose number: the share of tested websites that passed
  // the locally-hosted tests (paper: 65,325 of 2,584,527 = 2.5%).
  std::uint64_t tested = 0;
  std::uint64_t landmarks = 0;
  for (const auto& r : camp.records) {
    tested += r.websites_tested;
    landmarks += r.landmarks_measured;
  }
  std::printf("websites tested across all targets: %llu, measured as "
              "landmarks: %llu (%.1f%%) — paper: 2.5%% pass rate\n",
              static_cast<unsigned long long>(tested),
              static_cast<unsigned long long>(landmarks),
              tested ? 100.0 * static_cast<double>(landmarks) /
                           static_cast<double>(tested)
                     : 0.0);
  std::printf("ecosystem-wide pass rate: %zu of %zu (%.1f%%)\n",
              s.web().passing_count(), s.web().total_count(),
              100.0 * static_cast<double>(s.web().passing_count()) /
                  static_cast<double>(s.web().total_count()));
  return 0;
}
