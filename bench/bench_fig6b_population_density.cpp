// Figure 6b of the IMC'23 paper: street-level error versus population
// density at the target, with a least-squares fit. The paper (contradicting
// the 2011 street-level paper) finds no relationship.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "eval/street_campaign.h"
#include "util/ascii_chart.h"
#include "util/stats.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 6b", "error distance vs population density",
      "no dependence: denser areas are not geolocated better");

  const auto& s = bench::bench_scenario();
  const auto& camp = eval::street_campaign(s);
  const auto& grid = s.population();

  util::ScatterSeries sc{"targets", {}, {}};
  std::vector<double> log_err, log_density;
  for (std::size_t col = 0; col < camp.records.size(); ++col) {
    const double err = std::max<double>(camp.records[col].street_error_km, 0.1);
    const double density = grid.density_per_km2(
        s.world().host(s.targets()[col]).true_location);
    sc.xs.push_back(err);
    sc.ys.push_back(density);
    log_err.push_back(std::log10(err));
    log_density.push_back(std::log10(std::max(density, 0.1)));
  }

  util::ScatterOptions opt;
  opt.x_label = "error distance (km)";
  opt.y_label = "population density (people/km^2)";
  std::printf("%s\n", util::render_scatter_chart({sc}, opt).c_str());

  const util::LinearFit fit = util::linear_fit(log_density, log_err);
  std::printf("log-log fit: log10(error) = %.3f * log10(density) + %.2f "
              "(r^2 = %.3f)\n",
              fit.slope, fit.intercept, fit.r2);
  std::printf("pearson(log density, log error) = %.3f — |r| near 0 means no "
              "relationship, as the paper found\n",
              util::pearson(log_density, log_err));
  return 0;
}
