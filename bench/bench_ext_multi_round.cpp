// Extension (paper Section 7.2.3): multi-round VP selection. The paper's
// two-step scheme generalises to k rounds — each extra round shrinks the
// probing budget further at the price of one more Atlas API round trip
// (minutes of wall clock). This bench sweeps the round count and prints
// the overhead/latency/accuracy trade-off the recommendation predicts.
#include <cstdio>

#include "bench_common.h"
#include "core/million_scale.h"
#include "core/multi_round.h"
#include "eval/metrics.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Extension: multi-round selection",
      "accuracy / pings / wall-clock vs number of rounds",
      "overhead falls with extra rounds until the per-round floor; accuracy "
      "stays flat; each round adds minutes of API latency");

  const auto& s = bench::bench_scenario();
  const core::MillionScale tools(s);
  const std::uint64_t original = core::original_algorithm_pings(s);

  util::TextTable t{"round-count sweep"};
  t.header({"Rounds", "median error (km)", "<=40 km", "pings", "vs original",
            "median latency (min)"});
  for (int rounds : {2, 3, 4, 5}) {
    core::MultiRoundConfig cfg;
    cfg.rounds = rounds;
    cfg.first_round_size = bench::small_mode() ? 60 : 300;
    const core::MultiRoundSelector selector(s, cfg);

    std::vector<double> errors, latency_s;
    std::uint64_t pings = 0;
    std::size_t failures = 0;
    for (std::size_t col = 0; col < s.targets().size(); ++col) {
      const core::MultiRoundOutcome o = selector.run(col);
      pings += o.total_pings;
      latency_s.push_back(o.elapsed_seconds);
      if (!o.ok) {
        ++failures;
        continue;
      }
      errors.push_back(tools.error_km(o.estimate, col));
    }
    t.row({std::to_string(rounds),
           util::TextTable::num(util::median(errors), 1),
           util::TextTable::pct(eval::city_level_fraction(errors)),
           util::TextTable::num(static_cast<double>(pings) / 1e6, 2) + "M",
           util::TextTable::pct(static_cast<double>(pings) /
                                static_cast<double>(original)),
           util::TextTable::num(util::median(latency_s) / 60.0, 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(the paper's trade-off: more rounds need more API round "
              "trips, 'not really an issue as we do not expect the "
              "geolocation of IP addresses to quickly change')\n");
  return 0;
}
