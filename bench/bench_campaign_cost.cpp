// Campaign planning (paper Section 4.1.1): the study burned "hundreds of
// millions of credits" and needed an upgraded account. This bench plans the
// reproduction's measurement campaigns against the platform's credit policy
// and probing budgets and prints the bill.
#include <algorithm>
#include <cstdio>
#include <span>

#include "atlas/executor.h"
#include "atlas/scheduler.h"
#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Campaign cost", "credits and duration of the study's campaigns",
      "the tier-1 mesh plus representatives cost ~10^8 credits — the reason "
      "the study needed an upgraded Atlas account");

  const auto& s = bench::bench_scenario();
  atlas::Platform platform(s.world(), s.latency());
  const atlas::MeasurementScheduler scheduler(platform);

  util::TextTable t{"planned campaigns"};
  t.header({"Campaign", "measurements", "credits", "rounds", "days"});
  auto emit = [&](const char* name, const atlas::CampaignPlan& p) {
    t.row({name, std::to_string(p.measurements),
           util::TextTable::num(static_cast<double>(p.credits) / 1e6, 1) + "M",
           std::to_string(p.rounds),
           util::TextTable::num(p.duration_days(), 2)});
  };

  // Tier-1: every VP pings every target.
  emit("tier-1 mesh (VPs x targets)",
       scheduler.plan_full_mesh(s.vps(), s.targets()));

  // Representatives: every VP pings the 3 representatives of every target.
  {
    std::vector<atlas::MeasurementRequest> reqs;
    reqs.reserve(s.vps().size() * s.targets().size() * 3);
    for (sim::HostId vp : s.vps()) {
      for (sim::HostId target : s.targets()) {
        for (const auto& rep : s.hitlist().for_target(target).reps) {
          reqs.push_back({vp, rep.host, atlas::MeasurementKind::Ping, 3});
        }
      }
    }
    emit("representative campaign (x3)", scheduler.plan(reqs));
  }

  // Street-level traceroutes: 10 VPs x (landmarks + target) per target,
  // using the paper's ~111-landmark median as the volume estimate.
  {
    std::vector<atlas::MeasurementRequest> reqs;
    for (sim::HostId target : s.targets()) {
      for (std::size_t v = 0; v < 10; ++v) {
        for (int l = 0; l < 112; ++l) {
          reqs.push_back({s.vps()[v], target,
                          atlas::MeasurementKind::Traceroute, 0});
        }
      }
    }
    emit("street-level traceroutes", scheduler.plan(reqs));
  }
  std::printf("%s\n", t.render().c_str());

  // Executed campaign: a calm full-mesh slice actually run through the
  // resilient executor, timed for the GEOLOC_BENCH_JSON record. The
  // CampaignReport is bit-identical for any GEOLOC_THREADS (DESIGN.md §9);
  // only the wall time below moves.
  {
    const std::size_t vp_count = std::min<std::size_t>(s.vps().size(), 400);
    const std::span<const sim::HostId> mesh_vps(s.vps().data(), vp_count);
    atlas::Platform exec_platform(s.world(), s.latency());
    atlas::ExecutorConfig exec_config;
    exec_config.collect_results = false;  // only the accounting matters here
    atlas::CampaignExecutor executor(exec_platform, exec_config);
    bench::WallTimer timer;
    const atlas::CampaignReport report =
        executor.execute_full_mesh(mesh_vps, s.targets());
    bench::emit_bench_json("campaign_execute_mesh", timer.elapsed_ms(),
                           vp_count, s.targets().size());
    std::printf(
        "executed mesh: %zu/%zu completed, %.1fM credits, %.1f days\n",
        report.completed, report.requested,
        static_cast<double>(report.credits_spent) / 1e6,
        report.duration_days());
  }
  bench::emit_metrics_snapshot("campaign_cost");
  return 0;
}
