// Figure 5c of the IMC'23 paper: measured (traceroute-derived) vs
// geographic landmark->target distances, for four targets of increasing
// geolocation error — plus the paper's headline statistic, the median
// per-target Pearson correlation (0.08: essentially none).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "eval/street_campaign.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 5c", "measured vs geographic landmark distances",
      "the relative order is NOT preserved: median per-target Pearson "
      "correlation ~0.08; only the sub-km-error target picks the closest "
      "landmark");

  const auto& s = bench::bench_scenario();
  const auto& camp = eval::street_campaign(s);

  // Pick four targets with errors near 1 / 5 / 10 / 40 km that have enough
  // usable landmark measurements to plot.
  const double wanted[] = {1.0, 5.0, 10.0, 40.0};
  std::vector<util::ScatterSeries> series;
  util::TextTable t{"selected targets"};
  t.header({"target error (km)", "usable landmarks", "pearson"});
  for (double w : wanted) {
    const eval::StreetRecord* best = nullptr;
    double best_gap = 1e18;
    for (const auto& r : camp.records) {
      if (r.distances.size() < 5) continue;
      const double gap = std::abs(r.street_error_km - w);
      if (gap < best_gap) {
        best_gap = gap;
        best = &r;
      }
    }
    if (!best) continue;
    util::ScatterSeries sc;
    sc.label = util::TextTable::num(best->street_error_km, 1) + " km error";
    for (const auto& [geo_km, meas_km] : best->distances) {
      sc.xs.push_back(std::max<double>(geo_km, 0.1));
      sc.ys.push_back(std::max<double>(meas_km, 0.1));
    }
    t.row({util::TextTable::num(best->street_error_km, 1),
           std::to_string(best->distances.size()),
           util::TextTable::num(best->pearson, 2)});
    series.push_back(std::move(sc));
  }
  std::printf("%s\n", t.render().c_str());

  util::ScatterOptions opt;
  opt.x_label = "geographical distance (km)";
  opt.y_label = "measured distance (km)";
  std::printf("%s\n", util::render_scatter_chart(series, opt).c_str());

  // The aggregate statistic.
  std::vector<double> pearson;
  for (const auto& r : camp.records) {
    if (r.landmarks_measured >= 2 && !std::isnan(r.pearson)) {
      pearson.push_back(r.pearson);
    }
  }
  std::printf("median per-target Pearson(measured, geographic) = %.3f over "
              "%zu targets (paper: 0.08)\n",
              util::median(pearson), pearson.size());
  return 0;
}
