// Extension (paper Section 2.1): why the replication is IPv4-only — the
// representative-discovery step of the million-scale selection cannot work
// in IPv6. This bench quantifies the argument: the probability of finding
// even one responsive neighbour by scanning, for IPv4 /24 versus IPv6
// prefixes, under generous probing budgets.
#include <cstdio>

#include "bench_common.h"
#include "dataset/ipv6_sparsity.h"
#include "net/ipv6.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Extension: IPv6 representative sparsity",
      "chance of discovering a responsive /24- or /64-neighbour by scanning",
      "IPv4 /24: certain within seconds; IPv6 /64: essentially zero within "
      "any budget — the reason Section 2.1 leaves IPv6 as future work");

  util::TextTable t{"scanning for representatives (500 pps, 30 days)"};
  t.header({"Prefix", "addresses", "responsive hosts", "E[hits]",
            "P(>=1 found)", "prefix coverage"});
  struct Case {
    const char* name;
    int bits;
    double hosts;
  };
  const Case cases[] = {
      {"IPv4 /24 (dense site)", 8, 60},
      {"IPv4 /24 (sparse site)", 8, 3},
      {"IPv6 /64 (large site)", 64, 1e5},
      {"IPv6 /64 (typical LAN)", 64, 50},
      {"IPv6 /48 (campus)", 80, 1e6},
      {"IPv6 /32 (ISP)", 96, 1e8},
  };
  for (const Case& c : cases) {
    dataset::SparsityQuestion q;
    q.prefix_size_log2 = c.bits;
    q.responsive_hosts = c.hosts;
    const dataset::SparsityAnswer a = dataset::analyze_sparsity(q);
    char addresses[32], hits[32], p[32], cover[32];
    std::snprintf(addresses, sizeof addresses, "2^%d", c.bits);
    std::snprintf(hits, sizeof hits, "%.3g", a.expected_hits);
    std::snprintf(p, sizeof p, "%.3g", a.p_at_least_one);
    std::snprintf(cover, sizeof cover, "%.3g", a.prefix_coverage);
    t.row({c.name, addresses, util::TextTable::num(c.hosts, 0), hits, p,
           cover});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("IPv6 addressing utilities are available (net/ipv6.h): e.g. "
              "%s contains %s: %s\n",
              net::Prefix6::parse("2001:db8::/32")->to_string().c_str(),
              net::IPv6Address::parse("2001:db8::1")->to_string().c_str(),
              net::Prefix6::parse("2001:db8::/32")
                      ->contains(*net::IPv6Address::parse("2001:db8::1"))
                  ? "yes"
                  : "no");
  std::printf("\nconclusion: IPv6 representative discovery needs hitlists "
              "built from DNS, aliases or traffic — blind /24-style "
              "scanning does not transfer.\n");
  return 0;
}
