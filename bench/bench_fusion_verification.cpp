// Fusion verification sweep: does trust-but-verify evidence fusion beat
// the latency-only baseline when evidence is honest, and never lose to it
// when evidence lies?
//
// Sweeps hint coverage x lie rate x weather through the full fused
// pipeline (fusion/pipeline.h) and reports per-cell median error against
// the latency-only campaign on the same weather, plus one geofeed row
// where 30% of operator entries are adversarial lies. Recorded to
// $GEOLOC_BENCH_JSON (BENCH_fusion_verification.json) and gated:
//
//   1. adversarial floor — with 30% lying evidence (hints at lie rate 0.3,
//      and feeds with 30% adversarial entries) the fused median error is
//      <= the latency-only baseline: verification must filter lies faster
//      than they poison the dataset;
//   2. honest ceiling — at 0% lies and >= 50% hint coverage the fused
//      median error improves on the baseline by >= 2x;
//   3. equivalence — with zero evidence the fused pipeline's
//      CampaignReport and compiled snapshot bytes are byte-identical to
//      the latency-only path.
//
// Runs on the miniature scenario regardless of GEOLOC_SMALL: the sweep is
// coverages x lie rates x weathers, each a full mesh campaign plus
// per-claim targeted verification — and every gate is a shape claim, not
// a scale claim.
#include <cstdio>
#include <string>
#include <vector>

#include "atlas/checkpoint.h"
#include "bench_common.h"
#include "fusion/pipeline.h"
#include "geo/geodesy.h"
#include "publish/snapshot.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace geoloc;

std::vector<std::byte> snapshot_bytes(const std::vector<publish::Record>& r) {
  publish::SnapshotBuilder b;
  b.add(r);
  publish::SnapshotMeta meta;
  meta.created_at_s = 0.0;
  meta.source = "bench-fusion";
  return b.build(meta);
}

double median_error_km(const scenario::Scenario& s,
                       const std::vector<publish::Record>& records) {
  std::vector<double> errors;
  errors.reserve(records.size());
  for (std::size_t col = 0; col < records.size(); ++col) {
    errors.push_back(geo::distance_km(
        records[col].location,
        s.world().host(s.targets()[col]).true_location));
  }
  return util::median(errors);
}

}  // namespace

int main() {
  bench::print_header(
      "Fusion verification",
      "trust-but-verify evidence fusion vs the latency-only baseline",
      "honest evidence >= 2x median-error improvement; 30% lies never "
      "worse than baseline; zero evidence byte-identical");

  auto cfg = scenario::small_config();
  cfg.cache_dir = "";
  const scenario::Scenario s(cfg);

  fusion::PipelineOptions opts;
  opts.max_vps = 200;  // plenty of spares left for reassignment

  const struct {
    const char* label;
    atlas::FaultConfig weather;
  } weathers[] = {
      {"calm", scenario::calm_weather()},
      {"storm", scenario::stormy_weather()},
  };
  const double coverages[] = {0.25, 0.5, 1.0};
  const double lie_rates[] = {0.0, 0.3, 1.0};

  bench::WallTimer timer;

  // Gate 3 first: zero evidence must leave no fingerprint on the output.
  const fusion::LatencyCampaign calm_base = run_latency_campaign(s, opts);
  const fusion::FusedCampaignResult calm_empty =
      run_fused_campaign(s, fusion::EvidenceBundle{}, opts);
  const bool bytes_identical =
      atlas::encode_report(calm_base.report) ==
          atlas::encode_report(calm_empty.base_report) &&
      snapshot_bytes(calm_base.records) == snapshot_bytes(calm_empty.records);
  std::printf("[gate] %s: zero-evidence run is byte-identical to the "
              "latency-only pipeline\n",
              bytes_identical ? "PASS" : "FAIL");
  bench::emit_bench_json_fields(
      "fusion_verification/equivalence",
      {{"byte_identical", bytes_identical ? 1.0 : 0.0}});

  util::TextTable t{"fused vs latency-only median error (km)"};
  t.header({"weather", "coverage", "lie rate", "base km", "fused km",
            "accepted", "rej geo", "rej act", "inconcl"});

  bool adversarial_floor = true;  // gate 1 (hint rows at lie 0.3)
  bool honest_ceiling = true;     // gate 2
  for (const auto& w : weathers) {
    fusion::PipelineOptions wopts = opts;
    wopts.weather = w.weather;
    const fusion::LatencyCampaign base = run_latency_campaign(s, wopts);
    const double base_km = median_error_km(s, base.records);

    for (const double coverage : coverages) {
      for (const double lie_rate : lie_rates) {
        sim::HintConfig hints;
        hints.coverage = coverage;
        hints.lie_rate = lie_rate;
        hints.noise_km = 10.0;
        fusion::EvidenceBundle evidence;
        evidence.hints = sim::generate_hints(s.world(), s.targets(), hints,
                                             util::RngStream(4242));
        const fusion::FusedCampaignResult fused =
            run_fused_campaign(s, evidence, wopts);
        const double fused_km = median_error_km(s, fused.records);

        t.row({w.label, util::TextTable::num(coverage, 2),
               util::TextTable::num(lie_rate, 2),
               util::TextTable::num(base_km, 1),
               util::TextTable::num(fused_km, 1),
               std::to_string(fused.accepted),
               std::to_string(fused.rejected_geometric),
               std::to_string(fused.rejected_active),
               std::to_string(fused.inconclusive)});
        bench::emit_bench_json_fields(
            std::string("fusion_verification/hints-") + w.label,
            {{"coverage", coverage},
             {"lie_rate", lie_rate},
             {"base_median_km", base_km},
             {"fused_median_km", fused_km},
             {"claims", static_cast<double>(fused.claims)},
             {"accepted", static_cast<double>(fused.accepted)},
             {"rejected_geometric",
              static_cast<double>(fused.rejected_geometric)},
             {"rejected_active", static_cast<double>(fused.rejected_active)},
             {"inconclusive", static_cast<double>(fused.inconclusive)},
             {"verify_pings", static_cast<double>(fused.verify_pings)}});

        // Gate 1 (hints): 30% lies must never beat the baseline's median.
        // A whisker of tolerance absorbs ties decided by sub-km jitter.
        if (lie_rate == 0.3 && fused_km > base_km * 1.001) {
          adversarial_floor = false;
        }
        // Gate 2: calm + honest + >=50% coverage must improve 2x.
        if (w.weather.enabled == false && lie_rate == 0.0 &&
            coverage >= 0.5 && fused_km * 2.0 > base_km) {
          honest_ceiling = false;
        }
      }
    }
  }
  std::printf("%s", t.render().c_str());

  // The feed flavour of gate 1: operator geofeeds where 30% of entries
  // (every feed, adversarial_lie_rate 0.3) are convincing lies.
  sim::FeedConfig feeds;
  feeds.coverage = 1.0;
  feeds.stale_rate = 0.0;
  feeds.noise_km = 8.0;
  feeds.feed_count = 4;
  feeds.adversarial_feeds = 4;
  feeds.adversarial_lie_rate = 0.3;
  const auto generated =
      sim::generate_feeds(s.world(), s.targets(), feeds, util::RngStream(97));
  const fusion::EvidenceBundle feed_evidence =
      fusion::EvidenceBundle::from_generated({}, generated);
  const fusion::FusedCampaignResult feed_fused =
      run_fused_campaign(s, feed_evidence, opts);
  const double base_km = median_error_km(s, calm_base.records);
  const double feed_km = median_error_km(s, feed_fused.records);
  std::printf("geofeeds, 30%% adversarial entries: base %.1f km, fused "
              "%.1f km (accepted %zu / %zu claims)\n",
              base_km, feed_km, feed_fused.accepted, feed_fused.claims);
  bench::emit_bench_json_fields(
      "fusion_verification/feeds-30pct-lies",
      {{"base_median_km", base_km},
       {"fused_median_km", feed_km},
       {"claims", static_cast<double>(feed_fused.claims)},
       {"accepted", static_cast<double>(feed_fused.accepted)},
       {"rejected_geometric",
        static_cast<double>(feed_fused.rejected_geometric)},
       {"rejected_active", static_cast<double>(feed_fused.rejected_active)},
       {"inconclusive", static_cast<double>(feed_fused.inconclusive)}});
  if (feed_km > base_km * 1.001) adversarial_floor = false;

  std::printf("[gate] %s: 30%% lying evidence never loses to the "
              "latency-only baseline\n",
              adversarial_floor ? "PASS" : "FAIL");
  std::printf("[gate] %s: honest evidence at >=50%% coverage improves "
              "median error >= 2x\n",
              honest_ceiling ? "PASS" : "FAIL");

  const bool ok = bytes_identical && adversarial_floor && honest_ceiling;
  bench::emit_bench_json_fields(
      "fusion_verification/acceptance",
      {{"byte_identical", bytes_identical ? 1.0 : 0.0},
       {"adversarial_floor", adversarial_floor ? 1.0 : 0.0},
       {"honest_ceiling", honest_ceiling ? 1.0 : 0.0},
       {"wall_ms", timer.elapsed_ms()}});
  bench::emit_metrics_snapshot("fusion_verification");
  return ok ? 0 : 1;
}
