// Extension: failure-sensitivity sweep. Executes the ping campaign under
// calm / drizzle / stormy platform weather via the resilient executor and
// reports both sides of the ledger: what resilience cost (attempts,
// retries, abandoned measurements, credits wasted on unanswered probes,
// wall clock added by backoff) and what geolocation quality survived (CBG
// verdict tally and median error). The paper only ever saw the calm row —
// RIPE Atlas absorbed the rest (Sections 4.1.1, 5.1.3).
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Extension: platform weather",
      "campaign execution + CBG under fault injection",
      "calm is lossless; storms cost retries/credits first, accuracy second");

  const auto& s = bench::bench_scenario();
  const std::vector<eval::WeatherSpec> weathers{
      {"calm", scenario::calm_weather()},
      {"drizzle", scenario::drizzle_weather()},
      {"stormy", scenario::stormy_weather()},
  };
  // Cap the measuring VPs so the executed campaign (with retries) stays in
  // memory; the remaining VPs form the dead-probe replacement pool.
  const std::size_t max_vps = bench::small_mode() ? 200 : 400;
  const auto sweep = eval::run_failure_sensitivity(s, weathers, max_vps);

  util::TextTable cost{"campaign cost per weather (failure accounting)"};
  cost.header({"Weather", "Requested", "Completed", "Attempts", "Retries",
               "Abandoned", "Rejections", "Reassigned", "Credits wasted",
               "Backoff h"});
  for (const auto& p : sweep) {
    cost.row({p.label, std::to_string(p.report.requested),
              std::to_string(p.report.completed),
              std::to_string(p.report.attempts),
              std::to_string(p.report.retries),
              std::to_string(p.report.abandoned),
              std::to_string(p.report.rejections),
              std::to_string(p.report.vp_reassignments),
              std::to_string(p.report.credits_wasted),
              util::TextTable::num(p.report.backoff_wait_s / 3'600.0, 1)});
  }
  std::printf("%s\n", cost.render().c_str());

  util::TextTable quality{"geolocation quality per weather"};
  quality.header({"Weather", "Located", "Degraded", "Unlocatable",
                  "Median error km", "Success rate"});
  for (const auto& p : sweep) {
    quality.row({p.label, std::to_string(p.located),
                 std::to_string(p.degraded), std::to_string(p.unlocatable),
                 util::TextTable::num(p.median_error_km, 1),
                 util::TextTable::pct(p.report.success_rate())});
  }
  std::printf("%s\n", quality.render().c_str());
  return 0;
}
