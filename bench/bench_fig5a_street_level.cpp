// Figure 5a of the IMC'23 paper: error CDFs of the street-level technique,
// CBG, and the closest-landmark oracle over the 723 targets. The paper's
// headline: street level ~ CBG (28 vs 29 km median), nowhere near the
// original 690 m.
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/street_campaign.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 5a", "street level vs CBG vs closest-landmark oracle",
      "street level ~ CBG at ~28/29 km median; the oracle shows at most a "
      "third of targets could ever be street level");

  const auto& s = bench::bench_scenario();
  const auto& camp = eval::street_campaign(s);

  std::vector<double> street, cbg, oracle;
  int fellback = 0, no_landmark = 0;
  for (const auto& r : camp.records) {
    street.push_back(r.street_error_km);
    if (r.cbg_error_km >= 0) cbg.push_back(r.cbg_error_km);
    // Paper: landmark-less targets take the CBG answer in both lines.
    oracle.push_back(r.oracle_error_km >= 0 ? r.oracle_error_km
                                            : r.cbg_error_km);
    fellback += r.fell_back_to_cbg;
    no_landmark += r.oracle_error_km < 0;
  }

  util::TextTable t{"technique comparison"};
  t.header({"Technique", "median (km)", "<=1 km", "<=40 km"});
  auto emit = [&](const char* name, const std::vector<double>& e) {
    t.row({name, util::TextTable::num(util::median(e), 1),
           util::TextTable::pct(eval::street_level_fraction(e)),
           util::TextTable::pct(eval::city_level_fraction(e))});
  };
  emit("Street Level", street);
  emit("CBG", cbg);
  emit("Closest Landmark (oracle)", oracle);
  std::printf("%s\n", t.render().c_str());
  std::printf("targets answered by the CBG fallback: %d (paper: 46 without "
              "any landmark); targets with no oracle landmark: %d\n\n",
              fellback, no_landmark);

  bench::export_cdf("fig5a_street_level",
                    {{"street", street}, {"cbg", cbg}, {"oracle", oracle}});

  util::ChartOptions opt;
  opt.x_label = "geolocation error (km)";
  std::printf("%s\n",
              util::render_cdf_chart({{"Street Level", street},
                                      {"CBG", cbg},
                                      {"Closest Landmark", oracle}},
                                     opt)
                  .c_str());
  return 0;
}
