// Micro-benchmarks (google-benchmark) of the hot kernels: geodesy, RTT
// synthesis, constraint pruning, region intersection, prefix-table lookups
// and the concrete CBG pipeline. These are the kernels behind the ~720k
// CBG evaluations of Figure 2a.
#include <benchmark/benchmark.h>

#include "core/cbg.h"
#include "geo/geodesy.h"
#include "geo/region.h"
#include "net/prefix_table.h"
#include "scenario/presets.h"
#include "sim/latency_model.h"
#include "util/rng.h"

namespace {

using namespace geoloc;

void BM_Haversine(benchmark::State& state) {
  auto gen = util::Pcg32{1};
  const geo::GeoPoint a{48.85, 2.35};
  geo::GeoPoint b{40.7, -74.0};
  for (auto _ : state) {
    b.lon_deg = gen.uniform(-180.0, 179.0);
    benchmark::DoNotOptimize(geo::distance_km(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_Destination(benchmark::State& state) {
  auto gen = util::Pcg32{2};
  const geo::GeoPoint a{48.85, 2.35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geo::destination(a, gen.uniform(0.0, 360.0), 250.0));
  }
}
BENCHMARK(BM_Destination);

std::vector<geo::Disk> make_disks(int n, std::uint64_t seed) {
  auto gen = util::Pcg32{seed};
  const geo::GeoPoint truth{47.0, 5.0};
  std::vector<geo::Disk> disks;
  for (int i = 0; i < n; ++i) {
    const double d = gen.uniform(5.0, 2'000.0);
    const geo::GeoPoint vp =
        geo::destination(truth, gen.uniform(0.0, 360.0), d);
    disks.push_back(geo::Disk{vp, d * gen.uniform(1.05, 1.6) + 30.0});
  }
  return disks;
}

void BM_PruneDominated(benchmark::State& state) {
  const auto disks = make_disks(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::prune_dominated(disks));
  }
}
BENCHMARK(BM_PruneDominated)->Arg(8)->Arg(24)->Arg(64);

void BM_IntersectDisks(benchmark::State& state) {
  const auto disks = make_disks(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::intersect_disks(disks));
  }
}
BENCHMARK(BM_IntersectDisks)->Arg(4)->Arg(12)->Arg(24);

void BM_CbgGeolocate(benchmark::State& state) {
  auto gen = util::Pcg32{5};
  const geo::GeoPoint truth{47.0, 5.0};
  std::vector<core::VpObservation> obs;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const double d = gen.uniform(5.0, 3'000.0);
    const geo::GeoPoint vp =
        geo::destination(truth, gen.uniform(0.0, 360.0), d);
    obs.push_back({vp, geo::distance_to_min_rtt_ms(d) * 1.2 + 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cbg_geolocate(obs));
  }
}
BENCHMARK(BM_CbgGeolocate)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PrefixTableLookup(benchmark::State& state) {
  net::PrefixTable<int> table;
  auto gen = util::Pcg32{6};
  for (int i = 0; i < 10'000; ++i) {
    table.insert(net::Prefix{net::IPv4Address{gen()}, 24}, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(net::IPv4Address{gen()}));
  }
}
BENCHMARK(BM_PrefixTableLookup);

void BM_LatencyModelBaseRtt(benchmark::State& state) {
  static const scenario::Scenario* s = [] {
    auto cfg = scenario::small_config();
    cfg.cache_dir = "";
    return new scenario::Scenario(cfg);
  }();
  auto gen = util::Pcg32{7};
  const auto& vps = s->vps();
  for (auto _ : state) {
    const auto a = vps[gen.index(vps.size())];
    const auto b = vps[gen.index(vps.size())];
    benchmark::DoNotOptimize(s->latency().base_rtt_ms(a, b));
  }
}
BENCHMARK(BM_LatencyModelBaseRtt);

void BM_MinRtt3Packets(benchmark::State& state) {
  static const scenario::Scenario* s = [] {
    auto cfg = scenario::small_config(/*seed=*/17);
    cfg.cache_dir = "";
    return new scenario::Scenario(cfg);
  }();
  auto gen = util::Pcg32{8};
  const auto& vps = s->vps();
  const auto& targets = s->targets();
  for (auto _ : state) {
    const auto a = vps[gen.index(vps.size())];
    const auto b = targets[gen.index(targets.size())];
    benchmark::DoNotOptimize(s->latency().min_rtt_ms(a, b, 3, gen));
  }
}
BENCHMARK(BM_MinRtt3Packets);

}  // namespace

BENCHMARK_MAIN();
