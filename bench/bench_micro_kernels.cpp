// Micro-benchmarks (google-benchmark) of the hot kernels: geodesy, RTT
// synthesis, constraint pruning, region intersection, prefix-table lookups
// and the concrete CBG pipeline. These are the kernels behind the ~720k
// CBG evaluations of Figure 2a.
//
// After the google-benchmark suite, a custom main times the parallel
// engine (util/parallel.h): an ordered reduction and an uncached
// RTT-matrix materialisation, each emitted via GEOLOC_BENCH_JSON so a
// sweep over GEOLOC_THREADS yields a machine-diffable speedup table
// (BENCH_parallel_engine.json).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "atlas/checkpoint.h"
#include "bench_common.h"
#include "core/cbg.h"
#include "geo/geodesy.h"
#include "geo/region.h"
#include "net/prefix_table.h"
#include "scenario/presets.h"
#include "sim/latency_model.h"
#include "util/durable.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using namespace geoloc;

void BM_Haversine(benchmark::State& state) {
  auto gen = util::Pcg32{1};
  const geo::GeoPoint a{48.85, 2.35};
  geo::GeoPoint b{40.7, -74.0};
  for (auto _ : state) {
    b.lon_deg = gen.uniform(-180.0, 179.0);
    benchmark::DoNotOptimize(geo::distance_km(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_Destination(benchmark::State& state) {
  auto gen = util::Pcg32{2};
  const geo::GeoPoint a{48.85, 2.35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geo::destination(a, gen.uniform(0.0, 360.0), 250.0));
  }
}
BENCHMARK(BM_Destination);

std::vector<geo::Disk> make_disks(int n, std::uint64_t seed) {
  auto gen = util::Pcg32{seed};
  const geo::GeoPoint truth{47.0, 5.0};
  std::vector<geo::Disk> disks;
  for (int i = 0; i < n; ++i) {
    const double d = gen.uniform(5.0, 2'000.0);
    const geo::GeoPoint vp =
        geo::destination(truth, gen.uniform(0.0, 360.0), d);
    disks.push_back(geo::Disk{vp, d * gen.uniform(1.05, 1.6) + 30.0});
  }
  return disks;
}

void BM_PruneDominated(benchmark::State& state) {
  const auto disks = make_disks(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::prune_dominated(disks));
  }
}
BENCHMARK(BM_PruneDominated)->Arg(8)->Arg(24)->Arg(64);

void BM_IntersectDisks(benchmark::State& state) {
  const auto disks = make_disks(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::intersect_disks(disks));
  }
}
BENCHMARK(BM_IntersectDisks)->Arg(4)->Arg(12)->Arg(24);

void BM_CbgGeolocate(benchmark::State& state) {
  auto gen = util::Pcg32{5};
  const geo::GeoPoint truth{47.0, 5.0};
  std::vector<core::VpObservation> obs;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const double d = gen.uniform(5.0, 3'000.0);
    const geo::GeoPoint vp =
        geo::destination(truth, gen.uniform(0.0, 360.0), d);
    obs.push_back({vp, geo::distance_to_min_rtt_ms(d) * 1.2 + 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cbg_geolocate(obs));
  }
}
BENCHMARK(BM_CbgGeolocate)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PrefixTableLookup(benchmark::State& state) {
  net::PrefixTable<int> table;
  auto gen = util::Pcg32{6};
  for (int i = 0; i < 10'000; ++i) {
    table.insert(net::Prefix{net::IPv4Address{gen()}, 24}, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(net::IPv4Address{gen()}));
  }
}
BENCHMARK(BM_PrefixTableLookup);

void BM_LatencyModelBaseRtt(benchmark::State& state) {
  static const scenario::Scenario* s = [] {
    auto cfg = scenario::small_config();
    cfg.cache_dir = "";
    return new scenario::Scenario(cfg);
  }();
  auto gen = util::Pcg32{7};
  const auto& vps = s->vps();
  for (auto _ : state) {
    const auto a = vps[gen.index(vps.size())];
    const auto b = vps[gen.index(vps.size())];
    benchmark::DoNotOptimize(s->latency().base_rtt_ms(a, b));
  }
}
BENCHMARK(BM_LatencyModelBaseRtt);

// -- durable layer (util/durable.h): the per-artifact overhead budget ------

void BM_Xxh64_1MiB(benchmark::State& state) {
  std::vector<std::byte> buf(1u << 20);
  auto gen = util::Pcg32{11};
  for (auto& b : buf) b = static_cast<std::byte>(gen());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::durable::xxh64(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Xxh64_1MiB);

void BM_FramedWriteRead_64KiB(benchmark::State& state) {
  // Full durability round trip — stage, fsync, rename, validated read —
  // i.e. what one cache save/load actually costs over a raw fwrite.
  std::vector<std::byte> payload(64u << 10);
  auto gen = util::Pcg32{12};
  for (auto& b : payload) b = static_cast<std::byte>(gen());
  const std::string path = "bench-durable-frame.bin";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::durable::write_framed(path, /*magic=*/0xBE, 1, payload));
    benchmark::DoNotOptimize(util::durable::read_framed(path, 0xBE));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_FramedWriteRead_64KiB);

void BM_CampaignReportCodec(benchmark::State& state) {
  // encode+decode of a 10k-result report: the cost of one checkpoint's
  // payload, paid once per round boundary.
  atlas::CampaignReport report;
  report.requested = report.completed = 10'000;
  auto gen = util::Pcg32{13};
  for (int i = 0; i < 10'000; ++i) {
    report.results.push_back(atlas::PingMeasurement{
        .vp = gen(), .target = gen(), .min_rtt_ms = gen.uniform(1.0, 300.0),
        .packets_sent = 3, .packets_received = 3});
  }
  for (auto _ : state) {
    const auto bytes = atlas::encode_report(report);
    atlas::CampaignReport decoded;
    benchmark::DoNotOptimize(atlas::decode_report(bytes, &decoded));
  }
}
BENCHMARK(BM_CampaignReportCodec);

void BM_MinRtt3Packets(benchmark::State& state) {
  static const scenario::Scenario* s = [] {
    auto cfg = scenario::small_config(/*seed=*/17);
    cfg.cache_dir = "";
    return new scenario::Scenario(cfg);
  }();
  auto gen = util::Pcg32{8};
  const auto& vps = s->vps();
  const auto& targets = s->targets();
  for (auto _ : state) {
    const auto a = vps[gen.index(vps.size())];
    const auto b = targets[gen.index(targets.size())];
    benchmark::DoNotOptimize(s->latency().min_rtt_ms(a, b, 3, gen));
  }
}
BENCHMARK(BM_MinRtt3Packets);

/// Wall-clock timings of the parallel engine itself, emitted as
/// GEOLOC_BENCH_JSON records. Deterministic: re-running at a different
/// GEOLOC_THREADS changes only wall_ms, never the computed values.
void run_parallel_engine_timings() {
  // Ordered reduction over 16M synthesised values: pure engine throughput,
  // no memory traffic beyond the per-chunk partials.
  {
    constexpr std::size_t n = 16u << 20;
    bench::WallTimer timer;
    const double total = util::parallel_reduce<double>(
        n, 0.0,
        [](std::size_t i) { return std::sin(static_cast<double>(i)); },
        std::plus<>{});
    benchmark::DoNotOptimize(total);
    bench::emit_bench_json("parallel_reduce_sin_16M", timer.elapsed_ms(),
                           /*vps=*/0, /*targets=*/0);
  }

  // RTT-matrix materialisation on a fresh scenario with the disk cache
  // disabled — the dominant cost of every figure's first run.
  {
    auto cfg = bench::small_mode() ? scenario::small_config()
                                   : scenario::paper_config();
    cfg.cache_dir = "";
    const scenario::Scenario s = scenario::Scenario::without_web(cfg);
    bench::WallTimer target_timer;
    benchmark::DoNotOptimize(&s.target_rtts());
    bench::emit_bench_json("rtt_matrix_target", target_timer.elapsed_ms(),
                           s.vps().size(), s.targets().size());
    bench::WallTimer rep_timer;
    benchmark::DoNotOptimize(&s.representative_rtts());
    bench::emit_bench_json("rtt_matrix_representatives",
                           rep_timer.elapsed_ms(), s.vps().size(),
                           s.targets().size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_parallel_engine_timings();
  bench::emit_metrics_snapshot("micro_kernels");
  return 0;
}
