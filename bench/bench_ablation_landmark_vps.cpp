// Ablation (paper Section 3.2.2): the IMC'23 replication runs landmark
// traceroutes from only the 10 closest VPs instead of all VPs, "as our
// results show that adding more VPs does not bring useful information".
// This bench sweeps that count and verifies the claim: the street-level
// error is flat in the VP count while the traceroute bill grows linearly.
#include <cstdio>

#include "bench_common.h"
#include "core/street_level.h"
#include "eval/metrics.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Ablation: VPs per landmark",
      "street-level accuracy and traceroute cost vs VPs per landmark",
      "accuracy flat beyond a handful of VPs; cost grows linearly — the "
      "justification for the replication's 10-VP reduction");

  const auto& s = bench::bench_scenario();
  // The full pipeline is expensive; sweep over a target sample.
  const std::size_t sample =
      bench::small_mode() ? s.targets().size()
                          : std::min<std::size_t>(s.targets().size(), 150);

  util::TextTable t{"VPs-per-landmark sweep (" + std::to_string(sample) +
                    " targets)"};
  t.header({"VPs per landmark", "median error (km)", "<=40 km",
            "traceroutes per target (median)"});
  for (int vps : {3, 10, 30, 100}) {
    core::StreetLevelConfig cfg;
    cfg.vps_per_landmark = vps;
    const core::StreetLevel street(s, cfg);
    std::vector<double> errors, traceroutes;
    for (std::size_t col = 0; col < sample; ++col) {
      const auto r = street.geolocate(col);
      if (!r.ok) continue;
      errors.push_back(eval::error_km(s, col, r.estimate));
      traceroutes.push_back(static_cast<double>(r.traceroutes));
    }
    t.row({std::to_string(vps), util::TextTable::num(util::median(errors), 1),
           util::TextTable::pct(eval::city_level_fraction(errors)),
           util::TextTable::num(util::median(traceroutes), 0)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
