// Figure 8 (Appendix C) of the IMC'23 paper: CDF of the population density
// at the targets — evidence that the target set spans rural and urban areas.
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"
#include "util/stats.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 8 (Appendix C)", "population density of the target dataset",
      "targets cover both rural (<100 people/km^2) and dense urban areas");

  const auto& s = bench::bench_scenario();
  const auto& grid = s.population();

  std::vector<double> density;
  for (sim::HostId t : s.targets()) {
    density.push_back(
        grid.density_per_km2(s.world().host(t).true_location));
  }

  std::printf("density at targets: median %.0f people/km^2, p10 %.0f, "
              "p90 %.0f\n",
              util::median(density), util::percentile(density, 10),
              util::percentile(density, 90));
  std::printf("rural share (<100 people/km^2): %.0f%%\n\n",
              100.0 * util::fraction_below(density, 100.0));

  util::ChartOptions opt;
  opt.x_label = "population density (people/km^2)";
  std::printf("%s\n",
              util::render_cdf_chart({{"targets", density}}, opt).c_str());
  return 0;
}
