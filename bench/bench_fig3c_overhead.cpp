// Figure 3c of the IMC'23 paper: measurement overhead of the two-step VP
// selection per first-step size, against the original algorithm's
// all-VPs-probe-every-representative cost (21.7M pings in the paper; the
// best two-step point used 13.2% of that).
#include <cstdio>

#include "bench_common.h"
#include "core/million_scale.h"
#include "eval/experiments.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 3c", "measurement overhead of the two-step selection",
      "U-shaped cost with the sweet spot in the few-hundred-VP range at "
      "~13% of the original 21.7M pings");

  const auto& s = bench::bench_scenario();
  std::vector<int> sizes{10, 100, 300, 500, 1000};
  for (int& v : sizes) v = std::min(v, static_cast<int>(s.vps().size()));
  const auto sweep = eval::run_two_step_sweep(s, sizes);
  const auto original = core::original_algorithm_pings(s);

  util::TextTable t{"ping measurements per first-step size"};
  t.header({"VPs in the first step", "Measurements", "vs original"});
  for (const auto& sw : sweep) {
    t.row({std::to_string(sw.first_step_size),
           util::TextTable::num(static_cast<double>(sw.total_pings) / 1e6, 2) +
               "M",
           util::TextTable::pct(static_cast<double>(sw.total_pings) /
                                static_cast<double>(original))});
  }
  t.row({"All (original algorithm)",
         util::TextTable::num(static_cast<double>(original) / 1e6, 1) + "M",
         "100.0%"});
  std::printf("%s\n", t.render().c_str());
  return 0;
}
