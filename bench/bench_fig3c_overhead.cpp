// Figure 3c of the IMC'23 paper: measurement overhead of the two-step VP
// selection per first-step size, against the original algorithm's
// all-VPs-probe-every-representative cost (21.7M pings in the paper; the
// best two-step point used 13.2% of that).
#include <cstdio>

#include "bench_common.h"
#include "core/million_scale.h"
#include "eval/experiments.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 3c", "measurement overhead of the two-step selection",
      "U-shaped cost with the sweet spot in the few-hundred-VP range at "
      "~13% of the original 21.7M pings");

  const auto& s = bench::bench_scenario();
  std::vector<int> sizes{10, 100, 300, 500, 1000};
  for (int& v : sizes) v = std::min(v, static_cast<int>(s.vps().size()));
  const auto sweep = eval::run_two_step_sweep(s, sizes);
  const auto original = core::original_algorithm_pings(s);

  util::TextTable t{"ping measurements per first-step size"};
  t.header({"VPs in the first step", "Measurements", "vs original"});
  for (const auto& sw : sweep) {
    t.row({std::to_string(sw.first_step_size),
           util::TextTable::num(static_cast<double>(sw.total_pings) / 1e6, 2) +
               "M",
           util::TextTable::pct(static_cast<double>(sw.total_pings) /
                                static_cast<double>(original))});
  }
  t.row({"All (original algorithm)",
         util::TextTable::num(static_cast<double>(original) / 1e6, 1) + "M",
         "100.0%"});
  std::printf("%s\n", t.render().c_str());

  // The paper's overhead numbers assume every submitted measurement runs
  // and answers. Executed campaigns do not: the failure-accounting columns
  // below price the same ping budget under platform weather, where retries
  // and abandoned measurements waste credits the plan never billed.
  const std::vector<eval::WeatherSpec> weathers{
      {"calm", scenario::calm_weather()},
      {"stormy", scenario::stormy_weather()},
  };
  const std::size_t max_vps = bench::small_mode() ? 100 : 300;
  const auto weather_sweep = eval::run_failure_sensitivity(s, weathers, max_vps);

  util::TextTable wx{"executed overhead under platform weather (" +
                     std::to_string(max_vps) + " VPs x all targets)"};
  wx.header({"Weather", "Requested", "Attempts", "Retries", "Abandoned",
             "Credits spent", "Credits wasted", "Waste"});
  for (const auto& p : weather_sweep) {
    wx.row({p.label, std::to_string(p.report.requested),
            std::to_string(p.report.attempts),
            std::to_string(p.report.retries),
            std::to_string(p.report.abandoned),
            std::to_string(p.report.credits_spent),
            std::to_string(p.report.credits_wasted),
            util::TextTable::pct(
                p.report.credits_spent == 0
                    ? 0.0
                    : static_cast<double>(p.report.credits_wasted) /
                          static_cast<double>(p.report.credits_spent))});
  }
  std::printf("%s\n", wx.render().c_str());
  return 0;
}
