// Figure 7 of the IMC'23 paper: all-VP CBG versus the commercial
// geolocation databases — IPinfo beats CBG beats MaxMind free at city
// level (89% / 73% / 55%), and the IPinfo entries are explainable by
// source (latency + DNS/WHOIS/geofeed hints).
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/geodb.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 7", "CBG (all VPs) vs geolocation databases",
      "city-level: IPinfo ~89% > CBG ~73% > MaxMind free ~55%");

  const auto& s = bench::bench_scenario();

  std::vector<double> cbg;
  for (double e : eval::all_vp_errors(s)) {
    if (e >= 0) cbg.push_back(e);
  }

  auto db_errors = [&](core::GeoDbProfile profile) {
    const auto db = core::GeoDatabase::build(s, profile);
    std::vector<double> errors;
    for (sim::HostId t : s.targets()) {
      const auto entry = db.lookup(s.world().host(t).addr);
      if (!entry) continue;
      errors.push_back(geo::distance_km(entry->location,
                                        s.world().host(t).true_location));
    }
    return errors;
  };
  const auto maxmind = db_errors(core::GeoDbProfile::MaxMindFree);
  const auto ipinfo = db_errors(core::GeoDbProfile::IPinfo);

  util::TextTable t{"error comparison"};
  t.header({"Source", "median (km)", "<=40 km", "<=137 km"});
  auto emit = [&](const char* name, const std::vector<double>& e) {
    t.row({name, util::TextTable::num(util::median(e), 1),
           util::TextTable::pct(eval::city_level_fraction(e)),
           util::TextTable::pct(util::fraction_below(e, 137.0))});
  };
  emit("All VPs (CBG)", cbg);
  emit("MaxMind (Free)", maxmind);
  emit("IPinfo", ipinfo);
  std::printf("%s\n", t.render().c_str());

  bench::export_cdf("fig7_geodatabases",
                    {{"cbg", cbg}, {"maxmind", maxmind}, {"ipinfo", ipinfo}});

  util::ChartOptions opt;
  opt.x_label = "geolocation error (km)";
  std::printf("%s\n", util::render_cdf_chart({{"All VPs", cbg},
                                              {"Maxmind (Free)", maxmind},
                                              {"IPinfo", ipinfo}},
                                             opt)
                          .c_str());

  // Explainability: the per-source breakdown of the IPinfo-like database —
  // the paper's Section 6 conversation in table form.
  const auto db = core::GeoDatabase::build(s, core::GeoDbProfile::IPinfo);
  std::map<std::string_view, std::pair<int, std::vector<double>>> by_source;
  for (sim::HostId t : s.targets()) {
    const auto entry = db.lookup(s.world().host(t).addr);
    if (!entry) continue;
    auto& slot = by_source[entry->source];
    slot.first++;
    slot.second.push_back(geo::distance_km(entry->location,
                                           s.world().host(t).true_location));
  }
  util::TextTable src{"IPinfo-like entries by source (explainability)"};
  src.header({"Source", "targets", "median error (km)"});
  for (auto& [source, slot] : by_source) {
    src.row({std::string(source), std::to_string(slot.first),
             util::TextTable::num(util::median(slot.second), 1)});
  }
  std::printf("%s\n", src.render().c_str());
  return 0;
}
