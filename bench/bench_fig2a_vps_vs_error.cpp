// Figure 2a of the IMC'23 paper: median CBG geolocation error versus the
// number of (randomly chosen) vantage points — 100 trials per subset size
// in the paper; configurable here via GEOLOC_TRIALS (default sized for a
// single-core run).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/experiments.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 2a", "number of VPs vs geolocation error (random subsets)",
      "error keeps falling past 1000 VPs; ~8 km median at 10k (2012 paper "
      "plateaued at a few hundred km beyond 60 VPs)");

  const auto& s = bench::bench_scenario();
  const int trials = eval::trials_from_env(bench::small_mode() ? 5 : 20);

  std::vector<int> sizes{10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
  while (!sizes.empty() &&
         static_cast<std::size_t>(sizes.back()) > s.vps().size()) {
    sizes.pop_back();
  }
  if (sizes.empty() ||
      static_cast<std::size_t>(sizes.back()) != s.vps().size()) {
    sizes.push_back(static_cast<int>(s.vps().size()));
  }

  const auto sweep = eval::run_subset_size_sweep(s, sizes, trials);

  util::TextTable t{"median-of-median error per subset size (" +
                    std::to_string(trials) + " trials)"};
  t.header({"VPs", "min", "p25", "median", "p75", "max"});
  for (const auto& st : sweep) {
    const auto& m = st.trial_median_errors_km;
    t.row({std::to_string(st.subset_size), util::TextTable::num(util::min_of(m), 1),
           util::TextTable::num(util::percentile(m, 25), 1),
           util::TextTable::num(util::median(m), 1),
           util::TextTable::num(util::percentile(m, 75), 1),
           util::TextTable::num(util::max_of(m), 1)});
  }
  std::printf("%s\n", t.render().c_str());

  // The figure itself: error bars collapse to a scatter of trial medians.
  util::ScatterSeries series{"trial medians", {}, {}};
  for (const auto& st : sweep) {
    for (double m : st.trial_median_errors_km) {
      series.xs.push_back(st.subset_size);
      series.ys.push_back(m);
    }
  }
  util::ScatterOptions opt;
  opt.x_label = "number of VPs";
  opt.y_label = "geolocation error (km)";
  std::printf("%s\n", util::render_scatter_chart({series}, opt).c_str());
  return 0;
}
