// Million-scale streaming campaign acceptance bench (DESIGN.md §14).
//
// Builds a synthetic internet directly in sim::World — GEOLOC_MS_SLASH24S
// /24 sites (default 100 000), each with three hitlist representatives and
// GEOLOC_MS_TARGETS_PER_24 targets (default 10, i.e. one million targets),
// probed by GEOLOC_MS_VPS vantage points (default 128) — and runs the
// full streaming pipeline over it: tiled representative campaign, per-/24
// VP selection, sparse final pings, CBG. The dense pipeline would need a
// |VPs| x |targets| matrix (gigabytes of floats and hours of synthesis
// at this scale); the streaming path holds at most the tile budget.
//
// Recorded to $GEOLOC_BENCH_JSON (BENCH_million_scale.json) and gated:
//   - throughput must be >= 10x the dense path's effective rate at the
//     paper point (10 724 VPs x 723 targets, both campaigns fully
//     materialised), with the dense per-cell rates measured in-process on
//     this host using the dense scalar recipe;
//   - peak RSS must stay under GEOLOC_MS_RSS_CEILING_MB (default 4096).
//
// GEOLOC_SMALL=1 shrinks the world (2 000 /24s, 5 targets each, 64 VPs)
// for a seconds-long smoke run; the gates still apply.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/streaming_campaign.h"
#include "scenario/tile_source.h"
#include "sim/latency_model.h"
#include "sim/world.h"
#include "util/env.h"
#include "util/procstat.h"
#include "util/rng.h"

namespace {

using namespace geoloc;

/// The synthetic world and the two campaign host lists. The world owns the
/// hosts; the latency model is built after population (it only borrows).
struct SynthWorld {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<sim::LatencyModel> latency;
  std::vector<sim::HostId> vps;
  std::vector<sim::HostId> rep_dsts;     ///< 3 per /24, grouped
  std::vector<sim::HostId> target_dsts;  ///< targets_per_24 per /24
  std::vector<std::uint32_t> target_to_rep_col;
};

SynthWorld build_world(std::size_t n24, std::size_t per24, std::size_t n_vps) {
  SynthWorld w;
  w.world = std::make_unique<sim::World>();
  sim::World& world = *w.world;
  auto gen = world.rng().fork("ms-build").gen();
  const auto continents = sim::all_continents();

  std::vector<net::Asn> ases;
  ases.reserve(64);
  for (int i = 0; i < 64; ++i) {
    ases.push_back(world.create_as(sim::AsCategory::Access, 0));
  }

  w.vps.reserve(n_vps);
  for (std::size_t v = 0; v < n_vps; ++v) {
    sim::Host h;
    h.kind = sim::HostKind::Probe;
    h.asn = ases[v % ases.size()];
    h.place = world.sample_place(continents[v % continents.size()],
                                 /*satellite_bias=*/0.2, gen);
    h.true_location = world.sample_location(h.place, /*mean_offset_km=*/8.0,
                                            gen);
    h.reported_location = h.true_location;
    h.last_mile_ms = gen.uniform(0.5, 10.0);
    h.addr = world.allocate_site_prefix(h.asn).address_at(1);
    w.vps.push_back(world.add_host(h));
  }

  w.rep_dsts.reserve(n24 * 3);
  w.target_dsts.reserve(n24 * per24);
  w.target_to_rep_col.reserve(n24 * per24);
  for (std::size_t site = 0; site < n24; ++site) {
    const net::Asn asn = ases[site % ases.size()];
    const net::Prefix prefix = world.allocate_site_prefix(asn);
    const sim::PlaceId place = world.sample_place(
        continents[site % continents.size()], /*satellite_bias=*/0.3, gen);
    const double site_last_mile = gen.uniform(0.3, 6.0);
    auto make = [&](sim::HostKind kind, std::uint32_t octet,
                    double responsive_prob) {
      sim::Host h;
      h.kind = kind;
      h.asn = asn;
      h.place = place;
      h.true_location =
          world.sample_location(place, /*mean_offset_km=*/2.0, gen);
      h.reported_location = h.true_location;
      h.last_mile_ms = site_last_mile + gen.uniform(0.0, 2.0);
      h.responsive = gen.chance(responsive_prob);
      h.addr = prefix.address_at(octet);
      return world.add_host(h);
    };
    for (std::uint32_t j = 0; j < 3; ++j) {
      w.rep_dsts.push_back(
          make(sim::HostKind::Representative, 1 + j, /*responsive=*/0.9));
    }
    for (std::uint32_t j = 0; j < static_cast<std::uint32_t>(per24); ++j) {
      w.target_dsts.push_back(
          make(sim::HostKind::WebServer, 10 + j, /*responsive=*/0.97));
      w.target_to_rep_col.push_back(static_cast<std::uint32_t>(site));
    }
  }

  w.latency = std::make_unique<sim::LatencyModel>(world);
  return w;
}

/// Dense scalar target-cell rate (cells/s): the per-cell recipe the dense
/// target_rtts loop runs — fork("m", (r << 20) | c), then min_rtt_ms —
/// sampled over random coordinates of this campaign.
double dense_target_cell_rate(const SynthWorld& w,
                              const util::RngStream& stream,
                              std::size_t sample) {
  util::Pcg32 pick{0x5a5aULL};
  const std::size_t rows = w.vps.size();
  const std::size_t cols = w.target_dsts.size();
  double sink = 0.0;
  bench::WallTimer timer;
  for (std::size_t i = 0; i < sample; ++i) {
    const std::size_t r = pick.index(rows);
    const std::size_t c = pick.index(cols);
    auto gen = stream.fork("m", (r << 20) | c).gen();
    if (const auto v = w.latency->min_rtt_ms(w.vps[r], w.target_dsts[c],
                                             /*packets=*/3, gen)) {
      sink += *v;
    }
  }
  const double s = timer.elapsed_ms() / 1e3;
  if (sink < 0) std::printf("unreachable %f\n", sink);  // keep the loop live
  return static_cast<double>(sample) / std::max(s, 1e-9);
}

/// Dense scalar representative-cell rate (cells/s): one cell = the median
/// over the /24's responsive representatives' min RTTs, exactly as the
/// dense representative_rtts loop computes it.
double dense_rep_cell_rate(const SynthWorld& w, const util::RngStream& stream,
                           std::size_t sample) {
  util::Pcg32 pick{0xa5a5ULL};
  const std::size_t rows = w.vps.size();
  const std::size_t cols = w.rep_dsts.size() / 3;
  double sink = 0.0;
  bench::WallTimer timer;
  for (std::size_t i = 0; i < sample; ++i) {
    const std::size_t r = pick.index(rows);
    const std::size_t c = pick.index(cols);
    auto gen = stream.fork("m", (r << 20) | c).gen();
    double vals[3];
    int n = 0;
    for (std::size_t j = 0; j < 3; ++j) {
      const sim::HostId rep = w.rep_dsts[c * 3 + j];
      if (const auto v = w.latency->min_rtt_ms(w.vps[r], rep, 3, gen)) {
        vals[n++] = *v;
      }
    }
    if (n > 0) {
      // Median of at most three, the dense loop's explicit swaps.
      if (n > 1 && vals[0] > vals[1]) std::swap(vals[0], vals[1]);
      if (n > 2) {
        if (vals[1] > vals[2]) std::swap(vals[1], vals[2]);
        if (vals[0] > vals[1]) std::swap(vals[0], vals[1]);
      }
      sink += vals[n / 2];
    }
  }
  const double s = timer.elapsed_ms() / 1e3;
  if (sink < 0) std::printf("unreachable %f\n", sink);
  return static_cast<double>(sample) / std::max(s, 1e-9);
}

double median_of_located(const std::vector<double>& errors) {
  std::vector<double> located;
  located.reserve(errors.size());
  for (const double e : errors) {
    if (e >= 0.0) located.push_back(e);
  }
  if (located.empty()) return -1.0;
  const std::size_t mid = located.size() / 2;
  std::nth_element(located.begin(), located.begin() + mid, located.end());
  return located[mid];
}

}  // namespace

int main() {
  const bool small = bench::small_mode();
  const auto n24 = static_cast<std::size_t>(
      util::env::int_or("GEOLOC_MS_SLASH24S", small ? 2'000 : 100'000));
  const auto per24 = static_cast<std::size_t>(
      util::env::int_or("GEOLOC_MS_TARGETS_PER_24", small ? 5 : 10));
  const auto n_vps = static_cast<std::size_t>(
      util::env::int_or("GEOLOC_MS_VPS", small ? 64 : 128));
  const auto ceiling_mb = static_cast<std::size_t>(
      util::env::int_or("GEOLOC_MS_RSS_CEILING_MB", 4'096));
  const std::size_t n_targets = n24 * per24;

  bench::print_header(
      "bench_million_scale",
      "streaming tiled campaign at internet scale (DESIGN.md §14)",
      "1M-target / 100k-/24 campaign completes under a fixed memory "
      "ceiling, >= 10x the dense path's effective rate");
  std::printf("world: %zu /24 sites x %zu targets = %zu targets, %zu VPs\n",
              n24, per24, n_targets, n_vps);

  bench::WallTimer build_timer;
  SynthWorld w = build_world(n24, per24, n_vps);
  std::printf("world built in %.1f s (%zu hosts)\n",
              build_timer.elapsed_ms() / 1e3, w.world->host_count());

  // Dense reference rates, measured with the dense scalar per-cell recipe
  // on this host. The ISSUE gate compares against the dense path's
  // effective rate at the paper point (10 724 VPs x 723 targets): the time
  // to materialise BOTH full matrices there, divided into its 723 targets.
  const util::RngStream target_stream = w.world->rng().fork("ms-targets");
  const util::RngStream rep_stream = w.world->rng().fork("ms-reps");
  const std::size_t dense_sample = small ? 20'000 : 200'000;
  const double rate_t = dense_target_cell_rate(w, target_stream, dense_sample);
  const double rate_r = dense_rep_cell_rate(w, rep_stream, dense_sample);
  constexpr double kPaperCells = 10'724.0 * 723.0;
  const double dense_ref_s = kPaperCells / rate_t + kPaperCells / rate_r;
  const double dense_ref_targets_per_s = 723.0 / dense_ref_s;
  // Secondary (same-world) reference: dense materialisation of THIS
  // campaign's two matrices at this host's scalar rates.
  const double dense_same_world_s =
      static_cast<double>(n_vps) * static_cast<double>(n_targets) / rate_t +
      static_cast<double>(n_vps) * static_cast<double>(n24) / rate_r;
  std::printf(
      "dense scalar rates: %.0f target-cells/s, %.0f rep-cells/s\n"
      "dense reference (723 x 10724 point): %.1f s -> %.1f targets/s\n"
      "dense same-world estimate: %.1f s for %zu targets\n",
      rate_t, rate_r, dense_ref_s, dense_ref_targets_per_s,
      dense_same_world_s, n_targets);

  // The streaming campaign proper.
  scenario::TileCampaign rc;
  rc.world = w.world.get();
  rc.latency = w.latency.get();
  rc.vps = w.vps;
  rc.dsts = w.rep_dsts;
  rc.group = 3;
  rc.stream = rep_stream;
  scenario::RttTileSource reps(std::move(rc));

  scenario::TileCampaign tc;
  tc.world = w.world.get();
  tc.latency = w.latency.get();
  tc.vps = w.vps;
  tc.dsts = w.target_dsts;
  tc.group = 1;
  tc.stream = target_stream;
  scenario::RttTileSource targets(std::move(tc));

  bench::WallTimer timer;
  const core::StreamingCampaignOutcome outcome =
      core::run_streaming_campaign(reps, targets, w.target_to_rep_col);
  const double wall_ms = timer.elapsed_ms();
  const double wall_s = wall_ms / 1e3;
  const double tiled_targets_per_s =
      static_cast<double>(n_targets) / std::max(wall_s, 1e-9);
  const double speedup = tiled_targets_per_s / dense_ref_targets_per_s;
  const double median_km = median_of_located(outcome.errors_km);

  const auto& rs = outcome.rep_stats;
  const double rep_lookups = static_cast<double>(rs.hits + rs.misses);
  const double hit_rate =
      rep_lookups > 0 ? static_cast<double>(rs.hits) / rep_lookups : 0.0;
  const std::size_t peak_rss_mb = util::procstat::peak_rss_kb() / 1024;

  std::printf(
      "campaign: %.1f s (%.0f targets/s), located %zu / failed %zu, "
      "median error %.1f km\n"
      "cells: %llu rep + %llu final-ping (dense would need %.0f)\n"
      "rep tile cache: %llu hits / %llu misses (%.0f%% hit rate), "
      "%llu evictions, budget %zu tiles, peak resident %.1f MiB\n"
      "peak RSS %zu MB (ceiling %zu MB)\n",
      wall_s, tiled_targets_per_s, outcome.located, outcome.failed, median_km,
      static_cast<unsigned long long>(outcome.rep_cells),
      static_cast<unsigned long long>(outcome.target_cells),
      static_cast<double>(n_vps) *
          static_cast<double>(n_targets + n24),
      static_cast<unsigned long long>(rs.hits),
      static_cast<unsigned long long>(rs.misses), hit_rate * 100.0,
      static_cast<unsigned long long>(rs.evictions), reps.budget_tiles(),
      static_cast<double>(rs.peak_resident_bytes) / (1024.0 * 1024.0),
      peak_rss_mb, ceiling_mb);

  bench::emit_bench_json_fields(
      "million_scale",
      {{"slash24s", static_cast<double>(n24)},
       {"targets_per_24", static_cast<double>(per24)},
       {"targets", static_cast<double>(n_targets)},
       {"vps", static_cast<double>(n_vps)},
       {"wall_ms", wall_ms},
       {"targets_per_s", tiled_targets_per_s},
       {"located", static_cast<double>(outcome.located)},
       {"failed", static_cast<double>(outcome.failed)},
       {"median_error_km", median_km},
       {"rep_cells", static_cast<double>(outcome.rep_cells)},
       {"target_cells", static_cast<double>(outcome.target_cells)},
       {"tile_budget", static_cast<double>(reps.budget_tiles())},
       {"rep_tile_hits", static_cast<double>(rs.hits)},
       {"rep_tile_misses", static_cast<double>(rs.misses)},
       {"rep_tile_evictions", static_cast<double>(rs.evictions)},
       {"rep_tile_hit_rate", hit_rate},
       {"peak_resident_tile_bytes",
        static_cast<double>(rs.peak_resident_bytes)},
       {"dense_target_cells_per_s", rate_t},
       {"dense_rep_cells_per_s", rate_r},
       {"dense_effective_targets_per_s", dense_ref_targets_per_s},
       {"dense_same_world_s", dense_same_world_s},
       {"speedup_vs_dense", speedup},
       {"peak_rss_mb", static_cast<double>(peak_rss_mb)},
       {"rss_ceiling_mb", static_cast<double>(ceiling_mb)}});
  bench::emit_metrics_snapshot("million_scale");

  bool ok = true;
  if (speedup >= 10.0) {
    std::printf("[gate] PASS: %.0f targets/s >= 10x dense effective "
                "%.1f targets/s (%.0fx)\n",
                tiled_targets_per_s, dense_ref_targets_per_s, speedup);
  } else {
    std::printf("[gate] FAIL: %.0f targets/s is only %.1fx the dense "
                "effective rate %.1f targets/s\n",
                tiled_targets_per_s, speedup, dense_ref_targets_per_s);
    ok = false;
  }
  if (peak_rss_mb <= ceiling_mb) {
    std::printf("[gate] PASS: peak RSS %zu MB <= ceiling %zu MB\n",
                peak_rss_mb, ceiling_mb);
  } else {
    std::printf("[gate] FAIL: peak RSS %zu MB exceeds ceiling %zu MB\n",
                peak_rss_mb, ceiling_mb);
    ok = false;
  }
  return ok ? 0 : 1;
}
