// Figure 2b of the IMC'23 paper: CDF of the median error across random VP
// subsets of fixed sizes (100 / 500 / 1000 / 2000). The paper's point: the
// 2023 distributions vary far less across subsets than the 2012 ones did.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 2b", "CDF of the median error for fixed subset sizes",
      "distributions are narrow: e.g. 100-VP medians span ~191-366 km, not "
      "hundreds-to-a-thousand as in 2012");

  const auto& s = bench::bench_scenario();
  const int trials = eval::trials_from_env(bench::small_mode() ? 6 : 30);

  std::vector<int> sizes{100, 500, 1000, 2000};
  for (int& size : sizes) {
    size = std::min(size, static_cast<int>(s.vps().size()));
  }
  const auto sweep = eval::run_subset_size_sweep(s, sizes, trials);

  util::TextTable t{"spread of trial medians (" + std::to_string(trials) +
                    " trials per size)"};
  t.header({"VPs", "min", "median", "max", "max/min"});
  std::vector<util::CdfSeries> series;
  for (const auto& st : sweep) {
    const auto& m = st.trial_median_errors_km;
    t.row({std::to_string(st.subset_size),
           util::TextTable::num(util::min_of(m), 1),
           util::TextTable::num(util::median(m), 1),
           util::TextTable::num(util::max_of(m), 1),
           util::TextTable::num(util::max_of(m) / util::min_of(m), 2)});
    series.push_back({std::to_string(st.subset_size) + " VPs", m});
  }
  std::printf("%s\n", t.render().c_str());

  bench::export_cdf("fig2b_subset_cdf", series);

  util::ChartOptions opt;
  opt.x_label = "median geolocation error (km)";
  std::printf("%s\n", util::render_cdf_chart(series, opt).c_str());
  return 0;
}
