// Load generator for the epoll TCP server (serve/server.h, DESIGN.md §12):
// pipelined lookup QPS and latency percentiles over loopback as the
// connection count grows, then a deliberate overload phase against a
// shrunken shed threshold.
//
// Acceptance shape (ISSUE): QPS grows with connections until saturation
// and then *plateaus* while past saturation the server sheds excess
// requests with typed OVERLOADED replies — throughput for admitted work
// holds and p99 stays bounded; the server never collapses or hangs. Each
// phase appends a GEOLOC_BENCH_JSON record (BENCH_serve_server_qps.json in
// the repo is a committed reference run).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "publish/snapshot.h"
#include "serve/geo_service.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace geoloc;
using Clock = std::chrono::steady_clock;

std::shared_ptr<const publish::Snapshot> make_snapshot(std::size_t prefixes) {
  publish::SnapshotBuilder b;
  util::Pcg32 gen(20230815);
  for (std::size_t i = 0; i < prefixes; ++i) {
    publish::Record r;
    r.prefix = net::Prefix{
        net::IPv4Address{static_cast<std::uint32_t>(gen()) &
                         net::Prefix::mask(24)},
        24};
    r.location = {static_cast<double>(i % 90), static_cast<double>(i % 180)};
    r.provenance = "qps bench";
    b.add(std::move(r));
  }
  return publish::Snapshot::from_bytes(b.build(
      publish::SnapshotMeta{.dataset_version = 1, .source = "qps bench"}));
}

struct LoadResult {
  std::uint64_t served = 0;     ///< lookup replies received
  std::uint64_t shed = 0;       ///< typed OVERLOADED replies received
  std::uint64_t errors = 0;     ///< anything else (should stay 0)
  std::vector<double> latency_ms;  ///< per-reply, send -> receive
};

/// One client connection driving `window` pipelined single lookups for
/// `duration`. Every reply is matched to its send timestamp.
LoadResult run_client(std::uint16_t port, int window,
                      std::chrono::milliseconds duration,
                      std::uint64_t seed) {
  LoadResult res;
  serve::wire::TcpClient c;
  std::string error;
  if (!c.connect(port, &error)) {
    ++res.errors;
    return res;
  }
  util::Pcg32 gen(seed);
  const auto deadline = Clock::now() + duration;
  std::uint32_t next_id = 0;
  std::deque<std::pair<std::uint32_t, Clock::time_point>> in_flight;
  res.latency_ms.reserve(1 << 16);
  const auto send_one = [&] {
    const auto frame = serve::wire::encode_lookup_request(
        next_id, net::IPv4Address{static_cast<std::uint32_t>(gen())},
        /*now_s=*/0.0);
    if (!c.send_raw(frame)) return false;
    in_flight.emplace_back(next_id++, Clock::now());
    return true;
  };
  for (int i = 0; i < window; ++i) {
    if (!send_one()) return res;
  }
  while (Clock::now() < deadline) {
    serve::wire::Reply r;
    if (!c.recv_reply(&r, 2000)) {
      ++res.errors;
      break;
    }
    if (in_flight.empty() || r.request_id != in_flight.front().first) {
      ++res.errors;
      break;
    }
    res.latency_ms.push_back(std::chrono::duration<double, std::milli>(
                                 Clock::now() - in_flight.front().second)
                                 .count());
    in_flight.pop_front();
    if (r.type == serve::wire::MsgType::LookupReply) {
      ++res.served;
    } else if (r.type == serve::wire::MsgType::ErrorReply &&
               r.error == serve::wire::ErrorCode::Overloaded) {
      ++res.shed;
    } else {
      ++res.errors;
    }
    if (!send_one()) break;
  }
  return res;
}

struct BurstResult {
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
};

/// Overload client: fire `burst` batch requests without reading a byte,
/// half-close, then drain. Conservation is the assertion — every request
/// comes back served or shed, never dropped, never hung.
BurstResult run_burst_client(std::uint16_t port, int burst,
                             std::size_t batch_size) {
  BurstResult res;
  serve::wire::TcpClient c;
  std::string error;
  if (!c.connect(port, &error)) {
    ++res.errors;
    return res;
  }
  const std::vector<net::IPv4Address> addrs(batch_size,
                                            net::IPv4Address{0x0A000001});
  std::vector<std::byte> out;
  for (int i = 0; i < burst; ++i) {
    const auto f = serve::wire::encode_batch_request(
        static_cast<std::uint32_t>(i), addrs, /*now_s=*/0.0);
    out.insert(out.end(), f.begin(), f.end());
  }
  if (!c.send_raw(out)) {
    ++res.errors;
    return res;
  }
  c.shutdown_write();
  for (int i = 0; i < burst; ++i) {
    serve::wire::Reply r;
    if (!c.recv_reply(&r, 10'000)) {
      ++res.errors;
      return res;
    }
    if (r.type == serve::wire::MsgType::BatchReply) {
      ++res.served;
    } else if (r.type == serve::wire::MsgType::ErrorReply &&
               r.error == serve::wire::ErrorCode::Overloaded) {
      ++res.shed;
    } else {
      ++res.errors;
    }
  }
  return res;
}

struct PhaseRow {
  int conns = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
};

PhaseRow run_phase(std::uint16_t port, int conns, int window,
                   std::chrono::milliseconds duration) {
  std::vector<LoadResult> results(conns);
  std::vector<std::thread> clients;
  clients.reserve(conns);
  const auto start = Clock::now();
  for (int i = 0; i < conns; ++i) {
    clients.emplace_back([&, i] {
      results[i] = run_client(port, window, duration,
                              /*seed=*/0x9e3779b9ull * (i + 1));
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  PhaseRow row;
  row.conns = conns;
  std::vector<double> all_latencies;
  for (auto& r : results) {
    row.served += r.served;
    row.shed += r.shed;
    row.errors += r.errors;
    all_latencies.insert(all_latencies.end(), r.latency_ms.begin(),
                         r.latency_ms.end());
  }
  row.qps = static_cast<double>(row.served + row.shed) / elapsed;
  if (!all_latencies.empty()) {
    row.p50_ms = util::percentile(all_latencies, 50.0);
    row.p99_ms = util::percentile(all_latencies, 99.0);
  }
  return row;
}

void print_row(const PhaseRow& r) {
  std::printf("  %3d conn(s): %9.0f replies/s   p50 %7.3f ms   p99 %7.3f ms"
              "   served %8llu   shed %6llu   errors %llu\n",
              r.conns, r.qps, r.p50_ms, r.p99_ms,
              static_cast<unsigned long long>(r.served),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.errors));
}

}  // namespace

int main() {
  bench::print_header(
      "bench_serve_server_qps",
      "TCP server QPS/latency under pipelined load, then forced overload",
      "QPS plateaus at saturation; past it requests shed typed OVERLOADED, "
      "no collapse");

  const bool small = bench::small_mode();
  const auto snapshot = make_snapshot(small ? 2'000 : 50'000);
  if (!snapshot) {
    std::fprintf(stderr, "snapshot build failed\n");
    return 1;
  }
  const auto duration = std::chrono::milliseconds(small ? 300 : 800);
  int exit_code = 0;

  // -- phase 1: QPS vs connection count -----------------------------------
  std::printf("\npipelined lookups (window 32/conn), %u worker(s):\n",
              std::min(4u, std::thread::hardware_concurrency()));
  double peak_qps = 0.0;
  {
    serve::GeoService service(snapshot);
    serve::Server server(service, {});
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return 1;
    }
    for (const int conns : {1, 2, 4, 8, 16}) {
      const PhaseRow row = run_phase(server.port(), conns, /*window=*/32,
                                     duration);
      print_row(row);
      peak_qps = std::max(peak_qps, row.qps);
      if (row.errors > 0) exit_code = 1;
      bench::emit_bench_json_fields(
          "serve_server_qps/sweep",
          {{"conns", static_cast<double>(row.conns)},
           {"qps", row.qps},
           {"p50_ms", row.p50_ms},
           {"p99_ms", row.p99_ms},
           {"served", static_cast<double>(row.served)},
           {"shed", static_cast<double>(row.shed)},
           {"errors", static_cast<double>(row.errors)}});
    }
    server.stop();
  }

  // -- phase 2: past saturation, shed — don't collapse ---------------------
  std::printf("\nforced overload (shed threshold shrunk to 256 KiB):\n");
  {
    serve::ServerConfig cfg;
    cfg.max_outstanding_bytes = 256 * 1024;
    serve::GeoService service(snapshot);
    serve::Server server(service, cfg);
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return 1;
    }
    // Burst clients queue replies far faster than they drain them (no
    // reads until the whole burst is sent): outstanding bytes cross the
    // threshold and the tail must shed. A probe connection runs windowed
    // lookups throughout, measuring responsiveness *during* the overload.
    constexpr int kBurstConns = 8;
    const int burst = small ? 48 : 96;
    const std::size_t batch_size = 256;
    std::vector<BurstResult> bursts(kBurstConns);
    std::vector<std::thread> flood;
    flood.reserve(kBurstConns);
    const auto start = Clock::now();
    for (int i = 0; i < kBurstConns; ++i) {
      flood.emplace_back([&, i] {
        bursts[i] = run_burst_client(server.port(), burst, batch_size);
      });
    }
    const LoadResult probe =
        run_client(server.port(), /*window=*/8, duration, /*seed=*/1);
    for (auto& t : flood) t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    BurstResult total;
    for (const auto& b : bursts) {
      total.served += b.served;
      total.shed += b.shed;
      total.errors += b.errors;
    }
    const double probe_p50 = probe.latency_ms.empty()
                                 ? 0.0
                                 : util::percentile(probe.latency_ms, 50.0);
    const double probe_p99 = probe.latency_ms.empty()
                                 ? 0.0
                                 : util::percentile(probe.latency_ms, 99.0);
    const std::uint64_t sent =
        static_cast<std::uint64_t>(kBurstConns) * burst;
    const double answered_per_s =
        static_cast<double>(total.served + total.shed) / elapsed;
    std::printf("  %d burst conn(s) x %d batches of %zu: served %llu, "
                "shed %llu, errors %llu (of %llu sent)\n",
                kBurstConns, burst, batch_size,
                static_cast<unsigned long long>(total.served),
                static_cast<unsigned long long>(total.shed),
                static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(sent));
    std::printf("  probe during overload: %llu lookups, p50 %.3f ms, "
                "p99 %.3f ms, errors %llu\n",
                static_cast<unsigned long long>(probe.served), probe_p50,
                probe_p99, static_cast<unsigned long long>(probe.errors));
    const bool shed_worked = total.shed > 0 && total.served > 0 &&
                             total.errors == 0 &&
                             total.served + total.shed == sent;
    std::printf("  overload verdict: %s (every burst request answered, "
                "probe stayed live)\n",
                shed_worked ? "SHEDS, NO COLLAPSE" : "FAIL");
    if (!shed_worked || probe.errors > 0) exit_code = 1;
    bench::emit_bench_json_fields(
        "serve_server_qps/overload",
        {{"burst_conns", static_cast<double>(kBurstConns)},
         {"batches_sent", static_cast<double>(sent)},
         {"served", static_cast<double>(total.served)},
         {"shed", static_cast<double>(total.shed)},
         {"errors", static_cast<double>(total.errors)},
         {"answered_per_s", answered_per_s},
         {"probe_lookups", static_cast<double>(probe.served)},
         {"probe_p50_ms", probe_p50},
         {"probe_p99_ms", probe_p99},
         {"peak_sweep_qps", peak_qps}});
    server.stop();
  }

  bench::emit_metrics_snapshot("serve_server_qps");
  return exit_code;
}
