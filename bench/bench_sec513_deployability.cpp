// Section 5.1.3 of the IMC'23 paper (analysis, no figure): why the original
// million-scale VP-selection algorithm cannot be deployed on RIPE Atlas —
// every VP must ping three representatives of every routable /24, and Atlas
// probes sustain 4-12 pps (anchors 200-400), not the 500 pps of the 2012
// study's PlanetLab nodes.
#include <cstdio>

#include "atlas/platform.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Section 5.1.3", "deployability of the original VP selection on Atlas",
      "months of fully dedicated probing per VP at probe rates; the 2012 "
      "result needed 500 pps per VP");

  const auto& s = bench::bench_scenario();
  atlas::Platform platform(s.world(), s.latency());

  // Empirical probing-rate distribution of the scenario's VPs.
  std::vector<double> probe_pps, anchor_pps;
  for (std::size_t r = 0; r < s.vps().size(); ++r) {
    const auto& h = s.world().host(s.vps()[r]);
    (h.kind == sim::HostKind::Anchor ? anchor_pps : probe_pps)
        .push_back(platform.probing_rate_pps(s.vps()[r]));
  }
  std::printf("sustained probing rates: probes median %.1f pps "
              "(band %.0f-%.0f), anchors median %.0f pps (band %.0f-%.0f)\n\n",
              util::median(probe_pps), platform.config().probe_pps_min,
              platform.config().probe_pps_max, util::median(anchor_pps),
              platform.config().anchor_pps_min,
              platform.config().anchor_pps_max);

  const atlas::DeployabilityAnswer a = atlas::analyze_deployability({});
  util::TextTable t{"probing every routable /24 (3 representatives each)"};
  t.header({"Rate per VP", "Days of fully dedicated probing"});
  t.row({"8 pps (Atlas probe)", util::TextTable::num(a.days_at_pps(8.0), 0)});
  t.row({"300 pps (Atlas anchor)",
         util::TextTable::num(a.days_at_pps(300.0), 1)});
  t.row({"500 pps (2012 PlanetLab)",
         util::TextTable::num(a.days_at_original_rate, 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("packets per VP: %.2e; total across 10k VPs: %.2e\n",
              a.packets_per_vp, static_cast<double>(a.total_packets));
  std::printf("conclusion: undeployable at probe rates — the motivation for "
              "the paper's two-step extension (Figures 3b/3c)\n");
  return 0;
}
