// Ablation (DESIGN.md §5.2): the region-sampling resolution. CBG's feasible
// region is sampled on a two-level polar grid; this bench sweeps the grid
// and the refinement depth against accuracy and runtime.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/million_scale.h"
#include "eval/metrics.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Ablation: region sampling resolution",
      "CBG accuracy and runtime vs polar-grid resolution and refinement",
      "the default (12 rings x 24 sectors, 1 refinement) is at the knee");

  const auto& s = bench::bench_scenario();
  const core::MillionScale ms(s);
  std::vector<std::size_t> rows(s.vps().size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;

  struct Setting {
    const char* name;
    int rings, sectors, refine;
  };
  const Setting settings[] = {
      {"coarse (6x12, no refine)", 6, 12, 0},
      {"coarse + refine", 6, 12, 1},
      {"default (12x24, refine 1)", 12, 24, 1},
      {"fine (20x36, refine 1)", 20, 36, 1},
      {"fine + refine 2", 20, 36, 2},
  };

  util::TextTable t{"region resolution sweep (all VPs)"};
  t.header({"Setting", "median error (km)", "<=40 km", "ms per target"});
  for (const Setting& set : settings) {
    core::CbgConfig cfg;
    cfg.region.rings = set.rings;
    cfg.region.sectors = set.sectors;
    cfg.region.refine_levels = set.refine;
    std::vector<double> errors;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t col = 0; col < s.targets().size(); ++col) {
      const auto r = ms.geolocate(rows, col, cfg);
      if (r.ok) errors.push_back(ms.error_km(r.estimate, col));
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(s.targets().size());
    t.row({set.name, util::TextTable::num(util::median(errors), 1),
           util::TextTable::pct(eval::city_level_fraction(errors)),
           util::TextTable::num(elapsed_ms, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
