// Table 1 of the IMC'23 paper: the datasets used by the replication —
// targets, vantage points, supporting services — plus the Section 4.3
// sanitisation counts (9 anchors / 96 probes removed).
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Table 1", "datasets and APIs of the replication",
      "723 anchor targets; 10k probe+anchor VPs; public services only");

  const auto& s = bench::bench_scenario();
  const auto& world = s.world();

  util::TextTable t{"Datasets (simulated equivalents, see DESIGN.md)"};
  t.header({"Role", "Dataset", "Count"});
  t.row({"Replication targets", "RIPE Atlas anchors (sanitised)",
         std::to_string(s.targets().size())});
  t.row({"Million-scale VPs", "RIPE Atlas probes + anchors (sanitised)",
         std::to_string(s.vps().size())});
  t.row({"Street-level VPs", "RIPE Atlas anchors",
         std::to_string(s.anchor_vps().size())});
  t.row({"Representatives", "ISI-hitlist /24 entries (3 per target)",
         std::to_string(s.targets().size() * 3)});
  t.row({"Mapping service", "Nominatim/OSM zip zones", "local instance"});
  t.row({"POI index", "Overpass amenities-with-website",
         std::to_string(s.has_web() ? s.web().total_count() : 0)});
  std::printf("%s\n", t.render().c_str());

  util::TextTable san{"Section 4.3 sanitisation"};
  san.header({"Set", "Generated", "Removed (SOI violations)", "Kept"});
  san.row({"Anchors", std::to_string(s.catalog().anchors.size()),
           std::to_string(s.anchor_sanitisation().removed.size()),
           std::to_string(s.anchor_sanitisation().kept.size())});
  san.row({"Probes", std::to_string(s.catalog().probes.size()),
           std::to_string(s.probe_sanitisation().removed.size()),
           std::to_string(s.probe_sanitisation().kept.size())});
  std::printf("%s\n", san.render().c_str());

  // Target spread, as in the paper's Section 4.1.2 prose.
  std::size_t cities = 0, ases = 0, countries = 0;
  {
    std::set<sim::PlaceId> city_set;
    std::set<std::uint32_t> as_set;
    std::set<std::string> country_set;
    for (sim::HostId id : s.targets()) {
      const sim::Host& h = world.host(id);
      city_set.insert(world.place(h.place).parent);
      as_set.insert(h.asn.value);
      country_set.insert(world.place(h.place).country);
    }
    cities = city_set.size();
    ases = as_set.size();
    countries = country_set.size();
  }
  std::printf("Targets are located in %zu cities, %zu countries, %zu ASes "
              "(paper: 441 cities, 96 countries, 561 ASes)\n",
              cities, countries, ases);
  return 0;
}
