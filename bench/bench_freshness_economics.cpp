// Freshness economics: the accuracy-vs-ping-credit frontier of keeping a
// published geolocation dataset fresh against a churning world.
//
// A publishable dataset (the paper's end goal) decays: prefixes get
// reassigned, hosts move, VP metadata drifts (sim/churn.h, after Gouel et
// al.'s longitudinal churn observations). The operator's question is
// economic — at a fixed monthly re-measurement budget, which staleness
// policy buys the most accuracy? This bench sweeps budgets x policies
// through the full multi-epoch production loop (eval/longitudinal.h) and
// prints the frontier.
//
// Expected shape (the longitudinal literature's qualitative result): at
// equal budgets, churn-aware re-measurement dominates the naive TTL
// clock. The staleness-queue policy (remeasure what users actually look
// up) carries the claim: its signal is free and instantaneous. The
// diff-triggered policy (remeasure neighbourhoods the last publish saw
// move) is reported alongside but typically only *ties* TTL-expiry here —
// its detection channel IS the re-measurement rotation (a mover is only
// observed when re-measured), so the strike lags by the rotation period
// and by then block age has absorbed the signal. See EXPERIMENTS.md.
//
// Runs on the miniature scenario regardless of GEOLOC_SMALL: the sweep is
// budgets x 3 policies x a full multi-epoch campaign loop each — the
// frontier is a shape claim, not a scale claim. The world is shaped to
// carry that claim: a large anchor pool packs several target /24s into
// each AS's /16 (reassignment waves then hit *neighbourhoods*, which is
// what the diff policy exploits), churn runs hot (6% of prefixes start a
// wave per epoch — a dataset aging faster than its TTL ladder), and the
// lookup workload is small and popularity-skewed so credits spent on
// unqueried prefixes buy nothing a user can feel. A uniform TTL rotation
// is near-optimal in a diffuse world; it is the *concentration* — of
// churn in /16 waves and of demand in few prefixes — that churn-aware
// policies monetise.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/longitudinal.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Freshness economics",
      "accuracy-vs-credit frontier of dataset re-measurement policies",
      "churn-aware re-measurement (diff-triggered or staleness-queue) "
      "dominates naive TTL-expiry on accuracy per credit at equal budgets");

  auto base = scenario::small_config();
  base.cache_dir = "";
  // Pack target sites: a bigger anchor pool means each AS fills its own
  // /16 with several target /24s, so one observed mover indicts real
  // neighbours instead of an otherwise-empty block.
  base.catalog.anchor_as_pool = 30;

  eval::LongitudinalConfig cfg;
  cfg.epochs = 6;
  cfg.lookups_per_epoch = 64;
  cfg.vps_per_target = 8;
  cfg.packets = 3;
  cfg.churn = sim::ChurnConfig::from_env();
  // Hot churn default (still overridable via the usual env knob).
  if (std::getenv("GEOLOC_CHURN_PREFIX_PM") == nullptr) {
    cfg.churn.prefix_reassignment_rate = 0.06;
  }

  const std::vector<std::size_t> budgets = {8, 24, 64};
  // A six-epoch run sees only a handful of (heavy-tailed) churn events, so
  // a single world is noise-dominated: average each frontier cell over
  // GEOLOC_TRIALS independently churning worlds.
  const int trials = util::env::int_or("GEOLOC_TRIALS", 3);

  bench::WallTimer timer;
  std::vector<eval::FrontierPoint> frontier;
  for (int t = 0; t < trials; ++t) {
    eval::LongitudinalConfig trial = cfg;
    trial.churn.seed = cfg.churn.seed + static_cast<std::uint64_t>(t);
    const auto points = eval::freshness_frontier(base, budgets, trial);
    if (frontier.empty()) {
      frontier = points;
      continue;
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      frontier[i].credits_spent += points[i].credits_spent;
      frontier[i].mean_query_error_km += points[i].mean_query_error_km;
      frontier[i].final_snapshot_error_km += points[i].final_snapshot_error_km;
    }
  }
  for (eval::FrontierPoint& p : frontier) {
    p.credits_spent /= static_cast<std::uint64_t>(trials);
    p.mean_query_error_km /= trials;
    p.final_snapshot_error_km /= trials;
  }

  util::TextTable t{"freshness frontier (" + std::to_string(cfg.epochs) +
                    " epochs, one simulated month each)"};
  t.header({"budget (/24s)", "policy", "credits", "query err km",
            "final snap err km"});
  for (const eval::FrontierPoint& p : frontier) {
    t.row({std::to_string(p.budget_prefixes),
           std::string(eval::to_string(p.policy)),
           std::to_string(p.credits_spent),
           util::TextTable::num(p.mean_query_error_km, 1),
           util::TextTable::num(p.final_snapshot_error_km, 1)});
    bench::emit_bench_json_fields(
        "freshness_economics/" + std::string(eval::to_string(p.policy)),
        {{"budget_prefixes", static_cast<double>(p.budget_prefixes)},
         {"credits", static_cast<double>(p.credits_spent)},
         {"mean_query_error_km", p.mean_query_error_km},
         {"final_snapshot_error_km", p.final_snapshot_error_km},
         {"epochs", static_cast<double>(cfg.epochs)},
         {"trials", static_cast<double>(trials)}});
  }
  std::printf("%s", t.render().c_str());

  // Acceptance: at every budget, a churn-aware policy (diff OR queue)
  // beats or ties the TTL clock on user-experienced error — and never at
  // higher cost.
  bool dominated = true;
  for (const std::size_t budget : budgets) {
    const eval::FrontierPoint* ttl = nullptr;
    const eval::FrontierPoint* diff = nullptr;
    const eval::FrontierPoint* queue = nullptr;
    for (const eval::FrontierPoint& p : frontier) {
      if (p.budget_prefixes != budget) continue;
      if (p.policy == eval::RemeasurePolicy::TtlExpiry) ttl = &p;
      if (p.policy == eval::RemeasurePolicy::DiffTriggered) diff = &p;
      if (p.policy == eval::RemeasurePolicy::StalenessQueue) queue = &p;
    }
    const bool diff_ok = diff->mean_query_error_km <=
                             ttl->mean_query_error_km &&
                         diff->credits_spent <= ttl->credits_spent;
    const bool queue_ok = queue->mean_query_error_km <=
                              ttl->mean_query_error_km &&
                          queue->credits_spent <= ttl->credits_spent;
    std::printf("budget %3zu: diff %s ttl (%.1f vs %.1f km), queue %s ttl "
                "(%.1f vs %.1f km)\n",
                budget, diff_ok ? "<=" : "> ", diff->mean_query_error_km,
                ttl->mean_query_error_km, queue_ok ? "<=" : "> ",
                queue->mean_query_error_km, ttl->mean_query_error_km);
    dominated = dominated && (diff_ok || queue_ok);
  }
  std::printf("churn-aware policies dominate TTL-expiry: %s\n",
              dominated ? "yes" : "NO");
  bench::emit_bench_json_fields("freshness_economics/acceptance",
                                {{"dominates", dominated ? 1.0 : 0.0},
                                 {"wall_ms", timer.elapsed_ms()}});
  bench::emit_metrics_snapshot("freshness_economics");
  return dominated ? 0 : 1;
}
