// Appendix B of the IMC'23 paper: how (un)reliable is the street-level
// paper's D1/D2 computation? The paper shows that without reverse-path
// information, D1 can only be estimated by RTT subtraction under a
// last-link-symmetry assumption. The simulator knows the ground truth
// (the actual landmark<->router base RTT), so this bench quantifies the
// estimator directly:
//   D1_true = base_rtt(R1, L) / 2            (symmetric split)
//   D1_est  = (RTT(vp, L) - RTT(vp, R1)) / 2 (the paper's only option)
#include <cstdio>

#include "bench_common.h"
#include "core/street_level.h"
#include "sim/traceroute.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Appendix B", "error of the traceroute D1 estimator vs ground truth",
      "the subtraction estimator is dominated by ICMP-generation and "
      "reverse-path noise: large spread, frequent negatives");

  const auto& s = bench::bench_scenario();
  const sim::TracerouteEngine tracer(s.world(), s.latency());
  auto gen = s.world().rng().fork("appendix-b").gen();

  std::vector<double> true_d1, est_d1, errors;
  int negatives = 0, samples = 0;

  // Sample (VP, landmark-server) pairs: VPs are anchors, destinations are
  // passing websites' servers — the tier-2 measurement population.
  const auto& eco = s.web();
  std::vector<sim::HostId> servers;
  for (const auto& w : eco.websites()) {
    if (w.passes_tests) servers.push_back(w.server);
    if (servers.size() >= 400) break;
  }
  for (int i = 0; i < 2'000 && !servers.empty(); ++i) {
    const sim::HostId vp =
        s.targets()[gen.index(s.targets().size())];
    const sim::HostId dst = servers[gen.index(servers.size())];
    const sim::Traceroute tr = tracer.run(vp, dst, gen);
    if (!tr.reached || tr.hops.size() < 2) continue;
    // R1 = last router hop before the destination.
    const sim::TraceHop* r1 = nullptr;
    for (std::size_t h = tr.hops.size() - 1; h-- > 0;) {
      if (tr.hops[h].responded) {
        r1 = &tr.hops[h];
        break;
      }
    }
    if (!r1) continue;
    const double d1_true = s.latency().base_rtt_ms(r1->host, dst) / 2.0;
    const double d1_est = (*tr.destination_rtt_ms() - r1->rtt_ms) / 2.0;
    true_d1.push_back(d1_true);
    est_d1.push_back(d1_est);
    errors.push_back(d1_est - d1_true);
    negatives += d1_est < 0.0;
    ++samples;
  }

  util::TextTable t{"D1 estimator vs ground truth (" +
                    std::to_string(samples) + " VP/landmark pairs)"};
  t.header({"Quantity", "p10", "median", "p90"});
  t.row({"true D1 (ms)", util::TextTable::num(util::percentile(true_d1, 10), 2),
         util::TextTable::num(util::median(true_d1), 2),
         util::TextTable::num(util::percentile(true_d1, 90), 2)});
  t.row({"estimated D1 (ms)",
         util::TextTable::num(util::percentile(est_d1, 10), 2),
         util::TextTable::num(util::median(est_d1), 2),
         util::TextTable::num(util::percentile(est_d1, 90), 2)});
  t.row({"estimator error (ms)",
         util::TextTable::num(util::percentile(errors, 10), 2),
         util::TextTable::num(util::median(errors), 2),
         util::TextTable::num(util::percentile(errors, 90), 2)});
  std::printf("%s\n", t.render().c_str());
  std::printf("negative estimates: %.0f%% of pairs (each negative estimate "
              "is an unusable distance bound)\n",
              100.0 * negatives / std::max(samples, 1));
  std::printf("pearson(true, estimated) = %.3f — the estimator carries "
              "almost no signal about the true last-mile delay,\nwhich is "
              "why Section 5.2.3 finds no distance-order preservation\n\n",
              util::pearson(true_d1, est_d1));

  util::ChartOptions opt;
  opt.log_x = false;
  opt.x_label = "D1 estimator error (ms)";
  std::printf("%s\n",
              util::render_cdf_chart({{"estimator error", errors}}, opt)
                  .c_str());
  return 0;
}
