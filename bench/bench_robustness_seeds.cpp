// Robustness check: the headline metrics across independently seeded
// worlds. The reproduction's claims are about *shapes*; this bench shows
// they are not artefacts of one lucky seed — the orderings (street ~ CBG,
// two-step ~ all-VP at a fraction of the cost, oracle far ahead) hold for
// every seed.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "core/million_scale.h"
#include "eval/street_campaign.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Robustness: seed sweep",
      "headline metrics across independently generated worlds",
      "orderings and magnitudes persist across seeds");

  // Independent worlds are expensive; sweep at small scale by default.
  const bool full = std::getenv("GEOLOC_ROBUSTNESS_FULL") != nullptr;
  if (!full) {
    std::printf("[running at small scale; set GEOLOC_ROBUSTNESS_FULL=1 for "
                "723-target worlds]\n\n");
  }

  util::TextTable t{"headline metrics per seed"};
  t.header({"Seed", "CBG median (km)", "CBG city-level", "street median",
            "oracle <1km", "two-step cost"});
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL, 55ULL}) {
    auto cfg = full ? scenario::paper_config(seed)
                    : scenario::small_config(seed);
    cfg.cache_dir = scenario::default_cache_dir();
    const scenario::Scenario s(cfg);

    std::vector<double> cbg;
    for (double e : eval::all_vp_errors(s)) {
      if (e >= 0) cbg.push_back(e);
    }

    const auto& camp = eval::street_campaign(s);
    std::vector<double> street, oracle;
    for (const auto& r : camp.records) {
      street.push_back(r.street_error_km);
      oracle.push_back(r.oracle_error_km >= 0 ? r.oracle_error_km
                                              : r.cbg_error_km);
    }

    const int sizes[] = {full ? 500 : 50};
    const auto sweep = eval::run_two_step_sweep(s, sizes);
    const double cost_share =
        static_cast<double>(sweep[0].total_pings) /
        static_cast<double>(core::original_algorithm_pings(s));

    t.row({std::to_string(seed), util::TextTable::num(util::median(cbg), 1),
           util::TextTable::pct(eval::city_level_fraction(cbg)),
           util::TextTable::num(util::median(street), 1),
           util::TextTable::pct(eval::street_level_fraction(oracle)),
           util::TextTable::pct(cost_share)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
