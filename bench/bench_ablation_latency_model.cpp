// Ablation (DESIGN.md §5.1): which latency-model ingredients drive the
// headline CBG result. Rebuilds the scenario with individual realism terms
// switched off and reports how the all-VP error responds:
//   - no access-quality clusters  -> the error tail collapses (everything
//     looks city-level, unlike the paper's 73%)
//   - no path inflation           -> constraints tighten toward geodesics
//   - heavy last mile everywhere  -> accuracy degrades across the board
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace geoloc;

struct Variant {
  const char* name;
  scenario::ScenarioConfig config;
};

void report(util::TextTable& t, const Variant& v) {
  const scenario::Scenario s = scenario::Scenario::without_web(v.config);
  std::vector<double> errors;
  for (double e : eval::all_vp_errors(s)) {
    if (e >= 0) errors.push_back(e);
  }
  t.row({v.name, util::TextTable::num(util::median(errors), 1),
         util::TextTable::pct(eval::city_level_fraction(errors)),
         util::TextTable::pct(util::fraction_below(errors, 10.0))});
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: latency-model ingredients",
      "all-VP CBG accuracy with individual realism terms disabled",
      "the access-quality clusters create the paper's 27% beyond-city tail; "
      "inflation and last mile set the floor");

  // The ablations rebuild scenarios, so run them at the small scale unless
  // explicitly asked otherwise: paper-scale x 4 variants is minutes.
  const bool full = !bench::small_mode() &&
                    std::getenv("GEOLOC_ABLATION_FULL") != nullptr;
  auto base = full ? scenario::paper_config() : scenario::small_config();
  base.cache_dir = scenario::default_cache_dir();
  if (!full) {
    std::printf("[running at small scale; set GEOLOC_ABLATION_FULL=1 for the "
                "723-target scenario]\n\n");
  }

  std::vector<Variant> variants;
  variants.push_back({"baseline", base});
  {
    auto v = base;
    v.world.poorly_connected_city_prob = {0, 0, 0, 0, 0, 0};
    variants.push_back({"no access-quality clusters", v});
  }
  {
    auto v = base;
    v.latency.inflation_mu = 0.0;
    v.latency.inflation_sigma = 0.01;
    v.latency.short_path_boost_km = 0.0;
    variants.push_back({"no path inflation", v});
  }
  {
    auto v = base;
    v.catalog.probe_last_mile_low_min_ms = 5.0;
    v.catalog.probe_last_mile_low_max_ms = 15.0;
    variants.push_back({"heavy last mile everywhere", v});
  }
  {
    auto v = base;
    v.latency.overhead_mean_ms = 0.0;
    v.latency.overhead_local_mean_ms = 0.0;
    variants.push_back({"no per-hop overhead", v});
  }

  util::TextTable t{"all-VP CBG under latency-model ablations"};
  t.header({"Variant", "median error (km)", "<=40 km", "<=10 km"});
  for (const Variant& v : variants) report(t, v);
  std::printf("%s\n", t.render().c_str());
  return 0;
}
