// Figure 4 of the IMC'23 paper: all-VP CBG error split by target continent.
// The paper's surprise: Africa outperforms Europe despite far fewer VPs —
// accuracy follows regional access quality, not platform coverage.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 4", "geolocation error per continent",
      "coverage does not imply accuracy: AF does well with few VPs; part of "
      "EU drags behind because close probes answer slowly");

  const auto& s = bench::bench_scenario();
  const auto per_continent = eval::run_per_continent(s);

  util::TextTable t{"per-continent error"};
  t.header({"Continent", "targets", "median (km)", "<=40 km"});
  std::vector<util::CdfSeries> series;
  for (const auto& ce : per_continent) {
    if (ce.errors_km.empty()) continue;
    const std::string label = std::string(sim::to_string(ce.continent)) +
                              " (" + std::to_string(ce.errors_km.size()) + ")";
    t.row({label, std::to_string(ce.errors_km.size()),
           util::TextTable::num(util::median(ce.errors_km), 1),
           util::TextTable::pct(eval::city_level_fraction(ce.errors_km))});
    series.push_back({label, ce.errors_km});
  }
  std::printf("%s\n", t.render().c_str());

  bench::export_cdf("fig4_per_continent", series);

  util::ChartOptions opt;
  opt.x_label = "geolocation error (km)";
  std::printf("%s\n", util::render_cdf_chart(series, opt).c_str());

  // The paper's follow-up: how many targets have a VP within 40 km, per
  // continent (it found 94% for AF and 99% for EU — closeness is not the
  // differentiator; answer latency is).
  util::TextTable prox{"targets with a VP within 40 km"};
  prox.header({"Continent", "with close VP"});
  for (const auto& ce : per_continent) {
    int with_close = 0, total = 0;
    for (std::size_t col = 0; col < s.targets().size(); ++col) {
      const auto& h = s.world().host(s.targets()[col]);
      if (s.world().place(h.place).continent != ce.continent) continue;
      ++total;
      for (std::size_t r = 0; r < s.vps().size(); ++r) {
        if (s.vps()[r] == s.targets()[col]) continue;
        if (geo::distance_km(s.world().host(s.vps()[r]).true_location,
                             h.true_location) <= 40.0) {
          ++with_close;
          break;
        }
      }
    }
    if (total == 0) continue;
    prox.row({std::string(sim::to_string(ce.continent)),
              util::TextTable::pct(static_cast<double>(with_close) / total)});
  }
  std::printf("%s\n", prox.render().c_str());
  return 0;
}
