// Figure 3b of the IMC'23 paper: accuracy of the two-step VP-selection
// extension for different first-step subset sizes — the paper's point being
// that even a 10-VP first step does not degrade accuracy.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 3b", "two-step VP selection accuracy vs first-step size",
      "accuracy is flat across first-step sizes and matches all-VP CBG");

  const auto& s = bench::bench_scenario();
  std::vector<int> sizes{10, 100, 300, 500, 1000};
  for (int& v : sizes) v = std::min(v, static_cast<int>(s.vps().size()));
  const auto sweep = eval::run_two_step_sweep(s, sizes);
  const auto& all_vp = eval::all_vp_errors(s);
  std::vector<double> all_clean;
  for (double e : all_vp) {
    if (e >= 0) all_clean.push_back(e);
  }

  util::TextTable t{"two-step accuracy per first-step size"};
  t.header({"First step", "targets", "median (km)", "<=40 km", "failed"});
  std::vector<util::CdfSeries> series{{"All VPs", all_clean}};
  for (const auto& sw : sweep) {
    t.row({std::to_string(sw.first_step_size),
           std::to_string(sw.errors_km.size()),
           util::TextTable::num(util::median(sw.errors_km), 1),
           util::TextTable::pct(eval::city_level_fraction(sw.errors_km)),
           std::to_string(sw.failed_targets)});
    series.push_back(
        {std::to_string(sw.first_step_size) + " VPs", sw.errors_km});
  }
  t.row({"All VPs (CBG)", std::to_string(all_clean.size()),
         util::TextTable::num(util::median(all_clean), 1),
         util::TextTable::pct(eval::city_level_fraction(all_clean)), "-"});
  std::printf("%s\n", t.render().c_str());

  bench::export_cdf("fig3b_two_step", series);

  util::ChartOptions opt;
  opt.x_label = "geolocation error (km)";
  std::printf("%s\n", util::render_cdf_chart(series, opt).c_str());
  return 0;
}
