// Shared plumbing for the per-figure bench binaries.
//
// Every binary prints: a header naming the paper artefact it regenerates,
// the measured rows/series, and (where the paper uses a plot) an ASCII
// rendering of the figure. Numbers are expected to match the paper's
// *shape* — orderings, ratios, crossovers — not its absolute values (the
// substrate here is a simulator; see DESIGN.md and EXPERIMENTS.md).
//
// Environment knobs (parsed by util/env.h — the registry lives there):
//   GEOLOC_SMALL=1       run on the miniature scenario (quick smoke)
//   GEOLOC_TRIALS=N      trial count for the randomized sweeps
//   GEOLOC_CACHE_DIR=…   where the RTT-matrix / campaign caches live
//   GEOLOC_THREADS=N     parallel-engine workers; results are bit-identical
//                        for any value (DESIGN.md §9), only wall time moves
//   GEOLOC_BENCH_JSON=f  append machine-readable timing records (one JSON
//                        object per line) to file f
//   GEOLOC_METRICS_JSON=f  append obs-registry metric snapshots (same
//                        JSON-lines shape, tagged with the bench name)
//   GEOLOC_TRACE=1       record obs trace spans (flushed into the
//                        metrics snapshot)
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/parallel.h"
#include "util/procstat.h"

namespace geoloc::bench {

inline bool small_mode() { return util::env::flag("GEOLOC_SMALL"); }

/// The scenario every bench shares (paper scale unless GEOLOC_SMALL=1).
inline const scenario::Scenario& bench_scenario() {
  static const scenario::Scenario s = [] {
    auto cfg =
        small_mode() ? scenario::small_config() : scenario::paper_config();
    if (cfg.cache_dir.empty()) cfg.cache_dir = scenario::default_cache_dir();
    return scenario::Scenario(cfg);
  }();
  return s;
}

inline void print_header(const char* artefact, const char* description,
                         const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artefact, description);
  std::printf("Paper shape to reproduce: %s\n", paper_shape);
  if (small_mode()) {
    std::printf("[GEOLOC_SMALL=1: miniature scenario — numbers are a smoke "
                "run, not the reproduction]\n");
  }
  std::printf("==============================================================\n");
}

/// Wall-clock stopwatch for the GEOLOC_BENCH_JSON records.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Append one timing record to $GEOLOC_BENCH_JSON as a JSON line:
///   {"name":…,"wall_ms":…,"threads":…,"vps":…,"targets":…,
///    "peak_rss_kb":…,"allocs":…}
/// so sweeps over GEOLOC_THREADS produce a machine-diffable speedup table.
/// peak_rss_kb is the process high-water mark (VmHWM) at emit time and
/// allocs the cumulative global operator-new count (util/procstat.h) — the
/// two columns a perf regression shows up in before wall time moves.
/// No-op when the variable is unset; also echoed to stdout either way.
inline void emit_bench_json(const std::string& name, double wall_ms,
                            std::size_t vps, std::size_t targets) {
  const unsigned threads = util::thread_count();
  std::printf("[timing] %s: %.1f ms at %u thread(s), %zu VPs x %zu targets\n",
              name.c_str(), wall_ms, threads, vps, targets);
  const std::string path = util::env::string_or("GEOLOC_BENCH_JSON", "");
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "a")) {
    std::fprintf(f,
                 "{\"name\":\"%s\",\"wall_ms\":%.3f,\"threads\":%u,"
                 "\"vps\":%zu,\"targets\":%zu,\"peak_rss_kb\":%zu,"
                 "\"allocs\":%llu}\n",
                 name.c_str(), wall_ms, threads, vps, targets,
                 util::procstat::peak_rss_kb(),
                 static_cast<unsigned long long>(
                     util::procstat::alloc_count()));
    std::fclose(f);
  }
}

/// Append one free-form record to $GEOLOC_BENCH_JSON as a JSON line:
///   {"name":…,"threads":…,"<field>":<value>,…,"peak_rss_kb":…,"allocs":…}
/// for benches whose natural outputs are rates/latencies rather than the
/// wall_ms/vps/targets shape of emit_bench_json(). No-op when unset.
inline void emit_bench_json_fields(
    const std::string& name,
    std::initializer_list<std::pair<const char*, double>> fields) {
  const std::string path = util::env::string_or("GEOLOC_BENCH_JSON", "");
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "a")) {
    std::fprintf(f, "{\"name\":\"%s\",\"threads\":%u", name.c_str(),
                 util::thread_count());
    for (const auto& [key, value] : fields) {
      std::fprintf(f, ",\"%s\":%.6g", key, value);
    }
    std::fprintf(f, ",\"peak_rss_kb\":%zu,\"allocs\":%llu}\n",
                 util::procstat::peak_rss_kb(),
                 static_cast<unsigned long long>(
                     util::procstat::alloc_count()));
    std::fclose(f);
  }
}

/// Append a snapshot of the obs metrics registry (plus any recorded trace
/// spans) to $GEOLOC_METRICS_JSON, each line tagged {"bench":"<name>"} so
/// the records diff the same way GEOLOC_BENCH_JSON timing records do.
/// No-op when the variable is unset.
inline void emit_metrics_snapshot(const std::string& name) {
  if (obs::flush_metrics_json(name)) {
    std::printf("[metrics snapshot appended to $GEOLOC_METRICS_JSON as "
                "bench=%s]\n",
                name.c_str());
  }
}

/// Export a figure's raw CDF series as "<GEOLOC_EXPORT_DIR>/<name>.csv"
/// (columns: series,value). No-op unless GEOLOC_EXPORT_DIR is set.
inline void export_cdf(const std::string& name,
                       const std::vector<util::CdfSeries>& series) {
  auto csv = util::maybe_csv(name);
  if (!csv) return;
  csv->row({"series", "value"});
  for (const auto& s : series) {
    for (double v : s.samples) {
      csv->row({s.label, std::to_string(v)});
    }
  }
  std::printf("[exported %zu rows to $GEOLOC_EXPORT_DIR/%s.csv]\n",
              csv->rows_written() - 1, name.c_str());
}

}  // namespace geoloc::bench
