// Shared plumbing for the per-figure bench binaries.
//
// Every binary prints: a header naming the paper artefact it regenerates,
// the measured rows/series, and (where the paper uses a plot) an ASCII
// rendering of the figure. Numbers are expected to match the paper's
// *shape* — orderings, ratios, crossovers — not its absolute values (the
// substrate here is a simulator; see DESIGN.md and EXPERIMENTS.md).
//
// Environment knobs:
//   GEOLOC_SMALL=1      run on the miniature scenario (quick smoke)
//   GEOLOC_TRIALS=N     trial count for the randomized sweeps
//   GEOLOC_CACHE_DIR=…  where the RTT-matrix / campaign caches live
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "util/ascii_chart.h"
#include "util/csv.h"

namespace geoloc::bench {

inline bool small_mode() {
  const char* env = std::getenv("GEOLOC_SMALL");
  return env != nullptr && env[0] == '1';
}

/// The scenario every bench shares (paper scale unless GEOLOC_SMALL=1).
inline const scenario::Scenario& bench_scenario() {
  static const scenario::Scenario s = [] {
    auto cfg =
        small_mode() ? scenario::small_config() : scenario::paper_config();
    if (cfg.cache_dir.empty()) cfg.cache_dir = scenario::default_cache_dir();
    return scenario::Scenario(cfg);
  }();
  return s;
}

inline void print_header(const char* artefact, const char* description,
                         const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artefact, description);
  std::printf("Paper shape to reproduce: %s\n", paper_shape);
  if (small_mode()) {
    std::printf("[GEOLOC_SMALL=1: miniature scenario — numbers are a smoke "
                "run, not the reproduction]\n");
  }
  std::printf("==============================================================\n");
}

/// Export a figure's raw CDF series as "<GEOLOC_EXPORT_DIR>/<name>.csv"
/// (columns: series,value). No-op unless GEOLOC_EXPORT_DIR is set.
inline void export_cdf(const std::string& name,
                       const std::vector<util::CdfSeries>& series) {
  auto csv = util::maybe_csv(name);
  if (!csv) return;
  csv->row({"series", "value"});
  for (const auto& s : series) {
    for (double v : s.samples) {
      csv->row({s.label, std::to_string(v)});
    }
  }
  std::printf("[exported %zu rows to $GEOLOC_EXPORT_DIR/%s.csv]\n",
              csv->rows_written() - 1, name.c_str());
}

}  // namespace geoloc::bench
