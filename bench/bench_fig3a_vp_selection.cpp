// Figure 3a of the IMC'23 paper: the original million-scale VP selection —
// CBG error when using the 1 / 3 / 10 VPs with the lowest RTT to the
// target's /24 representatives, versus all VPs.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 3a", "original VP selection (representatives of the /24)",
      "below 40 km the single closest VP beats the alternatives (62% of "
      "targets within 10 km vs 52% with all VPs); city level is the floor");

  const auto& s = bench::bench_scenario();
  const int ks[] = {1, 3, 10, 0};  // 0 = all VPs
  const auto sweep = eval::run_rep_selection(s, ks);

  util::TextTable t{"error per selection size"};
  t.header({"Selection", "targets", "median (km)", "<=10 km", "<=40 km"});
  std::vector<util::CdfSeries> series;
  for (const auto& r : sweep) {
    const std::string label =
        r.k == 0 ? "All VPs" : std::to_string(r.k) + " closest VP (RTT)";
    t.row({label, std::to_string(r.errors_km.size()),
           util::TextTable::num(util::median(r.errors_km), 1),
           util::TextTable::pct(util::fraction_below(r.errors_km, 10.0)),
           util::TextTable::pct(eval::city_level_fraction(r.errors_km))});
    series.push_back({label, r.errors_km});
  }
  std::printf("%s\n", t.render().c_str());

  bench::export_cdf("fig3a_vp_selection", series);

  util::ChartOptions opt;
  opt.x_label = "geolocation error (km)";
  std::printf("%s\n", util::render_cdf_chart(series, opt).c_str());
  return 0;
}
