// Companion comparison (paper Section 5.1 footnote: "All the results are
// given for CBG, but results with shortest ping are similar"): CBG vs
// Shortest Ping vs the RIPE-IPMap-style single-radius technique on the
// same all-VP campaign — including single-radius's coverage/precision
// trade-off, the reason IPMap covers only a fraction of the topology.
#include <cstdio>

#include "bench_common.h"
#include "core/million_scale.h"
#include "core/shortest_ping.h"
#include "core/single_radius.h"
#include "eval/metrics.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Companion: CBG vs Shortest Ping vs single-radius",
      "the three classic latency techniques on the same campaign",
      "CBG ~ Shortest Ping (the paper's footnote); single-radius is more "
      "precise but abstains on the hard targets");

  const auto& s = bench::bench_scenario();
  const core::MillionScale tools(s);
  std::vector<std::size_t> rows(s.vps().size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;

  std::vector<double> cbg, sp, sr;
  std::size_t sr_abstained = 0;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const auto obs = tools.observations(rows, col);
    const auto c = core::cbg_geolocate(obs);
    if (c.ok) cbg.push_back(tools.error_km(c.estimate, col));
    const auto p = core::shortest_ping(obs);
    if (p) sp.push_back(tools.error_km(p->estimate, col));
    const auto r = core::single_radius(obs);
    if (r) {
      sr.push_back(tools.error_km(r->estimate, col));
    } else {
      ++sr_abstained;
    }
  }

  util::TextTable t{"technique comparison (all VPs)"};
  t.header({"Technique", "answered", "median (km)", "<=40 km of answered"});
  auto emit = [&](const char* name, const std::vector<double>& e) {
    t.row({name, std::to_string(e.size()),
           util::TextTable::num(util::median(e), 1),
           util::TextTable::pct(eval::city_level_fraction(e))});
  };
  emit("CBG", cbg);
  emit("Shortest Ping", sp);
  emit("Single-radius (10 ms)", sr);
  std::printf("%s", t.render().c_str());
  std::printf("single-radius abstentions: %zu of %zu targets (IPMap-style "
              "coverage trade-off)\n\n",
              sr_abstained, s.targets().size());

  util::ChartOptions opt;
  opt.x_label = "geolocation error (km)";
  std::printf("%s\n", util::render_cdf_chart({{"CBG", cbg},
                                              {"Shortest Ping", sp},
                                              {"Single-radius", sr}},
                                             opt)
                          .c_str());
  return 0;
}
