// Serving-path throughput: lookups/sec of the flattened sorted-prefix-array
// LPM (net::FlatLpm, what publish::Snapshot serves from) against the
// pointer-chasing net::PrefixTable trie it replaces, single- and
// multi-threaded, plus the full GeoService path under a concurrent
// hot-swap writer.
//
// Acceptance shape (ISSUE/EXPERIMENTS): the flat array is >= 5x the trie
// single-threaded, and GeoService read throughput scales with reader
// threads because the snapshot swap is RCU-style (readers never lock).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/flat_lpm.h"
#include "net/prefix_table.h"
#include "publish/snapshot.h"
#include "serve/geo_service.h"
#include "util/rng.h"

namespace {

using namespace geoloc;

struct Workload {
  std::vector<std::pair<net::Prefix, std::uint32_t>> prefixes;
  std::vector<net::IPv4Address> addresses;  ///< ~75% hits, ~25% uniform
};

Workload make_workload(std::size_t prefix_count, std::size_t address_count,
                       std::uint64_t seed) {
  util::Pcg32 gen(seed);
  Workload w;
  w.prefixes.reserve(prefix_count);
  for (std::size_t i = 0; i < prefix_count; ++i) {
    // Routing-table-like length mix: mostly /24s, some covering prefixes.
    const int len = gen.chance(0.6)    ? 24
                    : gen.chance(0.5)  ? static_cast<int>(16 + gen.bounded(8))
                                       : static_cast<int>(8 + gen.bounded(8));
    w.prefixes.emplace_back(
        net::Prefix{net::IPv4Address{gen() & net::Prefix::mask(len)}, len},
        static_cast<std::uint32_t>(i));
  }
  w.addresses.reserve(address_count);
  for (std::size_t i = 0; i < address_count; ++i) {
    if (gen.chance(0.75)) {
      const auto& p = w.prefixes[gen.bounded(
          static_cast<std::uint32_t>(w.prefixes.size()))];
      const std::uint64_t size = 1ULL << (32 - p.first.length());
      w.addresses.emplace_back(static_cast<std::uint32_t>(
          p.first.network().value() + gen.index(static_cast<std::size_t>(size))));
    } else {
      w.addresses.emplace_back(gen());
    }
  }
  return w;
}

/// Run `fn(addresses)` repeatedly for ~min_time and return lookups/sec.
template <typename Fn>
double measure(const std::vector<net::IPv4Address>& addresses, Fn&& fn,
               double min_time_s = 0.4) {
  using clock = std::chrono::steady_clock;
  // Warm-up pass (page in the structures).
  fn(addresses);
  std::uint64_t lookups = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    fn(addresses);
    lookups += addresses.size();
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_time_s);
  return static_cast<double>(lookups) / elapsed;
}

/// Aggregate lookups/sec over `threads` readers running `fn` concurrently.
template <typename Fn>
double measure_threads(int threads,
                       const std::vector<net::IPv4Address>& addresses,
                       Fn&& fn, double min_time_s = 0.4) {
  std::atomic<std::uint64_t> total{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      std::uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        fn(addresses);
        mine += addresses.size();
      }
      total.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(min_time_s * 1000)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  return static_cast<double>(total.load()) / elapsed;
}

void print_row(const char* name, double rate, double baseline) {
  std::printf("  %-34s %12.2f Mlookups/s   %6.2fx vs trie\n", name,
              rate / 1e6, rate / baseline);
}

}  // namespace

int main() {
  bench::print_header(
      "bench_serve_lookup_throughput",
      "serving-path LPM throughput: flat sorted-prefix array vs trie",
      "flat array >= 5x trie single-thread; RCU reads scale with threads");

  const bool small = bench::small_mode();
  const std::size_t kPrefixes = small ? 10'000 : 100'000;
  const std::size_t kAddresses = small ? 20'000 : 200'000;
  const Workload w = make_workload(kPrefixes, kAddresses, /*seed=*/20230415);

  net::PrefixTable<std::uint32_t> trie;
  for (const auto& [p, v] : w.prefixes) trie.insert(p, v);
  const auto flat = net::FlatLpm<std::uint32_t>::build(w.prefixes);

  publish::SnapshotBuilder builder;
  for (const auto& [p, v] : w.prefixes) {
    publish::Record r;
    r.prefix = p;
    r.location = {static_cast<double>(v % 90), static_cast<double>(v % 180)};
    r.provenance = "bench";
    builder.add(std::move(r));
  }
  const auto snapshot = publish::Snapshot::from_bytes(
      builder.build(publish::SnapshotMeta{.dataset_version = 1,
                                          .source = "bench workload"}));
  if (!snapshot) {
    std::fprintf(stderr, "snapshot build failed\n");
    return 1;
  }
  serve::GeoService service(snapshot);

  std::printf("workload: %zu prefixes (%zu flat intervals), %zu addresses "
              "(~75%% hits); host: %u hardware thread(s)\n",
              flat.size(), flat.interval_count(), w.addresses.size(),
              std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() <= 2) {
    std::printf("[few-core host: the scaling rows can only show the absence "
                "of a lock convoy\n — aggregate throughput holding steady — "
                "not a linear speedup]\n");
  }
  std::printf("\n");

  const auto trie_pass = [&](const std::vector<net::IPv4Address>& a) {
    for (const auto addr : a) benchmark::DoNotOptimize(trie.lookup(addr));
  };
  const auto flat_pass = [&](const std::vector<net::IPv4Address>& a) {
    for (const auto addr : a) benchmark::DoNotOptimize(flat.lookup(addr));
  };
  const auto snap_pass = [&](const std::vector<net::IPv4Address>& a) {
    for (const auto addr : a) benchmark::DoNotOptimize(snapshot->find(addr));
  };
  const auto service_pass = [&](const std::vector<net::IPv4Address>& a) {
    for (const auto addr : a) {
      benchmark::DoNotOptimize(service.lookup(addr, /*now_s=*/0.0));
    }
  };

  std::printf("single thread:\n");
  const double trie_rate = measure(w.addresses, trie_pass);
  print_row("PrefixTable trie (baseline)", trie_rate, trie_rate);
  const double flat_rate = measure(w.addresses, flat_pass);
  print_row("FlatLpm", flat_rate, trie_rate);

  std::vector<const net::FlatLpm<std::uint32_t>::Slot*> batch_out(
      w.addresses.size());
  const double batch_rate = measure(
      w.addresses, [&](const std::vector<net::IPv4Address>& a) {
        flat.lookup_batch(a, batch_out);
        benchmark::DoNotOptimize(batch_out.data());
      });
  print_row("FlatLpm batch", batch_rate, trie_rate);
  const double snap_rate = measure(w.addresses, snap_pass);
  print_row("Snapshot::find", snap_rate, trie_rate);
  const double service_rate = measure(w.addresses, service_pass);
  print_row("GeoService::lookup", service_rate, trie_rate);

  std::printf("\nGeoService read scaling (no writer):\n");
  double one_thread_rate = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const double rate = measure_threads(threads, w.addresses, service_pass);
    if (threads == 1) one_thread_rate = rate;
    std::printf("  %d thread(s): %10.2f Mlookups/s  (%.2fx of 1 thread)\n",
                threads, rate / 1e6, rate / one_thread_rate);
    bench::emit_bench_json_fields(
        "serve_lookup_throughput/scaling",
        {{"reader_threads", static_cast<double>(threads)},
         {"lookups_per_s", rate}});
  }

  std::printf("\nGeoService reads with a hot-swap writer (4 readers):\n");
  {
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      // Alternate between two identical-content snapshots as fast as the
      // readers will let us — worst-case swap pressure.
      auto a = snapshot;
      auto b = publish::Snapshot::from_bytes(builder.build(
          publish::SnapshotMeta{.dataset_version = 2, .source = "bench"}));
      std::uint64_t swaps = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        service.publish(++swaps % 2 == 0 ? a : b);
      }
    });
    const double rate = measure_threads(4, w.addresses, service_pass);
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    std::printf("  4 readers + writer: %10.2f Mlookups/s\n", rate / 1e6);
    bench::emit_bench_json_fields("serve_lookup_throughput/hot_swap",
                                  {{"reader_threads", 4.0},
                                   {"lookups_per_s", rate}});
  }

  const double speedup = flat_rate / trie_rate;
  std::printf("\nflat vs trie speedup: %.2fx — %s (acceptance: >= 5x)\n",
              speedup, speedup >= 5.0 ? "PASS" : "FAIL");
  bench::emit_bench_json_fields("serve_lookup_throughput/single_thread",
                                {{"trie_lookups_per_s", trie_rate},
                                 {"flat_lookups_per_s", flat_rate},
                                 {"batch_lookups_per_s", batch_rate},
                                 {"snapshot_lookups_per_s", snap_rate},
                                 {"service_lookups_per_s", service_rate},
                                 {"flat_vs_trie_speedup", speedup}});
  bench::emit_metrics_snapshot("serve_lookup_throughput");
  return speedup >= 5.0 ? 0 : 1;
}
