// Figure 2c of the IMC'23 paper: per-target CBG error with all VPs versus
// after removing every VP closer than 40 / 100 / 500 / 1000 km to the
// target — the experiment behind "the closest VPs maximise accuracy".
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 2c", "error after removing close VPs",
      "removing <40 km VPs: median 8 km -> ~120 km, city-level 73% -> 6%");

  const auto& s = bench::bench_scenario();
  const double radii[] = {0.0, 40.0, 100.0, 500.0, 1000.0};
  const auto sweep = eval::run_remove_close_vps(s, radii);

  util::TextTable t{"per-target error vs exclusion radius"};
  t.header({"Excluded", "targets", "median (km)", "city-level (<=40km)",
            "<=100 km"});
  std::vector<util::CdfSeries> series;
  for (const auto& e : sweep) {
    const std::string label =
        e.exclusion_km == 0.0
            ? "All VPs"
            : "VPs > " + util::TextTable::num(e.exclusion_km, 0) + " km";
    t.row({label, std::to_string(e.errors_km.size()),
           util::TextTable::num(util::median(e.errors_km), 1),
           util::TextTable::pct(eval::city_level_fraction(e.errors_km)),
           util::TextTable::pct(util::fraction_below(e.errors_km, 100.0))});
    series.push_back({label, e.errors_km});
  }
  std::printf("%s\n", t.render().c_str());

  bench::export_cdf("fig2c_remove_close_vps", series);

  util::ChartOptions opt;
  opt.x_label = "geolocation error (km)";
  std::printf("%s\n", util::render_cdf_chart(series, opt).c_str());
  return 0;
}
