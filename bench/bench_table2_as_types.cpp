// Table 2 of the IMC'23 paper: AS-category distribution (CAIDA AS
// classification) of the anchors, probes, and combined VP set, plus the
// ASdb sector observation of Section 4.4.1 (72% Computer and Information
// Technology).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dataset/catalog.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Table 2", "AS types of the RIPE Atlas probes and anchors",
      "anchors: ~32% content / 29% access / 27% transit; probes: ~75% access");

  const auto& s = bench::bench_scenario();
  const auto& world = s.world();

  const auto anchors = s.anchor_sanitisation().kept;
  const auto probes = s.probe_sanitisation().kept;
  std::vector<sim::HostId> combined = anchors;
  combined.insert(combined.end(), probes.begin(), probes.end());

  auto anchor_counts = dataset::count_by_as_category(world, anchors);
  auto probe_counts = dataset::count_by_as_category(world, probes);
  auto combined_counts = dataset::count_by_as_category(world, combined);

  util::TextTable t{"AS category per dataset (count and share)"};
  std::vector<std::string> header{"Dataset"};
  for (sim::AsCategory c : sim::all_as_categories()) {
    header.emplace_back(to_string(c));
  }
  t.header(header);
  auto emit = [&](const char* name,
                  std::unordered_map<sim::AsCategory, int>& counts,
                  std::size_t total) {
    std::vector<std::string> row{name};
    for (sim::AsCategory c : sim::all_as_categories()) {
      const int n = counts[c];
      row.push_back(std::to_string(n) + " (" +
                    util::TextTable::pct(static_cast<double>(n) /
                                         static_cast<double>(total)) +
                    ")");
    }
    t.row(row);
  };
  emit("Anchors", anchor_counts, anchors.size());
  emit("Probes", probe_counts, probes.size());
  emit("Probes + Anchors", combined_counts, combined.size());
  std::printf("%s\n", t.render().c_str());

  // ASdb sector view of the targets (Section 4.4.1).
  auto sectors = dataset::count_by_as_sector(world, anchors);
  int total = 0;
  for (const auto& [sector, n] : sectors) total += n;
  util::TextTable st{"ASdb sector of the targets (top entries)"};
  st.header({"Sector", "Targets", "Share"});
  std::vector<std::pair<int, int>> sorted(sectors.begin(), sectors.end());
  std::sort(sorted.begin(), sorted.end(),
            [](auto& a, auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
    const auto names = sim::as_sector_names();
    st.row({std::string(names[static_cast<std::size_t>(sorted[i].first)]),
            std::to_string(sorted[i].second),
            util::TextTable::pct(static_cast<double>(sorted[i].second) /
                                 total)});
  }
  std::printf("%s(paper: 72%% Computer and Information Technology, 5%% R&E, "
              "rest < 5%% each)\n",
              st.render().c_str());
  return 0;
}
