// Figure 6c of the IMC'23 paper: time to geolocate a target with the
// street-level technique under the replication's best-effort setup
// (simulated cost model: Atlas API rounds, rate-limited reverse geocoding,
// website tests). Paper: median 1,238 s (~20 min), versus the 1-2 s the
// 2011 authors projected.
#include <cstdio>

#include "bench_common.h"
#include "eval/street_campaign.h"
#include "util/ascii_chart.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Figure 6c", "time to geolocate a target (street level)",
      "median ~1,238 s (20 minutes), dominated by geocoding + measurement "
      "rounds — nowhere near the theoretical 1-2 s");

  const auto& s = bench::bench_scenario();
  const auto& camp = eval::street_campaign(s);

  std::vector<double> seconds, geocode, webtests;
  for (const auto& r : camp.records) {
    seconds.push_back(r.elapsed_seconds);
    geocode.push_back(r.geocode_queries);
    webtests.push_back(r.websites_tested);
  }

  util::TextTable t{"per-target cost"};
  t.header({"Quantity", "median", "p90"});
  t.row({"time to geolocate (s)", util::TextTable::num(util::median(seconds), 0),
         util::TextTable::num(util::percentile(seconds, 90), 0)});
  t.row({"reverse-geocode queries",
         util::TextTable::num(util::median(geocode), 0),
         util::TextTable::num(util::percentile(geocode, 90), 0)});
  t.row({"website locality tests",
         util::TextTable::num(util::median(webtests), 0),
         util::TextTable::num(util::percentile(webtests, 90), 0)});
  std::printf("%s", t.render().c_str());
  std::printf("(paper: median 1,238 s; 878 geocode queries per target; "
              "2.58M website tests in total)\n\n");

  util::ChartOptions opt;
  opt.log_x = false;
  opt.x_label = "time to geolocate a target (sec)";
  std::printf("%s\n",
              util::render_cdf_chart({{"targets", seconds}}, opt).c_str());
  return 0;
}
