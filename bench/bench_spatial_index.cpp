// Spatial interval-index microbenchmark: build throughput, point-lookup
// and radius-query latency (p50/p99) against the linear scans the index
// replaced, at 10k / 100k / 1M synthetic POIs.
//
// Acceptance shape (ISSUE/EXPERIMENTS): radius queries at 100k POIs are
// >= 10x faster than the linear scan at p50, and index query latency grows
// sub-linearly from 100k to 1M (the scan grows ~10x, the index does not —
// covering size is bounded by GEOLOC_SPATIAL_MAX_CELLS and per-cell walks
// touch only resident candidates).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "geo/geodesy.h"
#include "spatial/cell.h"
#include "spatial/interval_index.h"
#include "util/rng.h"

namespace {

using namespace geoloc;
using Clock = std::chrono::steady_clock;

/// City-clustered POIs: ~90% cluster around a few hundred hotspots (the
/// web-ecosystem shape), 10% uniform background. Returns the POIs plus the
/// hotspot centres (the natural query points).
struct Workload {
  std::vector<geo::GeoPoint> pois;
  std::vector<geo::GeoPoint> hotspots;
};

Workload make_workload(std::size_t poi_count, std::uint64_t seed) {
  util::Pcg32 gen(seed);
  Workload w;
  const std::size_t nhot = std::max<std::size_t>(32, poi_count / 2000);
  w.hotspots.reserve(nhot);
  for (std::size_t i = 0; i < nhot; ++i) {
    w.hotspots.push_back(
        {gen.uniform(-60.0, 70.0), gen.uniform(-180.0, 180.0)});
  }
  w.pois.reserve(poi_count);
  for (std::size_t i = 0; i < poi_count; ++i) {
    if (gen.chance(0.9)) {
      const geo::GeoPoint& c = w.hotspots[gen.index(w.hotspots.size())];
      w.pois.push_back(geo::destination(c, gen.uniform(0.0, 360.0),
                                        gen.uniform(0.0, 30.0)));
    } else {
      w.pois.push_back(
          {gen.uniform(-90.0, 90.0), gen.uniform(-180.0, 180.0)});
    }
  }
  return w;
}

struct Percentiles {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Percentiles percentiles(std::vector<double>& samples_us) {
  std::sort(samples_us.begin(), samples_us.end());
  const auto at = [&](double q) {
    return samples_us[std::min(samples_us.size() - 1,
                               static_cast<std::size_t>(
                                   q * static_cast<double>(samples_us.size())))];
  };
  return {at(0.50), at(0.99)};
}

/// Per-query latency samples of `fn` over `queries` points.
template <typename Fn>
Percentiles measure(const std::vector<geo::GeoPoint>& queries, Fn&& fn) {
  std::vector<double> us;
  us.reserve(queries.size());
  for (const geo::GeoPoint& q : queries) {
    const auto t0 = Clock::now();
    benchmark::DoNotOptimize(fn(q));
    const auto t1 = Clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return percentiles(us);
}

}  // namespace

int main() {
  bench::print_header(
      "bench_spatial_index",
      "interval-index build + query latency vs the legacy linear scans",
      "radius queries >= 10x the scan at 100k POIs; index latency grows "
      "sub-linearly to 1M while the scan grows ~10x");

  constexpr double kRadiusKm = 50.0;
  double index_p50_100k = 0.0;
  double index_p50_1m = 0.0;
  double scan_p50_100k = 0.0;
  double speedup_100k = 0.0;

  for (const std::size_t pois : {std::size_t{10'000}, std::size_t{100'000},
                                 std::size_t{1'000'000}}) {
    const Workload w = make_workload(pois, /*seed=*/pois);

    // -- build throughput ---------------------------------------------------
    const auto b0 = Clock::now();
    const spatial::IntervalIndex index = spatial::IntervalIndex::build(w.pois);
    const double build_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - b0).count();
    std::printf("\n%zu POIs: build %.1f ms (%.2f M items/s), %zu tokens\n",
                pois, build_ms,
                static_cast<double>(pois) / build_ms / 1e3,
                index.token_count());

    // Query mix: hotspot centres (dense) plus uniform points (sparse).
    util::Pcg32 qgen(pois + 1);
    std::vector<geo::GeoPoint> queries;
    const std::size_t nq = pois >= 1'000'000 ? 400 : 2'000;
    for (std::size_t i = 0; i < nq; ++i) {
      if (qgen.chance(0.7)) {
        const geo::GeoPoint& c = w.hotspots[qgen.index(w.hotspots.size())];
        queries.push_back(geo::destination(c, qgen.uniform(0.0, 360.0),
                                           qgen.uniform(0.0, 20.0)));
      } else {
        queries.push_back(
            {qgen.uniform(-90.0, 90.0), qgen.uniform(-180.0, 180.0)});
      }
    }

    // -- point lookup: payloads at the query's leaf token -------------------
    const Percentiles pt = measure(queries, [&](const geo::GeoPoint& q) {
      return index.at_token(spatial::CellId::leaf_token(q)).size();
    });
    const Percentiles pt_scan = measure(queries, [&](const geo::GeoPoint& q) {
      const std::uint64_t token = spatial::CellId::leaf_token(q);
      std::size_t hits = 0;
      for (const geo::GeoPoint& p : w.pois) {
        if (spatial::CellId::leaf_token(p) == token) ++hits;
      }
      return hits;
    });
    std::printf("  point lookup   index p50 %8.2f us  p99 %8.2f us   "
                "scan p50 %10.2f us  (%.0fx)\n",
                pt.p50_us, pt.p99_us, pt_scan.p50_us,
                pt_scan.p50_us / std::max(pt.p50_us, 1e-3));

    // -- radius query: exact POIs within kRadiusKm --------------------------
    const Percentiles rq = measure(queries, [&](const geo::GeoPoint& q) {
      std::size_t hits = 0;
      for (const std::uint32_t id :
           index.candidates_in_disk(geo::Disk{q, kRadiusKm})) {
        if (geo::distance_km(w.pois[id], q) <= kRadiusKm) ++hits;
      }
      return hits;
    });
    const Percentiles rq_scan = measure(queries, [&](const geo::GeoPoint& q) {
      std::size_t hits = 0;
      for (const geo::GeoPoint& p : w.pois) {
        if (geo::distance_km(p, q) <= kRadiusKm) ++hits;
      }
      return hits;
    });
    const double speedup = rq_scan.p50_us / std::max(rq.p50_us, 1e-3);
    std::printf("  radius %.0f km  index p50 %8.2f us  p99 %8.2f us   "
                "scan p50 %10.2f us  (%.0fx)\n",
                kRadiusKm, rq.p50_us, rq.p99_us, rq_scan.p50_us, speedup);

    if (pois == 100'000) {
      index_p50_100k = rq.p50_us;
      scan_p50_100k = rq_scan.p50_us;
      speedup_100k = speedup;
    }
    if (pois == 1'000'000) index_p50_1m = rq.p50_us;

    bench::emit_bench_json_fields(
        "spatial_index/scale",
        {{"pois", static_cast<double>(pois)},
         {"build_ms", build_ms},
         {"point_p50_us", pt.p50_us},
         {"point_p99_us", pt.p99_us},
         {"point_scan_p50_us", pt_scan.p50_us},
         {"radius_p50_us", rq.p50_us},
         {"radius_p99_us", rq.p99_us},
         {"radius_scan_p50_us", rq_scan.p50_us},
         {"radius_speedup_p50", speedup}});
  }

  const double growth_100k_to_1m = index_p50_1m / std::max(index_p50_100k, 1e-3);
  std::printf("\nacceptance: radius speedup at 100k POIs %.0fx (need >= 10x); "
              "index p50 grew %.2fx from 100k to 1M (scan grows ~10x)\n",
              speedup_100k, growth_100k_to_1m);
  bench::emit_bench_json_fields(
      "spatial_index/acceptance",
      {{"radius_speedup_100k", speedup_100k},
       {"index_growth_100k_to_1m", growth_100k_to_1m},
       {"scan_p50_100k_us", scan_p50_100k}});
  bench::emit_metrics_snapshot("spatial_index");

  const bool ok = speedup_100k >= 10.0 && growth_100k_to_1m < 5.0;
  std::printf("%s\n", ok ? "ACCEPTANCE OK" : "ACCEPTANCE NOT MET");
  return ok ? 0 : 1;
}
