// Ablation (DESIGN.md §5.2): the CBG disk budget — only the `max_disks`
// smallest constraint disks are intersected. This bench shows the accuracy
// is insensitive to the budget beyond ~16 disks while the cost keeps
// growing, justifying the default of 24.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/million_scale.h"
#include "eval/metrics.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;
  bench::print_header(
      "Ablation: CBG disk budget",
      "accuracy and runtime vs the number of smallest disks intersected",
      "accuracy saturates by ~16 disks; larger budgets only cost time");

  const auto& s = bench::bench_scenario();
  const core::MillionScale ms(s);
  std::vector<std::size_t> rows(s.vps().size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;

  util::TextTable t{"disk budget sweep (all VPs)"};
  t.header({"max_disks", "median error (km)", "<=40 km", "ms per target"});
  for (int budget : {4, 8, 16, 24, 48, 96}) {
    core::CbgConfig cfg;
    cfg.max_disks = budget;
    std::vector<double> errors;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t col = 0; col < s.targets().size(); ++col) {
      const auto r = ms.geolocate(rows, col, cfg);
      if (r.ok) errors.push_back(ms.error_km(r.estimate, col));
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(s.targets().size());
    t.row({std::to_string(budget),
           util::TextTable::num(util::median(errors), 1),
           util::TextTable::pct(eval::city_level_fraction(errors)),
           util::TextTable::num(elapsed_ms, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
