// Compare the simulated commercial geolocation databases (paper Section 6)
// against ground truth and latency-based techniques for a handful of
// targets, showing the per-entry provenance that makes a database
// "explainable" — the property the paper asks vendors for.
//
//   $ ./build/examples/geodb_compare
#include <cstdio>

#include "core/geodb.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "scenario/presets.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace geoloc;

  auto config = scenario::small_config();
  config.cache_dir = "";
  const scenario::Scenario scenario(config);

  const auto ipinfo =
      core::GeoDatabase::build(scenario, core::GeoDbProfile::IPinfo);
  const auto maxmind =
      core::GeoDatabase::build(scenario, core::GeoDbProfile::MaxMindFree);

  // Per-target view for the first few targets.
  util::TextTable t{"per-target lookups"};
  t.header({"Target", "truth", "IPinfo (err km, source)",
            "MaxMind free (err km)"});
  for (std::size_t col = 0; col < 8; ++col) {
    const sim::Host& h =
        scenario.world().host(scenario.targets()[col]);
    const auto ip = ipinfo.lookup(h.addr);
    const auto mm = maxmind.lookup(h.addr);
    t.row({h.addr.to_string(), geo::to_string(h.true_location),
           ip ? util::TextTable::num(
                    geo::distance_km(ip->location, h.true_location), 1) +
                    " (" + std::string(ip->source) + ")"
              : "miss",
           mm ? util::TextTable::num(
                    geo::distance_km(mm->location, h.true_location), 1)
              : "miss"});
  }
  std::printf("%s\n", t.render().c_str());

  // Aggregate, next to CBG — the Figure 7 comparison in miniature.
  auto errors_of = [&](const core::GeoDatabase& db) {
    std::vector<double> errors;
    for (sim::HostId target : scenario.targets()) {
      const auto entry = db.lookup(scenario.world().host(target).addr);
      if (!entry) continue;
      errors.push_back(geo::distance_km(
          entry->location, scenario.world().host(target).true_location));
    }
    return errors;
  };
  std::vector<double> cbg;
  for (double e : eval::all_vp_errors(scenario)) {
    if (e >= 0) cbg.push_back(e);
  }

  util::TextTable agg{"city-level accuracy (Figure 7 in miniature)"};
  agg.header({"Source", "median (km)", "<=40 km"});
  auto emit = [&](const char* name, const std::vector<double>& e) {
    agg.row({name, util::TextTable::num(util::median(e), 1),
             util::TextTable::pct(eval::city_level_fraction(e))});
  };
  emit("CBG, all VPs", cbg);
  emit("IPinfo (simulated)", errors_of(ipinfo));
  emit("MaxMind free (simulated)", errors_of(maxmind));
  std::printf("%s", agg.render().c_str());
  std::printf("\nIPinfo-like entries are explainable: each lookup names its "
              "source (latency / dns / whois / geofeed),\nwhich is exactly "
              "what the paper argues commercial databases should expose.\n");
  return 0;
}
