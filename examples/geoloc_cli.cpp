// A small command-line front end over the library — the fifth example and
// the closest thing to a day-to-day tool:
//
//   geoloc_cli world                       scenario summary
//   geoloc_cli sanitize                    Section 4.3 report
//   geoloc_cli geolocate <idx> [technique] one target, one technique
//   geoloc_cli lookup <ipv4>               simulated geo-database lookups
//   geoloc_cli export-targets <file.csv>   ground truth as CSV
//
// Techniques: cbg (default), shortest-ping, single-radius, two-step, street.
// Add --paper to run at paper scale (723 targets; slower, uses the cache).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/geodb.h"
#include "core/million_scale.h"
#include "core/shortest_ping.h"
#include "core/single_radius.h"
#include "core/street_level.h"
#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "scenario/presets.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace geoloc;

int cmd_world(const scenario::Scenario& s) {
  util::TextTable t{"scenario"};
  t.header({"Quantity", "Value"});
  t.row({"places", std::to_string(s.world().places().size())});
  t.row({"hosts", std::to_string(s.world().host_count())});
  t.row({"targets (sanitised anchors)", std::to_string(s.targets().size())});
  t.row({"VPs (anchors + probes)", std::to_string(s.vps().size())});
  t.row({"websites", s.has_web() ? std::to_string(s.web().total_count())
                                 : std::string("(not built)")});
  t.row({"passing landmarks",
         s.has_web() ? std::to_string(s.web().passing_count())
                     : std::string("(not built)")});
  t.row({"poorly connected cities",
         std::to_string(s.world().poorly_connected_cities().size())});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_sanitize(const scenario::Scenario& s) {
  const auto& a = s.anchor_sanitisation();
  const auto& p = s.probe_sanitisation();
  std::printf("anchors: %zu generated, %zu removed (%llu violating pairs)\n",
              s.catalog().anchors.size(), a.removed.size(),
              static_cast<unsigned long long>(a.violating_pairs));
  std::printf("probes:  %zu generated, %zu removed (%llu violating pairs)\n",
              s.catalog().probes.size(), p.removed.size(),
              static_cast<unsigned long long>(p.violating_pairs));
  for (sim::HostId id : a.removed) {
    const auto& h = s.world().host(id);
    std::printf("  removed anchor %s: reported %s, actually %s (%.0f km "
                "off)\n",
                h.addr.to_string().c_str(),
                geo::to_string(h.reported_location).c_str(),
                geo::to_string(h.true_location).c_str(),
                geo::distance_km(h.reported_location, h.true_location));
  }
  return 0;
}

int cmd_geolocate(const scenario::Scenario& s, std::size_t idx,
                  const std::string& technique) {
  if (idx >= s.targets().size()) {
    std::fprintf(stderr, "target index out of range (have %zu)\n",
                 s.targets().size());
    return 1;
  }
  const core::MillionScale tools(s);
  const sim::Host& target = s.world().host(s.targets()[idx]);
  std::printf("target #%zu %s in %s, truth %s\n", idx,
              target.addr.to_string().c_str(),
              s.world().place(target.place).name.c_str(),
              geo::to_string(target.true_location).c_str());

  geo::GeoPoint estimate;
  bool have = false;
  if (technique == "cbg" || technique == "shortest-ping" ||
      technique == "single-radius") {
    std::vector<std::size_t> rows(s.vps().size());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    const auto obs = tools.observations(rows, idx);
    if (technique == "cbg") {
      const auto r = core::cbg_geolocate(obs);
      have = r.ok;
      estimate = r.estimate;
    } else if (technique == "shortest-ping") {
      const auto r = core::shortest_ping(obs);
      have = r.has_value();
      if (r) estimate = r->estimate;
    } else {
      const auto r = core::single_radius(obs);
      have = r.has_value();
      if (r) {
        estimate = r->estimate;
      } else {
        std::printf("single-radius abstains (no VP under the RTT budget)\n");
        return 0;
      }
    }
  } else if (technique == "two-step") {
    const core::TwoStepSelector selector(
        s, core::greedy_coverage_rows(s, 100));
    const auto o = selector.run(idx);
    have = o.ok;
    estimate = o.estimate;
    if (o.ok) {
      std::printf("two-step: %llu pings (step1 %llu, step2 %llu)\n",
                  static_cast<unsigned long long>(
                      o.step1_pings + o.step2_pings + o.final_pings),
                  static_cast<unsigned long long>(o.step1_pings),
                  static_cast<unsigned long long>(o.step2_pings));
    }
  } else if (technique == "street") {
    if (!s.has_web()) {
      std::fprintf(stderr, "street-level needs the web ecosystem\n");
      return 1;
    }
    const core::StreetLevel street(s);
    const auto r = street.geolocate(idx);
    have = r.ok;
    estimate = r.estimate;
    if (r.ok) {
      std::printf("street level: tier %d, %llu traceroutes, %.0f simulated "
                  "seconds%s\n",
                  r.tier_reached,
                  static_cast<unsigned long long>(r.traceroutes),
                  r.elapsed_seconds,
                  r.fell_back_to_cbg ? " (CBG fallback)" : "");
    }
  } else {
    std::fprintf(stderr,
                 "unknown technique '%s' (cbg | shortest-ping | "
                 "single-radius | two-step | street)\n",
                 technique.c_str());
    return 1;
  }

  if (!have) {
    std::printf("%s produced no estimate\n", technique.c_str());
    return 0;
  }
  std::printf("%s -> %s (error %.1f km)\n", technique.c_str(),
              geo::to_string(estimate).c_str(),
              eval::error_km(s, idx, estimate));
  return 0;
}

int cmd_lookup(const scenario::Scenario& s, const std::string& text) {
  const auto addr = net::IPv4Address::parse(text);
  if (!addr) {
    std::fprintf(stderr, "not an IPv4 address: %s\n", text.c_str());
    return 1;
  }
  for (const auto profile :
       {core::GeoDbProfile::IPinfo, core::GeoDbProfile::MaxMindFree}) {
    const auto db = core::GeoDatabase::build(s, profile);
    const auto entry = db.lookup(*addr);
    if (entry) {
      std::printf("%-14s -> %s (source: %s)\n",
                  std::string(to_string(profile)).c_str(),
                  geo::to_string(entry->location).c_str(),
                  std::string(entry->source).c_str());
    } else {
      std::printf("%-14s -> no entry\n",
                  std::string(to_string(profile)).c_str());
    }
  }
  if (const auto origin = s.world().bgp_lookup(*addr)) {
    std::printf("BGP origin     -> AS%u via %s\n", origin->second.value,
                origin->first.to_string().c_str());
  }
  return 0;
}

int cmd_export_targets(const scenario::Scenario& s, const std::string& path) {
  util::CsvWriter w(path);
  if (!w.ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  w.row({"address", "lat", "lon", "city", "country", "continent", "asn"});
  for (sim::HostId id : s.targets()) {
    const auto& h = s.world().host(id);
    const auto& place = s.world().place(h.place);
    w.row({h.addr.to_string(), std::to_string(h.true_location.lat_deg),
           std::to_string(h.true_location.lon_deg), place.name, place.country,
           std::string(sim::to_string(place.continent)),
           std::to_string(h.asn.value)});
  }
  std::printf("wrote %zu rows to %s\n", w.rows_written(), path.c_str());
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: geoloc_cli [--paper] <command>\n"
      "  world                         scenario summary\n"
      "  sanitize                      Section 4.3 sanitisation report\n"
      "  geolocate <idx> [technique]   cbg | shortest-ping | single-radius "
      "| two-step | street\n"
      "  lookup <ipv4>                 simulated geo-database lookups\n"
      "  export-targets <file.csv>     ground truth as CSV\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool paper = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--paper") {
      paper = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (args.empty()) {
    usage();
    return 2;
  }

  auto config = paper ? scenario::paper_config() : scenario::small_config();
  if (!paper) config.cache_dir = "";
  const scenario::Scenario s(config);

  const std::string& cmd = args[0];
  if (cmd == "world") return cmd_world(s);
  if (cmd == "sanitize") return cmd_sanitize(s);
  if (cmd == "geolocate" && args.size() >= 2) {
    return cmd_geolocate(s, static_cast<std::size_t>(std::stoul(args[1])),
                         args.size() >= 3 ? args[2] : "cbg");
  }
  if (cmd == "lookup" && args.size() >= 2) return cmd_lookup(s, args[1]);
  if (cmd == "export-targets" && args.size() >= 2) {
    return cmd_export_targets(s, args[1]);
  }
  usage();
  return 2;
}
